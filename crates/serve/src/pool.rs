//! Pooled per-query scratch: the PR 4 workspace discipline applied to
//! the read path.
//!
//! Every query needs the same scratch shapes — a weight row, a score
//! panel, a top-K candidate list. A [`ScratchPool`] keeps a free list
//! of [`ServeScratch`] arenas; a query checks one out, runs entirely in
//! its grow-once buffers, and returns it on drop. Once every buffer has
//! reached its high-water mark (one query per shape), steady-state
//! queries perform no heap allocation in the scoring path — see
//! `tests/alloc_serve.rs`.

use crate::error::ServeError;
use parking_lot::Mutex;
use splinalg::{DMat, Workspace};
use sptensor::Idx;

/// Grow-once scratch for one in-flight query (or one scoring batch).
pub struct ServeScratch {
    /// Dense-kernel scratch (score panels, Hadamard accumulators).
    pub(crate) ws: Workspace,
    /// `1 x F` query weight row, reshaped only when the rank changes.
    pub(crate) weights: DMat,
    /// Top-K candidates, kept sorted worst-first.
    pub(crate) entries: Vec<(f64, Idx)>,
    /// Quantized weight row for the approximate scan.
    pub(crate) wq: Vec<f32>,
    /// Quantized score panel for the approximate scan.
    pub(crate) qscores: Vec<f32>,
    /// Oversampled approximate-scan survivors, kept sorted worst-first.
    pub(crate) survivors: Vec<(f64, Idx)>,
    /// Flattened coordinates of a point-query batch (`B * nmodes`).
    pub(crate) coords: Vec<Idx>,
    /// Per-mode gathered row ids of a batch (`B`).
    pub(crate) ids: Vec<usize>,
    /// Per-query validity of a batch (`B`).
    pub(crate) valid: Vec<bool>,
    /// Per-query batch values (`B`), separate from `ws` so the reducer
    /// can read the accumulator while writing here.
    pub(crate) values: Vec<f64>,
    /// Per-query validation errors of a batch (`B`).
    pub(crate) errors: Vec<Option<ServeError>>,
}

impl Default for ServeScratch {
    fn default() -> Self {
        ServeScratch {
            ws: Workspace::new(),
            weights: DMat::zeros(1, 1),
            entries: Vec::new(),
            wq: Vec::new(),
            qscores: Vec::new(),
            survivors: Vec::new(),
            coords: Vec::new(),
            ids: Vec::new(),
            valid: Vec::new(),
            values: Vec::new(),
            errors: Vec::new(),
        }
    }
}

impl ServeScratch {
    /// The weight row, reshaped to `1 x f` if the rank changed since
    /// the last query (steady state: no reallocation).
    pub(crate) fn weights_row(&mut self, f: usize) -> &mut DMat {
        if self.weights.nrows() != 1 || self.weights.ncols() != f {
            self.weights = DMat::zeros(1, f);
        }
        &mut self.weights
    }
}

/// Lock-protected free list of scratch arenas.
///
/// `take` pops an arena (or makes an empty one when the pool runs dry —
/// under a fixed concurrency level that happens only during warmup);
/// the guard returns it on drop, keeping its high-water buffers for the
/// next query.
pub struct ScratchPool {
    free: Mutex<Vec<ServeScratch>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchPool {
    /// An empty pool; arenas are created on demand and retained.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Check out an arena.
    pub(crate) fn take(&self) -> ScratchGuard<'_> {
        let scratch = self.free.lock().pop().unwrap_or_default();
        ScratchGuard {
            scratch: Some(scratch),
            pool: self,
        }
    }
}

/// RAII check-out of a [`ServeScratch`]; returns it to the pool on drop.
pub(crate) struct ScratchGuard<'a> {
    scratch: Option<ServeScratch>,
    pool: &'a ScratchPool,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = ServeScratch;
    fn deref(&self) -> &ServeScratch {
        self.scratch.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut ServeScratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        let scratch = self.scratch.take().expect("dropped once");
        self.pool.free.lock().push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_are_recycled() {
        let pool = ScratchPool::new();
        let ptr = {
            let mut g = pool.take();
            g.entries.reserve(64);
            g.entries.as_ptr() as usize
        };
        // The returned arena (with its grown buffer) is handed out again.
        let g = pool.take();
        assert_eq!(g.entries.as_ptr() as usize, ptr);
        assert!(g.entries.capacity() >= 64);
    }

    #[test]
    fn weights_row_reshapes_only_on_rank_change() {
        let mut s = ServeScratch::default();
        let p = s.weights_row(4).as_slice().as_ptr();
        assert_eq!(s.weights_row(4).as_slice().as_ptr(), p);
        assert_eq!(s.weights_row(2).ncols(), 2);
    }
}
