//! Error type for the serving engine.

use splinalg::LinalgError;
use std::fmt;

/// Errors raised while answering queries.
#[derive(Debug)]
pub enum ServeError {
    /// The query does not fit the current model (wrong arity,
    /// out-of-range coordinate, bad free mode).
    Invalid(String),
    /// No model has been published to the registry yet.
    Empty,
    /// Propagated linear-algebra error (programming error in the
    /// scoring path; queries themselves are validated before scoring).
    Linalg(LinalgError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            ServeError::Empty => write!(f, "no model published yet"),
            ServeError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ServeError {
    fn from(e: LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::Invalid("bad".into())
            .to_string()
            .contains("bad"));
        assert!(ServeError::Empty.to_string().contains("no model"));
        let l: ServeError = LinalgError::InvalidArgument("x".into()).into();
        assert!(l.to_string().contains("linear"));
    }
}
