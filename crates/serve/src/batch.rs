//! Micro-batching point-query scorer (combining leader/follower).
//!
//! Point queries are tiny — `O(nmodes * F)` flops — so at high
//! concurrency the per-query overhead (snapshotting the model, touching
//! scratch, cache misses on the factors) dominates. This scorer
//! coalesces concurrent callers that share a query structure (full
//! reconstruction at one coordinate) into panel-sized batches: each
//! caller enqueues its coordinate, the first caller to find no active
//! leader *becomes* the leader and scores everything queued (including
//! its own query) through the gathered-Hadamard panel kernels, then
//! hands results back and notifies. Followers just wait on their slot.
//!
//! One batch is scored against **one** registry snapshot, so every
//! answer in a batch reflects a single coherent epoch that was current
//! during the call. Slot cells and scoring scratch are recycled through
//! free lists, so the steady-state path allocates nothing
//! (`tests/alloc_serve.rs` pins the single-caller path).
//!
//! The batched value groups its arithmetic exactly like
//! [`aoadmm::KruskalModel::value_at`] — factor entries multiplied in
//! mode order, components summed in ascending column order — so batched
//! and scalar scoring agree bit-for-bit.

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::{ScratchPool, ServeScratch};
use crate::registry::ModelRegistry;
use parking_lot::Mutex;
use splinalg::panel;
use sptensor::Idx;
use std::collections::VecDeque;
use std::sync::Arc;

/// One caller's slot in the queue.
struct SlotState {
    coord: Vec<Idx>,
    done: bool,
    result: Result<f64, ServeError>,
}

/// Cells use `std::sync` rather than `parking_lot` because followers
/// block on a condvar, and panics on the leader must not wedge them —
/// `std`'s poisoning is recovered explicitly below.
struct SlotCell {
    state: std::sync::Mutex<SlotState>,
    cv: std::sync::Condvar,
}

/// Lock a slot cell, recovering from poisoning (a panicking leader must
/// not wedge followers; the slot's `done`/`result` state stays valid).
fn lock_slot(cell: &SlotCell) -> std::sync::MutexGuard<'_, SlotState> {
    cell.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl SlotCell {
    fn new() -> Arc<Self> {
        Arc::new(SlotCell {
            state: std::sync::Mutex::new(SlotState {
                coord: Vec::new(),
                done: false,
                result: Err(ServeError::Empty),
            }),
            cv: std::sync::Condvar::new(),
        })
    }
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Arc<SlotCell>>,
    leader_active: bool,
    /// The (single) leader's drain buffer, parked here between
    /// leadership stints so repeated leading allocates nothing.
    drain: Vec<Arc<SlotCell>>,
}

/// The combining scorer. One per engine; shared by all query threads.
pub(crate) struct BatchScorer {
    queue: Mutex<Queue>,
    cells: Mutex<Vec<Arc<SlotCell>>>,
    max_batch: usize,
}

impl BatchScorer {
    pub(crate) fn new(max_batch: usize) -> Self {
        BatchScorer {
            queue: Mutex::new(Queue::default()),
            cells: Mutex::new(Vec::new()),
            max_batch: max_batch.max(1),
        }
    }

    fn take_cell(&self) -> Arc<SlotCell> {
        self.cells.lock().pop().unwrap_or_else(SlotCell::new)
    }

    fn put_cell(&self, cell: Arc<SlotCell>) {
        self.cells.lock().push(cell);
    }

    /// Score one coordinate, coalescing with concurrent callers.
    pub(crate) fn score(
        &self,
        registry: &ModelRegistry,
        pool: &ScratchPool,
        coord: &[Idx],
    ) -> Result<f64, ServeError> {
        let cell = self.take_cell();
        {
            let mut st = lock_slot(&cell);
            st.coord.clear();
            st.coord.extend_from_slice(coord);
            st.done = false;
        }
        let lead = {
            let mut q = self.queue.lock();
            q.pending.push_back(cell.clone());
            if q.leader_active {
                false
            } else {
                q.leader_active = true;
                true
            }
        };
        if lead {
            self.drive(registry, pool);
        }
        let result = {
            let mut st = lock_slot(&cell);
            while !st.done {
                st = cell.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            std::mem::replace(&mut st.result, Err(ServeError::Empty))
        };
        self.put_cell(cell);
        result
    }

    /// Leader loop: drain panel-sized batches until the queue is empty,
    /// then resign so the next enqueuer can lead.
    fn drive(&self, registry: &ModelRegistry, pool: &ScratchPool) {
        let mut batch = std::mem::take(&mut self.queue.lock().drain);
        loop {
            batch.clear();
            {
                let mut q = self.queue.lock();
                while batch.len() < self.max_batch {
                    match q.pending.pop_front() {
                        Some(c) => batch.push(c),
                        None => break,
                    }
                }
                if batch.is_empty() {
                    // Resignation and the emptiness check share one lock
                    // hold, so no enqueued cell can be stranded.
                    q.leader_active = false;
                    q.drain = std::mem::take(&mut batch);
                    return;
                }
            }
            let snapshot = registry.snapshot();
            let mut scratch = pool.take();
            score_batch(snapshot.as_deref(), &batch, &mut scratch);
        }
    }
}

/// Score one batch against one coherent snapshot and wake the owners.
fn score_batch(model: Option<&ServableModel>, batch: &[Arc<SlotCell>], scratch: &mut ServeScratch) {
    let finish = |cell: &SlotCell, result: Result<f64, ServeError>| {
        let mut st = lock_slot(cell);
        st.result = result;
        st.done = true;
        cell.cv.notify_all();
    };
    let Some(model) = model else {
        for cell in batch {
            finish(cell, Err(ServeError::Empty));
        }
        return;
    };

    let b = batch.len();
    let nmodes = model.nmodes();
    let f = model.rank();
    let ServeScratch {
        ws,
        coords,
        ids,
        valid,
        values,
        errors,
        ..
    } = scratch;
    if values.len() < b {
        values.resize(b, 0.0);
    }
    let values = &mut values[..b];

    // Gather and validate every coordinate under its cell lock; invalid
    // queries are parked at row 0 (always in range) and answered with
    // the validation error afterwards.
    coords.clear();
    valid.clear();
    errors.clear();
    for cell in batch {
        let st = lock_slot(cell);
        match model.check_coord(&st.coord) {
            Ok(()) => {
                coords.extend_from_slice(&st.coord);
                valid.push(true);
                errors.push(None);
            }
            Err(e) => {
                coords.extend(std::iter::repeat_n(0, nmodes));
                valid.push(false);
                errors.push(Some(e));
            }
        }
    }

    let acc = ws.batch(b * f);
    for m in 0..nmodes {
        ids.clear();
        ids.extend((0..b).map(|q| coords[q * nmodes + m] as usize));
        if panel::gather_hadamard_rows(model.model().factor(m), ids, m == 0, acc).is_err() {
            // Unreachable after validation; fail the batch loudly
            // rather than hand back garbage.
            for cell in batch {
                finish(
                    cell,
                    Err(ServeError::Invalid("internal batch gather failed".into())),
                );
            }
            return;
        }
    }
    if panel::row_sums_into(acc, f, values).is_err() {
        for cell in batch {
            finish(
                cell,
                Err(ServeError::Invalid("internal batch reduce failed".into())),
            );
        }
        return;
    }

    for (q, cell) in batch.iter().enumerate() {
        let result = match errors[q].take() {
            Some(e) => Err(e),
            None => Ok(values[q]),
        };
        finish(cell, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoadmm::KruskalModel;
    use splinalg::DMat;

    fn registry() -> ModelRegistry {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(5)
        };
        let reg = ModelRegistry::new();
        reg.publish(KruskalModel::new(vec![
            DMat::random(6, 4, -1.0, 1.0, &mut rng),
            DMat::random(5, 4, -1.0, 1.0, &mut rng),
            DMat::random(7, 4, -1.0, 1.0, &mut rng),
        ]));
        reg
    }

    #[test]
    fn single_caller_matches_value_at_bitwise() {
        let reg = registry();
        let pool = ScratchPool::new();
        let scorer = BatchScorer::new(8);
        let snap = reg.snapshot().unwrap();
        for coord in [[0u32, 0, 0], [5, 4, 6], [2, 3, 1]] {
            let got = scorer.score(&reg, &pool, &coord).unwrap();
            assert_eq!(got.to_bits(), snap.model().value_at(&coord).to_bits());
        }
    }

    #[test]
    fn invalid_queries_get_errors_not_poisoned_batches() {
        let reg = registry();
        let pool = ScratchPool::new();
        let scorer = BatchScorer::new(8);
        assert!(matches!(
            scorer.score(&reg, &pool, &[6, 0, 0]),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            scorer.score(&reg, &pool, &[0, 0]),
            Err(ServeError::Invalid(_))
        ));
        // A valid query right after still answers correctly.
        assert!(scorer.score(&reg, &pool, &[0, 0, 0]).is_ok());
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = ModelRegistry::new();
        let pool = ScratchPool::new();
        let scorer = BatchScorer::new(4);
        assert!(matches!(
            scorer.score(&reg, &pool, &[0, 0, 0]),
            Err(ServeError::Empty)
        ));
    }
}
