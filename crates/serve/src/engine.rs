//! The query-side front door: one engine per deployment, shared by all
//! serving threads.

use crate::batch::BatchScorer;
use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::ScratchPool;
use crate::registry::ModelRegistry;
use crate::topk::{self, TopKQuery, TopKResult};
use crate::topk_approx::{self, ApproxPolicy};
use splinalg::panel::{self, PANEL_ROWS};
use sptensor::Idx;
use std::sync::Arc;

/// Serving engine over a [`ModelRegistry`]: batched point reconstruction
/// and pruned exact top-K. `&self` everywhere — share one engine across
/// however many query threads the deployment runs.
pub struct ServeEngine {
    registry: Arc<ModelRegistry>,
    batcher: BatchScorer,
    pool: ScratchPool,
    pruned: bool,
    approx: ApproxPolicy,
}

impl ServeEngine {
    /// An engine over `registry`, with panel-sized micro-batches and
    /// norm-bound pruning enabled.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        ServeEngine {
            registry,
            batcher: BatchScorer::new(PANEL_ROWS),
            pool: ScratchPool::new(),
            pruned: true,
            approx: ApproxPolicy::default(),
        }
    }

    /// Cap coalesced point-query batches at `n` (default
    /// [`PANEL_ROWS`]).
    pub fn batch_limit(mut self, n: usize) -> Self {
        self.batcher = BatchScorer::new(n);
        self
    }

    /// Toggle norm-bound pruning for top-K (default on). Both settings
    /// return identical results; brute force is the fallback when a
    /// workload's norms are too uniform to prune.
    pub fn pruning(mut self, on: bool) -> Self {
        self.pruned = on;
        self
    }

    /// Set the approximate-tier policy (default
    /// [`ApproxPolicy::default`]).
    pub fn approx_policy(mut self, policy: ApproxPolicy) -> Self {
        self.approx = policy;
        self
    }

    /// The registry this engine reads from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Epoch of the most recently published model.
    pub fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Reconstruct the model value at `coord`, coalescing with
    /// concurrent callers into one batched panel scoring pass. The
    /// answer reflects a single coherent model epoch current during the
    /// call, bit-identical to `value_at` on that epoch.
    pub fn predict(&self, coord: &[Idx]) -> Result<f64, ServeError> {
        self.batcher.score(&self.registry, &self.pool, coord)
    }

    /// Reconstruct the model value at `coord` without micro-batching:
    /// snapshot, validate, scalar `value_at`. The per-query baseline
    /// the load generator compares against.
    pub fn predict_direct(&self, coord: &[Idx]) -> Result<f64, ServeError> {
        let model = self.registry.snapshot().ok_or(ServeError::Empty)?;
        model.check_coord(coord)?;
        Ok(model.model().value_at(coord))
    }

    /// Score a caller-assembled batch of coordinates in one pass:
    /// panel-sized chunks through the gathered-Hadamard kernels against
    /// one coherent epoch. This is the bulk fast path — amortizing the
    /// snapshot and per-mode dispatch across the whole slice is what
    /// beats per-query scalar scoring in the load generator.
    pub fn predict_many(&self, coords: &[Vec<Idx>]) -> Result<Vec<f64>, ServeError> {
        let mut out = Vec::new();
        self.predict_many_into(coords, &mut out)?;
        Ok(out)
    }

    /// [`ServeEngine::predict_many`] into a caller-retained buffer; with
    /// a reused buffer the call allocates nothing in steady state.
    /// Values are bit-identical to `value_at` per coordinate. The whole
    /// batch is validated up front — any bad coordinate fails the call
    /// before anything is scored. Returns the epoch scored against.
    pub fn predict_many_into(
        &self,
        coords: &[Vec<Idx>],
        out: &mut Vec<f64>,
    ) -> Result<u64, ServeError> {
        let model = self.registry.snapshot().ok_or(ServeError::Empty)?;
        for c in coords {
            model.check_coord(c)?;
        }
        out.clear();
        out.resize(coords.len(), 0.0);
        let f = model.rank();
        let nmodes = model.nmodes();
        let mut scratch = self.pool.take();
        let crate::pool::ServeScratch { ws, ids, .. } = &mut *scratch;
        for (ci, chunk) in coords.chunks(PANEL_ROWS).enumerate() {
            let b = chunk.len();
            let acc = ws.batch(b * f);
            for m in 0..nmodes {
                ids.clear();
                ids.extend(chunk.iter().map(|c| c[m] as usize));
                panel::gather_hadamard_rows(model.model().factor(m), ids, m == 0, acc)?;
            }
            let off = ci * PANEL_ROWS;
            panel::row_sums_into(acc, f, &mut out[off..off + b])?;
        }
        Ok(model.epoch())
    }

    /// Exact top-K over `q.free_mode`, descending score with ties by
    /// ascending row id, computed against one coherent epoch (reported
    /// in the result).
    pub fn topk(&self, q: &TopKQuery) -> Result<TopKResult, ServeError> {
        let mut hits = Vec::new();
        let epoch = self.topk_into(q, &mut hits)?;
        Ok(TopKResult { epoch, hits })
    }

    /// [`ServeEngine::topk`] into a caller-retained buffer (cleared
    /// first); with a reused buffer the query allocates nothing in
    /// steady state. Returns the epoch scored against.
    pub fn topk_into(&self, q: &TopKQuery, hits: &mut Vec<(Idx, f64)>) -> Result<u64, ServeError> {
        self.topk_into_with(q, self.pruned, hits)
    }

    /// Top-K with an explicit pruning choice — the differential hook
    /// for conformance tests and benchmarks.
    pub fn topk_into_with(
        &self,
        q: &TopKQuery,
        pruned: bool,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<u64, ServeError> {
        let model = self.registry.snapshot().ok_or(ServeError::Empty)?;
        let mut scratch = self.pool.take();
        topk::topk_scan(&model, q, pruned, &mut scratch, hits)?;
        Ok(model.epoch())
    }

    /// Approximate top-K over `q.free_mode`: bf16 quantized scan with
    /// guard-bounded early termination, then exact rescoring of the
    /// oversampled survivors. Returned scores are bit-identical to the
    /// exact path's scores for the same rows; the id set may miss a
    /// true winner (recall, not precision, is the approximation).
    pub fn topk_approx(&self, q: &TopKQuery) -> Result<TopKResult, ServeError> {
        let mut hits = Vec::new();
        let epoch = self.topk_approx_into(q, &mut hits)?;
        Ok(TopKResult { epoch, hits })
    }

    /// [`ServeEngine::topk_approx`] into a caller-retained buffer
    /// (cleared first). Returns the epoch scored against.
    pub fn topk_approx_into(
        &self,
        q: &TopKQuery,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<u64, ServeError> {
        self.topk_approx_into_with(q, self.approx, hits)
    }

    /// Approximate top-K with an explicit policy — the differential
    /// hook for the recall conformance suite and the wire benchmark.
    pub fn topk_approx_into_with(
        &self,
        q: &TopKQuery,
        policy: ApproxPolicy,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<u64, ServeError> {
        let model = self.registry.snapshot().ok_or(ServeError::Empty)?;
        let mut scratch = self.pool.take();
        topk_approx::topk_approx_scan(&model, q, policy, &mut scratch, hits)?;
        Ok(model.epoch())
    }

    /// The current model snapshot (one coherent epoch), if any.
    pub fn snapshot(&self) -> Option<Arc<ServableModel>> {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoadmm::KruskalModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splinalg::DMat;

    fn engine() -> ServeEngine {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(KruskalModel::new(vec![
            DMat::random(40, 6, -1.0, 1.0, &mut rng),
            DMat::random(8, 6, -1.0, 1.0, &mut rng),
            DMat::random(9, 6, -1.0, 1.0, &mut rng),
        ]));
        ServeEngine::new(reg)
    }

    #[test]
    fn predict_batched_matches_direct_bitwise() {
        let eng = engine();
        for coord in [[0u32, 0, 0], [39, 7, 8], [13, 2, 5]] {
            let a = eng.predict(&coord).unwrap();
            let b = eng.predict_direct(&coord).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn predict_many_matches_direct_bitwise_across_chunks() {
        let eng = engine();
        // 70 queries: spans two full 32-row panels plus a remainder.
        let coords: Vec<Vec<Idx>> = (0..70u32).map(|i| vec![i % 40, i % 8, i % 9]).collect();
        let (got, epoch) = {
            let mut out = Vec::new();
            let e = eng.predict_many_into(&coords, &mut out).unwrap();
            (out, e)
        };
        assert_eq!(epoch, 1);
        assert_eq!(got.len(), coords.len());
        for (c, v) in coords.iter().zip(&got) {
            assert_eq!(v.to_bits(), eng.predict_direct(c).unwrap().to_bits());
        }
        // Whole-batch validation: one bad coordinate fails the call.
        let mut bad = coords.clone();
        bad[40] = vec![40, 0, 0];
        assert!(matches!(
            eng.predict_many(&bad),
            Err(ServeError::Invalid(_))
        ));
        assert!(eng.predict_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn topk_pruned_matches_brute() {
        let eng = engine();
        let q = TopKQuery {
            free_mode: 0,
            anchor: vec![0, 3, 4],
            k: 7,
        };
        let mut pruned = Vec::new();
        let mut brute = Vec::new();
        eng.topk_into_with(&q, true, &mut pruned).unwrap();
        eng.topk_into_with(&q, false, &mut brute).unwrap();
        assert_eq!(pruned, brute);
        assert_eq!(pruned.len(), 7);
        assert!(pruned.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn topk_reports_epoch_and_empty_registry_errors() {
        let eng = ServeEngine::new(Arc::new(ModelRegistry::new()));
        let q = TopKQuery {
            free_mode: 0,
            anchor: vec![0, 0, 0],
            k: 1,
        };
        assert!(matches!(eng.topk(&q), Err(ServeError::Empty)));
        assert!(matches!(
            eng.predict_direct(&[0, 0, 0]),
            Err(ServeError::Empty)
        ));

        let eng = engine();
        assert_eq!(eng.topk(&q).unwrap().epoch, 1);
        assert_eq!(eng.epoch(), 1);
    }
}
