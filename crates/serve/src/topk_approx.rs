//! Approximate top-K: a bf16 candidate scan with exact rescoring.
//!
//! The exact pruned scan in [`crate::topk`] reads full f64 rows until
//! the Cauchy–Schwarz bound closes. On workloads whose norms decay
//! slowly, that scan is memory-bound over `8 * F` bytes per candidate.
//! The approximate tier trades a bounded amount of recall for a quarter
//! of that traffic:
//!
//! 1. **Quantized scan.** Walk the free mode's bf16-packed,
//!    norm-descending factor ([`ServableModel::quant`]) scoring every
//!    candidate in f32 ([`splinalg::bf16::scores_bf16_into`]), and keep
//!    the best `oversample * k` candidates seen so far.
//! 2. **Early termination.** Stop the scan once even the best remaining
//!    norm bound cannot beat the current k-th *quantized* score by more
//!    than a guard margin `guard * ||row_max|| * ||w||` — the slack that
//!    absorbs bf16's relative error, so a true winner whose quantized
//!    score was rounded down still makes the survivor set.
//! 3. **Exact rescoring.** Rescore every survivor with the same
//!    ascending-column f64 accumulation the exact path uses — survivor
//!    scores are bit-identical to what [`crate::topk`] would have
//!    produced for those rows — and return the top `k` under the usual
//!    total order (score desc, id asc).
//!
//! Recall is not 1.0 by construction: a row whose quantized score
//! underestimates its true score by more than the guard, or that falls
//! outside the oversampled survivor set, can be missed. The conformance
//! suite measures recall@k against the exact path on power-law norm
//! fixtures; the default policy holds recall@10 >= 0.99 there.

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::ServeScratch;
use crate::topk::TopKQuery;
use splinalg::bf16::{quantize_weights, scores_bf16_into};
use sptensor::Idx;

/// Rows scored per quantized-scan chunk. Larger than the exact path's
/// panel because the packed rows are a quarter the bytes: one chunk of
/// rank-32 bf16 rows is 32 KiB, L2-resident, and big enough that the
/// per-chunk bound check and loop overheads vanish against the
/// vectorized scoring sweep. Termination granularity stays conservative:
/// the scan can overshoot by at most one chunk.
const SCAN_ROWS: usize = 512;

/// Tuning knobs of the approximate tier. The defaults are what the
/// conformance fixtures and the wire benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ApproxPolicy {
    /// Survivor-set size as a multiple of `k`: the quantized scan keeps
    /// the best `oversample * k` candidates for exact rescoring.
    /// Minimum 1; larger values trade scan work for recall.
    pub oversample: usize,
    /// Early-termination slack as a fraction of the largest possible
    /// score `||row_max|| * ||w||`. The scan only stops when the best
    /// remaining bound trails the k-th quantized score by more than
    /// this margin, so quantization error cannot hide a true winner
    /// behind an early stop. bf16 carries ~2^-9 relative error; the
    /// default 0.01 leaves a factor of ~5 of headroom.
    pub guard: f64,
}

impl Default for ApproxPolicy {
    fn default() -> Self {
        ApproxPolicy {
            oversample: 4,
            guard: 0.01,
        }
    }
}

/// Answer `q` approximately against `model`, appending hits (best
/// first) to `out`. `out` is cleared first; with pooled scratch and a
/// caller-retained `out` the scan allocates nothing in steady state.
pub(crate) fn topk_approx_scan(
    model: &ServableModel,
    q: &TopKQuery,
    policy: ApproxPolicy,
    scratch: &mut ServeScratch,
    out: &mut Vec<(Idx, f64)>,
) -> Result<(), ServeError> {
    model.check_anchor(q.free_mode, &q.anchor)?;
    out.clear();
    let n = model.dims()[q.free_mode];
    let k = q.k.min(n);
    if k == 0 {
        return Ok(());
    }
    let f = model.rank();
    scratch.weights_row(f);
    let ServeScratch {
        weights,
        entries,
        wq,
        qscores,
        survivors,
        ..
    } = scratch;
    model
        .model()
        .weights_into(q.free_mode, &q.anchor, weights.row_mut(0));
    let w = weights.row(0);
    let wnorm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
    quantize_weights(w, wq);

    let quant = model.quant(q.free_mode);
    let norms = model.norms_desc(q.free_mode);
    let order = model.order(q.free_mode);
    // Absolute guard: `guard` scaled by the largest score any row could
    // reach. An additive margin stays sign-safe where a multiplicative
    // one would flip around zero.
    let guard_abs = policy.guard * norms.first().copied().unwrap_or(0.0) * wnorm;
    let cap = policy.oversample.max(1).saturating_mul(k).min(n);

    survivors.clear();
    qscores.resize(SCAN_ROWS, 0.0);
    let mut start = 0;
    while start < n {
        if survivors.len() == cap {
            // Rows from `start` on are norm-descending; `survivors` is
            // sorted worst-first, so the k-th best quantized score sits
            // `k` from the end. Stop only when the margin exceeds the
            // guard — a candidate whose f32 score was rounded down by
            // less than `guard_abs` still gets scanned and kept.
            let kth_q = survivors[cap - k].0;
            if norms[start] * wnorm < kth_q - guard_abs {
                break;
            }
        }
        let len = SCAN_ROWS.min(n - start);
        scores_bf16_into(quant, start, len, wq, &mut qscores[..len])?;
        // Threshold precheck: once the survivor set is full, only a
        // candidate strictly above the worst survivor — or tying it,
        // where the id tie-break decides — can enter. The f32 compare
        // rejects almost every row without paying for `offer`'s f64
        // conversion and ordered insert. Skipping is strict (`<`), so
        // tie handling is exactly `offer`'s.
        let mut thr = if survivors.len() == cap {
            survivors[0].0 as f32
        } else {
            f32::NEG_INFINITY
        };
        // Block-max fast path: a 64-row block whose maximum trails the
        // threshold cannot contribute, and the max-reduction vectorizes
        // where the per-row compare-and-offer loop cannot. Once the
        // survivor set is full almost every block is skipped this way.
        const BLOCK: usize = 64;
        let mut b = 0;
        while b < len {
            let blen = BLOCK.min(len - b);
            let block = &qscores[b..b + blen];
            let bmax = block.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            if bmax < thr {
                b += blen;
                continue;
            }
            for (j, &score) in block.iter().enumerate() {
                if score < thr {
                    continue;
                }
                crate::topk::offer(survivors, cap, (score as f64, order[start + b + j]));
                if survivors.len() == cap {
                    thr = survivors[0].0 as f32;
                }
            }
            b += blen;
        }
        start += len;
    }

    // Exact rescoring: the same ascending-column f64 accumulation as
    // `panel::scores_into`, so a survivor's score is bit-identical to
    // the exact path's score for that row.
    let fac = model.model().factor(q.free_mode);
    entries.clear();
    for &(_, id) in survivors.iter() {
        let row = fac.row(id as usize);
        let mut s = 0.0f64;
        for (&rc, &wc) in row.iter().zip(w) {
            s += rc * wc;
        }
        crate::topk::offer(entries, k, (s, id));
    }
    out.extend(entries.iter().rev().map(|&(score, id)| (id, score)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::topk_scan;
    use aoadmm::KruskalModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splinalg::DMat;

    fn servable(rows: usize, rank: usize, seed: u64) -> ServableModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = ServableModel::new(KruskalModel::new(vec![
            DMat::random(rows, rank, -1.0, 1.0, &mut rng),
            DMat::random(5, rank, -1.0, 1.0, &mut rng),
        ]));
        s.epoch = 1;
        s
    }

    fn query(k: usize) -> TopKQuery {
        TopKQuery {
            free_mode: 0,
            anchor: vec![0, 3],
            k,
        }
    }

    #[test]
    fn full_rescore_equals_exact_path() {
        // With `cap >= n` every row survives to exact rescoring, so the
        // result must be identical to the exact scan, bit for bit.
        let model = servable(50, 6, 11);
        let mut scratch = ServeScratch::default();
        let mut exact = Vec::new();
        let mut approx = Vec::new();
        for k in [1, 3, 10] {
            let q = query(k);
            topk_scan(&model, &q, true, &mut scratch, &mut exact).unwrap();
            let policy = ApproxPolicy {
                oversample: 50,
                guard: 0.0,
            };
            topk_approx_scan(&model, &q, policy, &mut scratch, &mut approx).unwrap();
            assert_eq!(exact.len(), approx.len(), "k={k}");
            for (e, a) in exact.iter().zip(&approx) {
                assert_eq!(e.0, a.0, "k={k}");
                assert_eq!(e.1.to_bits(), a.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn survivor_scores_are_bit_exact() {
        // Any id the approximate path returns carries the exact path's
        // score for that id, regardless of policy.
        let model = servable(200, 8, 7);
        let mut scratch = ServeScratch::default();
        let q = query(10);
        let mut exact = Vec::new();
        topk_scan(&model, &q, false, &mut scratch, &mut exact).unwrap();
        let mut full = Vec::new();
        topk_scan(
            &model,
            &TopKQuery {
                k: 200,
                ..q.clone()
            },
            false,
            &mut scratch,
            &mut full,
        )
        .unwrap();
        let mut approx = Vec::new();
        topk_approx_scan(
            &model,
            &q,
            ApproxPolicy::default(),
            &mut scratch,
            &mut approx,
        )
        .unwrap();
        for &(id, score) in &approx {
            let reference = full.iter().find(|&&(i, _)| i == id).unwrap().1;
            assert_eq!(score.to_bits(), reference.to_bits(), "id={id}");
        }
    }

    #[test]
    fn k_zero_clip_and_validation() {
        let model = servable(10, 4, 3);
        let mut scratch = ServeScratch::default();
        let mut out = vec![(0, 0.0)];
        topk_approx_scan(
            &model,
            &query(0),
            ApproxPolicy::default(),
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
        topk_approx_scan(
            &model,
            &query(25),
            ApproxPolicy::default(),
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 10);
        let bad = TopKQuery {
            free_mode: 0,
            anchor: vec![0, 9],
            k: 1,
        };
        assert!(topk_approx_scan(
            &model,
            &bad,
            ApproxPolicy::default(),
            &mut scratch,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn early_termination_still_finds_dominant_rows() {
        // Power-law norms: the winners live in the first few permuted
        // rows, so the guard-bounded stop cannot miss them.
        let rows = 400;
        let rank = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut free = DMat::random(rows, rank, -1.0, 1.0, &mut rng);
        for i in 0..rows {
            let scale = ((i + 1) as f64).powf(-0.8);
            for v in free.row_mut(i) {
                *v *= scale;
            }
        }
        let mut model = ServableModel::new(KruskalModel::new(vec![
            free,
            DMat::random(5, rank, -1.0, 1.0, &mut rng),
        ]));
        model.epoch = 1;
        let mut scratch = ServeScratch::default();
        let q = query(10);
        let mut exact = Vec::new();
        topk_scan(&model, &q, true, &mut scratch, &mut exact).unwrap();
        let mut approx = Vec::new();
        topk_approx_scan(
            &model,
            &q,
            ApproxPolicy::default(),
            &mut scratch,
            &mut approx,
        )
        .unwrap();
        let hit = approx
            .iter()
            .filter(|&&(id, _)| exact.iter().any(|&(e, _)| e == id))
            .count();
        assert!(hit >= 9, "recall@10 = {hit}/10");
    }
}
