//! An immutable, query-ready view of one published model epoch.

use crate::error::ServeError;
use aoadmm::KruskalModel;
use splinalg::{Bf16Mat, DMat};
use sptensor::Idx;

/// A [`KruskalModel`] frozen for serving, together with the read-side
/// indexes queries need: per-mode row norms (the Cauchy–Schwarz pruning
/// bound) and a norm-descending permutation of every factor so a pruned
/// top-K scan walks contiguous memory.
///
/// A `ServableModel` is built once per publish (outside the registry's
/// swap lock) and never mutated afterwards; readers share it through an
/// `Arc`, so a query sees either all of one epoch or all of another,
/// never a mix. The permuted factor copies double the model's footprint
/// — the price of turning the pruned scan into sequential panel reads.
#[derive(Debug)]
pub struct ServableModel {
    model: KruskalModel,
    pub(crate) epoch: u64,
    dims: Vec<usize>,
    /// Per mode: row ids sorted by descending L2 norm, ties by
    /// ascending id.
    order: Vec<Vec<Idx>>,
    /// Per mode: row norms aligned with `order` (position `j` holds the
    /// norm of row `order[m][j]`).
    norms_desc: Vec<Vec<f64>>,
    /// Per mode: the factor with rows permuted into `order`, so a scan
    /// in bound order is a scan in memory order.
    permuted: Vec<DMat>,
    /// Per mode: bf16-packed copy of `permuted`, the storage the
    /// approximate top-K tier scans (a quarter of the f64 bytes).
    quant: Vec<Bf16Mat>,
}

impl ServableModel {
    /// Freeze `model` for serving; the registry stamps the epoch.
    pub(crate) fn new(model: KruskalModel) -> Self {
        let dims = model.dims();
        let mut order = Vec::with_capacity(model.nmodes());
        let mut norms_desc = Vec::with_capacity(model.nmodes());
        let mut permuted = Vec::with_capacity(model.nmodes());
        for m in 0..model.nmodes() {
            let norms = model.row_norms(m);
            let mut ids: Vec<Idx> = (0..norms.len() as Idx).collect();
            ids.sort_by(|&a, &b| {
                norms[b as usize]
                    .total_cmp(&norms[a as usize])
                    .then(a.cmp(&b))
            });
            let fac = model.factor(m);
            let mut perm = DMat::zeros(fac.nrows(), fac.ncols());
            let mut sorted_norms = Vec::with_capacity(ids.len());
            for (j, &id) in ids.iter().enumerate() {
                perm.row_mut(j).copy_from_slice(fac.row(id as usize));
                sorted_norms.push(norms[id as usize]);
            }
            order.push(ids);
            norms_desc.push(sorted_norms);
            permuted.push(perm);
        }
        let quant = permuted.iter().map(Bf16Mat::from_dmat).collect();
        ServableModel {
            model,
            epoch: 0,
            dims,
            order,
            norms_desc,
            permuted,
            quant,
        }
    }

    /// The epoch the registry assigned when this model was published.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying model.
    pub fn model(&self) -> &KruskalModel {
        &self.model
    }

    /// Tensor shape this model reconstructs.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.model.rank()
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.model.nmodes()
    }

    /// Norm-descending row-id order of one mode.
    pub(crate) fn order(&self, mode: usize) -> &[Idx] {
        &self.order[mode]
    }

    /// Row norms of one mode, aligned with [`ServableModel::order`].
    pub(crate) fn norms_desc(&self, mode: usize) -> &[f64] {
        &self.norms_desc[mode]
    }

    /// The norm-permuted factor of one mode.
    pub(crate) fn permuted(&self, mode: usize) -> &DMat {
        &self.permuted[mode]
    }

    /// The bf16-packed norm-permuted factor of one mode.
    pub(crate) fn quant(&self, mode: usize) -> &Bf16Mat {
        &self.quant[mode]
    }

    /// Validate a full reconstruction coordinate against this model.
    pub fn check_coord(&self, coord: &[Idx]) -> Result<(), ServeError> {
        if coord.len() != self.nmodes() {
            return Err(ServeError::Invalid(format!(
                "coordinate has {} modes, model has {}",
                coord.len(),
                self.nmodes()
            )));
        }
        for (m, (&c, &d)) in coord.iter().zip(&self.dims).enumerate() {
            if c as usize >= d {
                return Err(ServeError::Invalid(format!(
                    "mode {m} index {c} out of range (dimension {d})"
                )));
            }
        }
        Ok(())
    }

    /// Validate a top-K anchor: full arity, `free_mode` in range, and
    /// every *fixed* coordinate in range (the free slot is ignored).
    pub fn check_anchor(&self, free_mode: usize, anchor: &[Idx]) -> Result<(), ServeError> {
        if free_mode >= self.nmodes() {
            return Err(ServeError::Invalid(format!(
                "free mode {free_mode} out of range for {} modes",
                self.nmodes()
            )));
        }
        if anchor.len() != self.nmodes() {
            return Err(ServeError::Invalid(format!(
                "anchor has {} modes, model has {}",
                anchor.len(),
                self.nmodes()
            )));
        }
        for (m, (&c, &d)) in anchor.iter().zip(&self.dims).enumerate() {
            if m != free_mode && c as usize >= d {
                return Err(ServeError::Invalid(format!(
                    "mode {m} index {c} out of range (dimension {d})"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn servable(seed: u64) -> ServableModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ServableModel::new(KruskalModel::new(vec![
            DMat::random(6, 3, -1.0, 1.0, &mut rng),
            DMat::random(4, 3, -1.0, 1.0, &mut rng),
            DMat::random(5, 3, -1.0, 1.0, &mut rng),
        ]))
    }

    #[test]
    fn order_is_norm_descending_and_permutation_consistent() {
        let s = servable(1);
        for m in 0..3 {
            let norms = s.norms_desc(m);
            assert!(norms.windows(2).all(|w| w[0] >= w[1]), "mode {m}");
            for (j, &id) in s.order(m).iter().enumerate() {
                assert_eq!(s.permuted(m).row(j), s.model().factor(m).row(id as usize));
                let manual: f64 = s
                    .model()
                    .factor(m)
                    .row(id as usize)
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
                    .sqrt();
                assert_eq!(norms[j], manual);
            }
        }
    }

    #[test]
    fn norm_ties_break_by_ascending_id() {
        let fac = DMat::from_vec(3, 1, vec![2.0, -2.0, 2.0]).unwrap();
        let s = ServableModel::new(KruskalModel::new(vec![fac.clone(), fac]));
        assert_eq!(s.order(0), &[0, 1, 2]);
    }

    #[test]
    fn coord_validation() {
        let s = servable(2);
        assert!(s.check_coord(&[5, 3, 4]).is_ok());
        assert!(s.check_coord(&[6, 0, 0]).is_err());
        assert!(s.check_coord(&[0, 0]).is_err());
        assert!(s.check_anchor(1, &[0, 99, 0]).is_ok());
        assert!(s.check_anchor(1, &[0, 99, 9]).is_err());
        assert!(s.check_anchor(3, &[0, 0, 0]).is_err());
        assert!(s.check_anchor(0, &[0, 0]).is_err());
    }
}
