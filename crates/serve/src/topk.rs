//! Exact top-K over one free mode, with norm-bound pruning.
//!
//! A top-K query fixes a row in every mode but one and ranks the free
//! mode's rows by model score. With the fixed-mode weight vector `w`
//! (Hadamard product of the fixed rows), candidate row `i` scores
//! `dot(free.row(i), w)`, bounded above by Cauchy–Schwarz:
//!
//! ```text
//! dot(free.row(i), w) <= ||free.row(i)|| * ||w||
//! ```
//!
//! The [`ServableModel`] caches each mode's row norms and a
//! norm-descending permutation of each factor, so the pruned scan walks
//! candidates best-bound-first through contiguous memory, one
//! [`PANEL_ROWS`]-row score panel at a time, and stops as soon as no
//! remaining row's bound can beat the current k-th score. The bound is
//! a true upper bound for any sign pattern, so pruning is **exact**:
//! the scan stops only on `bound < kth` (strict — an equal bound could
//! still tie the k-th score and win its tie-break), and every skipped
//! row therefore scores strictly below the k-th. The brute-force
//! fallback scans all rows in natural order; both paths score through
//! [`splinalg::panel::scores_into`] and produce identical results.
//!
//! Ordering is total and scan-order independent: descending score, ties
//! by ascending row id.

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::ServeScratch;
use splinalg::panel::{self, PANEL_ROWS};
use sptensor::Idx;

/// One top-K request: rank the rows of `free_mode` given fixed rows in
/// every other mode. `anchor` has full arity; its `free_mode` slot is
/// ignored.
#[derive(Debug, Clone)]
pub struct TopKQuery {
    /// The mode whose rows are ranked.
    pub free_mode: usize,
    /// Fixed coordinates (free slot ignored).
    pub anchor: Vec<Idx>,
    /// How many rows to return (clipped to the mode's dimension).
    pub k: usize,
}

/// A top-K answer: the epoch it was computed against and the hits in
/// descending score order (ties by ascending row id).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// Epoch of the model that produced these scores.
    pub epoch: u64,
    /// `(row id, score)` pairs, best first.
    pub hits: Vec<(Idx, f64)>,
}

/// `a` strictly outranks `b` under (score desc, id asc).
fn outranks(a: (f64, Idx), b: (f64, Idx)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Insert `cand` into `entries` (sorted worst-first), keeping at most
/// `k` entries. Shared with the approximate tier's survivor set and the
/// sharded engine's fan-out merge.
pub(crate) fn offer(entries: &mut Vec<(f64, Idx)>, k: usize, cand: (f64, Idx)) {
    if entries.len() == k {
        if !outranks(cand, entries[0]) {
            return;
        }
        entries.remove(0);
    }
    let pos = entries.partition_point(|&e| outranks(cand, e));
    entries.insert(pos, cand);
}

/// Answer `q` against `model`, appending hits (best first) to `out`.
///
/// `out` is cleared first; with a caller-retained `out` and pooled
/// scratch the scan allocates nothing in steady state.
pub(crate) fn topk_scan(
    model: &ServableModel,
    q: &TopKQuery,
    pruned: bool,
    scratch: &mut ServeScratch,
    out: &mut Vec<(Idx, f64)>,
) -> Result<(), ServeError> {
    model.check_anchor(q.free_mode, &q.anchor)?;
    out.clear();
    let n = model.dims()[q.free_mode];
    let k = q.k.min(n);
    if k == 0 {
        return Ok(());
    }
    let f = model.rank();
    scratch.weights_row(f);
    let ServeScratch {
        ws,
        weights,
        entries,
        ..
    } = scratch;
    model
        .model()
        .weights_into(q.free_mode, &q.anchor, weights.row_mut(0));
    let wnorm = weights.row(0).iter().map(|v| v * v).sum::<f64>().sqrt();

    entries.clear();
    let fac = if pruned {
        model.permuted(q.free_mode)
    } else {
        model.model().factor(q.free_mode)
    };
    let norms = model.norms_desc(q.free_mode);
    let order = model.order(q.free_mode);

    let mut start = 0;
    while start < n {
        if pruned && entries.len() == k {
            // Rows from `start` on are norm-descending: if even the
            // best remaining bound cannot strictly beat the k-th score
            // (and an equal bound cannot, by the strict comparison,
            // displace an incumbent it ties), the scan is done.
            let bound = norms[start] * wnorm;
            if bound < entries[0].0 {
                break;
            }
        }
        let len = PANEL_ROWS.min(n - start);
        let scores = ws.batch(len);
        panel::scores_into(fac, start, len, weights, scores)?;
        for (j, &score) in scores.iter().enumerate() {
            let id = if pruned {
                order[start + j]
            } else {
                (start + j) as Idx
            };
            offer(entries, k, (score, id));
        }
        start += len;
    }

    out.extend(entries.iter().rev().map(|&(score, id)| (id, score)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoadmm::KruskalModel;
    use splinalg::DMat;

    fn servable(free_rows: &[f64]) -> ServableModel {
        // Rank 1, 2 modes: score of free row i is free_rows[i] * fixed.
        let free = DMat::from_vec(free_rows.len(), 1, free_rows.to_vec()).unwrap();
        let fixed = DMat::from_vec(1, 1, vec![1.0]).unwrap();
        let mut s = ServableModel::new(KruskalModel::new(vec![free, fixed]));
        s.epoch = 1;
        s
    }

    fn run(model: &ServableModel, k: usize, pruned: bool) -> Vec<(Idx, f64)> {
        let mut scratch = ServeScratch::default();
        let mut out = Vec::new();
        let q = TopKQuery {
            free_mode: 0,
            anchor: vec![0, 0],
            k,
        };
        topk_scan(model, &q, pruned, &mut scratch, &mut out).unwrap();
        out
    }

    #[test]
    fn pruned_equals_brute_on_mixed_signs() {
        let model = servable(&[0.5, -3.0, 2.0, 2.0, -0.5, 1.0]);
        for k in [1, 2, 3, 6, 10] {
            let brute = run(&model, k, false);
            let pruned = run(&model, k, true);
            assert_eq!(brute, pruned, "k={k}");
        }
        // Largest norm (|-3| = 3) is not the largest score: pruning
        // must still return the true maximum, 2.0 at the smaller id.
        assert_eq!(run(&model, 1, true), vec![(2, 2.0)]);
    }

    #[test]
    fn ties_resolve_by_ascending_id() {
        let model = servable(&[1.0, 2.0, 2.0, 1.0]);
        assert_eq!(run(&model, 3, true), vec![(1, 2.0), (2, 2.0), (0, 1.0)]);
        assert_eq!(run(&model, 3, false), vec![(1, 2.0), (2, 2.0), (0, 1.0)]);
    }

    #[test]
    fn k_zero_and_k_clipped() {
        let model = servable(&[1.0, 2.0]);
        assert!(run(&model, 0, true).is_empty());
        assert_eq!(run(&model, 5, true).len(), 2);
    }

    #[test]
    fn offer_keeps_worst_first_invariant() {
        let mut entries = Vec::new();
        for (i, s) in [3.0, 1.0, 2.0, 5.0, 2.0].iter().enumerate() {
            offer(&mut entries, 3, (*s, i as Idx));
        }
        // Kept: 5.0@3, 3.0@0, 2.0@2 (2.0@2 beats 2.0@4 by id).
        assert_eq!(entries, vec![(2.0, 2), (3.0, 0), (5.0, 3)]);
    }
}
