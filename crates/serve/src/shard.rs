//! Sharded registries: one model epoch partitioned by user-mode rows.
//!
//! A wire daemon that outgrows one registry splits the *split mode*
//! (typically the user mode) into contiguous, nearly-equal row ranges
//! and keeps one [`ServableModel`] per range. Each shard holds its
//! slice of the split factor plus full copies of every other factor, so
//! any query that touches a shard can be answered entirely inside it.
//!
//! Coherence is the same single-pointer discipline as
//! [`ModelRegistry`](crate::ModelRegistry), lifted one level: a publish
//! slices the factor and builds every shard's indexes outside the lock,
//! then swaps **one `Arc<ShardSet>`** holding all shards. A reader that
//! snapshots the set sees every shard at the same epoch — there is no
//! window where a fan-out query could mix shard 0 of epoch 3 with shard
//! 1 of epoch 4.
//!
//! Routing is exact, not approximate:
//!
//! * Point queries route by the split-mode coordinate; the shard scores
//!   the rebased coordinate with the same kernels as the unsharded
//!   engine, so values are bit-identical to a single registry.
//! * Top-K with the free mode *not* the split mode routes by the
//!   anchor's split coordinate and runs one shard's scan — the shard's
//!   non-split factors are full copies, so the result is bit-identical.
//! * Top-K *over* the split mode fans out: every shard answers locally
//!   (ids rebased back to global), and the merge applies the same total
//!   order (score desc, id asc). Per-row scores are bit-identical to
//!   the unsharded scan, so the exact tier's merged result is too. The
//!   approximate tier fans out the same way; its per-shard oversampling
//!   makes the union a superset of one global approximate scan, so the
//!   recall bound carries over (verified, not assumed, by the
//!   conformance suite).

use crate::error::ServeError;
use crate::model::ServableModel;
use crate::pool::ScratchPool;
use crate::registry::SwapTrace;
use crate::topk::{self, TopKQuery, TopKResult};
use crate::topk_approx::{self, ApproxPolicy};
use aoadmm::KruskalModel;
use aoadmm_stream::ModelSink;
use parking_lot::RwLock;
use splinalg::DMat;
use sptensor::Idx;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One published epoch, sliced into shards. Immutable after publish;
/// readers pin the whole set with one `Arc` clone.
pub struct ShardSet {
    epoch: u64,
    split_mode: usize,
    dims: Vec<usize>,
    ranges: Vec<Range<usize>>,
    models: Vec<Arc<ServableModel>>,
}

impl ShardSet {
    /// Epoch shared by every shard in this set.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.models.len()
    }

    /// Global row range of the split mode owned by shard `s`.
    pub fn range(&self, s: usize) -> &Range<usize> {
        &self.ranges[s]
    }

    /// The servable model of shard `s` (split factor sliced to
    /// [`ShardSet::range`], other factors full copies).
    pub fn shard(&self, s: usize) -> &Arc<ServableModel> {
        &self.models[s]
    }

    /// Global tensor shape of the published model.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The shard owning global split-mode row `row`.
    fn owner(&self, row: usize) -> usize {
        // Ranges are contiguous and ascending; the owner is the first
        // range ending past `row`.
        self.ranges.partition_point(|r| r.end <= row)
    }

    /// Validate a full reconstruction coordinate against the *global*
    /// dims of this set.
    pub fn check_coord(&self, coord: &[Idx]) -> Result<(), ServeError> {
        if coord.len() != self.dims.len() {
            return Err(ServeError::Invalid(format!(
                "coordinate has {} modes, model has {}",
                coord.len(),
                self.dims.len()
            )));
        }
        for (m, (&c, &d)) in coord.iter().zip(&self.dims).enumerate() {
            if c as usize >= d {
                return Err(ServeError::Invalid(format!(
                    "mode {m} index {c} out of range (dimension {d})"
                )));
            }
        }
        Ok(())
    }
}

/// A [`ModelRegistry`](crate::ModelRegistry) whose published models are
/// partitioned by split-mode row range. Readers snapshot one coherent
/// [`ShardSet`]; the wire daemon runs one of these per deployment.
pub struct ShardedRegistry {
    split_mode: usize,
    nshards: usize,
    current: RwLock<Option<Arc<ShardSet>>>,
    epochs: AtomicU64,
    trace: RwLock<Option<SwapTrace>>,
}

impl ShardedRegistry {
    /// An empty registry splitting `split_mode` into `nshards`
    /// contiguous row ranges (first `rows % nshards` shards take one
    /// extra row). `nshards` must be at least 1.
    pub fn new(split_mode: usize, nshards: usize) -> Self {
        assert!(nshards >= 1, "need at least one shard");
        ShardedRegistry {
            split_mode,
            nshards,
            current: RwLock::new(None),
            epochs: AtomicU64::new(0),
            trace: RwLock::new(None),
        }
    }

    /// The mode whose rows are partitioned.
    pub fn split_mode(&self) -> usize {
        self.split_mode
    }

    /// Number of shards per published epoch.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Install a swap observer (same contract as
    /// [`ModelRegistry::set_swap_trace`](crate::ModelRegistry::set_swap_trace)).
    pub fn set_swap_trace(&self, trace: SwapTrace) {
        *self.trace.write() = Some(trace);
    }

    /// Slice `model` into shards and swap the whole set into service.
    /// Returns the epoch assigned. Errors if the split mode is out of
    /// range for the model.
    pub fn publish(&self, model: KruskalModel) -> Result<u64, ServeError> {
        if self.split_mode >= model.nmodes() {
            return Err(ServeError::Invalid(format!(
                "split mode {} out of range for {} modes",
                self.split_mode,
                model.nmodes()
            )));
        }
        let dims = model.dims();
        let ranges = split_ranges(dims[self.split_mode], self.nshards);
        // All slicing and index building (norm permutations, bf16
        // packs, for every shard) runs outside the lock; only the
        // single-pointer swap is serialized.
        let mut built: Vec<ServableModel> = ranges
            .iter()
            .map(|r| ServableModel::new(slice_model(&model, self.split_mode, r)))
            .collect();
        let epoch = {
            let mut slot = self.current.write();
            let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
            for m in &mut built {
                m.epoch = epoch;
            }
            *slot = Some(Arc::new(ShardSet {
                epoch,
                split_mode: self.split_mode,
                dims: dims.clone(),
                ranges,
                models: built.into_iter().map(Arc::new).collect(),
            }));
            epoch
        };
        if let Some(trace) = self.trace.read().clone() {
            trace(epoch, &dims);
        }
        Ok(epoch)
    }

    /// The current shard set, or `None` before the first publish.
    pub fn snapshot(&self) -> Option<Arc<ShardSet>> {
        self.current.read().clone()
    }

    /// Epoch of the most recent publish (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }
}

impl ModelSink for ShardedRegistry {
    fn publish(&self, model: KruskalModel) {
        ShardedRegistry::publish(self, model).expect("sink publishes a conforming model");
    }
}

/// Contiguous nearly-equal partition of `rows` into `nshards` ranges;
/// the first `rows % nshards` ranges take one extra row. Trailing
/// ranges may be empty when `rows < nshards`.
fn split_ranges(rows: usize, nshards: usize) -> Vec<Range<usize>> {
    let base = rows / nshards;
    let rem = rows % nshards;
    let mut ranges = Vec::with_capacity(nshards);
    let mut start = 0;
    for s in 0..nshards {
        let len = base + usize::from(s < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// One shard's model: split-mode factor restricted to `range`, every
/// other factor copied whole.
fn slice_model(model: &KruskalModel, split_mode: usize, range: &Range<usize>) -> KruskalModel {
    let f = model.rank();
    let factors = (0..model.nmodes())
        .map(|m| {
            if m != split_mode {
                return model.factor(m).clone();
            }
            let mut sliced = DMat::zeros(range.len(), f);
            for (j, i) in range.clone().enumerate() {
                sliced.row_mut(j).copy_from_slice(model.factor(m).row(i));
            }
            sliced
        })
        .collect();
    KruskalModel::new(factors)
}

/// Query engine over a [`ShardedRegistry`]: routed point scoring and
/// routed/fanned-out top-K, `&self` everywhere. Results are
/// bit-identical to a [`ServeEngine`](crate::ServeEngine) over one
/// unsharded registry (approximate-tier fan-out is recall-equivalent
/// rather than id-identical; see the module docs).
pub struct ShardedEngine {
    registry: Arc<ShardedRegistry>,
    pool: ScratchPool,
    pruned: bool,
    approx: ApproxPolicy,
}

impl ShardedEngine {
    /// An engine over `registry` with pruning on and the default
    /// approximate policy.
    pub fn new(registry: Arc<ShardedRegistry>) -> Self {
        ShardedEngine {
            registry,
            pool: ScratchPool::new(),
            pruned: true,
            approx: ApproxPolicy::default(),
        }
    }

    /// Toggle norm-bound pruning for exact top-K (default on).
    pub fn pruning(mut self, on: bool) -> Self {
        self.pruned = on;
        self
    }

    /// Set the approximate-tier policy.
    pub fn approx_policy(mut self, policy: ApproxPolicy) -> Self {
        self.approx = policy;
        self
    }

    /// The registry this engine reads from.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// Epoch of the most recently published set.
    pub fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// The current shard set (one coherent epoch), if any.
    pub fn snapshot(&self) -> Option<Arc<ShardSet>> {
        self.registry.snapshot()
    }

    /// Reconstruct the value at `coord`: route by the split coordinate,
    /// score inside the owning shard. Bit-identical to the unsharded
    /// engine's `predict_direct`.
    pub fn predict(&self, coord: &[Idx]) -> Result<f64, ServeError> {
        let set = self.registry.snapshot().ok_or(ServeError::Empty)?;
        self.predict_on(&set, coord)
    }

    /// [`ShardedEngine::predict`] against a caller-pinned snapshot —
    /// the wire daemon pins one [`ShardSet`] per request at decode
    /// time, which is what makes its per-connection epoch stream
    /// monotone.
    pub fn predict_on(&self, set: &ShardSet, coord: &[Idx]) -> Result<f64, ServeError> {
        set.check_coord(coord)?;
        let row = coord[set.split_mode] as usize;
        let s = set.owner(row);
        let mut local = coord.to_vec();
        local[set.split_mode] = (row - set.ranges[s].start) as Idx;
        Ok(set.models[s].model().value_at(&local))
    }

    /// Score a batch of coordinates against one coherent epoch,
    /// bucketed per shard. Values land at their query's position in
    /// `out`, bit-identical per coordinate to the unsharded engine.
    /// Returns the epoch scored against.
    pub fn predict_many_into(
        &self,
        coords: &[Vec<Idx>],
        out: &mut Vec<f64>,
    ) -> Result<u64, ServeError> {
        let set = self.registry.snapshot().ok_or(ServeError::Empty)?;
        for c in coords {
            set.check_coord(c)?;
        }
        out.clear();
        out.resize(coords.len(), 0.0);
        for (qi, coord) in coords.iter().enumerate() {
            let row = coord[set.split_mode] as usize;
            let s = set.owner(row);
            let mut local = coord.to_vec();
            local[set.split_mode] = (row - set.ranges[s].start) as Idx;
            out[qi] = set.models[s].model().value_at(&local);
        }
        Ok(set.epoch)
    }

    /// Per-item batch scoring against a caller-pinned snapshot: one
    /// bad coordinate yields its own error instead of failing the
    /// batch — the contract a wire batch needs, where requests from
    /// different clients share a flush. Valid coordinates are bucketed
    /// by owning shard and scored through the panel kernels, so a
    /// flushed wire batch amortizes per-mode dispatch the same way the
    /// in-process bulk path does; values stay bit-identical to
    /// `value_at` per coordinate.
    pub fn predict_batch_on(
        &self,
        set: &ShardSet,
        coords: &[Vec<Idx>],
        out: &mut Vec<Result<f64, ServeError>>,
    ) -> Result<(), ServeError> {
        use splinalg::panel::{self, PANEL_ROWS};
        out.clear();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); set.nshards()];
        for (qi, coord) in coords.iter().enumerate() {
            match set.check_coord(coord) {
                Err(e) => out.push(Err(e)),
                Ok(()) => {
                    out.push(Ok(0.0));
                    buckets[set.owner(coord[set.split_mode] as usize)].push(qi);
                }
            }
        }
        let mut scratch = self.pool.take();
        let crate::pool::ServeScratch {
            ws, ids, values, ..
        } = &mut *scratch;
        for (s, bucket) in buckets.iter().enumerate() {
            let model = set.models[s].model();
            let f = model.rank();
            let base = set.ranges[s].start;
            for chunk in bucket.chunks(PANEL_ROWS) {
                let b = chunk.len();
                let acc = ws.batch(b * f);
                // `m` walks modes; `coords[qi]` is indexed per query.
                #[allow(clippy::needless_range_loop)]
                for m in 0..model.nmodes() {
                    ids.clear();
                    ids.extend(chunk.iter().map(|&qi| {
                        let c = coords[qi][m] as usize;
                        if m == set.split_mode {
                            c - base
                        } else {
                            c
                        }
                    }));
                    panel::gather_hadamard_rows(model.factor(m), ids, m == 0, acc)?;
                }
                values.clear();
                values.resize(b, 0.0);
                panel::row_sums_into(acc, f, values)?;
                for (j, &qi) in chunk.iter().enumerate() {
                    out[qi] = Ok(values[j]);
                }
            }
        }
        Ok(())
    }

    /// Exact top-K, routed or fanned out depending on the free mode.
    pub fn topk(&self, q: &TopKQuery) -> Result<TopKResult, ServeError> {
        let mut hits = Vec::new();
        let epoch = self.topk_into_with(q, self.pruned, &mut hits)?;
        Ok(TopKResult { epoch, hits })
    }

    /// Exact top-K with an explicit pruning choice, into a
    /// caller-retained buffer (cleared first). Returns the epoch.
    pub fn topk_into_with(
        &self,
        q: &TopKQuery,
        pruned: bool,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<u64, ServeError> {
        let set = self.registry.snapshot().ok_or(ServeError::Empty)?;
        self.topk_on(&set, q, pruned, hits)?;
        Ok(set.epoch)
    }

    /// Exact top-K against a caller-pinned snapshot.
    pub fn topk_on(
        &self,
        set: &ShardSet,
        q: &TopKQuery,
        pruned: bool,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<(), ServeError> {
        self.topk_dispatch(set, q, hits, |model, local_q, scratch, out| {
            topk::topk_scan(model, local_q, pruned, scratch, out)
        })
    }

    /// Approximate top-K with the engine's policy.
    pub fn topk_approx(&self, q: &TopKQuery) -> Result<TopKResult, ServeError> {
        let mut hits = Vec::new();
        let epoch = self.topk_approx_into_with(q, self.approx, &mut hits)?;
        Ok(TopKResult { epoch, hits })
    }

    /// Approximate top-K with an explicit policy, into a
    /// caller-retained buffer (cleared first). Returns the epoch.
    pub fn topk_approx_into_with(
        &self,
        q: &TopKQuery,
        policy: ApproxPolicy,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<u64, ServeError> {
        let set = self.registry.snapshot().ok_or(ServeError::Empty)?;
        self.topk_approx_on(&set, q, policy, hits)?;
        Ok(set.epoch)
    }

    /// Approximate top-K against a caller-pinned snapshot.
    pub fn topk_approx_on(
        &self,
        set: &ShardSet,
        q: &TopKQuery,
        policy: ApproxPolicy,
        hits: &mut Vec<(Idx, f64)>,
    ) -> Result<(), ServeError> {
        self.topk_dispatch(set, q, hits, |model, local_q, scratch, out| {
            topk_approx::topk_approx_scan(model, local_q, policy, scratch, out)
        })
    }

    /// Shared routing for both tiers: free mode == split mode fans out
    /// and merges under (score desc, global id asc); otherwise the
    /// anchor's split coordinate picks one shard.
    fn topk_dispatch<F>(
        &self,
        set: &ShardSet,
        q: &TopKQuery,
        hits: &mut Vec<(Idx, f64)>,
        mut scan: F,
    ) -> Result<(), ServeError>
    where
        F: FnMut(
            &ServableModel,
            &TopKQuery,
            &mut crate::pool::ServeScratch,
            &mut Vec<(Idx, f64)>,
        ) -> Result<(), ServeError>,
    {
        hits.clear();
        // Validate against *global* dims first so routing errors read
        // the same as the unsharded engine's.
        if q.free_mode >= set.dims.len() {
            return Err(ServeError::Invalid(format!(
                "free mode {} out of range for {} modes",
                q.free_mode,
                set.dims.len()
            )));
        }
        if q.anchor.len() != set.dims.len() {
            return Err(ServeError::Invalid(format!(
                "anchor has {} modes, model has {}",
                q.anchor.len(),
                set.dims.len()
            )));
        }
        for (m, (&c, &d)) in q.anchor.iter().zip(&set.dims).enumerate() {
            if m != q.free_mode && c as usize >= d {
                return Err(ServeError::Invalid(format!(
                    "mode {m} index {c} out of range (dimension {d})"
                )));
            }
        }
        let mut scratch = self.pool.take();
        if q.free_mode == set.split_mode {
            // Fan out: every shard ranks its own row slice; the merge
            // re-applies the global total order. O(nshards * k) local
            // buffers — the wire daemon's fan-out is per-request, not
            // steady-state hot-path.
            let mut merged: Vec<(f64, Idx)> = Vec::new();
            let mut local = Vec::new();
            for s in 0..set.nshards() {
                scan(&set.models[s], q, &mut scratch, &mut local)?;
                let base = set.ranges[s].start as Idx;
                for &(id, score) in &local {
                    topk::offer(&mut merged, q.k, (score, id + base));
                }
            }
            hits.extend(merged.iter().rev().map(|&(score, id)| (id, score)));
        } else {
            let row = q.anchor[set.split_mode] as usize;
            let s = set.owner(row);
            let mut local_q = q.clone();
            local_q.anchor[set.split_mode] = (row - set.ranges[s].start) as Idx;
            scan(&set.models[s], &local_q, &mut scratch, hits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(rows: usize, seed: u64) -> KruskalModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KruskalModel::new(vec![
            DMat::random(rows, 5, -1.0, 1.0, &mut rng),
            DMat::random(7, 5, -1.0, 1.0, &mut rng),
            DMat::random(6, 5, -1.0, 1.0, &mut rng),
        ])
    }

    #[test]
    fn split_ranges_cover_and_balance() {
        for (rows, n) in [(10, 3), (9, 3), (2, 4), (0, 2), (5, 1)] {
            let ranges = split_ranges(rows, n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[n - 1].end, rows);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].len() >= w[1].len());
                assert!(w[0].len() - w[1].len() <= 1);
            }
        }
    }

    #[test]
    fn owner_routing_matches_ranges() {
        let reg = ShardedRegistry::new(0, 3);
        reg.publish(model(10, 1)).unwrap();
        let set = reg.snapshot().unwrap();
        for row in 0..10 {
            let s = set.owner(row);
            assert!(set.range(s).contains(&row), "row {row} -> shard {s}");
        }
    }

    #[test]
    fn publish_is_coherent_and_traced() {
        let reg = ShardedRegistry::new(0, 4);
        let seen: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = seen.clone();
        reg.set_swap_trace(Arc::new(move |e, dims| {
            assert_eq!(dims, &[10, 7, 6]);
            sink.lock().push(e);
        }));
        assert_eq!(reg.publish(model(10, 2)).unwrap(), 1);
        assert_eq!(reg.publish(model(10, 3)).unwrap(), 2);
        assert_eq!(*seen.lock(), vec![1, 2]);
        let set = reg.snapshot().unwrap();
        assert_eq!(set.epoch(), 2);
        for s in 0..set.nshards() {
            assert_eq!(set.shard(s).epoch(), 2);
        }
        // Split mode out of range errors instead of publishing.
        let bad = ShardedRegistry::new(3, 2);
        assert!(bad.publish(model(4, 4)).is_err());
        assert_eq!(bad.epoch(), 0);
    }

    #[test]
    fn batch_on_matches_value_at_with_per_item_errors() {
        let reg = Arc::new(ShardedRegistry::new(0, 3));
        let m = model(40, 6);
        reg.publish(m.clone()).unwrap();
        let eng = ShardedEngine::new(reg);
        let set = eng.snapshot().unwrap();
        // 70 queries across shard boundaries, one invalid in the middle.
        let mut coords: Vec<Vec<Idx>> = (0..70u32).map(|i| vec![i % 40, i % 7, i % 6]).collect();
        coords[33] = vec![40, 0, 0];
        let mut out = Vec::new();
        eng.predict_batch_on(&set, &coords, &mut out).unwrap();
        assert_eq!(out.len(), 70);
        for (qi, res) in out.iter().enumerate() {
            if qi == 33 {
                assert!(matches!(res, Err(ServeError::Invalid(_))));
            } else {
                let v = res.as_ref().unwrap();
                assert_eq!(v.to_bits(), m.value_at(&coords[qi]).to_bits(), "q{qi}");
            }
        }
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_tails() {
        let reg = ShardedRegistry::new(0, 8);
        reg.publish(model(3, 5)).unwrap();
        let set = reg.snapshot().unwrap();
        assert_eq!(set.range(2).len(), 1);
        assert!(set.range(3).is_empty());
        let eng = ShardedEngine::new(Arc::new(ShardedRegistry::new(0, 8)));
        assert!(matches!(eng.predict(&[0, 0, 0]), Err(ServeError::Empty)));
    }
}
