//! # aoadmm-serve — the read path over factorized tensors
//!
//! The factorization side of this workspace (the AO-ADMM driver, the
//! streaming refit loop) produces constrained Kruskal models; this crate
//! answers queries against them at serving rates. It is the inference
//! half of the ROADMAP's "serve heavy traffic" north star:
//!
//! * [`ModelRegistry`] — epoch-stamped atomic hot-swap. A refit loop
//!   publishes complete models; readers snapshot one `Arc` and can never
//!   observe a torn mix of factor matrices. Implements
//!   [`aoadmm_stream::ModelSink`], so a
//!   [`aoadmm_stream::StreamingFactorizer`] publishes every warm refit
//!   straight into service.
//! * [`ServeEngine`] — the shared front door. Point reconstruction
//!   queries are coalesced across threads into panel-sized batches and
//!   scored through the `splinalg::panel` kernels with pooled
//!   [`splinalg::Workspace`] scratch (zero steady-state allocation);
//!   top-K queries rank one free mode's rows with exact Cauchy–Schwarz
//!   norm-bound pruning over a norm-descending factor permutation, with
//!   a brute-force fallback that returns identical results.
//! * [`ApproxPolicy`] — the approximate top-K tier: a bf16 quantized
//!   scan with guard-bounded early termination, then exact f64
//!   rescoring of the oversampled survivors. Survivor scores are
//!   bit-identical to the exact path; recall is measured, not assumed
//!   (`tests/conformance_approx.rs`).
//! * [`ShardedRegistry`] / [`ShardedEngine`] — one epoch partitioned by
//!   split-mode row range, swapped as a single coherent shard set.
//!   Point and routed top-K queries are bit-identical to an unsharded
//!   registry; split-mode top-K fans out and merges under the same
//!   total order. This is the storage layout behind the `aoadmm serve`
//!   wire daemon (`aoadmm-served`).
//!
//! ```no_run
//! use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! // ... publish a model (directly or via StreamingFactorizer::attach_sink) ...
//! let engine = ServeEngine::new(registry);
//! let score = engine.predict(&[3, 7, 2])?;
//! let recs = engine.topk(&TopKQuery { free_mode: 1, anchor: vec![3, 0, 2], k: 10 })?;
//! # Ok::<(), aoadmm_serve::ServeError>(())
//! ```

mod batch;
mod engine;
mod error;
mod model;
mod pool;
mod registry;
mod shard;
mod topk;
mod topk_approx;

pub use engine::ServeEngine;
pub use error::ServeError;
pub use model::ServableModel;
pub use registry::{ModelRegistry, SwapTrace};
pub use shard::{ShardSet, ShardedEngine, ShardedRegistry};
pub use topk::{TopKQuery, TopKResult};
pub use topk_approx::ApproxPolicy;
