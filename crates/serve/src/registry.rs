//! Epoch-stamped atomic model hot-swap.

use crate::model::ServableModel;
use aoadmm::KruskalModel;
use aoadmm_stream::ModelSink;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The hand-off point between the write path (a refit loop) and the
/// read path (query engines).
///
/// A publish builds the [`ServableModel`] — row-norm indexes and all —
/// *outside* any lock, then swaps a single `Arc` under a briefly held
/// write lock and stamps a monotonically increasing epoch. Readers call
/// [`ModelRegistry::snapshot`], which clones the `Arc` under the read
/// lock; everything a query touches afterwards hangs off that one
/// pointer, so a reader can never observe factor matrices from two
/// different epochs, no matter how publishes interleave with queries.
/// Old epochs stay alive exactly as long as some in-flight query still
/// holds their `Arc`.
pub struct ModelRegistry {
    current: RwLock<Option<Arc<ServableModel>>>,
    epochs: AtomicU64,
    trace: RwLock<Option<SwapTrace>>,
}

/// Observer invoked after every hot swap with the new epoch and the
/// model's dims — the serving analog of the factorization trace path.
/// Swaps used to be silent, which made staleness bugs (a refit loop
/// wedged, a registry fed the wrong model shape) hard to diagnose;
/// installing a trace turns every publish into one loggable event.
pub type SwapTrace = Arc<dyn Fn(u64, &[usize]) + Send + Sync>;

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry; queries fail with `Empty` until the first
    /// publish.
    pub fn new() -> Self {
        ModelRegistry {
            current: RwLock::new(None),
            epochs: AtomicU64::new(0),
            trace: RwLock::new(None),
        }
    }

    /// Install a swap observer, called after every publish with the
    /// assigned epoch and the published model's dims. The callback runs
    /// on the publisher's thread, outside the swap lock — keep it
    /// cheap (a log line, a counter bump).
    pub fn set_swap_trace(&self, trace: SwapTrace) {
        *self.trace.write() = Some(trace);
    }

    /// Freeze `model` and swap it into service. Returns the epoch
    /// assigned to it (epochs start at 1 and only grow).
    pub fn publish(&self, model: KruskalModel) -> u64 {
        let mut servable = ServableModel::new(model);
        let dims = servable.dims().to_vec();
        // Index building above runs lock-free; only the swap itself is
        // serialized. Assigning the epoch under the same lock keeps the
        // stored epoch sequence monotonic under concurrent publishers.
        let epoch = {
            let mut slot = self.current.write();
            let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
            servable.epoch = epoch;
            *slot = Some(Arc::new(servable));
            epoch
        };
        if let Some(trace) = self.trace.read().clone() {
            trace(epoch, &dims);
        }
        epoch
    }

    /// The current model, or `None` before the first publish. The
    /// returned `Arc` pins one coherent epoch for as long as the caller
    /// holds it.
    pub fn snapshot(&self) -> Option<Arc<ServableModel>> {
        self.current.read().clone()
    }

    /// Epoch of the most recent publish (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }
}

impl ModelSink for ModelRegistry {
    fn publish(&self, model: KruskalModel) {
        ModelRegistry::publish(self, model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splinalg::DMat;

    fn model(v: f64) -> KruskalModel {
        let mut fac = DMat::zeros(2, 2);
        fac.fill(v);
        KruskalModel::new(vec![fac.clone(), fac])
    }

    #[test]
    fn starts_empty_then_swaps() {
        let reg = ModelRegistry::new();
        assert!(reg.snapshot().is_none());
        assert_eq!(reg.epoch(), 0);
        assert_eq!(reg.publish(model(1.0)), 1);
        assert_eq!(reg.publish(model(2.0)), 2);
        let snap = reg.snapshot().unwrap();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.model().factor(0).get(0, 0), 2.0);
    }

    #[test]
    fn old_snapshot_survives_a_swap() {
        let reg = ModelRegistry::new();
        reg.publish(model(1.0));
        let old = reg.snapshot().unwrap();
        reg.publish(model(2.0));
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.model().factor(0).get(0, 0), 1.0);
        assert_eq!(reg.snapshot().unwrap().epoch(), 2);
    }

    #[test]
    fn swap_trace_sees_every_publish() {
        let reg = ModelRegistry::new();
        type SwapLog = Arc<parking_lot::Mutex<Vec<(u64, Vec<usize>)>>>;
        let seen: SwapLog = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = seen.clone();
        reg.set_swap_trace(Arc::new(move |epoch, dims| {
            sink.lock().push((epoch, dims.to_vec()));
        }));
        reg.publish(model(1.0));
        reg.publish(model(2.0));
        assert_eq!(*seen.lock(), vec![(1, vec![2, 2]), (2, vec![2, 2])]);
    }

    #[test]
    fn sink_publish_routes_to_registry() {
        let reg = ModelRegistry::new();
        let sink: &dyn ModelSink = &reg;
        sink.publish(model(3.0));
        assert_eq!(reg.epoch(), 1);
    }
}
