//! Compressed sparse fiber (CSF) tensors.
//!
//! CSF (Figure 2b of the paper; Smith & Karypis, IA^3 2015) generalizes
//! CSR to higher orders: the modes are nested in a fixed order and each
//! level stores one node per distinct index prefix, so each root-to-leaf
//! path encodes the coordinate of one nonzero. MTTKRP (Algorithm 3)
//! traverses this forest with one loop per mode, accumulating partial
//! products bottom-up.
//!
//! Like SPLATT's `ALLMODE` configuration, the factorization builds one CSF
//! per mode, rooted at the output mode of that mode's MTTKRP, so the
//! output rows of the kernel are disjoint across root subtrees and the
//! traversal parallelizes over roots with no synchronization.

use crate::coord::CooTensor;
use crate::{Idx, TensorError};

/// A sparse tensor compressed with one fiber tree per root index.
///
/// Level `l` of the structure corresponds to tensor mode
/// `mode_order()[l]`; level 0 holds the roots and level `nmodes-1` the
/// leaves (one per nonzero, aligned with `vals`).
#[derive(Debug, Clone)]
pub struct Csf {
    dims: Vec<usize>,
    mode_order: Vec<usize>,
    /// `fids[l]` — tensor index of each node at level `l`.
    fids: Vec<Vec<Idx>>,
    /// `fptr[l]` — children ranges: node `n` at level `l` owns nodes
    /// `fptr[l][n] .. fptr[l][n+1]` at level `l+1`. One entry array per
    /// non-leaf level.
    fptr: Vec<Vec<usize>>,
    vals: Vec<f64>,
}

impl Csf {
    /// Compile a CSF from a COO tensor with the given mode nesting order
    /// (`order[0]` becomes the root level).
    ///
    /// The COO tensor is copied and sorted; the input is left untouched.
    pub fn from_coo(coo: &CooTensor, order: &[usize]) -> Result<Self, TensorError> {
        let nmodes = coo.nmodes();
        if order.len() != nmodes {
            return Err(TensorError::Invalid(format!(
                "mode order length {} does not match order {nmodes}",
                order.len()
            )));
        }
        let mut seen = vec![false; nmodes];
        for &m in order {
            if m >= nmodes || seen[m] {
                return Err(TensorError::Invalid(format!(
                    "mode order {order:?} is not a permutation of 0..{nmodes}"
                )));
            }
            seen[m] = true;
        }
        if coo.nnz() == 0 {
            return Err(TensorError::Invalid(
                "cannot build CSF from an empty tensor".into(),
            ));
        }

        let mut sorted = coo.clone();
        sorted.sort_by_mode_order(order);

        let nnz = sorted.nnz();
        let mut fids: Vec<Vec<Idx>> = vec![Vec::new(); nmodes];
        let mut fptr: Vec<Vec<usize>> = vec![vec![0]; nmodes - 1];

        // Single pass over the sorted nonzeros. A node at level l begins
        // whenever the index at level l or any shallower level changes;
        // because the nonzeros are sorted, each node's children are
        // contiguous, so its range end is simply the running child count,
        // refreshed after every nonzero.
        for n in 0..nnz {
            let new_from = if n == 0 {
                0
            } else {
                // Exact duplicate coordinates still emit their own leaf so
                // leaves stay aligned with `vals` (callers normally dedup
                // first, but CSF must not silently drop values).
                order
                    .iter()
                    .position(|&m| sorted.mode_inds(m)[n] != sorted.mode_inds(m)[n - 1])
                    .unwrap_or(nmodes - 1)
            };
            for l in new_from..nmodes {
                fids[l].push(sorted.mode_inds(order[l])[n]);
                if l < nmodes - 1 {
                    // Placeholder end for the new node; fixed up below.
                    fptr[l].push(0);
                }
            }
            for l in 0..nmodes - 1 {
                *fptr[l].last_mut().unwrap() = fids[l + 1].len();
            }
        }

        Ok(Csf {
            dims: coo.dims().to_vec(),
            mode_order: order.to_vec(),
            fids,
            fptr,
            vals: sorted.values().to_vec(),
        })
    }

    /// Compile with the root at `root_mode` and remaining modes ordered by
    /// increasing length (short modes high in the tree maximizes prefix
    /// sharing — SPLATT's default heuristic), root first.
    pub fn from_coo_rooted(coo: &CooTensor, root_mode: usize) -> Result<Self, TensorError> {
        let nmodes = coo.nmodes();
        if root_mode >= nmodes {
            return Err(TensorError::Invalid(format!(
                "root mode {root_mode} out of range for order {nmodes}"
            )));
        }
        let mut rest: Vec<usize> = (0..nmodes).filter(|&m| m != root_mode).collect();
        rest.sort_by_key(|&m| coo.dims()[m]);
        let mut order = Vec::with_capacity(nmodes);
        order.push(root_mode);
        order.extend(rest);
        Self::from_coo(coo, &order)
    }

    /// Grow the stored mode lengths to `new_dims` (streaming mode
    /// growth). The new indices own no nonzeros, so the fiber structure —
    /// and therefore any execution plan built from it — stays valid;
    /// only the output/factor sizing the kernels validate against
    /// changes. Lengths may only grow.
    pub fn grow_dims(&mut self, new_dims: &[usize]) -> Result<(), TensorError> {
        if new_dims.len() != self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "grow_dims with {} modes on a {}-mode CSF",
                new_dims.len(),
                self.nmodes()
            )));
        }
        for (m, (&new, &old)) in new_dims.iter().zip(&self.dims).enumerate() {
            if new < old {
                return Err(TensorError::Invalid(format!(
                    "grow_dims cannot shrink mode {m} from {old} to {new}"
                )));
            }
            if new > Idx::MAX as usize {
                return Err(TensorError::Invalid(format!(
                    "mode {m} length {new} exceeds index type"
                )));
            }
        }
        self.dims.copy_from_slice(new_dims);
        Ok(())
    }

    /// Number of modes.
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.dims.len()
    }

    /// Original tensor dimensions (indexed by tensor mode, not level).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The mode stored at each level (`mode_order()[0]` is the root mode).
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Number of nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of root nodes (distinct root-mode indices with nonzeros).
    #[inline]
    pub fn root_count(&self) -> usize {
        self.fids[0].len()
    }

    /// Node indices at level `l`.
    #[inline]
    pub fn fids(&self, l: usize) -> &[Idx] {
        &self.fids[l]
    }

    /// Children ranges for non-leaf level `l`.
    #[inline]
    pub fn fptr(&self, l: usize) -> &[usize] {
        &self.fptr[l]
    }

    /// Nonzero values, aligned with the leaf level.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of nonzeros (leaves) in the subtree of root node `r`.
    ///
    /// # Panics
    /// Panics if `r >= root_count()`.
    pub fn subtree_nnz(&self, r: usize) -> usize {
        self.leaf_offset(r + 1) - self.leaf_offset(r)
    }

    /// Cumulative leaf offsets of the root subtrees: entry `r` is the
    /// number of nonzeros owned by roots `0..r`, so root `r`'s leaves are
    /// `offsets[r]..offsets[r + 1]`. Length is `root_count() + 1` and the
    /// last entry equals `nnz()`. This is the prefix-sum an execution
    /// plan needs to partition roots into nnz-balanced chunks.
    pub fn root_nnz_offsets(&self) -> Vec<usize> {
        (0..=self.root_count())
            .map(|r| self.leaf_offset(r))
            .collect()
    }

    /// Index of the first leaf reachable from node `n` at level 0,
    /// following first-child pointers down the tree. `n == root_count()`
    /// yields `nnz()`.
    fn leaf_offset(&self, n: usize) -> usize {
        let mut idx = n;
        for l in 0..self.nmodes() - 1 {
            idx = self.fptr[l][idx];
        }
        idx
    }

    /// Total node count across levels (memory diagnostics).
    pub fn node_count(&self) -> usize {
        self.fids.iter().map(|f| f.len()).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.fids.iter().map(|f| f.len()).sum::<usize>() * std::mem::size_of::<Idx>()
            + self.fptr.iter().map(|f| f.len()).sum::<usize>() * std::mem::size_of::<usize>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// Visit every nonzero as `(coordinate, value)` with the coordinate in
    /// *original tensor mode order*. Test/diagnostic path.
    pub fn for_each_nonzero<F: FnMut(&[Idx], f64)>(&self, mut f: F) {
        let nmodes = self.nmodes();
        let mut coord = vec![0 as Idx; nmodes];
        self.walk_level(0, 0..self.root_count(), &mut coord, &mut f);
    }

    fn walk_level<F: FnMut(&[Idx], f64)>(
        &self,
        level: usize,
        range: std::ops::Range<usize>,
        coord: &mut [Idx],
        f: &mut F,
    ) {
        let mode = self.mode_order[level];
        if level == self.nmodes() - 1 {
            for n in range {
                coord[mode] = self.fids[level][n];
                f(coord, self.vals[n]);
            }
        } else {
            for n in range {
                coord[mode] = self.fids[level][n];
                let child = self.fptr[level][n]..self.fptr[level][n + 1];
                self.walk_level(level + 1, child, coord, f);
            }
        }
    }

    /// Expand back to COO, sorted by the CSF's mode order (tests).
    pub fn to_coo(&self) -> CooTensor {
        let mut coo = CooTensor::with_capacity(self.dims.clone(), self.nnz()).unwrap();
        self.for_each_nonzero(|coord, v| {
            coo.push(coord, v).unwrap();
        });
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four-mode, five-nonzero example of Figure 2 in the paper.
    fn figure2_tensor() -> CooTensor {
        let mut t = CooTensor::new(vec![2, 2, 2, 2]).unwrap();
        // Paper lists (1-indexed): (1,1,1,1), (1,1,1,2), (1,2,1,1),
        // (2,2,1,2), (2,2,2,2). Stored 0-indexed here.
        t.push(&[0, 0, 0, 0], 1.0).unwrap();
        t.push(&[0, 0, 0, 1], 2.0).unwrap();
        t.push(&[0, 1, 0, 0], 3.0).unwrap();
        t.push(&[1, 1, 0, 1], 4.0).unwrap();
        t.push(&[1, 1, 1, 1], 5.0).unwrap();
        t
    }

    #[test]
    fn figure2_structure() {
        let t = figure2_tensor();
        let csf = Csf::from_coo(&t, &[0, 1, 2, 3]).unwrap();
        assert_eq!(csf.nnz(), 5);
        assert_eq!(csf.root_count(), 2);
        // Roots: indices 0 and 1.
        assert_eq!(csf.fids(0), &[0, 1]);
        // Level 1: under root 0 -> {0, 1}; under root 1 -> {1}.
        assert_eq!(csf.fids(1), &[0, 1, 1]);
        assert_eq!(csf.fptr(0), &[0, 2, 3]);
        // Level 2: fibers (0,0)->{0}, (0,1)->{0}, (1,1)->{0,1}.
        assert_eq!(csf.fids(2), &[0, 0, 0, 1]);
        assert_eq!(csf.fptr(1), &[0, 1, 2, 4]);
        // Leaves.
        assert_eq!(csf.fids(3), &[0, 1, 0, 1, 1]);
        assert_eq!(csf.fptr(2), &[0, 2, 3, 4, 5]);
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn roundtrip_three_mode() {
        let mut t = CooTensor::new(vec![4, 5, 6]).unwrap();
        t.push(&[3, 1, 2], 1.5).unwrap();
        t.push(&[0, 0, 0], -2.0).unwrap();
        t.push(&[3, 1, 5], 0.5).unwrap();
        t.push(&[1, 4, 2], 3.0).unwrap();
        let csf = Csf::from_coo(&t, &[0, 1, 2]).unwrap();
        let mut back = csf.to_coo();
        back.sort_by_mode_order(&[0, 1, 2]);
        let mut orig = t.clone();
        orig.sort_by_mode_order(&[0, 1, 2]);
        assert_eq!(back, orig);
    }

    #[test]
    fn roundtrip_with_permuted_order() {
        let mut t = CooTensor::new(vec![3, 4, 5]).unwrap();
        t.push(&[0, 3, 4], 1.0).unwrap();
        t.push(&[2, 0, 1], 2.0).unwrap();
        t.push(&[1, 2, 3], 3.0).unwrap();
        t.push(&[1, 2, 4], 4.0).unwrap();
        for order in [[2, 1, 0], [1, 0, 2], [2, 0, 1]] {
            let csf = Csf::from_coo(&t, &order).unwrap();
            let mut back = csf.to_coo();
            back.sort_by_mode_order(&[0, 1, 2]);
            let mut orig = t.clone();
            orig.sort_by_mode_order(&[0, 1, 2]);
            assert_eq!(back, orig, "order {order:?}");
        }
    }

    #[test]
    fn rooted_builder_puts_root_first() {
        let mut t = CooTensor::new(vec![10, 2, 5]).unwrap();
        t.push(&[0, 0, 0], 1.0).unwrap();
        let csf = Csf::from_coo_rooted(&t, 2).unwrap();
        assert_eq!(csf.mode_order()[0], 2);
        // Remaining modes sorted by length: mode 1 (len 2) before mode 0.
        assert_eq!(csf.mode_order(), &[2, 1, 0]);
    }

    #[test]
    fn rejects_bad_orders() {
        let t = figure2_tensor();
        assert!(Csf::from_coo(&t, &[0, 1, 2]).is_err());
        assert!(Csf::from_coo(&t, &[0, 1, 2, 2]).is_err());
        assert!(Csf::from_coo_rooted(&t, 9).is_err());
    }

    #[test]
    fn rejects_empty_tensor() {
        let t = CooTensor::new(vec![2, 2]).unwrap();
        assert!(Csf::from_coo(&t, &[0, 1]).is_err());
    }

    #[test]
    fn matrix_as_two_mode_csf_is_csr_like() {
        let mut t = CooTensor::new(vec![3, 4]).unwrap();
        t.push(&[0, 1], 1.0).unwrap();
        t.push(&[0, 3], 2.0).unwrap();
        t.push(&[2, 0], 3.0).unwrap();
        let csf = Csf::from_coo(&t, &[0, 1]).unwrap();
        assert_eq!(csf.root_count(), 2); // rows 0 and 2
        assert_eq!(csf.fptr(0), &[0, 2, 3]);
        assert_eq!(csf.fids(1), &[1, 3, 0]);
    }

    #[test]
    fn subtree_nnz_and_offsets() {
        let t = figure2_tensor();
        let csf = Csf::from_coo(&t, &[0, 1, 2, 3]).unwrap();
        // Root 0 owns nonzeros (0,0,0,0), (0,0,0,1), (0,1,0,0); root 1
        // owns (1,1,0,1), (1,1,1,1).
        assert_eq!(csf.subtree_nnz(0), 3);
        assert_eq!(csf.subtree_nnz(1), 2);
        assert_eq!(csf.root_nnz_offsets(), vec![0, 3, 5]);
    }

    #[test]
    fn subtree_nnz_sums_to_nnz_on_random_tensors() {
        let mut t = CooTensor::new(vec![7, 5, 6]).unwrap();
        // Deterministic scatter with collisions on root index 3.
        for i in 0..40u32 {
            t.push(
                &[(i * i + 3) % 7, (i * 2) % 5, (i * 5 + 1) % 6],
                1.0 + i as f64,
            )
            .unwrap();
        }
        t.dedup_sum();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let csf = Csf::from_coo(&t, &order).unwrap();
            let offsets = csf.root_nnz_offsets();
            assert_eq!(offsets.len(), csf.root_count() + 1);
            assert_eq!(offsets[0], 0);
            assert_eq!(*offsets.last().unwrap(), csf.nnz());
            let total: usize = (0..csf.root_count()).map(|r| csf.subtree_nnz(r)).sum();
            assert_eq!(total, csf.nnz(), "order {order:?}");
            for w in offsets.windows(2) {
                assert!(w[0] < w[1], "every root owns at least one nonzero");
            }
        }
    }

    #[test]
    fn two_mode_offsets_match_row_pointers() {
        let mut t = CooTensor::new(vec![3, 4]).unwrap();
        t.push(&[0, 1], 1.0).unwrap();
        t.push(&[0, 3], 2.0).unwrap();
        t.push(&[2, 0], 3.0).unwrap();
        let csf = Csf::from_coo(&t, &[0, 1]).unwrap();
        assert_eq!(csf.root_nnz_offsets(), vec![0, 2, 3]);
        assert_eq!(csf.subtree_nnz(0), 2);
        assert_eq!(csf.subtree_nnz(1), 1);
    }

    #[test]
    fn node_count_and_memory() {
        let t = figure2_tensor();
        let csf = Csf::from_coo(&t, &[0, 1, 2, 3]).unwrap();
        // 2 roots + 3 + 4 + 5 leaves.
        assert_eq!(csf.node_count(), 2 + 3 + 4 + 5);
        assert!(csf.memory_bytes() > 0);
    }

    #[test]
    fn duplicate_coordinates_keep_all_values() {
        // CSF must not silently drop duplicate coordinates: leaves stay
        // aligned with values (callers normally dedup first).
        let mut t = CooTensor::new(vec![2, 2, 2]).unwrap();
        t.push(&[0, 1, 1], 2.0).unwrap();
        t.push(&[0, 1, 1], 3.0).unwrap();
        let csf = Csf::from_coo(&t, &[0, 1, 2]).unwrap();
        assert_eq!(csf.nnz(), 2);
        let mut total = 0.0;
        csf.for_each_nonzero(|c, v| {
            assert_eq!(c, &[0, 1, 1]);
            total += v;
        });
        assert_eq!(total, 5.0);
    }

    #[test]
    fn single_nonzero() {
        let mut t = CooTensor::new(vec![2, 2, 2]).unwrap();
        t.push(&[1, 0, 1], 7.0).unwrap();
        let csf = Csf::from_coo(&t, &[0, 1, 2]).unwrap();
        assert_eq!(csf.root_count(), 1);
        assert_eq!(csf.nnz(), 1);
        let mut seen = Vec::new();
        csf.for_each_nonzero(|c, v| seen.push((c.to_vec(), v)));
        assert_eq!(seen, vec![(vec![1, 0, 1], 7.0)]);
    }

    #[test]
    fn grow_dims_preserves_structure() {
        let mut t = CooTensor::new(vec![2, 3, 4]).unwrap();
        t.push(&[1, 2, 3], 1.0).unwrap();
        t.push(&[0, 0, 0], 2.0).unwrap();
        let mut csf = Csf::from_coo(&t, &[0, 1, 2]).unwrap();
        let before = csf.to_coo();
        csf.grow_dims(&[2, 5, 4]).unwrap();
        assert_eq!(csf.dims(), &[2, 5, 4]);
        assert_eq!(csf.nnz(), 2);
        assert_eq!(csf.to_coo().values(), before.values());
        assert!(csf.grow_dims(&[1, 5, 4]).is_err()); // shrink
        assert!(csf.grow_dims(&[2, 5]).is_err()); // arity
    }
}
