//! Sparse tensor substrate for the AO-ADMM reproduction.
//!
//! The paper's implementation is built on SPLATT v1.1.1, whose core data
//! structures this crate reimplements from scratch:
//!
//! * [`CooTensor`] — coordinate-format sparse tensors of arbitrary order,
//!   the interchange format for I/O and generators (Figure 2a).
//! * [`Csf`] — the compressed sparse fiber structure (Figure 2b), the
//!   higher-order generalization of CSR that MTTKRP traverses
//!   (Algorithm 3). One CSF is built per output mode.
//! * [`io`] — reader/writer for the FROSTT `.tns` text format used by all
//!   four evaluation datasets.
//! * [`gen`] — seeded synthetic tensor generators, including shape-faithful
//!   analogs of the paper's Reddit / NELL / Amazon / Patents tensors
//!   (Table I) with planted low-rank structure and power-law (Zipf)
//!   nonzero distributions.
//! * [`stats`] — per-mode summary statistics (slice/fiber counts, skew)
//!   used by the harness and by structure-selection heuristics.

#![warn(missing_docs)]

pub mod coord;
pub mod csf;
pub mod dense_tensor;
pub mod gen;
pub mod io;
pub mod stats;
pub mod transform;
pub mod zipf;

pub use coord::CooTensor;
pub use csf::Csf;
pub use dense_tensor::DenseTensor;
pub use stats::TensorStats;

/// Index type for tensor coordinates.
///
/// All FROSTT tensors in the paper have mode lengths below 2^32; `u32`
/// halves the index bandwidth of the MTTKRP-critical structures.
pub type Idx = u32;

/// Errors raised by tensor construction, I/O and generation.
#[derive(Debug)]
pub enum TensorError {
    /// A coordinate lies outside the declared dimensions.
    IndexOutOfBounds {
        /// Mode of the offending coordinate.
        mode: usize,
        /// The coordinate value.
        index: u64,
        /// The length of that mode.
        dim: usize,
    },
    /// Structural problem (wrong arity, empty tensor where nonzeros are
    /// required, dimension overflow, ...).
    Invalid(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line in a `.tns` file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::IndexOutOfBounds { mode, index, dim } => write!(
                f,
                "index {index} out of bounds for mode {mode} of length {dim}"
            ),
            TensorError::Invalid(msg) => write!(f, "invalid tensor: {msg}"),
            TensorError::Io(e) => write!(f, "tensor I/O error: {e}"),
            TensorError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e)
    }
}
