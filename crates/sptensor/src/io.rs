//! FROSTT `.tns` text-format reader and writer.
//!
//! The paper's four evaluation tensors come from the FROSTT collection,
//! which distributes tensors as whitespace-separated text: one nonzero per
//! line, 1-based coordinates followed by the value. Lines starting with
//! `#` are comments. This module reads and writes that format so real
//! FROSTT downloads can be dropped into the harness unchanged.

use crate::coord::CooTensor;
use crate::{Idx, TensorError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Read a `.tns` tensor from any reader.
///
/// Dimensions are inferred as the per-mode maximum coordinate unless
/// `dims` is given (FROSTT files carry no header). Coordinates in the
/// file are 1-based; the returned tensor is 0-based.
///
/// ```
/// let t = sptensor::io::read_tns("1 1 1 2.5\n3 2 4 -1.0\n".as_bytes(), None).unwrap();
/// assert_eq!(t.dims(), &[3, 2, 4]);
/// assert_eq!(t.nnz(), 2);
/// ```
pub fn read_tns<R: Read>(reader: R, dims: Option<Vec<usize>>) -> Result<CooTensor, TensorError> {
    let reader = BufReader::new(reader);
    let mut nmodes: Option<usize> = None;
    let mut coords: Vec<Vec<Idx>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut maxes: Vec<u64> = Vec::new();

    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let mut row: Vec<u64> = Vec::with_capacity(nmodes.unwrap_or(4) + 1);
        let mut raw: Vec<&str> = Vec::with_capacity(nmodes.unwrap_or(4) + 1);
        for tok in fields.by_ref() {
            raw.push(tok);
        }
        if raw.len() < 3 {
            return Err(TensorError::Parse {
                line: lineno,
                msg: format!("expected >= 3 fields, found {}", raw.len()),
            });
        }
        let (coord_toks, val_tok) = raw.split_at(raw.len() - 1);
        for tok in coord_toks {
            let c: u64 = tok.parse().map_err(|_| TensorError::Parse {
                line: lineno,
                msg: format!("bad coordinate {tok:?}"),
            })?;
            if c == 0 {
                return Err(TensorError::Parse {
                    line: lineno,
                    msg: "coordinates are 1-based; found 0".into(),
                });
            }
            row.push(c - 1);
        }
        let v: f64 = val_tok[0].parse().map_err(|_| TensorError::Parse {
            line: lineno,
            msg: format!("bad value {:?}", val_tok[0]),
        })?;

        match nmodes {
            None => {
                nmodes = Some(row.len());
                coords = vec![Vec::new(); row.len()];
                maxes = vec![0; row.len()];
            }
            Some(nm) if nm != row.len() => {
                return Err(TensorError::Parse {
                    line: lineno,
                    msg: format!("arity changed from {nm} to {}", row.len()),
                });
            }
            _ => {}
        }
        for (m, &c) in row.iter().enumerate() {
            if c > Idx::MAX as u64 {
                return Err(TensorError::Parse {
                    line: lineno,
                    msg: format!("coordinate {c} overflows index type"),
                });
            }
            coords[m].push(c as Idx);
            maxes[m] = maxes[m].max(c);
        }
        vals.push(v);
    }

    let nmodes = nmodes.ok_or_else(|| TensorError::Invalid("empty .tns input".into()))?;
    let dims = match dims {
        Some(d) => {
            if d.len() != nmodes {
                return Err(TensorError::Invalid(format!(
                    "given dims have {} modes but file has {nmodes}",
                    d.len()
                )));
            }
            for (m, (&mx, &dm)) in maxes.iter().zip(&d).enumerate() {
                if mx as usize >= dm {
                    return Err(TensorError::IndexOutOfBounds {
                        mode: m,
                        index: mx,
                        dim: dm,
                    });
                }
            }
            d
        }
        None => maxes.iter().map(|&m| m as usize + 1).collect(),
    };

    let mut t = CooTensor::with_capacity(dims, vals.len())?;
    let mut coord_buf = vec![0 as Idx; nmodes];
    for n in 0..vals.len() {
        for m in 0..nmodes {
            coord_buf[m] = coords[m][n];
        }
        t.push(&coord_buf, vals[n])?;
    }
    Ok(t)
}

/// Attach the offending file path to any I/O error in `res` — a bare
/// `io::Error` ("No such file or directory") is useless once it crosses
/// an API boundary and the caller no longer knows which file was meant.
fn with_path<T>(path: &Path, res: Result<T, TensorError>) -> Result<T, TensorError> {
    res.map_err(|e| match e {
        TensorError::Io(io) => TensorError::Io(std::io::Error::new(
            io.kind(),
            format!("{}: {io}", path.display()),
        )),
        other => other,
    })
}

/// Read a `.tns` file from disk.
pub fn read_tns_file<P: AsRef<Path>>(
    path: P,
    dims: Option<Vec<usize>>,
) -> Result<CooTensor, TensorError> {
    let path = path.as_ref();
    let f = with_path(path, std::fs::File::open(path).map_err(TensorError::Io))?;
    with_path(path, read_tns(f, dims))
}

/// Write a tensor in `.tns` format (1-based coordinates).
pub fn write_tns<W: Write>(tensor: &CooTensor, writer: W) -> Result<(), TensorError> {
    let mut w = BufWriter::new(writer);
    for n in 0..tensor.nnz() {
        for m in 0..tensor.nmodes() {
            write!(w, "{} ", tensor.mode_inds(m)[n] as u64 + 1)?;
        }
        writeln!(w, "{}", tensor.values()[n])?;
    }
    w.flush()?;
    Ok(())
}

/// Write a tensor to a `.tns` file on disk.
pub fn write_tns_file<P: AsRef<Path>>(tensor: &CooTensor, path: P) -> Result<(), TensorError> {
    let path = path.as_ref();
    let f = with_path(path, std::fs::File::create(path).map_err(TensorError::Io))?;
    with_path(path, write_tns(tensor, f))
}

/// Magic bytes of the binary tensor format.
const BIN_MAGIC: &[u8; 8] = b"SPTNSR01";

/// Write a tensor in the compact binary format (fast to load; byte
/// layout: magic, `u64` nmodes, `u64` dims, `u64` nnz, per-mode `u32`
/// index columns, `f64` values, all little-endian).
pub fn write_bin<W: Write>(tensor: &CooTensor, writer: W) -> Result<(), TensorError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(tensor.nmodes() as u64).to_le_bytes())?;
    for &d in tensor.dims() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    w.write_all(&(tensor.nnz() as u64).to_le_bytes())?;
    for m in 0..tensor.nmodes() {
        for &i in tensor.mode_inds(m) {
            w.write_all(&i.to_le_bytes())?;
        }
    }
    for &v in tensor.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read a tensor written by [`write_bin`].
pub fn read_bin<R: Read>(reader: R) -> Result<CooTensor, TensorError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(TensorError::Invalid("bad binary tensor magic".into()));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<R>| -> Result<u64, TensorError> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let nmodes = read_u64(&mut r)? as usize;
    if !(2..=64).contains(&nmodes) {
        return Err(TensorError::Invalid(format!(
            "implausible mode count {nmodes} in binary tensor"
        )));
    }
    let mut dims = Vec::with_capacity(nmodes);
    for _ in 0..nmodes {
        dims.push(read_u64(&mut r)? as usize);
    }
    let nnz = read_u64(&mut r)? as usize;

    let mut cols: Vec<Vec<Idx>> = Vec::with_capacity(nmodes);
    let mut buf4 = [0u8; 4];
    for (m, &dim) in dims.iter().enumerate() {
        let mut col = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            r.read_exact(&mut buf4)?;
            let i = Idx::from_le_bytes(buf4);
            if i as usize >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    mode: m,
                    index: i as u64,
                    dim,
                });
            }
            col.push(i);
        }
        cols.push(col);
    }
    let mut t = CooTensor::with_capacity(dims, nnz)?;
    let mut buf8 = [0u8; 8];
    let mut coord = vec![0 as Idx; nmodes];
    for n in 0..nnz {
        r.read_exact(&mut buf8)?;
        for (m, col) in cols.iter().enumerate() {
            coord[m] = col[n];
        }
        t.push(&coord, f64::from_le_bytes(buf8))?;
    }
    Ok(t)
}

/// Write a tensor to a binary file.
pub fn write_bin_file<P: AsRef<Path>>(tensor: &CooTensor, path: P) -> Result<(), TensorError> {
    let path = path.as_ref();
    let f = with_path(path, std::fs::File::create(path).map_err(TensorError::Io))?;
    with_path(path, write_bin(tensor, f))
}

/// Read a tensor from a binary file.
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<CooTensor, TensorError> {
    let path = path.as_ref();
    let f = with_path(path, std::fs::File::open(path).map_err(TensorError::Io))?;
    with_path(path, read_bin(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let src = "1 1 1 1.5\n2 3 4 -2.0\n";
        let t = read_tns(src.as_bytes(), None).unwrap();
        assert_eq!(t.nmodes(), 3);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.coord(0), vec![0, 0, 0]);
        assert_eq!(t.values(), &[1.5, -2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let src = "# header\n\n1 1 1.0\n# more\n2 2 2.0\n";
        let t = read_tns(src.as_bytes(), None).unwrap();
        assert_eq!(t.nmodes(), 2);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn explicit_dims_respected() {
        let src = "1 1 1 1.0\n";
        let t = read_tns(src.as_bytes(), Some(vec![10, 10, 10])).unwrap();
        assert_eq!(t.dims(), &[10, 10, 10]);
    }

    #[test]
    fn explicit_dims_too_small_rejected() {
        let src = "5 1 1 1.0\n";
        assert!(read_tns(src.as_bytes(), Some(vec![4, 10, 10])).is_err());
    }

    #[test]
    fn rejects_zero_coordinate() {
        let src = "0 1 1 1.0\n";
        assert!(matches!(
            read_tns(src.as_bytes(), None),
            Err(TensorError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_arity_change() {
        let src = "1 1 1 1.0\n1 1 2.0\n";
        assert!(matches!(
            read_tns(src.as_bytes(), None),
            Err(TensorError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_garbage_value() {
        let src = "1 1 1 abc\n";
        assert!(read_tns(src.as_bytes(), None).is_err());
    }

    #[test]
    fn rejects_short_line() {
        let src = "1 2\n";
        assert!(read_tns(src.as_bytes(), None).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_tns("# only comments\n".as_bytes(), None).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut t = CooTensor::new(vec![3, 4, 5]).unwrap();
        t.push(&[0, 1, 2], 1.25).unwrap();
        t.push(&[2, 3, 4], -0.5).unwrap();
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice(), Some(vec![3, 4, 5])).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sptensor_io_test.tns");
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[1, 0], 3.0).unwrap();
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path, Some(vec![2, 2])).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_roundtrip() {
        let t = crate::gen::random_uniform(&[9, 7, 11], 150, 3).unwrap();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_file_roundtrip() {
        let t = crate::gen::random_uniform(&[5, 6], 30, 5).unwrap();
        let path = std::env::temp_dir().join("sptensor_io_test.bin");
        write_bin_file(&t, &path).unwrap();
        let back = read_bin_file(&path).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_errors_name_the_path() {
        let missing = std::env::temp_dir().join("sptensor_definitely_missing.tns");
        let err = read_tns_file(&missing, None).unwrap_err().to_string();
        assert!(err.contains("sptensor_definitely_missing.tns"), "{err}");
        let err = read_bin_file(&missing).unwrap_err().to_string();
        assert!(err.contains("sptensor_definitely_missing.tns"), "{err}");
        let t = CooTensor::new(vec![2, 2]).unwrap();
        let bad_dir = std::env::temp_dir().join("no_such_dir_xyz").join("t.tns");
        let err = write_tns_file(&t, &bad_dir).unwrap_err().to_string();
        assert!(err.contains("no_such_dir_xyz"), "{err}");
        let err = write_bin_file(&t, &bad_dir).unwrap_err().to_string();
        assert!(err.contains("no_such_dir_xyz"), "{err}");
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_bin(&b"NOTMAGIC"[..]).is_err());
        assert!(read_bin(&b"SPTNSR01"[..]).is_err()); // truncated header
                                                      // Corrupt an index out of range.
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[1, 1], 1.0).unwrap();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        // Mode count sits right after the magic; inflate an index byte.
        let idx_pos = 8 + 8 + 16 + 8; // magic + nmodes + dims + nnz
        buf[idx_pos] = 0xEE;
        assert!(read_bin(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_truncated_values_rejected() {
        let t = crate::gen::random_uniform(&[4, 4], 10, 7).unwrap();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_bin(buf.as_slice()).is_err());
    }
}
