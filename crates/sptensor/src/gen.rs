//! Seeded synthetic tensor generators.
//!
//! The paper evaluates on four FROSTT tensors (Table I) that are
//! multi-gigabyte downloads. This module produces *shape-faithful
//! analogs*: configurable-scale tensors that preserve the properties the
//! paper's optimizations depend on —
//!
//! 1. the aspect ratio of the mode lengths and the nnz-per-row ratio
//!    (which determines the MTTKRP vs. ADMM cost split of Figure 3),
//! 2. a power-law (Zipf) distribution of nonzeros per slice (the
//!    "high-signal rows" that motivate blocked ADMM, Section IV-B),
//! 3. planted low-rank structure plus noise, so factorization converges
//!    like real data rather than fitting pure noise, and
//! 4. planted *sparse* factors for the datasets whose l1-regularized
//!    factors go sparse in Table II (Reddit, Amazon) and dense factors
//!    for those that do not (NELL, Patents).

use crate::coord::CooTensor;
use crate::zipf::Zipf;
use crate::{Idx, TensorError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for the planted low-rank generator.
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Mode lengths.
    pub dims: Vec<usize>,
    /// Target number of sampled nonzeros (the result has slightly fewer
    /// after duplicate coordinates are merged).
    pub nnz: usize,
    /// Rank of the planted model.
    pub rank: usize,
    /// Standard deviation of additive Gaussian noise on each value.
    pub noise: f64,
    /// Fraction of nonzero entries in the planted factor matrices
    /// (1.0 = dense ground truth; < 1.0 plants recoverable sparsity).
    pub factor_density: f64,
    /// Per-mode Zipf exponents controlling slice-popularity skew
    /// (0 = uniform).
    pub zipf_exponents: Vec<f64>,
    /// RNG seed; equal seeds give byte-identical tensors.
    pub seed: u64,
}

impl PlantedConfig {
    /// A small three-mode default used by tests and the quickstart.
    pub fn small() -> Self {
        PlantedConfig {
            dims: vec![60, 50, 40],
            nnz: 5_000,
            rank: 5,
            noise: 0.05,
            factor_density: 1.0,
            zipf_exponents: vec![0.8, 0.8, 0.8],
            seed: 42,
        }
    }
}

/// Approximate standard Gaussian via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate a sparse tensor with planted non-negative low-rank structure.
///
/// Coordinates are sampled per mode from a Zipf distribution (index 0 is
/// the most popular slice); the value at a coordinate is the planted
/// model value plus noise, clamped to be non-negative so that constrained
/// (non-negative) factorization is well posed.
pub fn planted(cfg: &PlantedConfig) -> Result<CooTensor, TensorError> {
    planted_with_factors(cfg).map(|(t, _)| t)
}

/// Like [`planted`], but also returns the planted ground-truth factors
/// (one row-major `dims[m] x rank` buffer per mode) so recovery
/// experiments can score the factorization against the truth.
pub fn planted_with_factors(
    cfg: &PlantedConfig,
) -> Result<(CooTensor, Vec<Vec<f64>>), TensorError> {
    let nmodes = cfg.dims.len();
    if cfg.zipf_exponents.len() != nmodes {
        return Err(TensorError::Invalid(format!(
            "{} zipf exponents for {} modes",
            cfg.zipf_exponents.len(),
            nmodes
        )));
    }
    if cfg.rank == 0 || cfg.nnz == 0 {
        return Err(TensorError::Invalid("rank and nnz must be positive".into()));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Planted factors, one per mode: entries are 0 with probability
    // (1 - factor_density), else uniform in [0.2, 1.0).
    let factors: Vec<Vec<f64>> = cfg
        .dims
        .iter()
        .map(|&d| {
            (0..d * cfg.rank)
                .map(|_| {
                    if rng.gen::<f64>() < cfg.factor_density {
                        rng.gen_range(0.2..1.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let samplers: Vec<Zipf> = cfg
        .dims
        .iter()
        .zip(&cfg.zipf_exponents)
        .map(|(&d, &s)| Zipf::new(d as u64, s))
        .collect();

    let mut t = CooTensor::with_capacity(cfg.dims.clone(), cfg.nnz)?;
    let mut coord = vec![0 as Idx; nmodes];
    for _ in 0..cfg.nnz {
        for (m, z) in samplers.iter().enumerate() {
            coord[m] = z.sample_index(&mut rng) as Idx;
        }
        // Model value at this coordinate.
        let mut v = 0.0;
        for f in 0..cfg.rank {
            let mut p = 1.0;
            for (m, fac) in factors.iter().enumerate() {
                p *= fac[coord[m] as usize * cfg.rank + f];
            }
            v += p;
        }
        v += cfg.noise * gaussian(&mut rng);
        // Keep the data non-negative (ratings/counts-like); tiny values
        // are bumped so sampled coordinates stay structural nonzeros.
        v = v.max(1e-3);
        t.push(&coord, v)?;
    }
    t.dedup_sum();
    Ok((t, factors))
}

/// Generate a tensor with uniformly random coordinates and values in
/// `[0.5, 1.5)` (no planted structure; tests and microbenchmarks).
pub fn random_uniform(dims: &[usize], nnz: usize, seed: u64) -> Result<CooTensor, TensorError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = CooTensor::with_capacity(dims.to_vec(), nnz)?;
    let mut coord = vec![0 as Idx; dims.len()];
    for _ in 0..nnz {
        for (m, &d) in dims.iter().enumerate() {
            coord[m] = rng.gen_range(0..d) as Idx;
        }
        t.push(&coord, rng.gen_range(0.5..1.5))?;
    }
    t.dedup_sum();
    Ok(t)
}

/// The four FROSTT datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analog {
    /// Reddit: user x community x word, 95 M nnz, 310 K x 6 K x 510 K.
    Reddit,
    /// NELL: noun x verb x noun, 143 M nnz, 2.9 M x 2.1 M x 25.5 M.
    Nell,
    /// Amazon: user x item x word, 1.7 B nnz, 4.8 M x 1.8 M x 1.8 M.
    Amazon,
    /// Patents: year x word x word, 3.5 B nnz, 46 x 240 K x 240 K.
    Patents,
}

impl Analog {
    /// All four datasets in the paper's order.
    pub const ALL: [Analog; 4] = [
        Analog::Reddit,
        Analog::Nell,
        Analog::Amazon,
        Analog::Patents,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Analog::Reddit => "Reddit",
            Analog::Nell => "NELL",
            Analog::Amazon => "Amazon",
            Analog::Patents => "Patents",
        }
    }

    /// Dimensions of the *real* FROSTT tensor (for Table I comparison).
    pub fn paper_dims(self) -> [usize; 3] {
        match self {
            Analog::Reddit => [310_000, 6_000, 510_000],
            Analog::Nell => [2_900_000, 2_100_000, 25_500_000],
            Analog::Amazon => [4_800_000, 1_800_000, 1_800_000],
            Analog::Patents => [46, 240_000, 240_000],
        }
    }

    /// Nonzero count of the real tensor (for Table I comparison).
    pub fn paper_nnz(self) -> u64 {
        match self {
            Analog::Reddit => 95_000_000,
            Analog::Nell => 143_000_000,
            Analog::Amazon => 1_700_000_000,
            Analog::Patents => 3_500_000_000,
        }
    }

    /// Generator configuration at `scale = 1.0`.
    ///
    /// Dimensions and nnz are shrunk from the real tensors while
    /// preserving (a) mode-length aspect ratios and (b) the nnz-per-row
    /// ratio `nnz / (I+J+K)` that determines whether MTTKRP or ADMM
    /// dominates (Figure 3). Factor density is < 1 exactly for the
    /// datasets whose l1-regularized factors go sparse in Table II.
    pub fn base_config(self, seed: u64) -> PlantedConfig {
        match self {
            // nnz/rows ~ 115 after dedup (paper: 95M / 826K ~ 115; the
            // Zipf sampler collides often at these dims, so the sampled
            // count is set above the target stored count).
            Analog::Reddit => PlantedConfig {
                dims: vec![3_100, 60, 5_100],
                nnz: 1_500_000,
                rank: 60,
                noise: 0.6,
                factor_density: 0.3,
                zipf_exponents: vec![0.9, 0.6, 0.9],
                seed,
            },
            // nnz/rows ~ 4.7 after dedup (paper: 143M / 30.5M ~ 4.7):
            // ADMM-dominated.
            Analog::Nell => PlantedConfig {
                dims: vec![14_600, 10_600, 127_000],
                nnz: 850_000,
                rank: 60,
                noise: 0.6,
                factor_density: 0.95,
                zipf_exponents: vec![1.0, 1.0, 1.2],
                seed,
            },
            // nnz/rows ~ 310 (paper: 1.7B / 8.4M ~ 202; slightly raised
            // because our ADMM solves are not MKL-fast, preserving the
            // paper's MTTKRP-dominated balance for this dataset).
            Analog::Amazon => PlantedConfig {
                dims: vec![4_800, 1_800, 1_800],
                nnz: 2_600_000,
                rank: 60,
                noise: 0.6,
                factor_density: 0.3,
                zipf_exponents: vec![0.9, 0.9, 0.9],
                seed,
            },
            // Extremely nnz-heavy short-mode tensor (paper ratio ~7300
            // nnz per row): strongly MTTKRP-dominated.
            Analog::Patents => PlantedConfig {
                dims: vec![46, 1_200, 1_200],
                nnz: 3_500_000,
                rank: 60,
                noise: 0.6,
                factor_density: 1.0,
                zipf_exponents: vec![0.2, 0.6, 0.6],
                seed,
            },
        }
    }

    /// Generate the analog at the given scale (1.0 = defaults; 0.1 = a
    /// ten-times-smaller smoke-test version). Dimensions scale with
    /// `scale^(1/2)` and nnz linearly, roughly preserving density.
    pub fn generate(self, scale: f64, seed: u64) -> Result<CooTensor, TensorError> {
        let mut cfg = self.base_config(seed);
        if (scale - 1.0).abs() > 1e-12 {
            let dim_scale = scale.sqrt();
            for d in &mut cfg.dims {
                *d = ((*d as f64 * dim_scale).round() as usize).max(4);
            }
            cfg.nnz = ((cfg.nnz as f64 * scale).round() as usize).max(100);
        }
        planted(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_is_deterministic() {
        let cfg = PlantedConfig::small();
        let a = planted(&cfg).unwrap();
        let b = planted(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = PlantedConfig::small();
        let a = planted(&cfg).unwrap();
        cfg.seed = 43;
        let b = planted(&cfg).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn planted_respects_dims_and_nonneg() {
        let cfg = PlantedConfig::small();
        let t = planted(&cfg).unwrap();
        assert_eq!(t.dims(), &[60, 50, 40]);
        assert!(t.nnz() > 0 && t.nnz() <= 5_000);
        assert!(t.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn planted_has_skewed_slices() {
        let mut cfg = PlantedConfig::small();
        cfg.nnz = 20_000;
        cfg.dims = vec![500, 500, 500];
        cfg.zipf_exponents = vec![1.2, 1.2, 1.2];
        let t = planted(&cfg).unwrap();
        let counts = t.slice_counts(0);
        let max = *counts.iter().max().unwrap();
        let mean = t.nnz() as f64 / 500.0;
        assert!(
            max as f64 > 5.0 * mean,
            "expected skew, max={max} mean={mean}"
        );
    }

    #[test]
    fn planted_validates_config() {
        let mut cfg = PlantedConfig::small();
        cfg.zipf_exponents.pop();
        assert!(planted(&cfg).is_err());

        let mut cfg = PlantedConfig::small();
        cfg.rank = 0;
        assert!(planted(&cfg).is_err());
    }

    #[test]
    fn random_uniform_basic() {
        let t = random_uniform(&[20, 30], 200, 7).unwrap();
        assert_eq!(t.dims(), &[20, 30]);
        assert!(t.nnz() > 0 && t.nnz() <= 200);
    }

    #[test]
    fn analogs_generate_at_tiny_scale() {
        for a in Analog::ALL {
            let t = a.generate(0.001, 1).unwrap();
            assert!(t.nnz() >= 100, "{} produced {} nnz", a.name(), t.nnz());
            assert_eq!(t.nmodes(), 3);
        }
    }

    #[test]
    fn analog_metadata_matches_paper_order() {
        assert_eq!(Analog::ALL[0].name(), "Reddit");
        assert_eq!(Analog::Patents.paper_dims()[0], 46);
        assert!(Analog::Amazon.paper_nnz() > 1_000_000_000);
    }

    #[test]
    fn scale_changes_size() {
        let small = Analog::Reddit.generate(0.001, 1).unwrap();
        let bigger = Analog::Reddit.generate(0.01, 1).unwrap();
        assert!(bigger.nnz() > small.nnz());
        assert!(bigger.dims()[0] > small.dims()[0]);
    }

    #[test]
    fn sparse_factor_datasets_marked() {
        assert!(Analog::Reddit.base_config(1).factor_density < 0.5);
        assert!(Analog::Amazon.base_config(1).factor_density < 0.5);
        assert!(Analog::Nell.base_config(1).factor_density > 0.5);
        assert!(Analog::Patents.base_config(1).factor_density >= 1.0);
    }
}
