//! Coordinate-format (COO) sparse tensors.
//!
//! COO (Figure 2a in the paper) is the interchange format: FROSTT files,
//! synthetic generators and tests all produce COO, and [`crate::Csf`] is
//! compiled from it. Indices are stored structure-of-arrays (one `Vec`
//! per mode) so mode-wise passes are unit stride.

use crate::{Idx, TensorError};
use std::ops::Range;

/// A sparse tensor in coordinate format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// `inds[m][n]` is the mode-`m` coordinate of nonzero `n`.
    inds: Vec<Vec<Idx>>,
    vals: Vec<f64>,
}

impl CooTensor {
    /// Create an empty tensor with the given mode lengths.
    ///
    /// Requires at least two modes (a one-mode "tensor" is a vector and is
    /// not meaningful for CPD) and every mode length to fit in [`Idx`].
    pub fn new(dims: Vec<usize>) -> Result<Self, TensorError> {
        if dims.len() < 2 {
            return Err(TensorError::Invalid(format!(
                "tensors need >= 2 modes, got {}",
                dims.len()
            )));
        }
        for (m, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(TensorError::Invalid(format!("mode {m} has length 0")));
            }
            if d > Idx::MAX as usize {
                return Err(TensorError::Invalid(format!(
                    "mode {m} length {d} exceeds index type"
                )));
            }
        }
        let nmodes = dims.len();
        Ok(CooTensor {
            dims,
            inds: vec![Vec::new(); nmodes],
            vals: Vec::new(),
        })
    }

    /// Create with pre-allocated capacity for `cap` nonzeros.
    pub fn with_capacity(dims: Vec<usize>, cap: usize) -> Result<Self, TensorError> {
        let mut t = Self::new(dims)?;
        for v in &mut t.inds {
            v.reserve(cap);
        }
        t.vals.reserve(cap);
        Ok(t)
    }

    /// Append a nonzero. Coordinates are bounds-checked.
    pub fn push(&mut self, coords: &[Idx], val: f64) -> Result<(), TensorError> {
        if coords.len() != self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "coordinate arity {} does not match order {}",
                coords.len(),
                self.nmodes()
            )));
        }
        for (m, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            if c as usize >= d {
                return Err(TensorError::IndexOutOfBounds {
                    mode: m,
                    index: c as u64,
                    dim: d,
                });
            }
        }
        for (m, &c) in coords.iter().enumerate() {
            self.inds[m].push(c);
        }
        self.vals.push(val);
        Ok(())
    }

    /// Number of modes (the tensor's order).
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinates of mode `m` for all nonzeros.
    #[inline]
    pub fn mode_inds(&self, m: usize) -> &[Idx] {
        &self.inds[m]
    }

    /// Values of all nonzeros.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Full coordinate of nonzero `n` (allocates; tests / cold paths).
    pub fn coord(&self, n: usize) -> Vec<Idx> {
        self.inds.iter().map(|col| col[n]).collect()
    }

    /// Squared Frobenius norm `||X||_F^2` — the denominator of the
    /// paper's relative-error metric.
    pub fn norm_sq(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }

    /// Density: `nnz / prod(dims)` computed in `f64` to avoid overflow.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Sort nonzeros lexicographically by the given mode order
    /// (`order[0]` is the most significant mode). Used by CSF compilation.
    pub fn sort_by_mode_order(&mut self, order: &[usize]) {
        debug_assert_eq!(order.len(), self.nmodes());
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &m in order {
                match self.inds[m][a].cmp(&self.inds[m][b]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        for col in &mut self.inds {
            let new: Vec<Idx> = perm.iter().map(|&p| col[p]).collect();
            *col = new;
        }
        let newv: Vec<f64> = perm.iter().map(|&p| self.vals[p]).collect();
        self.vals = newv;
    }

    /// Merge duplicate coordinates by summing their values.
    ///
    /// Sorts in canonical mode order first. Generators that sample random
    /// coordinates call this to restore the set-of-coordinates invariant.
    pub fn dedup_sum(&mut self) {
        if self.nnz() <= 1 {
            return;
        }
        let order: Vec<usize> = (0..self.nmodes()).collect();
        self.sort_by_mode_order(&order);
        let nmodes = self.nmodes();
        let mut w = 0usize; // write cursor
        for r in 1..self.nnz() {
            let same = (0..nmodes).all(|m| self.inds[m][r] == self.inds[m][w]);
            if same {
                self.vals[w] += self.vals[r];
            } else {
                w += 1;
                for m in 0..nmodes {
                    self.inds[m][w] = self.inds[m][r];
                }
                self.vals[w] = self.vals[r];
            }
        }
        let newlen = w + 1;
        for col in &mut self.inds {
            col.truncate(newlen);
        }
        self.vals.truncate(newlen);
    }

    /// Drop nonzeros whose magnitude is at most `tol` (cleans up
    /// generator output where planted model values cancel to ~0).
    pub fn prune(&mut self, tol: f64) {
        let keep: Vec<bool> = self.vals.iter().map(|v| v.abs() > tol).collect();
        for col in &mut self.inds {
            let mut it = keep.iter();
            col.retain(|_| *it.next().unwrap());
        }
        let mut it = keep.iter();
        self.vals.retain(|_| *it.next().unwrap());
    }

    /// Extend mode `m` to `new_len` indices (streaming mode growth: new
    /// users/items appear over time). Existing nonzeros are untouched;
    /// lengths may only grow.
    pub fn grow_mode(&mut self, mode: usize, new_len: usize) -> Result<(), TensorError> {
        if mode >= self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "grow_mode on mode {mode} of a {}-mode tensor",
                self.nmodes()
            )));
        }
        if new_len < self.dims[mode] {
            return Err(TensorError::Invalid(format!(
                "grow_mode cannot shrink mode {mode} from {} to {new_len}",
                self.dims[mode]
            )));
        }
        if new_len > Idx::MAX as usize {
            return Err(TensorError::Invalid(format!(
                "mode {mode} length {new_len} exceeds index type"
            )));
        }
        self.dims[mode] = new_len;
        Ok(())
    }

    /// Multiply every stored value by `alpha` (exponential time-decay of
    /// a streamed tensor's history).
    pub fn scale_values(&mut self, alpha: f64) {
        for v in &mut self.vals {
            *v *= alpha;
        }
    }

    /// Whether the nonzeros are in canonical order: sorted
    /// lexicographically by mode 0, 1, ... with no duplicate coordinates.
    /// [`CooTensor::dedup_sum`] establishes this invariant; the sorted
    /// lookups and [`CooTensor::merge_add`] require it.
    pub fn is_sorted_canonical(&self) -> bool {
        let nmodes = self.nmodes();
        (1..self.nnz()).all(|n| {
            (0..nmodes)
                .map(|m| self.inds[m][n - 1].cmp(&self.inds[m][n]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
                == std::cmp::Ordering::Less
        })
    }

    /// Binary-search for `coord`, returning its nonzero position.
    /// Requires canonical order (debug-asserted); see
    /// [`CooTensor::is_sorted_canonical`].
    pub fn find_sorted(&self, coord: &[Idx]) -> Option<usize> {
        debug_assert_eq!(coord.len(), self.nmodes());
        let nmodes = self.nmodes();
        let cmp_at = |n: usize| {
            (0..nmodes)
                .map(|m| self.inds[m][n].cmp(&coord[m]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        let (mut lo, mut hi) = (0usize, self.nnz());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_at(mid) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Value stored at `coord`, or `None` when the coordinate holds no
    /// nonzero. Requires canonical order (see [`CooTensor::find_sorted`]).
    pub fn value_at_sorted(&self, coord: &[Idx]) -> Option<f64> {
        self.find_sorted(coord).map(|n| self.vals[n])
    }

    /// Merge `other` into `self`, summing values at shared coordinates —
    /// the streaming delta-merge. Mode counts must match; the merged
    /// dimensions are the per-mode maximum. Both operands are brought to
    /// canonical order if needed (a no-op for already-sorted inputs),
    /// then combined in one linear pass; the result is canonical.
    /// Explicit zeros are kept — callers decide whether to
    /// [`CooTensor::prune`].
    pub fn merge_add(&mut self, other: &CooTensor) -> Result<(), TensorError> {
        if other.nmodes() != self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "merge_add of a {}-mode tensor into a {}-mode tensor",
                other.nmodes(),
                self.nmodes()
            )));
        }
        let nmodes = self.nmodes();
        for m in 0..nmodes {
            if other.dims[m] > self.dims[m] {
                self.grow_mode(m, other.dims[m])?;
            }
        }
        if !self.is_sorted_canonical() {
            self.dedup_sum();
        }
        let sorted_other;
        let b = if other.is_sorted_canonical() {
            other
        } else {
            let mut o = other.clone();
            o.dedup_sum();
            sorted_other = o;
            &sorted_other
        };

        let cmp = |i: usize, j: usize| {
            (0..nmodes)
                .map(|m| self.inds[m][i].cmp(&b.inds[m][j]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        let (an, bn) = (self.nnz(), b.nnz());
        let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(an + bn); nmodes];
        let mut vals: Vec<f64> = Vec::with_capacity(an + bn);
        let (mut i, mut j) = (0usize, 0usize);
        while i < an && j < bn {
            match cmp(i, j) {
                std::cmp::Ordering::Less => {
                    for (dst, src) in inds.iter_mut().zip(&self.inds) {
                        dst.push(src[i]);
                    }
                    vals.push(self.vals[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    for (dst, src) in inds.iter_mut().zip(&b.inds) {
                        dst.push(src[j]);
                    }
                    vals.push(b.vals[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    for (dst, src) in inds.iter_mut().zip(&self.inds) {
                        dst.push(src[i]);
                    }
                    vals.push(self.vals[i] + b.vals[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        for (m, dst) in inds.iter_mut().enumerate() {
            dst.extend_from_slice(&self.inds[m][i..]);
            dst.extend_from_slice(&b.inds[m][j..]);
        }
        vals.extend_from_slice(&self.vals[i..]);
        vals.extend_from_slice(&b.vals[j..]);
        self.inds = inds;
        self.vals = vals;
        Ok(())
    }

    /// Extract the nonzeros whose mode-`mode` coordinate lies in `range`.
    ///
    /// Relative nonzero order is preserved. With `reindex` the split
    /// mode's coordinates are rebased to `0..range.len()` and the
    /// extracted tensor's mode length becomes `range.len()` (a fully
    /// local view; `range` must be non-empty since zero-length modes are
    /// not representable). Without `reindex`, coordinates and dimensions
    /// are unchanged — the "global dims" shard view used by the sharded
    /// execution engine, where remote rows are simply absent.
    ///
    /// [`CooTensor::rebase_mode`] with `offset = range.start` is the
    /// exact inverse of a reindexed extraction.
    pub fn extract_mode_range(
        &self,
        mode: usize,
        range: Range<usize>,
        reindex: bool,
    ) -> Result<CooTensor, TensorError> {
        if mode >= self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "extract_mode_range on mode {mode} of a {}-mode tensor",
                self.nmodes()
            )));
        }
        if range.start > range.end || range.end > self.dims[mode] {
            return Err(TensorError::Invalid(format!(
                "range {}..{} out of bounds for mode {mode} (length {})",
                range.start, range.end, self.dims[mode]
            )));
        }
        let mut dims = self.dims.clone();
        if reindex {
            if range.is_empty() {
                return Err(TensorError::Invalid(format!(
                    "reindexed extraction of empty range {}..{} on mode {mode}",
                    range.start, range.end
                )));
            }
            dims[mode] = range.len();
        }
        let mut out = CooTensor::new(dims)?;
        let split = &self.inds[mode];
        for n in 0..self.nnz() {
            let i = split[n] as usize;
            if i < range.start || i >= range.end {
                continue;
            }
            for (m, col) in self.inds.iter().enumerate() {
                let c = if reindex && m == mode {
                    col[n] - range.start as Idx
                } else {
                    col[n]
                };
                out.inds[m].push(c);
            }
            out.vals.push(self.vals[n]);
        }
        Ok(out)
    }

    /// Split along `mode` into one tensor per range. `ranges` must be a
    /// contiguous partition of `0..dims[mode]` (sorted, disjoint,
    /// gap-free), so every nonzero lands in exactly one output. See
    /// [`CooTensor::extract_mode_range`] for `reindex` semantics (with
    /// `reindex`, every range must be non-empty).
    pub fn split_mode(
        &self,
        mode: usize,
        ranges: &[Range<usize>],
        reindex: bool,
    ) -> Result<Vec<CooTensor>, TensorError> {
        if mode >= self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "split_mode on mode {mode} of a {}-mode tensor",
                self.nmodes()
            )));
        }
        let mut cursor = 0usize;
        for r in ranges {
            if r.start != cursor || r.end < r.start {
                return Err(TensorError::Invalid(format!(
                    "ranges do not form a contiguous partition: expected start {cursor}, got {}..{}",
                    r.start, r.end
                )));
            }
            cursor = r.end;
        }
        if cursor != self.dims[mode] {
            return Err(TensorError::Invalid(format!(
                "ranges cover 0..{cursor}, mode {mode} has length {}",
                self.dims[mode]
            )));
        }
        ranges
            .iter()
            .map(|r| self.extract_mode_range(mode, r.clone(), reindex))
            .collect()
    }

    /// Add `offset` to every mode-`mode` coordinate and set the mode
    /// length to `new_len` — the inverse of a reindexed
    /// [`CooTensor::extract_mode_range`] (pass the range's `start` and
    /// the original mode length).
    pub fn rebase_mode(
        &mut self,
        mode: usize,
        offset: usize,
        new_len: usize,
    ) -> Result<(), TensorError> {
        if mode >= self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "rebase_mode on mode {mode} of a {}-mode tensor",
                self.nmodes()
            )));
        }
        if new_len > Idx::MAX as usize {
            return Err(TensorError::Invalid(format!(
                "mode {mode} length {new_len} exceeds index type"
            )));
        }
        if let Some(&max) = self.inds[mode].iter().max() {
            let top = max as usize + offset;
            if top >= new_len {
                return Err(TensorError::Invalid(format!(
                    "rebase_mode: coordinate {top} does not fit mode length {new_len}"
                )));
            }
        } else if self.dims[mode].saturating_add(offset) > new_len {
            // No nonzeros constrain the bound; still refuse a shrink.
            return Err(TensorError::Invalid(format!(
                "rebase_mode cannot shrink mode {mode} to {new_len}"
            )));
        }
        for c in &mut self.inds[mode] {
            *c += offset as Idx;
        }
        self.dims[mode] = new_len;
        Ok(())
    }

    /// Number of distinct indices appearing in mode `m` (occupied slices).
    pub fn occupied_slices(&self, m: usize) -> usize {
        let mut seen = vec![false; self.dims[m]];
        let mut count = 0;
        for &i in &self.inds[m] {
            if !seen[i as usize] {
                seen[i as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Histogram of nonzeros per slice of mode `m`.
    pub fn slice_counts(&self, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.dims[m]];
        for &i in &self.inds[m] {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Iterate the nonzeros as `(coordinate, value)` pairs without
    /// allocating per element (the coordinate buffer is reused).
    pub fn for_each_nonzero<F: FnMut(&[Idx], f64)>(&self, mut f: F) {
        let nmodes = self.nmodes();
        let mut coord = vec![0 as Idx; nmodes];
        for n in 0..self.nnz() {
            for (c, col) in coord.iter_mut().zip(&self.inds) {
                *c = col[n];
            }
            f(&coord, self.vals[n]);
        }
    }

    /// Iterator over `(coordinate, value)` pairs (allocates one `Vec`
    /// per element; use [`CooTensor::for_each_nonzero`] in hot paths).
    pub fn nonzeros(&self) -> impl Iterator<Item = (Vec<Idx>, f64)> + '_ {
        (0..self.nnz()).map(move |n| (self.coord(n), self.vals[n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 4, 5]).unwrap();
        t.push(&[0, 0, 0], 1.0).unwrap();
        t.push(&[2, 3, 4], 2.0).unwrap();
        t.push(&[1, 2, 3], 3.0).unwrap();
        t
    }

    #[test]
    fn new_validates_dims() {
        assert!(CooTensor::new(vec![3]).is_err());
        assert!(CooTensor::new(vec![3, 0]).is_err());
        assert!(CooTensor::new(vec![3, 4]).is_ok());
    }

    #[test]
    fn push_bounds_check() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        assert!(t.push(&[0, 2], 1.0).is_err());
        assert!(t.push(&[0], 1.0).is_err());
        assert!(t.push(&[1, 1], 1.0).is_ok());
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn norm_and_density() {
        let t = t3();
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.density() - 3.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn sort_lexicographic() {
        let mut t = t3();
        t.sort_by_mode_order(&[0, 1, 2]);
        assert_eq!(t.mode_inds(0), &[0, 1, 2]);
        assert_eq!(t.values(), &[1.0, 3.0, 2.0]);
    }

    #[test]
    fn sort_with_permuted_order() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 1], 1.0).unwrap();
        t.push(&[1, 0], 2.0).unwrap();
        // Mode-1-major order puts (1,0) first.
        t.sort_by_mode_order(&[1, 0]);
        assert_eq!(t.values(), &[2.0, 1.0]);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 0], 1.0).unwrap();
        t.push(&[1, 1], 5.0).unwrap();
        t.push(&[0, 0], 2.0).unwrap();
        t.dedup_sum();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.values(), &[3.0, 5.0]);
    }

    #[test]
    fn prune_removes_small_values() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 0], 1e-12).unwrap();
        t.push(&[1, 1], 1.0).unwrap();
        t.prune(1e-9);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.coord(0), vec![1, 1]);
    }

    #[test]
    fn slice_statistics() {
        let t = t3();
        assert_eq!(t.occupied_slices(0), 3);
        assert_eq!(t.slice_counts(0), vec![1, 1, 1]);
        assert_eq!(t.slice_counts(2)[4], 1);
    }

    #[test]
    fn coord_roundtrip() {
        let t = t3();
        assert_eq!(t.coord(1), vec![2, 3, 4]);
    }

    #[test]
    fn nonzero_iteration_apis_agree() {
        let t = t3();
        let collected: Vec<(Vec<Idx>, f64)> = t.nonzeros().collect();
        let mut streamed = Vec::new();
        t.for_each_nonzero(|c, v| streamed.push((c.to_vec(), v)));
        assert_eq!(collected, streamed);
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn grow_mode_extends_without_touching_nonzeros() {
        let mut t = t3();
        t.grow_mode(1, 10).unwrap();
        assert_eq!(t.dims(), &[3, 10, 5]);
        assert_eq!(t.nnz(), 3);
        assert!(t.grow_mode(1, 4).is_err()); // shrink
        assert!(t.grow_mode(7, 10).is_err()); // bad mode
        t.push(&[0, 9, 0], 1.0).unwrap(); // new index is addressable
    }

    #[test]
    fn scale_values_scales_norm() {
        let mut t = t3();
        t.scale_values(2.0);
        assert_eq!(t.norm_sq(), 56.0);
    }

    #[test]
    fn canonical_order_detection() {
        let mut t = t3();
        assert!(!t.is_sorted_canonical()); // (2,3,4) precedes (1,2,3)
        t.dedup_sum();
        assert!(t.is_sorted_canonical());
        let mut dup = CooTensor::new(vec![2, 2]).unwrap();
        dup.push(&[0, 0], 1.0).unwrap();
        dup.push(&[0, 0], 1.0).unwrap();
        assert!(!dup.is_sorted_canonical()); // duplicates break it
    }

    #[test]
    fn sorted_lookup_finds_every_nonzero() {
        let mut t = t3();
        t.dedup_sum();
        for n in 0..t.nnz() {
            let c = t.coord(n);
            assert_eq!(t.find_sorted(&c), Some(n));
            assert_eq!(t.value_at_sorted(&c), Some(t.values()[n]));
        }
        assert_eq!(t.find_sorted(&[0, 1, 1]), None);
        assert_eq!(t.value_at_sorted(&[2, 2, 2]), None);
    }

    #[test]
    fn merge_add_sums_shared_coordinates() {
        let mut a = CooTensor::new(vec![3, 3]).unwrap();
        a.push(&[0, 0], 1.0).unwrap();
        a.push(&[2, 2], 4.0).unwrap();
        let mut b = CooTensor::new(vec![3, 4]).unwrap();
        b.push(&[2, 2], -4.0).unwrap();
        b.push(&[1, 3], 2.0).unwrap();
        b.push(&[0, 1], 3.0).unwrap(); // unsorted on purpose
        a.merge_add(&b).unwrap();
        assert_eq!(a.dims(), &[3, 4]);
        assert!(a.is_sorted_canonical());
        assert_eq!(a.nnz(), 4); // explicit zero at (2,2) is kept
        assert_eq!(a.value_at_sorted(&[2, 2]), Some(0.0));
        assert_eq!(a.value_at_sorted(&[0, 1]), Some(3.0));
        assert_eq!(a.value_at_sorted(&[1, 3]), Some(2.0));
        let mut wrong = CooTensor::new(vec![2, 2, 2]).unwrap();
        wrong.push(&[0, 0, 0], 1.0).unwrap();
        assert!(a.merge_add(&wrong).is_err());
    }

    #[test]
    fn merge_add_matches_push_dedup() {
        // Differential check against the obvious implementation.
        let mut a = crate::gen::random_uniform(&[6, 5, 4], 60, 11).unwrap();
        let b = crate::gen::random_uniform(&[6, 5, 4], 40, 12).unwrap();
        let mut oracle = a.clone();
        b.for_each_nonzero(|c, v| oracle.push(c, v).unwrap());
        oracle.dedup_sum();
        a.merge_add(&b).unwrap();
        assert_eq!(a, oracle);
    }

    #[test]
    fn extract_mode_range_global_and_reindexed() {
        let t = t3(); // nonzeros at mode-0 indices 0, 2, 1
        let g = t.extract_mode_range(0, 1..3, false).unwrap();
        assert_eq!(g.dims(), &[3, 4, 5]);
        assert_eq!(g.mode_inds(0), &[2, 1]); // order preserved
        assert_eq!(g.values(), &[2.0, 3.0]);
        let l = t.extract_mode_range(0, 1..3, true).unwrap();
        assert_eq!(l.dims(), &[2, 4, 5]);
        assert_eq!(l.mode_inds(0), &[1, 0]);
        assert_eq!(l.mode_inds(2), &[4, 3]); // other modes untouched
                                             // Empty global-dims extraction is fine; reindexed empty range is not.
        assert_eq!(t.extract_mode_range(0, 1..1, false).unwrap().nnz(), 0);
        assert!(t.extract_mode_range(0, 1..1, true).is_err());
        assert!(t.extract_mode_range(0, 1..4, false).is_err());
        assert!(t.extract_mode_range(9, 0..1, false).is_err());
    }

    #[test]
    fn split_mode_partitions_every_nonzero() {
        let t = t3();
        let ranges = [0..1, 1..2, 2..3];
        let shards = t.split_mode(0, &ranges, false).unwrap();
        assert_eq!(shards.iter().map(CooTensor::nnz).sum::<usize>(), t.nnz());
        for (s, r) in shards.iter().zip(&ranges) {
            for &i in s.mode_inds(0) {
                assert!(r.contains(&(i as usize)));
            }
        }
        // Gap, overlap, and short coverage are rejected.
        assert!(t.split_mode(0, &[0..1, 2..3], false).is_err());
        assert!(t.split_mode(0, &[0..2, 1..3], false).is_err());
        assert!(t.split_mode(0, &[0..2], false).is_err());
    }

    #[test]
    fn rebase_inverts_reindexed_extraction() {
        let mut t = t3();
        t.dedup_sum();
        let ranges = [0..2, 2..3];
        let shards = t.split_mode(0, &ranges, true).unwrap();
        let mut merged: Option<CooTensor> = None;
        for (mut s, r) in shards.into_iter().zip(ranges.iter().cloned()) {
            s.rebase_mode(0, r.start, t.dims()[0]).unwrap();
            match &mut merged {
                None => merged = Some(s),
                Some(m) => m.merge_add(&s).unwrap(),
            }
        }
        assert_eq!(merged.unwrap(), t);
        let mut bad = t3();
        assert!(bad.rebase_mode(0, 5, 3).is_err()); // coordinate overflow
        assert!(bad.rebase_mode(9, 0, 3).is_err());
    }

    #[test]
    fn four_mode_tensor() {
        let mut t = CooTensor::new(vec![2, 2, 2, 2]).unwrap();
        t.push(&[1, 0, 1, 0], 1.0).unwrap();
        assert_eq!(t.nmodes(), 4);
        assert_eq!(t.coord(0), vec![1, 0, 1, 0]);
    }
}
