//! Coordinate-format (COO) sparse tensors.
//!
//! COO (Figure 2a in the paper) is the interchange format: FROSTT files,
//! synthetic generators and tests all produce COO, and [`crate::Csf`] is
//! compiled from it. Indices are stored structure-of-arrays (one `Vec`
//! per mode) so mode-wise passes are unit stride.

use crate::{Idx, TensorError};

/// A sparse tensor in coordinate format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// `inds[m][n]` is the mode-`m` coordinate of nonzero `n`.
    inds: Vec<Vec<Idx>>,
    vals: Vec<f64>,
}

impl CooTensor {
    /// Create an empty tensor with the given mode lengths.
    ///
    /// Requires at least two modes (a one-mode "tensor" is a vector and is
    /// not meaningful for CPD) and every mode length to fit in [`Idx`].
    pub fn new(dims: Vec<usize>) -> Result<Self, TensorError> {
        if dims.len() < 2 {
            return Err(TensorError::Invalid(format!(
                "tensors need >= 2 modes, got {}",
                dims.len()
            )));
        }
        for (m, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(TensorError::Invalid(format!("mode {m} has length 0")));
            }
            if d > Idx::MAX as usize {
                return Err(TensorError::Invalid(format!(
                    "mode {m} length {d} exceeds index type"
                )));
            }
        }
        let nmodes = dims.len();
        Ok(CooTensor {
            dims,
            inds: vec![Vec::new(); nmodes],
            vals: Vec::new(),
        })
    }

    /// Create with pre-allocated capacity for `cap` nonzeros.
    pub fn with_capacity(dims: Vec<usize>, cap: usize) -> Result<Self, TensorError> {
        let mut t = Self::new(dims)?;
        for v in &mut t.inds {
            v.reserve(cap);
        }
        t.vals.reserve(cap);
        Ok(t)
    }

    /// Append a nonzero. Coordinates are bounds-checked.
    pub fn push(&mut self, coords: &[Idx], val: f64) -> Result<(), TensorError> {
        if coords.len() != self.nmodes() {
            return Err(TensorError::Invalid(format!(
                "coordinate arity {} does not match order {}",
                coords.len(),
                self.nmodes()
            )));
        }
        for (m, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            if c as usize >= d {
                return Err(TensorError::IndexOutOfBounds {
                    mode: m,
                    index: c as u64,
                    dim: d,
                });
            }
        }
        for (m, &c) in coords.iter().enumerate() {
            self.inds[m].push(c);
        }
        self.vals.push(val);
        Ok(())
    }

    /// Number of modes (the tensor's order).
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinates of mode `m` for all nonzeros.
    #[inline]
    pub fn mode_inds(&self, m: usize) -> &[Idx] {
        &self.inds[m]
    }

    /// Values of all nonzeros.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Full coordinate of nonzero `n` (allocates; tests / cold paths).
    pub fn coord(&self, n: usize) -> Vec<Idx> {
        self.inds.iter().map(|col| col[n]).collect()
    }

    /// Squared Frobenius norm `||X||_F^2` — the denominator of the
    /// paper's relative-error metric.
    pub fn norm_sq(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }

    /// Density: `nnz / prod(dims)` computed in `f64` to avoid overflow.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Sort nonzeros lexicographically by the given mode order
    /// (`order[0]` is the most significant mode). Used by CSF compilation.
    pub fn sort_by_mode_order(&mut self, order: &[usize]) {
        debug_assert_eq!(order.len(), self.nmodes());
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &m in order {
                match self.inds[m][a].cmp(&self.inds[m][b]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        for col in &mut self.inds {
            let new: Vec<Idx> = perm.iter().map(|&p| col[p]).collect();
            *col = new;
        }
        let newv: Vec<f64> = perm.iter().map(|&p| self.vals[p]).collect();
        self.vals = newv;
    }

    /// Merge duplicate coordinates by summing their values.
    ///
    /// Sorts in canonical mode order first. Generators that sample random
    /// coordinates call this to restore the set-of-coordinates invariant.
    pub fn dedup_sum(&mut self) {
        if self.nnz() <= 1 {
            return;
        }
        let order: Vec<usize> = (0..self.nmodes()).collect();
        self.sort_by_mode_order(&order);
        let nmodes = self.nmodes();
        let mut w = 0usize; // write cursor
        for r in 1..self.nnz() {
            let same = (0..nmodes).all(|m| self.inds[m][r] == self.inds[m][w]);
            if same {
                self.vals[w] += self.vals[r];
            } else {
                w += 1;
                for m in 0..nmodes {
                    self.inds[m][w] = self.inds[m][r];
                }
                self.vals[w] = self.vals[r];
            }
        }
        let newlen = w + 1;
        for col in &mut self.inds {
            col.truncate(newlen);
        }
        self.vals.truncate(newlen);
    }

    /// Drop nonzeros whose magnitude is at most `tol` (cleans up
    /// generator output where planted model values cancel to ~0).
    pub fn prune(&mut self, tol: f64) {
        let keep: Vec<bool> = self.vals.iter().map(|v| v.abs() > tol).collect();
        for col in &mut self.inds {
            let mut it = keep.iter();
            col.retain(|_| *it.next().unwrap());
        }
        let mut it = keep.iter();
        self.vals.retain(|_| *it.next().unwrap());
    }

    /// Number of distinct indices appearing in mode `m` (occupied slices).
    pub fn occupied_slices(&self, m: usize) -> usize {
        let mut seen = vec![false; self.dims[m]];
        let mut count = 0;
        for &i in &self.inds[m] {
            if !seen[i as usize] {
                seen[i as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Histogram of nonzeros per slice of mode `m`.
    pub fn slice_counts(&self, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.dims[m]];
        for &i in &self.inds[m] {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Iterate the nonzeros as `(coordinate, value)` pairs without
    /// allocating per element (the coordinate buffer is reused).
    pub fn for_each_nonzero<F: FnMut(&[Idx], f64)>(&self, mut f: F) {
        let nmodes = self.nmodes();
        let mut coord = vec![0 as Idx; nmodes];
        for n in 0..self.nnz() {
            for (c, col) in coord.iter_mut().zip(&self.inds) {
                *c = col[n];
            }
            f(&coord, self.vals[n]);
        }
    }

    /// Iterator over `(coordinate, value)` pairs (allocates one `Vec`
    /// per element; use [`CooTensor::for_each_nonzero`] in hot paths).
    pub fn nonzeros(&self) -> impl Iterator<Item = (Vec<Idx>, f64)> + '_ {
        (0..self.nnz()).map(move |n| (self.coord(n), self.vals[n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 4, 5]).unwrap();
        t.push(&[0, 0, 0], 1.0).unwrap();
        t.push(&[2, 3, 4], 2.0).unwrap();
        t.push(&[1, 2, 3], 3.0).unwrap();
        t
    }

    #[test]
    fn new_validates_dims() {
        assert!(CooTensor::new(vec![3]).is_err());
        assert!(CooTensor::new(vec![3, 0]).is_err());
        assert!(CooTensor::new(vec![3, 4]).is_ok());
    }

    #[test]
    fn push_bounds_check() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        assert!(t.push(&[0, 2], 1.0).is_err());
        assert!(t.push(&[0], 1.0).is_err());
        assert!(t.push(&[1, 1], 1.0).is_ok());
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn norm_and_density() {
        let t = t3();
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.density() - 3.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn sort_lexicographic() {
        let mut t = t3();
        t.sort_by_mode_order(&[0, 1, 2]);
        assert_eq!(t.mode_inds(0), &[0, 1, 2]);
        assert_eq!(t.values(), &[1.0, 3.0, 2.0]);
    }

    #[test]
    fn sort_with_permuted_order() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 1], 1.0).unwrap();
        t.push(&[1, 0], 2.0).unwrap();
        // Mode-1-major order puts (1,0) first.
        t.sort_by_mode_order(&[1, 0]);
        assert_eq!(t.values(), &[2.0, 1.0]);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 0], 1.0).unwrap();
        t.push(&[1, 1], 5.0).unwrap();
        t.push(&[0, 0], 2.0).unwrap();
        t.dedup_sum();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.values(), &[3.0, 5.0]);
    }

    #[test]
    fn prune_removes_small_values() {
        let mut t = CooTensor::new(vec![2, 2]).unwrap();
        t.push(&[0, 0], 1e-12).unwrap();
        t.push(&[1, 1], 1.0).unwrap();
        t.prune(1e-9);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.coord(0), vec![1, 1]);
    }

    #[test]
    fn slice_statistics() {
        let t = t3();
        assert_eq!(t.occupied_slices(0), 3);
        assert_eq!(t.slice_counts(0), vec![1, 1, 1]);
        assert_eq!(t.slice_counts(2)[4], 1);
    }

    #[test]
    fn coord_roundtrip() {
        let t = t3();
        assert_eq!(t.coord(1), vec![2, 3, 4]);
    }

    #[test]
    fn nonzero_iteration_apis_agree() {
        let t = t3();
        let collected: Vec<(Vec<Idx>, f64)> = t.nonzeros().collect();
        let mut streamed = Vec::new();
        t.for_each_nonzero(|c, v| streamed.push((c.to_vec(), v)));
        assert_eq!(collected, streamed);
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn four_mode_tensor() {
        let mut t = CooTensor::new(vec![2, 2, 2, 2]).unwrap();
        t.push(&[1, 0, 1, 0], 1.0).unwrap();
        assert_eq!(t.nmodes(), 4);
        assert_eq!(t.coord(0), vec![1, 0, 1, 0]);
    }
}
