//! Tensor transformations: mode permutation, subsampling, and
//! train/test splitting.
//!
//! These are the data-preparation steps real pipelines run before
//! factorization — e.g. holding out nonzeros to evaluate a recommender
//! factorization — implemented over COO so they compose with I/O and the
//! generators.

use crate::coord::CooTensor;
use crate::TensorError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Reorder the modes of a tensor: mode `m` of the result is mode
/// `perm[m]` of the input.
pub fn permute_modes(t: &CooTensor, perm: &[usize]) -> Result<CooTensor, TensorError> {
    let nmodes = t.nmodes();
    if perm.len() != nmodes {
        return Err(TensorError::Invalid(format!(
            "permutation of length {} for {nmodes} modes",
            perm.len()
        )));
    }
    let mut seen = vec![false; nmodes];
    for &p in perm {
        if p >= nmodes || seen[p] {
            return Err(TensorError::Invalid(format!(
                "{perm:?} is not a permutation of 0..{nmodes}"
            )));
        }
        seen[p] = true;
    }
    let dims: Vec<usize> = perm.iter().map(|&p| t.dims()[p]).collect();
    let mut out = CooTensor::with_capacity(dims, t.nnz())?;
    let mut coord = vec![0; nmodes];
    for n in 0..t.nnz() {
        for (m, &p) in perm.iter().enumerate() {
            coord[m] = t.mode_inds(p)[n];
        }
        out.push(&coord, t.values()[n])?;
    }
    Ok(out)
}

/// Keep a uniformly random fraction of the nonzeros (seeded).
pub fn subsample(t: &CooTensor, keep_frac: f64, seed: u64) -> Result<CooTensor, TensorError> {
    if !(0.0..=1.0).contains(&keep_frac) {
        return Err(TensorError::Invalid(format!(
            "keep fraction {keep_frac} outside [0, 1]"
        )));
    }
    let (kept, _) = train_test_split(t, 1.0 - keep_frac, seed)?;
    Ok(kept)
}

/// Split the nonzeros into disjoint train/test sets (seeded shuffle).
/// `test_frac` of the nonzeros (rounded down) go to the test set.
pub fn train_test_split(
    t: &CooTensor,
    test_frac: f64,
    seed: u64,
) -> Result<(CooTensor, CooTensor), TensorError> {
    if !(0.0..=1.0).contains(&test_frac) {
        return Err(TensorError::Invalid(format!(
            "test fraction {test_frac} outside [0, 1]"
        )));
    }
    let n = t.nnz();
    let ntest = (n as f64 * test_frac).floor() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut train = CooTensor::with_capacity(t.dims().to_vec(), n - ntest)?;
    let mut test = CooTensor::with_capacity(t.dims().to_vec(), ntest)?;
    let nmodes = t.nmodes();
    let mut coord = vec![0; nmodes];
    for (pos, &idx) in order.iter().enumerate() {
        for (m, c) in coord.iter_mut().enumerate().take(nmodes) {
            *c = t.mode_inds(m)[idx];
        }
        if pos < ntest {
            test.push(&coord, t.values()[idx])?;
        } else {
            train.push(&coord, t.values()[idx])?;
        }
    }
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tensor() -> CooTensor {
        gen::random_uniform(&[20, 15, 10], 400, 5).unwrap()
    }

    #[test]
    fn permute_roundtrip() {
        let t = tensor();
        let p = permute_modes(&t, &[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[10, 20, 15]);
        assert_eq!(p.nnz(), t.nnz());
        // Inverse permutation restores the original.
        let back = permute_modes(&p, &[1, 2, 0]).unwrap();
        let mut a = back;
        a.sort_by_mode_order(&[0, 1, 2]);
        let mut b = t;
        b.sort_by_mode_order(&[0, 1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn permute_validates() {
        let t = tensor();
        assert!(permute_modes(&t, &[0, 1]).is_err());
        assert!(permute_modes(&t, &[0, 0, 1]).is_err());
        assert!(permute_modes(&t, &[0, 1, 5]).is_err());
    }

    #[test]
    fn split_is_disjoint_partition() {
        let t = tensor();
        let (train, test) = train_test_split(&t, 0.25, 7).unwrap();
        assert_eq!(train.nnz() + test.nnz(), t.nnz());
        assert_eq!(test.nnz(), t.nnz() / 4);
        // Values are conserved (the split moves, never duplicates).
        let total: f64 = t.values().iter().sum();
        let split_total: f64 =
            train.values().iter().sum::<f64>() + test.values().iter().sum::<f64>();
        assert!((total - split_total).abs() < 1e-9);
    }

    #[test]
    fn split_is_seeded() {
        let t = tensor();
        let (a, _) = train_test_split(&t, 0.3, 9).unwrap();
        let (b, _) = train_test_split(&t, 0.3, 9).unwrap();
        let (c, _) = train_test_split(&t, 0.3, 10).unwrap();
        let sort = |mut x: CooTensor| {
            x.sort_by_mode_order(&[0, 1, 2]);
            x
        };
        assert_eq!(sort(a.clone()), sort(b));
        assert_ne!(sort(a), sort(c));
    }

    #[test]
    fn subsample_keeps_expected_count() {
        let t = tensor();
        let s = subsample(&t, 0.5, 3).unwrap();
        let expected = t.nnz() - t.nnz() / 2;
        assert_eq!(s.nnz(), expected);
        assert!(subsample(&t, 1.5, 3).is_err());
    }

    #[test]
    fn extreme_fractions() {
        let t = tensor();
        let (train, test) = train_test_split(&t, 0.0, 1).unwrap();
        assert_eq!(train.nnz(), t.nnz());
        assert_eq!(test.nnz(), 0);
        let (train, test) = train_test_split(&t, 1.0, 1).unwrap();
        assert_eq!(train.nnz(), 0);
        assert_eq!(test.nnz(), t.nnz());
        assert!(train_test_split(&t, -0.1, 1).is_err());
    }
}
