//! Zipf (power-law) sampling for synthetic tensor generation.
//!
//! The paper's blocked-ADMM argument rests on real datasets having
//! power-law nonzero distributions ("prolific users and popular items",
//! Section IV-B), so the synthetic analogs must sample slice indices from
//! a heavy-tailed distribution. This is the standard rejection-inversion
//! sampler of Hörmann & Derflinger (1996), the same algorithm used by
//! `rand_distr::Zipf`, implemented here to keep the dependency footprint
//! to the approved crate list.

use rand::Rng;

/// Samples `1..=n` with `P(k) proportional to 1 / k^s`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` puts more
/// mass on small indices (more skew). Real tensors in the paper's domains
/// typically look like `s` in `[0.5, 1.5]`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_n: f64,
    dist: f64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics when `n == 0`, or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let n = n as f64;
        let q = s;
        // H(x) is an antiderivative of the density bound h(x) = x^-q.
        let h = |x: f64| -> f64 {
            if (q - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n + 0.5);
        Zipf {
            n,
            s: q,
            h_n,
            dist: h_x1 - h_n,
        }
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        let q = self.s;
        if (q - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - q)).powf(1.0 / (1.0 - q))
        }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        let q = self.s;
        if (q - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - q) - 1.0) / (1.0 - q)
        }
    }

    /// Draw one sample in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            // Uniform fast path.
            return rng.gen_range(1..=self.n as u64);
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * self.dist;
            let x = self.h_inv(u);
            let k = x.clamp(1.0, self.n).round();
            // Rejection-inversion acceptance test: u must fall under the
            // true mass of bucket k, i.e. u >= H(k + 1/2) - k^-s.
            if u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }

    /// Draw a 0-based index in `0..n` (convenience for tensor coords).
    #[inline]
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample(rng) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &s in &[0.0, 0.5, 1.0, 1.5, 2.0] {
            let z = Zipf::new(100, s);
            for _ in 0..2000 {
                let k = z.sample(&mut rng);
                assert!((1..=100).contains(&k), "s={s} produced {k}");
            }
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        // Each bucket should get about 2000 draws.
        for &c in &counts {
            assert!((1500..2500).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn skew_increases_head_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut head_mass = |s: f64| {
            let z = Zipf::new(1000, s);
            let mut head = 0usize;
            for _ in 0..20_000 {
                if z.sample(&mut rng) <= 10 {
                    head += 1;
                }
            }
            head
        };
        let flat = head_mass(0.0);
        let mild = head_mass(0.8);
        let steep = head_mass(1.5);
        assert!(mild > flat * 5, "mild={mild} flat={flat}");
        assert!(steep > mild, "steep={steep} mild={mild}");
    }

    #[test]
    fn matches_analytic_frequencies_s1() {
        // For s=1, P(1)/P(2) = 2.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let z = Zipf::new(50, 1.0);
        let mut c1 = 0usize;
        let mut c2 = 0usize;
        for _ in 0..100_000 {
            match z.sample(&mut rng) {
                1 => c1 += 1,
                2 => c2 += 1,
                _ => {}
            }
        }
        let ratio = c1 as f64 / c2 as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn support_of_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let z = Zipf::new(1, 1.2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sample_index_is_zero_based() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let z = Zipf::new(5, 1.0);
        for _ in 0..500 {
            assert!(z.sample_index(&mut rng) < 5);
        }
    }
}
