//! Dense tensors.
//!
//! Small dense tensors back the reference computations in tests (full
//! reconstructions, explicit matricizations) and support the
//! related-work dense algorithms. Storage is row-major with the last
//! mode fastest, matching the matricization convention of Kolda & Bader
//! that the paper uses (`X_(1)` of an `I x J x K` tensor is `I x JK`).

use crate::coord::CooTensor;
use crate::{Idx, TensorError};

/// A dense tensor of arbitrary order.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    /// Row-major with the last mode fastest.
    data: Vec<f64>,
}

impl DenseTensor {
    /// All-zero tensor. Total size must fit in memory; callers are
    /// expected to keep dense tensors small.
    pub fn zeros(dims: Vec<usize>) -> Result<Self, TensorError> {
        if dims.len() < 2 {
            return Err(TensorError::Invalid("tensors need >= 2 modes".into()));
        }
        let mut cells = 1usize;
        for (m, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(TensorError::Invalid(format!("mode {m} has length 0")));
            }
            cells = cells
                .checked_mul(d)
                .ok_or_else(|| TensorError::Invalid("dense tensor too large".into()))?;
        }
        Ok(DenseTensor {
            dims,
            data: vec![0.0; cells],
        })
    }

    /// Materialize a sparse tensor densely.
    pub fn from_coo(coo: &CooTensor) -> Result<Self, TensorError> {
        let mut t = Self::zeros(coo.dims().to_vec())?;
        for n in 0..coo.nnz() {
            let idx = t.linear_index_of(|m| coo.mode_inds(m)[n] as usize);
            t.data[idx] += coo.values()[n];
        }
        Ok(t)
    }

    /// Mode lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.dims.len()
    }

    /// Raw data, row-major, last mode fastest.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    fn linear_index_of(&self, coord: impl Fn(usize) -> usize) -> usize {
        let mut idx = 0usize;
        for (m, &d) in self.dims.iter().enumerate() {
            idx = idx * d + coord(m);
        }
        idx
    }

    /// Value at a coordinate.
    pub fn get(&self, coord: &[Idx]) -> f64 {
        debug_assert_eq!(coord.len(), self.nmodes());
        self.data[self.linear_index_of(|m| coord[m] as usize)]
    }

    /// Set the value at a coordinate.
    pub fn set(&mut self, coord: &[Idx], v: f64) {
        debug_assert_eq!(coord.len(), self.nmodes());
        let idx = self.linear_index_of(|m| coord[m] as usize);
        self.data[idx] = v;
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Convert to COO, keeping entries with `|x| > tol`.
    pub fn to_coo(&self, tol: f64) -> Result<CooTensor, TensorError> {
        let nmodes = self.nmodes();
        let mut coo = CooTensor::new(self.dims.clone())?;
        let mut coord = vec![0 as Idx; nmodes];
        for (lin, &v) in self.data.iter().enumerate() {
            if v.abs() > tol {
                let mut rem = lin;
                for m in (0..nmodes).rev() {
                    coord[m] = (rem % self.dims[m]) as Idx;
                    rem /= self.dims[m];
                }
                coo.push(&coord, v)?;
            }
        }
        Ok(coo)
    }

    /// Mode-`mode` matricization `X_(m)`: a `dims[m] x prod(other dims)`
    /// row-major matrix buffer, with the column index following Kolda &
    /// Bader's convention (earlier non-`mode` modes vary slower...
    /// specifically column = sum over other modes of `i_k * J_k` with
    /// `J_k = prod_{n < k, n != mode} dims[n]`).
    pub fn matricize(&self, mode: usize) -> Result<(usize, usize, Vec<f64>), TensorError> {
        let nmodes = self.nmodes();
        if mode >= nmodes {
            return Err(TensorError::Invalid(format!("mode {mode} out of range")));
        }
        let rows = self.dims[mode];
        let cols = self.data.len() / rows;
        let mut out = vec![0.0f64; self.data.len()];

        // Strides J_k for the matricized column index.
        let mut strides = vec![0usize; nmodes];
        {
            let mut acc = 1usize;
            for (k, stride) in strides.iter_mut().enumerate() {
                if k == mode {
                    continue;
                }
                *stride = acc;
                acc *= self.dims[k];
            }
        }
        let mut coord = vec![0usize; nmodes];
        for (lin, &v) in self.data.iter().enumerate() {
            let mut rem = lin;
            for m in (0..nmodes).rev() {
                coord[m] = rem % self.dims[m];
                rem /= self.dims[m];
            }
            let mut col = 0usize;
            for k in 0..nmodes {
                if k != mode {
                    col += coord[k] * strides[k];
                }
            }
            out[coord[mode] * cols + col] = v;
        }
        Ok((rows, cols, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_validates() {
        assert!(DenseTensor::zeros(vec![3]).is_err());
        assert!(DenseTensor::zeros(vec![3, 0]).is_err());
        assert!(DenseTensor::zeros(vec![usize::MAX, 3]).is_err());
        assert!(DenseTensor::zeros(vec![2, 3, 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = DenseTensor::zeros(vec![2, 3, 4]).unwrap();
        t.set(&[1, 2, 3], 5.0);
        assert_eq!(t.get(&[1, 2, 3]), 5.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        assert_eq!(t.norm_sq(), 25.0);
    }

    #[test]
    fn coo_roundtrip_sums_duplicates() {
        let mut coo = CooTensor::new(vec![2, 2]).unwrap();
        coo.push(&[0, 1], 1.0).unwrap();
        coo.push(&[0, 1], 2.0).unwrap();
        coo.push(&[1, 0], -1.0).unwrap();
        let dense = DenseTensor::from_coo(&coo).unwrap();
        assert_eq!(dense.get(&[0, 1]), 3.0);
        let mut back = dense.to_coo(0.0).unwrap();
        back.sort_by_mode_order(&[0, 1]);
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.values(), &[3.0, -1.0]);
    }

    #[test]
    fn matricize_mode0_of_three_mode() {
        // X(i,j,k) = 100i + 10j + k over a 2x2x2 cube.
        let mut t = DenseTensor::zeros(vec![2, 2, 2]).unwrap();
        for i in 0..2u32 {
            for j in 0..2u32 {
                for k in 0..2u32 {
                    t.set(&[i, j, k], (100 * i + 10 * j + k) as f64);
                }
            }
        }
        let (rows, cols, m) = t.matricize(0).unwrap();
        assert_eq!((rows, cols), (2, 4));
        // Column of (j,k) = j * 1 + k * dims[1] = j + 2k.
        // Row 0: (j,k) = (0,0),(1,0),(0,1),(1,1) -> 0, 10, 1, 11.
        assert_eq!(&m[0..4], &[0.0, 10.0, 1.0, 11.0]);
        assert_eq!(&m[4..8], &[100.0, 110.0, 101.0, 111.0]);
    }

    #[test]
    fn matricize_preserves_norm() {
        let mut t = DenseTensor::zeros(vec![3, 4, 2]).unwrap();
        for (i, v) in (0..24).enumerate() {
            let c = [(i / 8) as Idx, ((i / 2) % 4) as Idx, (i % 2) as Idx];
            t.set(&c, v as f64);
        }
        for mode in 0..3 {
            let (_, _, m) = t.matricize(mode).unwrap();
            let nsq: f64 = m.iter().map(|x| x * x).sum();
            assert!((nsq - t.norm_sq()).abs() < 1e-9, "mode {mode}");
        }
        assert!(t.matricize(5).is_err());
    }
}
