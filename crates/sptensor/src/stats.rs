//! Tensor summary statistics.
//!
//! Used by the benchmark harness to print Table I-style summaries and by
//! the structure-selection heuristics to reason about slice skew (the
//! property that motivates blocked ADMM in Section IV-B).

use crate::coord::CooTensor;

/// Per-mode statistics of a sparse tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeStats {
    /// Mode length.
    pub dim: usize,
    /// Number of slices with at least one nonzero.
    pub occupied_slices: usize,
    /// Mean nonzeros per slice (over all slices, including empty).
    pub mean_slice_nnz: f64,
    /// Largest slice.
    pub max_slice_nnz: usize,
    /// Ratio max/mean — a crude skew measure; >> 1 indicates power-law
    /// "high-signal rows" that benefit from blockwise ADMM.
    pub skew: f64,
}

/// Whole-tensor statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Mode lengths.
    pub dims: Vec<usize>,
    /// Fraction of occupied cells.
    pub density: f64,
    /// Frobenius norm of the values.
    pub norm: f64,
    /// Per-mode statistics.
    pub modes: Vec<ModeStats>,
}

impl TensorStats {
    /// Compute statistics for a COO tensor.
    pub fn compute(t: &CooTensor) -> Self {
        let modes = (0..t.nmodes())
            .map(|m| {
                let counts = t.slice_counts(m);
                let occupied = counts.iter().filter(|&&c| c > 0).count();
                let max = counts.iter().copied().max().unwrap_or(0);
                let mean = if counts.is_empty() {
                    0.0
                } else {
                    t.nnz() as f64 / counts.len() as f64
                };
                ModeStats {
                    dim: t.dims()[m],
                    occupied_slices: occupied,
                    mean_slice_nnz: mean,
                    max_slice_nnz: max,
                    skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
                }
            })
            .collect();
        TensorStats {
            nnz: t.nnz(),
            dims: t.dims().to_vec(),
            density: t.density(),
            norm: t.norm_sq().sqrt(),
            modes,
        }
    }

    /// Human-readable multi-line summary (Table I style).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let dims = self
            .dims
            .iter()
            .map(|d| format_count(*d as f64))
            .collect::<Vec<_>>()
            .join(" x ");
        let _ = writeln!(
            s,
            "nnz={} dims={} density={:.3e}",
            format_count(self.nnz as f64),
            dims,
            self.density
        );
        for (m, ms) in self.modes.iter().enumerate() {
            let _ = writeln!(
                s,
                "  mode {m}: len={} occupied={} mean/slice={:.1} max/slice={} skew={:.1}",
                ms.dim, ms.occupied_slices, ms.mean_slice_nnz, ms.max_slice_nnz, ms.skew
            );
        }
        s
    }
}

/// Format a count the way Table I does: `95M`, `310K`, `1.7B`.
pub fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.0}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.0}K", x / 1e3)
    } else {
        format!("{:.0}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 4]).unwrap();
        t.push(&[0, 0], 3.0).unwrap();
        t.push(&[0, 1], 4.0).unwrap();
        t.push(&[2, 3], 1.0).unwrap();
        t
    }

    #[test]
    fn basic_stats() {
        let s = TensorStats::compute(&sample());
        assert_eq!(s.nnz, 3);
        assert_eq!(s.dims, vec![3, 4]);
        assert!((s.norm - (26.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.modes[0].occupied_slices, 2);
        assert_eq!(s.modes[0].max_slice_nnz, 2);
    }

    #[test]
    fn skew_detects_heavy_slice() {
        let mut t = CooTensor::new(vec![10, 10]).unwrap();
        for j in 0..10 {
            t.push(&[0, j], 1.0).unwrap(); // slice 0 holds everything
        }
        let s = TensorStats::compute(&t);
        // mean over mode 0 slices = 1.0, max = 10 -> skew = 10.
        assert!((s.modes[0].skew - 10.0).abs() < 1e-12);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(95_000_000.0), "95M");
        assert_eq!(format_count(310_000.0), "310K");
        assert_eq!(format_count(1_700_000_000.0), "1.7B");
        assert_eq!(format_count(46.0), "46");
    }

    #[test]
    fn summary_is_nonempty() {
        let s = TensorStats::compute(&sample());
        let text = s.summary();
        assert!(text.contains("mode 0"));
        assert!(text.contains("nnz=3"));
    }
}
