//! Self-contained deterministic PRNG (SplitMix64).
//!
//! The oracles and generators must be reproducible from a single seed
//! forever: test inputs are referenced by seed in failure reports and in
//! DESIGN.md, so they cannot depend on the stream stability of an
//! external RNG crate. SplitMix64 is tiny, statistically solid for test
//! data, and trivially stable.

/// A SplitMix64 generator. Equal seeds produce equal streams, on every
/// platform, forever.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform index in `0..n` (`n` must be positive).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Multiply-shift; bias is negligible for test-sized ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Pin the stream: SplitMix64(seed=0) starts with this constant.
        let mut r = TestRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = TestRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn index_in_range_and_covers() {
        let mut r = TestRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = TestRng::new(9);
        for _ in 0..200 {
            let v = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
