//! Differential-verification toolkit for the AO-ADMM stack.
//!
//! Every optimized kernel in this workspace (CSF MTTKRP and its
//! execution plans, CSR/hybrid factor snapshots, blocked and fused ADMM,
//! the SPLATT fit trick) is validated against a *slow but obviously
//! correct* reference implementation living here. The oracles are
//! written straight from the mathematical definitions — naive loops over
//! COO nonzeros and dense matrices, no parallelism, no shared code with
//! the optimized paths — so a conformance failure localizes the bug to
//! the optimized side.
//!
//! The crate has four pieces:
//!
//! * [`rng`] — a tiny self-contained SplitMix64 PRNG, so generated
//!   inputs are reproducible from a single `u64` seed and independent of
//!   any external RNG crate's stream stability;
//! * [`oracle`] — reference kernels: COO MTTKRP, naive Gram /
//!   Khatri–Rao / Hadamard / Cholesky, scalar proximity operators, and
//!   the full (dense-enumeration) CPD objective;
//! * [`gen`] — deterministic generators for tensors (uniform and
//!   skewed), factor matrices (dense and sparse), and the constraint
//!   suite;
//! * [`tolerance`] and [`shrink`] — ULP/relative-error comparison with
//!   a documented tolerance policy, and greedy failure minimization
//!   (shrink a failing tensor to a minimal reproducer before reporting).
//!
//! The conformance harness built on top lives in the workspace-level
//! `tests/conformance_*.rs` suites (wired into the `aoadmm` package).

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod tolerance;

pub use rng::TestRng;
pub use shrink::shrink_tensor;
pub use tolerance::{assert_mats_close, mat_diff, mats_close, ulp_diff, MatDiff};
