//! Deterministic generators for conformance inputs.
//!
//! Everything is driven by the self-contained [`TestRng`](crate::rng),
//! so a `(shape, seed)` pair printed in a failure report reproduces the
//! exact input on any machine. The generators deliberately cover the
//! regimes the optimized kernels specialize for: uniform and
//! Zipf-skewed nonzero distributions (root-parallel vs fiber-privatized
//! MTTKRP), dense and sparse factors (DENSE vs CSR vs CSR-H reads), and
//! the full constraint suite.

use crate::rng::TestRng;
use admm::{constraints, Prox};
use splinalg::DMat;
use sptensor::{CooTensor, Idx};
use std::sync::Arc;

/// Uniform random COO tensor: `nnz` draws with uniform coordinates and
/// values in `[0.5, 1.5)`, duplicates merged. The result is non-empty
/// for any `nnz >= 1`.
pub fn tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    skewed_tensor(dims, nnz, 1.0, seed)
}

/// Random COO tensor with power-law-skewed coordinates: each index is
/// drawn as `floor(d * u^skew)` for uniform `u`, so `skew = 1` is
/// uniform and larger values concentrate nonzeros on low indices (the
/// "few hot slices" regime the fiber-privatized MTTKRP path targets).
pub fn skewed_tensor(dims: &[usize], nnz: usize, skew: f64, seed: u64) -> CooTensor {
    assert!(nnz >= 1, "generated tensors must be non-empty");
    let mut rng = TestRng::new(seed);
    let mut t = CooTensor::with_capacity(dims.to_vec(), nnz).expect("valid dims");
    let mut coord = vec![0 as Idx; dims.len()];
    for _ in 0..nnz {
        for (m, &d) in dims.iter().enumerate() {
            let u = rng.next_f64().powf(skew);
            coord[m] = (((d as f64) * u) as usize).min(d - 1) as Idx;
        }
        t.push(&coord, rng.uniform(0.5, 1.5)).expect("in bounds");
    }
    t.dedup_sum();
    t
}

/// One dense factor matrix per mode, entries uniform in `[lo, hi)`.
pub fn factors(dims: &[usize], rank: usize, lo: f64, hi: f64, seed: u64) -> Vec<DMat> {
    let mut rng = TestRng::new(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for v in m.as_mut_slice() {
                *v = rng.uniform(lo, hi);
            }
            m
        })
        .collect()
}

/// A factor matrix where each entry is nonzero (uniform in `[0.1, 1.0)`)
/// with probability `density` — the input regime for CSR/hybrid
/// snapshots.
pub fn sparse_factor(rows: usize, cols: usize, density: f64, seed: u64) -> DMat {
    let mut rng = TestRng::new(seed);
    let mut m = DMat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        if rng.next_f64() < density {
            *v = rng.uniform(0.1, 1.0);
        }
    }
    m
}

/// One operation of a synthetic delta stream (mirrors the streaming
/// crate's op vocabulary without depending on it — testkit sits below
/// every crate it tests).
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Add `val` to the entry at `coord` (appends a nonzero if absent).
    Add {
        /// Coordinate of the nonzero.
        coord: Vec<Idx>,
        /// Value to add.
        val: f64,
    },
    /// Overwrite the entry at `coord` with `val`.
    Set {
        /// Coordinate of the nonzero.
        coord: Vec<Idx>,
        /// New value.
        val: f64,
    },
    /// Extend `mode` to `new_len` indices (new users/items).
    Grow {
        /// Mode to extend.
        mode: usize,
        /// New mode length (strictly larger than the current one).
        new_len: usize,
    },
}

/// One batch of delta operations, applied atomically between refits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// Operations in arrival order.
    pub ops: Vec<DeltaOp>,
}

/// Configuration for [`delta_stream`].
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Initial mode lengths.
    pub dims: Vec<usize>,
    /// Nonzero draws for the base tensor (deduped, so the base may hold
    /// slightly fewer).
    pub base_nnz: usize,
    /// Number of batches to generate.
    pub batches: usize,
    /// Add/Set operations per batch.
    pub ops_per_batch: usize,
    /// Probability that an operation updates an existing coordinate
    /// instead of appending a fresh one.
    pub update_fraction: f64,
    /// Probability that a batch starts by growing one random mode.
    pub growth_prob: f64,
    /// Maximum rows a single growth operation adds.
    pub max_grow_rows: usize,
    /// Seed for the whole stream (base tensor and batches).
    pub seed: u64,
}

impl StreamSpec {
    /// A small stream covering all op kinds — the conformance default.
    pub fn small(seed: u64) -> Self {
        StreamSpec {
            dims: vec![12, 10, 8],
            base_nnz: 400,
            batches: 6,
            ops_per_batch: 60,
            update_fraction: 0.3,
            growth_prob: 0.5,
            max_grow_rows: 3,
            seed,
        }
    }
}

/// Deterministic delta-stream generator: a base tensor plus
/// SplitMix64-seeded batches with a configurable append/update/growth
/// mix. Update ops target coordinates known to exist at that point in
/// the stream; append ops draw fresh coordinates inside the dimensions
/// current at that point (so growth is exercised by later appends).
pub fn delta_stream(spec: &StreamSpec) -> (CooTensor, Vec<DeltaBatch>) {
    assert!(spec.batches >= 1 && spec.ops_per_batch >= 1);
    let base = tensor(&spec.dims, spec.base_nnz, spec.seed);
    let mut rng = TestRng::new(spec.seed ^ 0x5EED_CAFE_F00D_D1CE);
    let mut dims = spec.dims.clone();
    let mut known: Vec<Vec<Idx>> = (0..base.nnz()).map(|n| base.coord(n)).collect();

    let mut batches = Vec::with_capacity(spec.batches);
    for _ in 0..spec.batches {
        let mut ops = Vec::with_capacity(spec.ops_per_batch + 1);
        if rng.next_f64() < spec.growth_prob {
            let mode = rng.index(dims.len());
            let extra = 1 + rng.index(spec.max_grow_rows.max(1));
            dims[mode] += extra;
            ops.push(DeltaOp::Grow {
                mode,
                new_len: dims[mode],
            });
        }
        for _ in 0..spec.ops_per_batch {
            if rng.next_f64() < spec.update_fraction && !known.is_empty() {
                let coord = known[rng.index(known.len())].clone();
                if rng.next_f64() < 0.5 {
                    ops.push(DeltaOp::Set {
                        coord,
                        val: rng.uniform(0.5, 1.5),
                    });
                } else {
                    ops.push(DeltaOp::Add {
                        coord,
                        val: rng.uniform(-0.5, 0.5),
                    });
                }
            } else {
                let coord: Vec<Idx> = dims.iter().map(|&d| rng.index(d) as Idx).collect();
                known.push(coord.clone());
                ops.push(DeltaOp::Add {
                    coord,
                    val: rng.uniform(0.1, 1.0),
                });
            }
        }
        batches.push(DeltaBatch { ops });
    }
    (base, batches)
}

/// Oracle application of a delta stream: dense-map semantics, no
/// incremental bookkeeping. Coordinates keep explicit zeros (streaming
/// buffers do the same so the two stay `nnz`-comparable); the result is
/// in canonical sorted order.
pub fn apply_delta_batches(base: &CooTensor, batches: &[DeltaBatch]) -> CooTensor {
    use std::collections::BTreeMap;
    let mut dims = base.dims().to_vec();
    let mut map: BTreeMap<Vec<Idx>, f64> = BTreeMap::new();
    base.for_each_nonzero(|c, v| {
        *map.entry(c.to_vec()).or_insert(0.0) += v;
    });
    for batch in batches {
        for op in &batch.ops {
            match op {
                DeltaOp::Add { coord, val } => {
                    *map.entry(coord.clone()).or_insert(0.0) += val;
                }
                DeltaOp::Set { coord, val } => {
                    map.insert(coord.clone(), *val);
                }
                DeltaOp::Grow { mode, new_len } => {
                    assert!(*new_len >= dims[*mode], "oracle saw a shrink");
                    dims[*mode] = *new_len;
                }
            }
        }
    }
    let mut out = CooTensor::with_capacity(dims, map.len()).expect("valid dims");
    for (coord, val) in map {
        out.push(&coord, val).expect("in bounds");
    }
    out
}

/// The full built-in constraint suite, labeled for failure reports.
/// Conformance tests sweep every entry so each proximity operator is
/// pinned to its scalar oracle.
pub fn constraint_suite() -> Vec<(&'static str, Arc<dyn Prox>)> {
    vec![
        ("unconstrained", constraints::unconstrained()),
        ("nonneg", constraints::nonneg()),
        ("lasso(0.3)", constraints::lasso(0.3)),
        ("nonneg_lasso(0.3)", constraints::nonneg_lasso(0.3)),
        ("ridge(0.5)", constraints::ridge(0.5)),
        ("boxed(-0.5,0.5)", constraints::boxed(-0.5, 0.5)),
        ("simplex", constraints::simplex()),
        ("max_row_norm(1.0)", constraints::max_row_norm(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_is_deterministic_and_in_bounds() {
        let a = tensor(&[10, 8, 6], 200, 3);
        let b = tensor(&[10, 8, 6], 200, 3);
        assert_eq!(a, b);
        assert!(a.nnz() >= 1 && a.nnz() <= 200);
        for n in 0..a.nnz() {
            let c = a.coord(n);
            assert!((c[0] as usize) < 10 && (c[1] as usize) < 8 && (c[2] as usize) < 6);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_indices() {
        let t = skewed_tensor(&[100, 100], 5_000, 4.0, 7);
        let counts = t.slice_counts(0);
        let low: usize = counts[..10].iter().sum();
        // Post-dedup the hot corner collapses (collisions cluster there),
        // so compare against the uniform share (10%) rather than an
        // absolute majority: the first 10 slices must hold at least
        // double what a uniform draw would put there.
        assert!(
            low * 5 > t.nnz(),
            "expected >2x the uniform share in the first 10 slices, got {low}/{}",
            t.nnz()
        );
        assert!(
            counts[..10].iter().sum::<usize>() > counts[45..55].iter().sum::<usize>(),
            "low slices should be hotter than mid slices"
        );
    }

    #[test]
    fn factors_shapes_and_range() {
        let fs = factors(&[5, 7], 3, -1.0, 1.0, 11);
        assert_eq!(fs.len(), 2);
        assert_eq!((fs[0].nrows(), fs[0].ncols()), (5, 3));
        assert_eq!((fs[1].nrows(), fs[1].ncols()), (7, 3));
        assert!(fs
            .iter()
            .all(|f| f.as_slice().iter().all(|v| v.abs() < 1.0)));
    }

    #[test]
    fn sparse_factor_density_tracks_request() {
        let m = sparse_factor(100, 20, 0.1, 13);
        let d = m.density(0.0);
        assert!(d > 0.02 && d < 0.25, "density {d}");
        assert_eq!(sparse_factor(10, 5, 0.0, 1).count_nonzeros(0.0), 0);
    }

    #[test]
    fn delta_stream_is_deterministic() {
        let spec = StreamSpec::small(5);
        let (base_a, batches_a) = delta_stream(&spec);
        let (base_b, batches_b) = delta_stream(&spec);
        assert_eq!(base_a, base_b);
        assert_eq!(batches_a, batches_b);
        assert_eq!(batches_a.len(), spec.batches);
    }

    #[test]
    fn delta_stream_mixes_op_kinds() {
        let mut spec = StreamSpec::small(7);
        spec.batches = 12;
        spec.growth_prob = 0.8;
        let (_, batches) = delta_stream(&spec);
        let ops: Vec<&DeltaOp> = batches.iter().flat_map(|b| b.ops.iter()).collect();
        assert!(ops.iter().any(|o| matches!(o, DeltaOp::Add { .. })));
        assert!(ops.iter().any(|o| matches!(o, DeltaOp::Set { .. })));
        assert!(ops.iter().any(|o| matches!(o, DeltaOp::Grow { .. })));
    }

    #[test]
    fn oracle_application_is_in_bounds_and_canonical() {
        let spec = StreamSpec::small(9);
        let (base, batches) = delta_stream(&spec);
        let merged = apply_delta_batches(&base, &batches);
        assert!(merged.is_sorted_canonical());
        assert!(merged.nnz() >= base.nnz());
        for (m, &d) in merged.dims().iter().enumerate() {
            assert!(d >= spec.dims[m]);
            for &i in merged.mode_inds(m) {
                assert!((i as usize) < d);
            }
        }
        // Growth must actually be reachable: with growth_prob 0.5 over 6
        // batches, at least one mode should have grown for this seed.
        assert!(merged
            .dims()
            .iter()
            .zip(&spec.dims)
            .any(|(&now, &was)| now > was));
    }

    #[test]
    fn oracle_set_overwrites_and_add_accumulates() {
        let mut base = CooTensor::new(vec![2, 2]).unwrap();
        base.push(&[0, 0], 1.0).unwrap();
        let batches = vec![DeltaBatch {
            ops: vec![
                DeltaOp::Add {
                    coord: vec![0, 0],
                    val: 2.0,
                },
                DeltaOp::Set {
                    coord: vec![0, 0],
                    val: 10.0,
                },
                DeltaOp::Grow {
                    mode: 1,
                    new_len: 4,
                },
                DeltaOp::Add {
                    coord: vec![1, 3],
                    val: 7.0,
                },
            ],
        }];
        let merged = apply_delta_batches(&base, &batches);
        assert_eq!(merged.dims(), &[2, 4]);
        assert_eq!(merged.value_at_sorted(&[0, 0]), Some(10.0));
        assert_eq!(merged.value_at_sorted(&[1, 3]), Some(7.0));
    }

    #[test]
    fn constraint_suite_covers_all_builtins() {
        let suite = constraint_suite();
        assert_eq!(suite.len(), 8);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"simplex") && names.contains(&"nonneg"));
    }
}
