//! Deterministic generators for conformance inputs.
//!
//! Everything is driven by the self-contained [`TestRng`](crate::rng),
//! so a `(shape, seed)` pair printed in a failure report reproduces the
//! exact input on any machine. The generators deliberately cover the
//! regimes the optimized kernels specialize for: uniform and
//! Zipf-skewed nonzero distributions (root-parallel vs fiber-privatized
//! MTTKRP), dense and sparse factors (DENSE vs CSR vs CSR-H reads), and
//! the full constraint suite.

use crate::rng::TestRng;
use admm::{constraints, Prox};
use splinalg::DMat;
use sptensor::{CooTensor, Idx};
use std::sync::Arc;

/// Uniform random COO tensor: `nnz` draws with uniform coordinates and
/// values in `[0.5, 1.5)`, duplicates merged. The result is non-empty
/// for any `nnz >= 1`.
pub fn tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    skewed_tensor(dims, nnz, 1.0, seed)
}

/// Random COO tensor with power-law-skewed coordinates: each index is
/// drawn as `floor(d * u^skew)` for uniform `u`, so `skew = 1` is
/// uniform and larger values concentrate nonzeros on low indices (the
/// "few hot slices" regime the fiber-privatized MTTKRP path targets).
pub fn skewed_tensor(dims: &[usize], nnz: usize, skew: f64, seed: u64) -> CooTensor {
    assert!(nnz >= 1, "generated tensors must be non-empty");
    let mut rng = TestRng::new(seed);
    let mut t = CooTensor::with_capacity(dims.to_vec(), nnz).expect("valid dims");
    let mut coord = vec![0 as Idx; dims.len()];
    for _ in 0..nnz {
        for (m, &d) in dims.iter().enumerate() {
            let u = rng.next_f64().powf(skew);
            coord[m] = (((d as f64) * u) as usize).min(d - 1) as Idx;
        }
        t.push(&coord, rng.uniform(0.5, 1.5)).expect("in bounds");
    }
    t.dedup_sum();
    t
}

/// One dense factor matrix per mode, entries uniform in `[lo, hi)`.
pub fn factors(dims: &[usize], rank: usize, lo: f64, hi: f64, seed: u64) -> Vec<DMat> {
    let mut rng = TestRng::new(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for v in m.as_mut_slice() {
                *v = rng.uniform(lo, hi);
            }
            m
        })
        .collect()
}

/// A factor matrix where each entry is nonzero (uniform in `[0.1, 1.0)`)
/// with probability `density` — the input regime for CSR/hybrid
/// snapshots.
pub fn sparse_factor(rows: usize, cols: usize, density: f64, seed: u64) -> DMat {
    let mut rng = TestRng::new(seed);
    let mut m = DMat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        if rng.next_f64() < density {
            *v = rng.uniform(0.1, 1.0);
        }
    }
    m
}

/// The full built-in constraint suite, labeled for failure reports.
/// Conformance tests sweep every entry so each proximity operator is
/// pinned to its scalar oracle.
pub fn constraint_suite() -> Vec<(&'static str, Arc<dyn Prox>)> {
    vec![
        ("unconstrained", constraints::unconstrained()),
        ("nonneg", constraints::nonneg()),
        ("lasso(0.3)", constraints::lasso(0.3)),
        ("nonneg_lasso(0.3)", constraints::nonneg_lasso(0.3)),
        ("ridge(0.5)", constraints::ridge(0.5)),
        ("boxed(-0.5,0.5)", constraints::boxed(-0.5, 0.5)),
        ("simplex", constraints::simplex()),
        ("max_row_norm(1.0)", constraints::max_row_norm(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_is_deterministic_and_in_bounds() {
        let a = tensor(&[10, 8, 6], 200, 3);
        let b = tensor(&[10, 8, 6], 200, 3);
        assert_eq!(a, b);
        assert!(a.nnz() >= 1 && a.nnz() <= 200);
        for n in 0..a.nnz() {
            let c = a.coord(n);
            assert!((c[0] as usize) < 10 && (c[1] as usize) < 8 && (c[2] as usize) < 6);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_indices() {
        let t = skewed_tensor(&[100, 100], 5_000, 4.0, 7);
        let counts = t.slice_counts(0);
        let low: usize = counts[..10].iter().sum();
        assert!(
            low * 2 > t.nnz(),
            "expected >half the nnz in the first 10 slices, got {low}/{}",
            t.nnz()
        );
    }

    #[test]
    fn factors_shapes_and_range() {
        let fs = factors(&[5, 7], 3, -1.0, 1.0, 11);
        assert_eq!(fs.len(), 2);
        assert_eq!((fs[0].nrows(), fs[0].ncols()), (5, 3));
        assert_eq!((fs[1].nrows(), fs[1].ncols()), (7, 3));
        assert!(fs
            .iter()
            .all(|f| f.as_slice().iter().all(|v| v.abs() < 1.0)));
    }

    #[test]
    fn sparse_factor_density_tracks_request() {
        let m = sparse_factor(100, 20, 0.1, 13);
        let d = m.density(0.0);
        assert!(d > 0.02 && d < 0.25, "density {d}");
        assert_eq!(sparse_factor(10, 5, 0.0, 1).count_nonzeros(0.0), 0);
    }

    #[test]
    fn constraint_suite_covers_all_builtins() {
        let suite = constraint_suite();
        assert_eq!(suite.len(), 8);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"simplex") && names.contains(&"nonneg"));
    }
}
