//! Slow-but-obviously-correct reference kernels.
//!
//! Every function here is written straight from the mathematical
//! definition, sequentially, with no code shared with the optimized
//! paths it validates:
//!
//! * [`mttkrp`] — `K = X_(m) (⊙_{n≠m} A_n)` as a plain loop over COO
//!   nonzeros (no CSF, no plan, no privatization);
//! * [`gram`], [`khatri_rao`], [`hadamard`], [`gram_hadamard`] — naive
//!   triple loops over dense matrices;
//! * [`cholesky`], [`solve_spd`], [`least_squares_rows`] — textbook
//!   Cholesky–Banachiewicz plus forward/backward substitution, giving
//!   the exact minimizer the ADMM inner solver must converge to;
//! * scalar proximity operators ([`prox`]) — closed forms applied one
//!   entry at a time, with the simplex projection done by bisection on
//!   the dual variable instead of the production sort-based algorithm;
//! * [`relative_error`] — the full CPD objective by enumerating *every*
//!   cell of the dense cube (the SPLATT fit trick must agree with it).

use splinalg::DMat;
use sptensor::CooTensor;
use std::collections::HashMap;

/// Reference MTTKRP: for each nonzero `x` at coordinate `c`,
/// `out[c[mode], f] += x * prod_{n != mode} factors[n][c[n], f]`.
///
/// Panics on shape mismatches — oracle inputs are constructed by the
/// harness, so a mismatch is a harness bug.
pub fn mttkrp(coo: &CooTensor, factors: &[DMat], mode: usize) -> DMat {
    assert_eq!(factors.len(), coo.nmodes(), "one factor per mode");
    assert!(mode < coo.nmodes(), "output mode in range");
    let rank = factors[mode].ncols();
    for (m, fac) in factors.iter().enumerate() {
        assert_eq!(fac.nrows(), coo.dims()[m], "factor {m} row count");
        assert_eq!(fac.ncols(), rank, "factor {m} rank");
    }
    let mut out = DMat::zeros(coo.dims()[mode], rank);
    for n in 0..coo.nnz() {
        let c = coo.coord(n);
        let x = coo.values()[n];
        for f in 0..rank {
            let mut p = x;
            for (m, fac) in factors.iter().enumerate() {
                if m != mode {
                    p *= fac.get(c[m] as usize, f);
                }
            }
            let i = c[mode] as usize;
            out.set(i, f, out.get(i, f) + p);
        }
    }
    out
}

/// Naive Gram matrix `AᵀA`.
pub fn gram(a: &DMat) -> DMat {
    let f = a.ncols();
    let mut g = DMat::zeros(f, f);
    for p in 0..f {
        for q in 0..f {
            let mut s = 0.0;
            for i in 0..a.nrows() {
                s += a.get(i, p) * a.get(i, q);
            }
            g.set(p, q, s);
        }
    }
    g
}

/// Naive Khatri–Rao product: row `j*K + k` of the result is
/// `B(j,:) .* C(k,:)`.
pub fn khatri_rao(b: &DMat, c: &DMat) -> DMat {
    assert_eq!(b.ncols(), c.ncols(), "rank mismatch");
    let f = b.ncols();
    let mut out = DMat::zeros(b.nrows() * c.nrows(), f);
    for j in 0..b.nrows() {
        for k in 0..c.nrows() {
            for col in 0..f {
                out.set(j * c.nrows() + k, col, b.get(j, col) * c.get(k, col));
            }
        }
    }
    out
}

/// Naive elementwise (Hadamard) product.
pub fn hadamard(a: &DMat, b: &DMat) -> DMat {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut out = DMat::zeros(a.nrows(), a.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            out.set(i, j, a.get(i, j) * b.get(i, j));
        }
    }
    out
}

/// Hadamard product of the naive Grams of every factor except
/// `skip_mode` (the combined `G` of the mode update).
pub fn gram_hadamard(factors: &[DMat], skip_mode: usize) -> DMat {
    let f = factors[0].ncols();
    let mut g = DMat::zeros(f, f);
    for p in 0..f {
        for q in 0..f {
            g.set(p, q, 1.0);
        }
    }
    for (m, fac) in factors.iter().enumerate() {
        if m == skip_mode {
            continue;
        }
        g = hadamard(&g, &gram(fac));
    }
    g
}

/// Textbook Cholesky–Banachiewicz: returns lower-triangular `L` with
/// `L Lᵀ = g`, or `None` if a pivot is not strictly positive.
pub fn cholesky(g: &DMat) -> Option<DMat> {
    assert_eq!(g.nrows(), g.ncols(), "square input");
    let n = g.nrows();
    let mut l = DMat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = g.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `g x = rhs` for SPD `g` by Cholesky + forward/backward
/// substitution. Returns `None` when `g` is not positive definite.
pub fn solve_spd(g: &DMat, rhs: &[f64]) -> Option<Vec<f64>> {
    let n = g.nrows();
    assert_eq!(rhs.len(), n, "rhs length");
    let l = cholesky(g)?;
    // Forward: L y = rhs.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = rhs[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            s -= l.get(i, k) * yk;
        }
        y[i] = s / l.get(i, i);
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) * xk;
        }
        x[i] = s / l.get(i, i);
    }
    Some(x)
}

/// Row-wise least squares: the exact minimizer `H` of
/// `½ tr(H G Hᵀ) − tr(Kᵀ H)`, i.e. each row of `H` solves `G h = k`.
/// This is the fixed point the unconstrained ADMM update converges to.
pub fn least_squares_rows(g: &DMat, k: &DMat) -> Option<DMat> {
    let mut h = DMat::zeros(k.nrows(), k.ncols());
    for i in 0..k.nrows() {
        let x = solve_spd(g, k.row(i))?;
        h.row_mut(i).copy_from_slice(&x);
    }
    Some(h)
}

/// Model value at one coordinate: `sum_f prod_m factors[m][c[m], f]`.
pub fn model_value(factors: &[DMat], coord: &[u32]) -> f64 {
    let rank = factors[0].ncols();
    let mut v = 0.0;
    for f in 0..rank {
        let mut p = 1.0;
        for (m, fac) in factors.iter().enumerate() {
            p *= fac.get(coord[m] as usize, f);
        }
        v += p;
    }
    v
}

/// Exact top-K oracle for serving: score **every** row of `free_mode`
/// with the other coordinates fixed at `anchor` (whose free slot is
/// ignored), sort by descending score with ties broken by ascending row
/// id, and keep the first `k`.
///
/// The arithmetic is grouped the way the serving layer specifies it —
/// weight `w[f]` as the product of the fixed-mode entries in ascending
/// mode order, score as the dot product accumulated in ascending column
/// order — so a correct serving implementation matches this oracle
/// bit-for-bit and the result set/order comparison can be exact.
pub fn topk(factors: &[DMat], free_mode: usize, anchor: &[u32], k: usize) -> Vec<(u32, f64)> {
    let rank = factors[0].ncols();
    let mut w = vec![1.0; rank];
    for (m, fac) in factors.iter().enumerate() {
        if m == free_mode {
            continue;
        }
        for (c, o) in w.iter_mut().enumerate() {
            *o *= fac.get(anchor[m] as usize, c);
        }
    }
    let free = &factors[free_mode];
    let mut scored: Vec<(u32, f64)> = (0..free.nrows())
        .map(|i| {
            let mut s = 0.0;
            for (c, &wc) in w.iter().enumerate() {
                s += free.get(i, c) * wc;
            }
            (i as u32, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k.min(free.nrows()));
    scored
}

/// Guard for the dense-enumeration oracles: they visit every cell of the
/// cube, so the cube must stay small.
const MAX_DENSE_CELLS: usize = 4_000_000;

/// Full CPD residual `‖X − M‖²_F` by enumerating every cell of the dense
/// cube: nonzero cells contribute `(x − m)²`, empty cells contribute
/// `m²`. Obviously correct, O(prod dims · F); small tensors only.
pub fn residual_norm_sq(coo: &CooTensor, factors: &[DMat]) -> f64 {
    let cells: usize = coo.dims().iter().product();
    assert!(
        cells <= MAX_DENSE_CELLS,
        "dense-enumeration oracle called on a {cells}-cell tensor"
    );
    // Duplicate coordinates (if any) sum, matching COO semantics.
    let mut values: HashMap<Vec<u32>, f64> = HashMap::new();
    for n in 0..coo.nnz() {
        *values.entry(coo.coord(n)).or_insert(0.0) += coo.values()[n];
    }
    let nmodes = coo.nmodes();
    let mut coord = vec![0u32; nmodes];
    let mut total = 0.0;
    loop {
        let m = model_value(factors, &coord);
        let x = values.get(&coord).copied().unwrap_or(0.0);
        total += (x - m) * (x - m);
        // Odometer increment.
        let mut mode = nmodes;
        while mode > 0 {
            mode -= 1;
            coord[mode] += 1;
            if (coord[mode] as usize) < coo.dims()[mode] {
                break;
            }
            coord[mode] = 0;
            if mode == 0 {
                return total;
            }
        }
    }
}

/// Full relative error `‖X − M‖_F / ‖X‖_F` by dense enumeration. The
/// driver's fast fit (SPLATT trick) must agree with this.
pub fn relative_error(coo: &CooTensor, factors: &[DMat]) -> f64 {
    (residual_norm_sq(coo, factors) / coo.norm_sq()).sqrt()
}

/// Scalar / row-wise reference proximity operators.
pub mod prox {
    /// Non-negativity projection.
    pub fn nonneg(x: f64) -> f64 {
        if x > 0.0 {
            x
        } else {
            0.0
        }
    }

    /// Soft threshold at `t` (prox of `t·|x|` with unit penalty).
    pub fn soft_threshold(x: f64, t: f64) -> f64 {
        if x > t {
            x - t
        } else if x < -t {
            x + t
        } else {
            0.0
        }
    }

    /// Non-negative soft threshold.
    pub fn nonneg_soft_threshold(x: f64, t: f64) -> f64 {
        nonneg(x - t)
    }

    /// Prox of `lambda‖·‖²` at penalty `rho`: shrink by
    /// `rho / (rho + 2 lambda)`.
    pub fn ridge(x: f64, lambda: f64, rho: f64) -> f64 {
        x * rho / (rho + 2.0 * lambda)
    }

    /// Box projection onto `[lo, hi]`.
    pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
        x.max(lo).min(hi)
    }

    /// Projection onto the probability simplex by bisection on the dual
    /// variable `tau` of `sum_i max(x_i − tau, 0) = 1`. Deliberately a
    /// different algorithm from the production sort-based projection:
    /// correctness follows from monotonicity of the sum in `tau`.
    pub fn simplex_project(row: &[f64]) -> Vec<f64> {
        let hi0 = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut lo = hi0 - 1.0 - 1.0 / row.len().max(1) as f64;
        let mut hi = hi0;
        // sum(tau = hi0) = 0 < 1, sum(tau = lo) >= 1: bisect ~90 times
        // for full double precision.
        for _ in 0..90 {
            let mid = 0.5 * (lo + hi);
            let s: f64 = row.iter().map(|&x| (x - mid).max(0.0)).sum();
            if s > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let tau = 0.5 * (lo + hi);
        row.iter().map(|&x| (x - tau).max(0.0)).collect()
    }

    /// Row clipped to Euclidean norm `bound` (unchanged when already
    /// inside the ball).
    pub fn max_row_norm(row: &[f64], bound: f64) -> Vec<f64> {
        let norm = row.iter().map(|&x| x * x).sum::<f64>().sqrt();
        if norm <= bound || norm == 0.0 {
            row.to_vec()
        } else {
            row.iter().map(|&x| x * bound / norm).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::CooTensor;

    fn mat(rows: usize, cols: usize, vals: &[f64]) -> DMat {
        DMat::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn topk_hand_computed_with_ties() {
        // Rank 1, free mode 0: score of row i is free[i] * fixed[anchor].
        let free = mat(4, 1, &[1.0, 3.0, 3.0, 2.0]);
        let fixed = mat(2, 1, &[1.0, -1.0]);
        let hits = topk(&[free.clone(), fixed.clone()], 0, &[0, 0], 3);
        assert_eq!(hits, vec![(1, 3.0), (2, 3.0), (3, 2.0)]);
        // Negative fixed row flips the ranking.
        let hits = topk(&[free, fixed], 0, &[0, 1], 2);
        assert_eq!(hits, vec![(0, -1.0), (3, -2.0)]);
    }

    #[test]
    fn topk_agrees_with_model_value() {
        let a = mat(3, 2, &[0.3, -0.7, 1.2, 0.4, -0.2, 0.9]);
        let b = mat(2, 2, &[0.5, 1.5, -0.6, 0.8]);
        let c = mat(4, 2, &[1.0, 0.2, -0.4, 0.7, 0.9, -1.1, 0.3, 0.6]);
        let facs = [a, b, c];
        let hits = topk(&facs, 2, &[1, 0, 0], 4);
        assert_eq!(hits.len(), 4);
        for &(id, score) in &hits {
            let direct = model_value(&facs, &[1, 0, id]);
            assert!((score - direct).abs() < 1e-12);
        }
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn mttkrp_hand_computed_2x2x2() {
        // X with two nonzeros: X[0,1,0] = 2, X[1,0,1] = 3.
        let mut t = CooTensor::new(vec![2, 2, 2]).unwrap();
        t.push(&[0, 1, 0], 2.0).unwrap();
        t.push(&[1, 0, 1], 3.0).unwrap();
        let a = mat(2, 1, &[1.0, 10.0]);
        let b = mat(2, 1, &[2.0, 20.0]);
        let c = mat(2, 1, &[3.0, 30.0]);
        let k = mttkrp(&t, &[a, b, c], 0);
        // Row 0: 2 * B(1,0) * C(0,0) = 2*20*3 = 120.
        // Row 1: 3 * B(0,0) * C(1,0) = 3*2*30 = 180.
        assert_eq!(k.get(0, 0), 120.0);
        assert_eq!(k.get(1, 0), 180.0);
    }

    #[test]
    fn gram_hand_computed() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let g = gram(&a);
        assert_eq!(g.get(0, 0), 10.0);
        assert_eq!(g.get(0, 1), 14.0);
        assert_eq!(g.get(1, 0), 14.0);
        assert_eq!(g.get(1, 1), 20.0);
    }

    #[test]
    fn khatri_rao_hand_computed() {
        let b = mat(2, 1, &[1.0, 2.0]);
        let c = mat(2, 1, &[3.0, 4.0]);
        let k = khatri_rao(&b, &c);
        assert_eq!(k.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn cholesky_recomposes() {
        let g = mat(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let l = cholesky(&g).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - g.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let g = mat(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert!(cholesky(&g).is_none());
    }

    #[test]
    fn solve_spd_solves() {
        let g = mat(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let x = solve_spd(&g, &[10.0, 8.0]).unwrap();
        assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-12);
        assert!((2.0 * x[0] + 3.0 * x[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn full_objective_on_exact_model_is_zero() {
        // Tensor = full rank-1 model: residual must vanish, error = 0.
        let a = mat(2, 1, &[1.0, 2.0]);
        let b = mat(2, 1, &[3.0, 4.0]);
        let c = mat(2, 1, &[5.0, 6.0]);
        let factors = vec![a, b, c];
        let mut t = CooTensor::new(vec![2, 2, 2]).unwrap();
        for i in 0..2u32 {
            for j in 0..2u32 {
                for k in 0..2u32 {
                    t.push(&[i, j, k], model_value(&factors, &[i, j, k]))
                        .unwrap();
                }
            }
        }
        assert!(residual_norm_sq(&t, &factors) < 1e-20);
        assert!(relative_error(&t, &factors) < 1e-10);
    }

    #[test]
    fn full_objective_counts_missing_cells_as_zeros() {
        // One nonzero, rank-1 all-ones model: residual =
        // (1-1)^2 + 7 cells * 1^2 = 7.
        let ones = mat(2, 1, &[1.0, 1.0]);
        let factors = vec![ones.clone(), ones.clone(), ones];
        let mut t = CooTensor::new(vec![2, 2, 2]).unwrap();
        t.push(&[0, 0, 0], 1.0).unwrap();
        assert!((residual_norm_sq(&t, &factors) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn simplex_bisection_projects() {
        let p = prox::simplex_project(&[0.4, 0.3, -5.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
        assert_eq!(p[2], 0.0);
        // Already on the simplex: unchanged.
        let q = prox::simplex_project(&[0.5, 0.5]);
        assert!((q[0] - 0.5).abs() < 1e-9 && (q[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scalar_prox_forms() {
        assert_eq!(prox::nonneg(-3.0), 0.0);
        assert_eq!(prox::nonneg(2.0), 2.0);
        assert_eq!(prox::soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(prox::soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(prox::soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(prox::nonneg_soft_threshold(-0.5, 0.2), 0.0);
        assert_eq!(prox::clamp(5.0, -1.0, 1.0), 1.0);
        assert!((prox::ridge(1.0, 0.5, 1.0) - 0.5).abs() < 1e-15);
        let clipped = prox::max_row_norm(&[3.0, 4.0], 1.0);
        let n = (clipped[0] * clipped[0] + clipped[1] * clipped[1]).sqrt();
        assert!((n - 1.0).abs() < 1e-12);
    }
}
