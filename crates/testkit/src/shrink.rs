//! Failure minimization: shrink a failing tensor to a minimal reproducer.
//!
//! When a conformance sweep finds a kernel/oracle disagreement on a
//! generated tensor, reporting the raw input (thousands of nonzeros) is
//! useless for debugging. [`shrink_tensor`] reduces it while the failure
//! predicate keeps holding: delta-debugging over the nonzero list
//! (remove progressively smaller chunks), then tightening each mode's
//! dimension to the smallest bound covering the surviving coordinates.
//! The result is printed by [`describe`] in a form that can be pasted
//! directly into a regression test.

use sptensor::{CooTensor, Idx};

/// Rebuild a tensor from an explicit entry list.
fn from_entries(dims: &[usize], entries: &[(Vec<Idx>, f64)]) -> CooTensor {
    let mut t = CooTensor::with_capacity(dims.to_vec(), entries.len()).expect("valid dims");
    for (c, v) in entries {
        t.push(c, *v).expect("entry in bounds");
    }
    t
}

/// Shrink `tensor` to a (locally) minimal failing input: the returned
/// tensor still satisfies `fails`, but removing any *single* nonzero
/// from it no longer does. Dimensions are tightened to the surviving
/// coordinates. `fails` must return `true` for the input tensor.
pub fn shrink_tensor<F>(tensor: &CooTensor, mut fails: F) -> CooTensor
where
    F: FnMut(&CooTensor) -> bool,
{
    assert!(fails(tensor), "shrink called on a passing input");
    let mut entries: Vec<(Vec<Idx>, f64)> = (0..tensor.nnz())
        .map(|n| (tensor.coord(n), tensor.values()[n]))
        .collect();
    let mut dims = tensor.dims().to_vec();

    // Delta-debugging over the nonzero list: try dropping chunks of
    // decreasing size until no single-entry removal keeps the failure.
    let mut chunk = entries.len().div_ceil(2);
    while chunk >= 1 && entries.len() > 1 {
        let mut start = 0;
        let mut removed_any = false;
        while start < entries.len() && entries.len() > 1 {
            let end = (start + chunk).min(entries.len());
            let mut candidate = entries.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && fails(&from_entries(&dims, &candidate)) {
                entries = candidate;
                removed_any = true;
                // Do not advance: the next chunk has shifted into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Tighten dimensions to the smallest box covering the survivors,
    // as long as the failure persists on the shrunk shape.
    let mut tight = vec![1usize; dims.len()];
    for (c, _) in &entries {
        for (m, &i) in c.iter().enumerate() {
            tight[m] = tight[m].max(i as usize + 1);
        }
    }
    if tight != dims && fails(&from_entries(&tight, &entries)) {
        dims = tight;
    }
    from_entries(&dims, &entries)
}

/// Render a tensor as a pasteable reproducer for failure messages.
pub fn describe(t: &CooTensor) -> String {
    use std::fmt::Write as _;
    let mut s = format!("dims {:?}, {} nnz:", t.dims(), t.nnz());
    for n in 0..t.nnz().min(64) {
        let _ = write!(s, "\n  push(&{:?}, {:.17e})", t.coord(n), t.values()[n]);
    }
    if t.nnz() > 64 {
        let _ = write!(s, "\n  ... {} more", t.nnz() - 64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_with(entries: &[(&[Idx], f64)], dims: &[usize]) -> CooTensor {
        let list: Vec<(Vec<Idx>, f64)> = entries.iter().map(|(c, v)| (c.to_vec(), *v)).collect();
        from_entries(dims, &list)
    }

    #[test]
    fn shrinks_to_single_culprit() {
        // Failure: "contains a value > 10". One entry is the culprit.
        let t = crate::gen::tensor(&[12, 9, 7], 300, 5);
        let mut spiked = tensor_with(&[], t.dims());
        for n in 0..t.nnz() {
            spiked.push(&t.coord(n), t.values()[n]).unwrap();
        }
        spiked.push(&[3, 4, 5], 99.0).unwrap();
        let minimal = shrink_tensor(&spiked, |x| x.values().iter().any(|&v| v > 10.0));
        assert_eq!(minimal.nnz(), 1);
        assert_eq!(minimal.values()[0], 99.0);
        // Dims tightened around the culprit coordinate.
        assert_eq!(minimal.dims(), &[4, 5, 6]);
    }

    #[test]
    fn keeps_entries_the_failure_needs() {
        // Failure needs at least 3 nonzeros.
        let t = crate::gen::tensor(&[6, 6], 40, 9);
        let minimal = shrink_tensor(&t, |x| x.nnz() >= 3);
        assert_eq!(minimal.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "passing input")]
    fn rejects_passing_input() {
        let t = crate::gen::tensor(&[4, 4], 10, 1);
        shrink_tensor(&t, |_| false);
    }

    #[test]
    fn describe_is_pasteable() {
        let t = tensor_with(&[(&[1, 2], 0.5)], &[3, 3]);
        let s = describe(&t);
        assert!(s.contains("dims [3, 3]"));
        assert!(s.contains("push(&[1, 2]"));
    }
}
