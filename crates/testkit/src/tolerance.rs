//! Comparison helpers and the workspace tolerance policy.
//!
//! Two classes of disagreement are distinguished:
//!
//! * **Reassociation error** — optimized kernels sum the same products
//!   in a different order than the oracle (parallel chunking, CSF fiber
//!   grouping). The discrepancy grows with the number of accumulated
//!   terms but stays within a few hundred ULPs for test-sized inputs;
//!   kernel conformance uses [`KERNEL_RTOL`]/[`KERNEL_ATOL`].
//! * **Iterative truncation** — ADMM converges to a fixed point it never
//!   reaches exactly; solver conformance uses [`SOLVER_RTOL`], matched
//!   to the inner tolerance the tests configure.
//!
//! Bit-exactness (`max_abs_diff == 0.0` or ULP distance 0) is asserted
//! only where the code promises it: plan reuse, checkpoint/model-IO
//! round-trips, and seeded determinism.

use splinalg::DMat;

/// Elementwise tolerance for kernel-vs-oracle comparisons (same
/// arithmetic, different association order).
pub const KERNEL_RTOL: f64 = 1e-9;
/// Absolute floor for kernel comparisons (entries that are exactly zero
/// on one side).
pub const KERNEL_ATOL: f64 = 1e-11;
/// Tolerance for iterative-solver fixed-point comparisons.
pub const SOLVER_RTOL: f64 = 1e-4;

/// ULP distance between two doubles (number of representable values
/// between them). `u64::MAX` for NaN or differing signs.
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0; // covers +0.0 vs -0.0
    }
    if a.is_nan() || b.is_nan() || (a < 0.0) != (b < 0.0) {
        return u64::MAX;
    }
    let (x, y) = (a.abs().to_bits(), b.abs().to_bits());
    x.abs_diff(y)
}

/// Worst-case disagreement between two same-shape matrices.
#[derive(Debug, Clone, Copy)]
pub struct MatDiff {
    /// Largest absolute difference.
    pub max_abs: f64,
    /// Largest relative difference `|a-b| / max(|a|, |b|)` over entries
    /// where either side is nonzero.
    pub max_rel: f64,
    /// Largest ULP distance.
    pub max_ulp: u64,
    /// Flat index of the worst (by absolute difference) entry.
    pub argmax: usize,
}

/// Compute the worst-case disagreement between `a` and `b` (shapes must
/// match).
pub fn mat_diff(a: &DMat, b: &DMat) -> MatDiff {
    assert_eq!(a.nrows(), b.nrows(), "row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "col mismatch");
    let mut d = MatDiff {
        max_abs: 0.0,
        max_rel: 0.0,
        max_ulp: 0,
        argmax: 0,
    };
    for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let abs = (x - y).abs();
        if abs > d.max_abs || abs.is_nan() {
            d.max_abs = abs;
            d.argmax = i;
        }
        let scale = x.abs().max(y.abs());
        if scale > 0.0 {
            d.max_rel = d.max_rel.max(abs / scale);
        }
        d.max_ulp = d.max_ulp.max(ulp_diff(x, y));
    }
    d
}

/// Whether every entry pair satisfies `|a-b| <= atol + rtol*max(|a|,|b|)`.
pub fn mats_close(a: &DMat, b: &DMat, rtol: f64, atol: f64) -> bool {
    a.as_slice().iter().zip(b.as_slice()).all(|(&x, &y)| {
        let diff = (x - y).abs();
        diff <= atol + rtol * x.abs().max(y.abs()) && !diff.is_nan()
    })
}

/// Assert closeness with a diagnostic naming the worst entry; `label`
/// should identify the kernel, configuration and seed so the failure is
/// reproducible from the message alone.
pub fn assert_mats_close(label: &str, got: &DMat, want: &DMat, rtol: f64, atol: f64) {
    if !mats_close(got, want, rtol, atol) {
        let d = mat_diff(got, want);
        let (r, c) = (
            d.argmax / want.ncols().max(1),
            d.argmax % want.ncols().max(1),
        );
        panic!(
            "{label}: max_abs={:.3e} max_rel={:.3e} max_ulp={} at ({r},{c}): got {:.17e}, oracle {:.17e}",
            d.max_abs,
            d.max_rel,
            d.max_ulp,
            got.as_slice()[d.argmax],
            want.as_slice()[d.argmax],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_identities() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_diff(1.0, -1.0), u64::MAX);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn mat_diff_finds_worst_entry() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DMat::from_vec(2, 2, vec![1.0, 2.5, 3.0, 4.0]).unwrap();
        let d = mat_diff(&a, &b);
        assert_eq!(d.argmax, 1);
        assert!((d.max_abs - 0.5).abs() < 1e-15);
        assert!((d.max_rel - 0.2).abs() < 1e-15);
    }

    #[test]
    fn close_and_not_close() {
        let a = DMat::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let mut b = a.clone();
        assert!(mats_close(&a, &b, 0.0, 0.0));
        b.set(0, 0, 1.0 + 1e-10);
        assert!(mats_close(&a, &b, 1e-9, 0.0));
        assert!(!mats_close(&a, &b, 1e-12, 0.0));
    }

    #[test]
    #[should_panic(expected = "demo-kernel")]
    fn assert_close_panics_with_label() {
        let a = DMat::from_vec(1, 1, vec![1.0]).unwrap();
        let b = DMat::from_vec(1, 1, vec![2.0]).unwrap();
        assert_mats_close("demo-kernel seed=1", &a, &b, 1e-9, 0.0);
    }
}
