//! The stream-ingestion op vocabulary.

use sptensor::Idx;

/// A single mutation of the streamed tensor. Operations inside one batch
/// are applied in order, so a [`StreamOp::Grow`] makes the new indices
/// addressable for the rest of its batch.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// Add `val` to the entry at `coord`, appending a nonzero if the
    /// coordinate was empty.
    Add {
        /// Coordinate of the entry.
        coord: Vec<Idx>,
        /// Value to add.
        val: f64,
    },
    /// Overwrite the entry at `coord` with `val` (a value update; the
    /// entry is created if absent).
    Set {
        /// Coordinate of the entry.
        coord: Vec<Idx>,
        /// New value.
        val: f64,
    },
    /// Extend `mode` to `new_len` indices — new users/items joining.
    /// Factor and dual matrices gain rows accordingly.
    Grow {
        /// Mode to extend.
        mode: usize,
        /// New mode length; must not shrink.
        new_len: usize,
    },
}
