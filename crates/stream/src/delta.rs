//! The delta buffer: a sorted COO correction tensor next to an
//! immutable base.
//!
//! The streamed tensor is represented as `base_scale * base + delta`:
//!
//! * `base` is the canonically sorted COO the current CSF set was
//!   compiled from — never mutated in place, so compiled representations
//!   stay valid while the buffer ingests.
//! * `delta` is a canonically sorted COO of *additive corrections*.
//!   Appends, value updates and even deletions (set to zero) are all the
//!   same thing under this encoding: a correction at a coordinate.
//! * `base_scale` implements exponential time-decay without rewriting
//!   the base: decaying history by `gamma` multiplies the scalar (and
//!   the delta values), not the millions of stored values.
//!
//! The squared Frobenius norm is maintained incrementally per operation
//! (`norm += v_new^2 - v_old^2`) so the refit's relative-error
//! denominator never requires a pass over the data; a merge recomputes
//! it exactly, flushing accumulated rounding drift.

use crate::error::StreamError;
use crate::ops::StreamOp;
use sptensor::{CooTensor, Idx};
use std::collections::BTreeMap;

/// Bookkeeping for one ingested batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestStats {
    /// Operations that created a nonzero at a previously empty
    /// coordinate.
    pub appended: usize,
    /// Operations that hit an existing entry (value updates).
    pub updated: usize,
    /// Rows added to each mode by growth operations.
    pub grown_rows: Vec<usize>,
}

/// Sorted-COO delta corrections over an immutable scaled base tensor.
#[derive(Debug, Clone)]
pub struct DeltaBuffer {
    base: CooTensor,
    base_scale: f64,
    delta: CooTensor,
    dims: Vec<usize>,
    norm_sq: f64,
    /// Delta entries at coordinates absent from the base (appends).
    appended: usize,
}

impl DeltaBuffer {
    /// Wrap a non-empty base tensor (canonicalized in place: sorted,
    /// duplicates summed).
    pub fn new(mut base: CooTensor) -> Result<Self, StreamError> {
        if base.nnz() == 0 {
            return Err(StreamError::Invalid(
                "streaming needs a non-empty base tensor".into(),
            ));
        }
        base.dedup_sum();
        let dims = base.dims().to_vec();
        let norm_sq = base.norm_sq();
        let delta = CooTensor::new(dims.clone())?;
        Ok(DeltaBuffer {
            base,
            base_scale: 1.0,
            delta,
            dims,
            norm_sq,
            appended: 0,
        })
    }

    /// Current mode lengths (including growth not yet reflected in the
    /// base).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Logical entry count of the streamed tensor: base entries plus
    /// appended coordinates. Entries whose current value is zero still
    /// count — they are stored (and served) explicitly until a merge.
    pub fn nnz(&self) -> usize {
        self.base.nnz() + self.appended
    }

    /// Stored nonzeros in the base.
    pub fn base_nnz(&self) -> usize {
        self.base.nnz()
    }

    /// Stored corrections in the delta.
    pub fn delta_nnz(&self) -> usize {
        self.delta.nnz()
    }

    /// The decay multiplier applied to the base values.
    pub fn base_scale(&self) -> f64 {
        self.base_scale
    }

    /// Squared Frobenius norm of the logical tensor (incrementally
    /// maintained).
    pub fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    /// The immutable base COO (what the compiled CSF set represents).
    pub fn base_coo(&self) -> &CooTensor {
        &self.base
    }

    /// The correction COO (canonical order).
    pub fn delta_coo(&self) -> &CooTensor {
        &self.delta
    }

    /// Current value at `coord`: `base_scale * base + delta`.
    pub fn current_value(&self, coord: &[Idx]) -> f64 {
        self.base_scale * self.base.value_at_sorted(coord).unwrap_or(0.0)
            + self.delta.value_at_sorted(coord).unwrap_or(0.0)
    }

    /// Apply one batch of operations. Operations see the effects of
    /// earlier operations in the same batch (a `Grow` makes new indices
    /// addressable; an `Add` after a `Set` adds to the set value).
    pub fn ingest(&mut self, ops: &[StreamOp]) -> Result<IngestStats, StreamError> {
        let nmodes = self.dims.len();
        let mut stats = IngestStats {
            appended: 0,
            updated: 0,
            grown_rows: vec![0; nmodes],
        };
        // Batch-local corrections; BTreeMap over coordinates iterates in
        // canonical order, which is exactly what merge_add wants.
        let mut staged: BTreeMap<Vec<Idx>, f64> = BTreeMap::new();

        for op in ops {
            match op {
                StreamOp::Grow { mode, new_len } => {
                    if *mode >= nmodes {
                        return Err(StreamError::Invalid(format!(
                            "grow on mode {mode} of a {nmodes}-mode stream"
                        )));
                    }
                    if *new_len < self.dims[*mode] {
                        return Err(StreamError::Invalid(format!(
                            "grow cannot shrink mode {mode} from {} to {new_len}",
                            self.dims[*mode]
                        )));
                    }
                    if *new_len > Idx::MAX as usize {
                        return Err(StreamError::Invalid(format!(
                            "mode {mode} length {new_len} exceeds index type"
                        )));
                    }
                    stats.grown_rows[*mode] += new_len - self.dims[*mode];
                    self.dims[*mode] = *new_len;
                }
                StreamOp::Add { coord, val } | StreamOp::Set { coord, val } => {
                    if coord.len() != nmodes {
                        return Err(StreamError::Invalid(format!(
                            "coordinate arity {} does not match order {nmodes}",
                            coord.len()
                        )));
                    }
                    for (m, (&c, &d)) in coord.iter().zip(&self.dims).enumerate() {
                        if c as usize >= d {
                            return Err(StreamError::Invalid(format!(
                                "coordinate {c} out of bounds for mode {m} (length {d})"
                            )));
                        }
                    }
                    if !val.is_finite() {
                        return Err(StreamError::Invalid(format!(
                            "non-finite value {val} at {coord:?}"
                        )));
                    }
                    let staged_dv = staged.get(coord.as_slice()).copied();
                    let exists = staged_dv.is_some()
                        || self.delta.find_sorted(coord).is_some()
                        || self.base.find_sorted(coord).is_some();
                    let v0 = self.current_value(coord) + staged_dv.unwrap_or(0.0);
                    let (v1, dv) = match op {
                        StreamOp::Add { .. } => (v0 + val, *val),
                        StreamOp::Set { .. } => (*val, val - v0),
                        StreamOp::Grow { .. } => unreachable!(),
                    };
                    self.norm_sq += v1 * v1 - v0 * v0;
                    *staged.entry(coord.clone()).or_insert(0.0) += dv;
                    if exists {
                        stats.updated += 1;
                    } else {
                        stats.appended += 1;
                    }
                }
            }
        }

        // Fold the batch into the persistent delta. Dimensions first, so
        // the merge accepts coordinates in grown modes.
        for m in 0..nmodes {
            if self.delta.dims()[m] < self.dims[m] {
                self.delta.grow_mode(m, self.dims[m])?;
            }
        }
        if !staged.is_empty() {
            let mut staged_coo = CooTensor::with_capacity(self.dims.clone(), staged.len())?;
            let mut fresh_in_batch = 0usize;
            for (coord, dv) in &staged {
                if self.delta.find_sorted(coord).is_none() && self.base.find_sorted(coord).is_none()
                {
                    fresh_in_batch += 1;
                }
                staged_coo.push(coord, *dv)?;
            }
            self.delta.merge_add(&staged_coo)?;
            self.appended += fresh_in_batch;
        }
        Ok(stats)
    }

    /// Apply exponential time-decay: every stored value (base and delta)
    /// is multiplied by `gamma` in `(0, 1]`, down-weighting history
    /// relative to future batches. O(delta) — the base is scaled through
    /// `base_scale`.
    pub fn decay(&mut self, gamma: f64) -> Result<(), StreamError> {
        if !(gamma > 0.0 && gamma <= 1.0) {
            return Err(StreamError::Invalid(format!(
                "decay factor {gamma} outside (0, 1]"
            )));
        }
        self.base_scale *= gamma;
        self.delta.scale_values(gamma);
        self.norm_sq *= gamma * gamma;
        Ok(())
    }

    /// Materialize the current logical tensor
    /// (`base_scale * base + delta`) as a canonical COO with the current
    /// dimensions. Explicit zeros are kept so entry counts stay
    /// comparable with oracle bookkeeping.
    pub fn merged_coo(&self) -> CooTensor {
        let mut merged = self.base.clone();
        if self.base_scale != 1.0 {
            merged.scale_values(self.base_scale);
        }
        for (m, &d) in self.dims.iter().enumerate() {
            merged.grow_mode(m, d).expect("buffer dims only ever grow");
        }
        merged
            .merge_add(&self.delta)
            .expect("base and delta share dims by construction");
        merged
    }

    /// Fold the delta into the base: the buffer afterwards represents
    /// the same logical tensor with an empty delta, unit scale, and an
    /// exactly recomputed norm (flushing incremental rounding drift).
    /// Returns the new base for the caller to recompile.
    pub fn merge(&mut self) -> &CooTensor {
        self.base = self.merged_coo();
        self.base_scale = 1.0;
        self.delta = CooTensor::new(self.dims.clone()).expect("dims stay valid");
        self.appended = 0;
        self.norm_sq = self.base.norm_sq();
        &self.base
    }

    /// Adopt a base that was merged from an earlier snapshot of this
    /// buffer (background rebuild): `merged` is the snapshot's
    /// [`DeltaBuffer::merged_coo`], `snapshot_delta` the delta at
    /// snapshot time *scaled by every decay applied since* (kept in sync
    /// by the caller so untouched corrections cancel bitwise), and
    /// `decay_since` the product of those decay factors. The remaining
    /// delta is `current_delta - snapshot_delta`; the new base serves
    /// scaled by `decay_since`.
    pub(crate) fn adopt_merged(
        &mut self,
        mut merged: CooTensor,
        snapshot_delta: &CooTensor,
        decay_since: f64,
    ) -> Result<(), StreamError> {
        for (m, &d) in self.dims.iter().enumerate() {
            merged.grow_mode(m, d)?;
        }
        let mut neg = snapshot_delta.clone();
        neg.scale_values(-1.0);
        for (m, &d) in self.dims.iter().enumerate() {
            if neg.dims()[m] < d {
                neg.grow_mode(m, d)?;
            }
        }
        self.delta.merge_add(&neg)?;
        // Corrections untouched since the snapshot cancel exactly (both
        // sides saw the same sequence of decay multiplications).
        self.delta.prune(0.0);
        self.base = merged;
        self.base_scale = decay_since;
        self.appended = (0..self.delta.nnz())
            .filter(|&n| self.base.find_sorted(&self.delta.coord(n)).is_none())
            .count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_2x3() -> CooTensor {
        let mut t = CooTensor::new(vec![2, 3]).unwrap();
        t.push(&[0, 0], 1.0).unwrap();
        t.push(&[1, 2], 2.0).unwrap();
        t
    }

    #[test]
    fn rejects_empty_base() {
        let empty = CooTensor::new(vec![2, 2]).unwrap();
        assert!(DeltaBuffer::new(empty).is_err());
    }

    #[test]
    fn ingest_add_set_grow_bookkeeping() {
        let mut buf = DeltaBuffer::new(base_2x3()).unwrap();
        let stats = buf
            .ingest(&[
                StreamOp::Add {
                    coord: vec![0, 0],
                    val: 0.5,
                }, // update
                StreamOp::Set {
                    coord: vec![0, 1],
                    val: 3.0,
                }, // append
                StreamOp::Grow {
                    mode: 1,
                    new_len: 5,
                },
                StreamOp::Add {
                    coord: vec![1, 4],
                    val: 1.0,
                }, // append into grown region
            ])
            .unwrap();
        assert_eq!(stats.appended, 2);
        assert_eq!(stats.updated, 1);
        assert_eq!(stats.grown_rows, vec![0, 2]);
        assert_eq!(buf.dims(), &[2, 5]);
        assert_eq!(buf.nnz(), 4);
        assert_eq!(buf.delta_nnz(), 3);
        assert_eq!(buf.current_value(&[0, 0]), 1.5);
        assert_eq!(buf.current_value(&[0, 1]), 3.0);
        assert_eq!(buf.current_value(&[1, 4]), 1.0);
        assert_eq!(buf.current_value(&[1, 2]), 2.0);
        // Incremental norm matches a direct recomputation.
        let direct = buf.merged_coo().norm_sq();
        assert!((buf.norm_sq() - direct).abs() < 1e-12 * direct.max(1.0));
    }

    #[test]
    fn within_batch_ops_compose_in_order() {
        let mut buf = DeltaBuffer::new(base_2x3()).unwrap();
        buf.ingest(&[
            StreamOp::Set {
                coord: vec![0, 0],
                val: 10.0,
            },
            StreamOp::Add {
                coord: vec![0, 0],
                val: 1.0,
            },
        ])
        .unwrap();
        assert_eq!(buf.current_value(&[0, 0]), 11.0);
    }

    #[test]
    fn ingest_validates_ops() {
        let mut buf = DeltaBuffer::new(base_2x3()).unwrap();
        assert!(buf
            .ingest(&[StreamOp::Add {
                coord: vec![0, 9],
                val: 1.0
            }])
            .is_err());
        assert!(buf
            .ingest(&[StreamOp::Add {
                coord: vec![0],
                val: 1.0
            }])
            .is_err());
        assert!(buf
            .ingest(&[StreamOp::Grow {
                mode: 1,
                new_len: 1
            }])
            .is_err());
        assert!(buf
            .ingest(&[StreamOp::Add {
                coord: vec![0, 0],
                val: f64::NAN
            }])
            .is_err());
        // A failed batch must not have corrupted state.
        assert_eq!(buf.nnz(), 2);
    }

    #[test]
    fn decay_scales_everything() {
        let mut buf = DeltaBuffer::new(base_2x3()).unwrap();
        buf.ingest(&[StreamOp::Add {
            coord: vec![0, 1],
            val: 4.0,
        }])
        .unwrap();
        let norm0 = buf.norm_sq();
        buf.decay(0.5).unwrap();
        assert_eq!(buf.base_scale(), 0.5);
        assert_eq!(buf.current_value(&[0, 0]), 0.5);
        assert_eq!(buf.current_value(&[0, 1]), 2.0);
        assert!((buf.norm_sq() - 0.25 * norm0).abs() < 1e-12);
        assert!(buf.decay(0.0).is_err());
        assert!(buf.decay(1.5).is_err());
    }

    #[test]
    fn merge_preserves_logical_tensor() {
        let mut buf = DeltaBuffer::new(base_2x3()).unwrap();
        buf.ingest(&[
            StreamOp::Add {
                coord: vec![0, 0],
                val: 0.25,
            },
            StreamOp::Set {
                coord: vec![1, 0],
                val: 7.0,
            },
        ])
        .unwrap();
        buf.decay(0.8).unwrap();
        let before = buf.merged_coo();
        buf.merge();
        assert_eq!(buf.delta_nnz(), 0);
        assert_eq!(buf.base_scale(), 1.0);
        let after = buf.merged_coo();
        assert_eq!(before, after);
        assert_eq!(buf.nnz(), 3);
    }
}
