//! Streaming CPD: incremental tensor ingestion with warm-started
//! AO-ADMM refits.
//!
//! The core crates factorize a static tensor once; this crate turns that
//! into an online service loop for tensors that grow while being served
//! (user x item x time interactions arriving continuously, new users and
//! items appearing in every mode):
//!
//! * [`DeltaBuffer`] ingests batches of nonzero updates ([`StreamOp`]:
//!   appends, value updates, mode growth) and keeps them as a sorted COO
//!   *correction* tensor next to the immutable base. Because MTTKRP is
//!   linear in the tensor values,
//!   `MTTKRP(scale * base + delta) = scale * MTTKRP(base) + MTTKRP(delta)`,
//!   so the compiled CSF representation and its execution plans keep
//!   serving unchanged while the delta stays small ([`DeltaView`]).
//! * [`MergePolicy`] decides when the delta has grown past a configured
//!   fraction of the base and triggers a merge + CSF/plan rebuild —
//!   synchronously, or in a background thread while the buffer keeps
//!   ingesting ([`RebuildMode`]).
//! * [`StreamingFactorizer`] runs a bounded warm-started AO-ADMM refit
//!   after each batch, persisting factors, ADMM duals and Gram caches
//!   across batches, with optional exponential time-decay of the old
//!   nonzeros. Each batch yields a [`aoadmm::RefitRecord`].

#![warn(missing_docs)]

mod delta;
mod error;
mod factorizer;
mod ops;
mod policy;
mod replay;
mod view;

pub use delta::{DeltaBuffer, IngestStats};
pub use error::StreamError;
pub use factorizer::{ModelSink, StreamingConfig, StreamingFactorizer};
pub use ops::StreamOp;
pub use policy::{MergePolicy, RebuildMode};
pub use replay::{replay_batches, ReplayConfig};
pub use view::{delta_mttkrp_add, DeltaView};
