//! Replaying a static tensor as a stream of update batches.
//!
//! Real streamed workloads aren't shareable test fixtures; a standard
//! trick (used by the CLI's `stream` subcommand and the benches) is to
//! replay a static tensor in its stored nonzero order: the first
//! fraction becomes the base, the rest arrive as timed batches of
//! appends. Mode growth falls out naturally — a batch that references an
//! index beyond the current mode length is preceded by the matching
//! [`StreamOp::Grow`].

use crate::error::StreamError;
use crate::ops::StreamOp;
use sptensor::CooTensor;

/// How to slice a static tensor into a replayed stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Number of update batches after the base.
    pub batches: usize,
    /// Fraction of nonzeros (in stored order) that form the base tensor.
    pub base_fraction: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            batches: 10,
            base_fraction: 0.5,
        }
    }
}

/// Split `tensor` into a base plus `cfg.batches` batches of
/// [`StreamOp`]s that, replayed in order, reconstruct it exactly. The
/// base's mode lengths are the smallest that fit its own entries, so
/// later batches exercise genuine mode growth.
pub fn replay_batches(
    tensor: &CooTensor,
    cfg: &ReplayConfig,
) -> Result<(CooTensor, Vec<Vec<StreamOp>>), StreamError> {
    let nnz = tensor.nnz();
    if nnz == 0 {
        return Err(StreamError::Invalid("cannot replay an empty tensor".into()));
    }
    if !(cfg.base_fraction > 0.0 && cfg.base_fraction <= 1.0) {
        return Err(StreamError::Invalid(format!(
            "base fraction {} outside (0, 1]",
            cfg.base_fraction
        )));
    }
    if cfg.batches == 0 {
        return Err(StreamError::Invalid("need at least one batch".into()));
    }
    let nmodes = tensor.nmodes();
    let base_n = ((nnz as f64 * cfg.base_fraction).ceil() as usize).clamp(1, nnz);

    let mut dims = vec![1usize; nmodes];
    for n in 0..base_n {
        for (m, d) in dims.iter_mut().enumerate() {
            *d = (*d).max(tensor.mode_inds(m)[n] as usize + 1);
        }
    }
    let mut base = CooTensor::with_capacity(dims.clone(), base_n)?;
    for n in 0..base_n {
        base.push(&tensor.coord(n), tensor.values()[n])?;
    }

    let rest = nnz - base_n;
    let mut batches = Vec::with_capacity(cfg.batches);
    let mut next = base_n;
    for b in 0..cfg.batches {
        let take = rest / cfg.batches + usize::from(b < rest % cfg.batches);
        let mut ops = Vec::with_capacity(take + nmodes);
        for n in next..next + take {
            for (m, d) in dims.iter_mut().enumerate() {
                let need = tensor.mode_inds(m)[n] as usize + 1;
                if need > *d {
                    ops.push(StreamOp::Grow {
                        mode: m,
                        new_len: need,
                    });
                    *d = need;
                }
            }
            ops.push(StreamOp::Add {
                coord: tensor.coord(n),
                val: tensor.values()[n],
            });
        }
        next += take;
        batches.push(ops);
    }
    Ok((base, batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaBuffer;
    use testkit::gen;

    #[test]
    fn replay_reconstructs_the_tensor() {
        let tensor = gen::tensor(&[11, 9, 7], 260, 42);
        let cfg = ReplayConfig {
            batches: 5,
            base_fraction: 0.4,
        };
        let (base, batches) = replay_batches(&tensor, &cfg).unwrap();
        assert_eq!(batches.len(), 5);
        // gen::tensor dedups, so size the check off the actual nnz.
        assert!(base.nnz() >= (tensor.nnz() as f64 * 0.4) as usize);
        assert!(base.nnz() < tensor.nnz());

        let mut buf = DeltaBuffer::new(base).unwrap();
        for ops in &batches {
            buf.ingest(ops).unwrap();
        }
        // Replayed dims reach exactly as far as the indices seen; align
        // with the declared dims before comparing (top indices of a mode
        // need not be occupied).
        let grow: Vec<StreamOp> = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| StreamOp::Grow {
                mode: m,
                new_len: d,
            })
            .collect();
        buf.ingest(&grow).unwrap();
        assert_eq!(buf.dims(), tensor.dims());
        // gen::tensor output is canonical (sorted, deduped), so the
        // reconstruction is exact: every coordinate was replayed once.
        assert_eq!(buf.merged_coo(), tensor);
    }

    #[test]
    fn full_base_fraction_yields_empty_batches() {
        let tensor = gen::tensor(&[6, 5, 4], 40, 9);
        let (base, batches) = replay_batches(
            &tensor,
            &ReplayConfig {
                batches: 3,
                base_fraction: 1.0,
            },
        )
        .unwrap();
        assert_eq!(base.nnz(), tensor.nnz());
        assert!(batches.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn validates_config() {
        let tensor = gen::tensor(&[6, 5, 4], 40, 9);
        assert!(replay_batches(
            &tensor,
            &ReplayConfig {
                batches: 0,
                base_fraction: 0.5
            }
        )
        .is_err());
        assert!(replay_batches(
            &tensor,
            &ReplayConfig {
                batches: 2,
                base_fraction: 0.0
            }
        )
        .is_err());
    }
}
