//! The online service loop: ingest a batch, maybe rebuild, refit warm.
//!
//! [`StreamingFactorizer`] owns everything a long-lived deployment needs
//! between batches: the [`DeltaBuffer`], the compiled
//! [`PreparedTensor`], and the warm-start state — factor matrices, ADMM
//! scaled duals ([`DualState`]) and cached Gram matrices — that makes
//! each bounded refit resume exactly where the previous one stopped.
//! Mode growth appends rows to all three (new entities start at the
//! column mean of their factor, with zero duals); a merge recompiles the
//! CSF set and its execution plans either inline or on a background
//! thread.

use crate::delta::{DeltaBuffer, IngestStats};
use crate::error::StreamError;
use crate::ops::StreamOp;
use crate::policy::{MergePolicy, RebuildMode};
use crate::view::DeltaView;
use admm::DualState;
use aoadmm::trace::RefitRecord;
use aoadmm::{
    factorize_prepared, init_factors, AoAdmmError, Factorizer, KruskalModel, PreparedTensor,
    TensorSource,
};
use splinalg::DMat;
use sptensor::CooTensor;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Receiver for freshly refit models — the bridge from the write path
/// (this crate) to a read path such as a serving registry.
///
/// [`StreamingFactorizer`] calls [`ModelSink::publish`] with a complete,
/// self-consistent [`KruskalModel`] after every refit (and once on
/// attach), never with intermediate per-mode state, so a sink can swap
/// the model into service atomically without ever exposing a torn mix
/// of factor matrices. Publication happens on the factorizer's thread:
/// implementations should hand off quickly.
pub trait ModelSink: Send + Sync {
    /// Take ownership of the new model.
    fn publish(&self, model: KruskalModel);
}

/// Configuration for the streaming loop: a base [`Factorizer`] (rank,
/// constraints, ADMM settings, CSF policy) plus the streaming-specific
/// knobs.
#[derive(Clone)]
pub struct StreamingConfig {
    factorizer: Factorizer,
    refit_outer: usize,
    refit_tol: f64,
    decay: Option<f64>,
    policy: MergePolicy,
}

impl StreamingConfig {
    /// Wrap a factorizer configuration with streaming defaults: refits
    /// capped at 10 outer iterations, refit tolerance inherited from the
    /// factorizer, no decay, default merge policy.
    pub fn new(factorizer: Factorizer) -> Self {
        let refit_tol = factorizer.outer_tolerance();
        StreamingConfig {
            factorizer,
            refit_outer: 10,
            refit_tol,
            decay: None,
            policy: MergePolicy::default(),
        }
    }

    /// Cap each per-batch refit at `n` outer iterations (the latency
    /// budget of a batch).
    pub fn refit_outer(mut self, n: usize) -> Self {
        self.refit_outer = n;
        self
    }

    /// Early-stopping tolerance for the per-batch refit.
    pub fn refit_tol(mut self, tol: f64) -> Self {
        self.refit_tol = tol;
        self
    }

    /// Multiply all existing values by `gamma` in `(0, 1]` before each
    /// batch, exponentially down-weighting history.
    pub fn decay(mut self, gamma: f64) -> Self {
        self.decay = Some(gamma);
        self
    }

    /// When (and how) to fold the delta into the base and recompile.
    pub fn policy(mut self, policy: MergePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The wrapped factorizer configuration.
    pub fn factorizer(&self) -> &Factorizer {
        &self.factorizer
    }

    /// The per-batch outer-iteration cap.
    pub fn refit_outer_value(&self) -> usize {
        self.refit_outer
    }
}

/// An in-flight background merge + recompile.
struct RebuildJob {
    handle: JoinHandle<Result<(PreparedTensor, CooTensor), AoAdmmError>>,
    /// The delta at snapshot time, scaled by every decay applied since —
    /// kept bitwise in sync with the live delta's scaling so untouched
    /// corrections cancel exactly at adoption.
    snapshot_delta: CooTensor,
    /// Product of decay factors applied since the snapshot.
    decay_since: f64,
}

/// Online CPD: ingest update batches, keep the compiled representation
/// fresh per the merge policy, and refit with a bounded warm-started
/// AO-ADMM after every batch.
pub struct StreamingFactorizer {
    cfg: StreamingConfig,
    buf: DeltaBuffer,
    prepared: PreparedTensor,
    factors: Vec<DMat>,
    duals: DualState,
    grams: Vec<DMat>,
    batch: usize,
    records: Vec<RefitRecord>,
    job: Option<RebuildJob>,
    sink: Option<Arc<dyn ModelSink>>,
}

impl StreamingFactorizer {
    /// Compile `base`, run the initial (full) factorization, and record
    /// it as batch 0.
    pub fn new(base: CooTensor, cfg: StreamingConfig) -> Result<Self, StreamError> {
        let t0 = Instant::now();
        let buf = DeltaBuffer::new(base)?;
        let prepared = PreparedTensor::build(buf.base_coo(), cfg.factorizer.csf_policy_value())?;
        let ingest = t0.elapsed();

        let t1 = Instant::now();
        let init = init_factors(
            buf.dims(),
            cfg.factorizer.rank(),
            cfg.factorizer.seed_value(),
            buf.norm_sq(),
        );
        let res = factorize_prepared(
            &prepared,
            &cfg.factorizer,
            KruskalModel::new(init),
            None,
            None,
        )?;
        let refit = t1.elapsed();

        let record = RefitRecord {
            batch: 0,
            appended: buf.nnz(),
            updated: 0,
            grown_rows: vec![0; buf.dims().len()],
            delta_nnz: 0,
            total_nnz: buf.nnz(),
            merged: true,
            outer_iterations: res.trace.outer_iterations(),
            rel_error: res
                .trace
                .iterations
                .last()
                .map_or(f64::NAN, |i| i.rel_error),
            ingest,
            refit,
        };
        Ok(StreamingFactorizer {
            cfg,
            buf,
            factors: res.model.into_factors(),
            duals: DualState::from_mats(res.duals),
            grams: res.grams,
            prepared,
            batch: 1,
            records: vec![record],
            job: None,
            sink: None,
        })
    }

    /// Attach a sink that receives every refit model, and publish the
    /// current model to it immediately so the sink never serves stale
    /// (or no) state while waiting for the first batch.
    pub fn attach_sink(&mut self, sink: Arc<dyn ModelSink>) {
        sink.publish(self.model());
        self.sink = Some(sink);
    }

    /// Ingest one batch of operations and refit. Returns the batch's
    /// record (also appended to [`StreamingFactorizer::records`]).
    pub fn push_batch(&mut self, ops: &[StreamOp]) -> Result<&RefitRecord, StreamError> {
        let t0 = Instant::now();
        let mut merged = self.try_adopt(false)?;

        if let Some(gamma) = self.cfg.decay {
            self.buf.decay(gamma)?;
            if let Some(job) = &mut self.job {
                job.snapshot_delta.scale_values(gamma);
                job.decay_since *= gamma;
            }
        }

        let stats = self.buf.ingest(ops)?;
        if stats.grown_rows.iter().any(|&r| r > 0) {
            self.apply_growth(&stats)?;
        }

        if self.job.is_none()
            && self
                .cfg
                .policy
                .should_merge(self.buf.delta_nnz(), self.buf.base_nnz())
        {
            match self.cfg.policy.rebuild {
                RebuildMode::Synchronous => {
                    self.rebuild_now()?;
                    merged = true;
                }
                RebuildMode::Background => self.spawn_rebuild(),
            }
        }
        let ingest = t0.elapsed();

        let t1 = Instant::now();
        let refit_cfg = self
            .cfg
            .factorizer
            .clone()
            .max_outer(self.cfg.refit_outer)
            .tolerance(self.cfg.refit_tol);
        let res = {
            let view = DeltaView::new(&self.prepared, &self.buf);
            factorize_prepared(
                &view,
                &refit_cfg,
                KruskalModel::new(self.factors.clone()),
                Some(self.duals.mats().to_vec()),
                Some(self.grams.clone()),
            )?
        };
        self.factors = res.model.into_factors();
        self.duals = DualState::from_mats(res.duals);
        self.grams = res.grams;
        let refit = t1.elapsed();

        if let Some(sink) = &self.sink {
            sink.publish(KruskalModel::new(self.factors.clone()));
        }

        self.records.push(RefitRecord {
            batch: self.batch,
            appended: stats.appended,
            updated: stats.updated,
            grown_rows: stats.grown_rows,
            delta_nnz: self.buf.delta_nnz(),
            total_nnz: self.buf.nnz(),
            merged,
            outer_iterations: res.trace.outer_iterations(),
            rel_error: res
                .trace
                .iterations
                .last()
                .map_or(f64::NAN, |i| i.rel_error),
            ingest,
            refit,
        });
        self.batch += 1;
        Ok(self.records.last().expect("just pushed"))
    }

    /// Finish any background rebuild and fold the remaining delta into
    /// the base, leaving a freshly compiled representation (e.g. before
    /// checkpointing or handing the tensor to batch tooling).
    pub fn flush(&mut self) -> Result<(), StreamError> {
        self.try_adopt(true)?;
        if self.buf.delta_nnz() > 0 || self.buf.base_scale() != 1.0 {
            self.rebuild_now()?;
        }
        Ok(())
    }

    /// Adopt a finished background rebuild. With `block`, wait for an
    /// in-flight one. Returns whether an adoption happened.
    fn try_adopt(&mut self, block: bool) -> Result<bool, StreamError> {
        match &self.job {
            None => return Ok(false),
            Some(job) if !block && !job.handle.is_finished() => return Ok(false),
            Some(_) => {}
        }
        let job = self.job.take().expect("checked above");
        let (prepared, merged) = job
            .handle
            .join()
            .map_err(|_| StreamError::Invalid("background rebuild thread panicked".into()))??;
        self.buf
            .adopt_merged(merged, &job.snapshot_delta, job.decay_since)?;
        self.prepared = prepared;
        if self.prepared.dims() != self.buf.dims() {
            self.prepared.grow_dims(self.buf.dims())?;
        }
        Ok(true)
    }

    /// Inline merge + recompile.
    fn rebuild_now(&mut self) -> Result<(), StreamError> {
        let base = self.buf.merge();
        self.prepared = PreparedTensor::build(base, self.cfg.factorizer.csf_policy_value())?;
        Ok(())
    }

    /// Snapshot the buffer and recompile on a background thread;
    /// ingestion and refits continue against the old base meanwhile.
    fn spawn_rebuild(&mut self) {
        let merged = self.buf.merged_coo();
        let snapshot_delta = self.buf.delta_coo().clone();
        let policy = self.cfg.factorizer.csf_policy_value();
        let handle = std::thread::spawn(move || {
            let prepared = PreparedTensor::build(&merged, policy)?;
            Ok((prepared, merged))
        });
        self.job = Some(RebuildJob {
            handle,
            snapshot_delta,
            decay_since: 1.0,
        });
    }

    /// Grow compiled dims, factors (new rows start at the column mean of
    /// their factor — "a new user looks like the average user"), duals
    /// (zero rows) and Gram caches after mode growth.
    fn apply_growth(&mut self, stats: &IngestStats) -> Result<(), StreamError> {
        self.prepared.grow_dims(self.buf.dims())?;
        let rank = self.cfg.factorizer.rank();
        for (m, &extra) in stats.grown_rows.iter().enumerate() {
            if extra == 0 {
                continue;
            }
            let fac = &mut self.factors[m];
            let mut mean = vec![0.0; rank];
            if fac.nrows() > 0 {
                for r in 0..fac.nrows() {
                    for (s, &v) in mean.iter_mut().zip(fac.row(r)) {
                        *s += v;
                    }
                }
                let inv = 1.0 / fac.nrows() as f64;
                for s in &mut mean {
                    *s *= inv;
                }
            }
            let old_rows = fac.nrows();
            fac.append_zero_rows(extra);
            for r in old_rows..fac.nrows() {
                fac.row_mut(r).copy_from_slice(&mean);
            }
            self.duals.grow_mode(m, extra);
            self.grams[m] = fac.gram();
        }
        Ok(())
    }

    /// The current factor matrices.
    pub fn factors(&self) -> &[DMat] {
        &self.factors
    }

    /// A clone of the current model.
    pub fn model(&self) -> KruskalModel {
        KruskalModel::new(self.factors.clone())
    }

    /// Per-batch records, starting with the initial fit (batch 0).
    pub fn records(&self) -> &[RefitRecord] {
        &self.records
    }

    /// Relative error after the most recent refit.
    pub fn rel_error(&self) -> f64 {
        self.records.last().map_or(f64::NAN, |r| r.rel_error)
    }

    /// The delta buffer (current logical tensor state).
    pub fn buffer(&self) -> &DeltaBuffer {
        &self.buf
    }

    /// Whether a background rebuild is currently in flight.
    pub fn rebuild_in_flight(&self) -> bool {
        self.job.is_some()
    }

    /// Materialize the current logical tensor as a canonical COO.
    pub fn current_coo(&self) -> CooTensor {
        self.buf.merged_coo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::gen;

    fn small_cfg(rank: usize) -> StreamingConfig {
        StreamingConfig::new(Factorizer::new(rank).seed(7).max_outer(40).tolerance(1e-7))
            .refit_outer(6)
            .refit_tol(1e-8)
    }

    #[test]
    fn initial_fit_recorded_as_batch_zero() {
        let base = gen::tensor(&[8, 7, 6], 150, 3);
        let sf = StreamingFactorizer::new(base, small_cfg(4)).unwrap();
        assert_eq!(sf.records().len(), 1);
        let r0 = &sf.records()[0];
        assert_eq!(r0.batch, 0);
        assert!(r0.merged);
        assert!(r0.outer_iterations > 0);
        assert!(r0.rel_error.is_finite());
    }

    #[test]
    fn batches_update_state_and_records() {
        let base = gen::tensor(&[8, 7, 6], 150, 3);
        let mut sf = StreamingFactorizer::new(base, small_cfg(4)).unwrap();
        let rec = sf
            .push_batch(&[
                StreamOp::Add {
                    coord: vec![0, 0, 0],
                    val: 0.4,
                },
                StreamOp::Set {
                    coord: vec![7, 6, 5],
                    val: 1.0,
                },
            ])
            .unwrap();
        assert_eq!(rec.batch, 1);
        assert!(rec.outer_iterations <= 6);
        assert!(sf.rel_error().is_finite());
        assert_eq!(sf.records().len(), 2);
    }

    #[test]
    fn growth_extends_factors_and_duals() {
        let base = gen::tensor(&[8, 7, 6], 150, 3);
        let mut sf = StreamingFactorizer::new(base, small_cfg(3)).unwrap();
        sf.push_batch(&[
            StreamOp::Grow {
                mode: 1,
                new_len: 10,
            },
            StreamOp::Add {
                coord: vec![2, 9, 1],
                val: 0.8,
            },
        ])
        .unwrap();
        assert_eq!(sf.buffer().dims(), &[8, 10, 6]);
        assert_eq!(sf.factors()[1].nrows(), 10);
        assert_eq!(sf.factors()[0].nrows(), 8);
        // Refit keeps shapes consistent.
        assert_eq!(sf.model().factor(1).nrows(), 10);
    }

    #[test]
    fn sink_sees_attach_and_every_refit() {
        struct Recorder(std::sync::Mutex<Vec<Vec<usize>>>);
        impl ModelSink for Recorder {
            fn publish(&self, model: KruskalModel) {
                self.0.lock().unwrap().push(model.dims());
            }
        }
        let base = gen::tensor(&[8, 7, 6], 150, 3);
        let mut sf = StreamingFactorizer::new(base, small_cfg(3)).unwrap();
        let sink = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        sf.attach_sink(sink.clone());
        sf.push_batch(&[StreamOp::Add {
            coord: vec![0, 0, 0],
            val: 0.5,
        }])
        .unwrap();
        sf.push_batch(&[StreamOp::Grow {
            mode: 2,
            new_len: 9,
        }])
        .unwrap();
        let seen = sink.0.lock().unwrap();
        // Attach + two refits; the grown batch publishes grown dims.
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], vec![8, 7, 6]);
        assert_eq!(seen[2], vec![8, 7, 9]);
    }

    #[test]
    fn flush_leaves_clean_compiled_state() {
        let base = gen::tensor(&[8, 7, 6], 150, 3);
        let cfg = small_cfg(3).decay(0.9).policy(MergePolicy::never());
        let mut sf = StreamingFactorizer::new(base, cfg).unwrap();
        sf.push_batch(&[StreamOp::Add {
            coord: vec![1, 1, 1],
            val: 0.3,
        }])
        .unwrap();
        assert!(sf.buffer().delta_nnz() > 0);
        let before = sf.current_coo();
        sf.flush().unwrap();
        assert_eq!(sf.buffer().delta_nnz(), 0);
        assert_eq!(sf.buffer().base_scale(), 1.0);
        let after = sf.current_coo();
        assert_eq!(before, after);
    }
}
