//! Serving MTTKRP from a compiled base plus an uncompiled delta.
//!
//! MTTKRP is linear in the tensor values, so for the logical tensor
//! `base_scale * base + delta`:
//!
//! ```text
//! MTTKRP(X, mode) = base_scale * MTTKRP(base, mode) + MTTKRP(delta, mode)
//! ```
//!
//! The base term runs through the compiled CSF set and its execution
//! plans; the delta term is a sequential pass over the (small, sorted)
//! correction COO. This is what lets the streaming loop refit after every
//! batch without recompiling anything until the merge policy fires.

use crate::delta::DeltaBuffer;
use aoadmm::{AoAdmmError, Factorizer, MttkrpInfo, PreparedTensor, TensorSource};
use splinalg::{vecops, DMat};
use sptensor::CooTensor;

/// A [`TensorSource`] over a compiled [`PreparedTensor`] and the
/// [`DeltaBuffer`] it was compiled from. The prepared tensor must
/// represent the buffer's *base* (the buffer's dims may be larger if
/// modes grew — the caller grows the prepared tensor's dims alongside).
pub struct DeltaView<'a> {
    prepared: &'a PreparedTensor,
    buf: &'a DeltaBuffer,
}

impl<'a> DeltaView<'a> {
    /// Pair a compiled base with its delta buffer. The two must agree on
    /// the current mode lengths.
    pub fn new(prepared: &'a PreparedTensor, buf: &'a DeltaBuffer) -> Self {
        assert_eq!(
            prepared.dims(),
            buf.dims(),
            "compiled base and delta buffer disagree on dims"
        );
        DeltaView { prepared, buf }
    }
}

impl TensorSource for DeltaView<'_> {
    fn dims(&self) -> &[usize] {
        self.buf.dims()
    }

    fn nnz(&self) -> usize {
        self.buf.nnz()
    }

    fn norm_sq(&self) -> f64 {
        self.buf.norm_sq()
    }

    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError> {
        let info = self.prepared.mttkrp(mode, factors, cfg, out)?;
        let scale = self.buf.base_scale();
        if scale != 1.0 {
            out.scale(scale);
        }
        delta_mttkrp_add(self.buf.delta_coo(), factors, mode, out)?;
        Ok(info)
    }

    fn note_factor_changed(&self, mode: usize) {
        self.prepared.note_factor_changed(mode);
    }
}

/// Accumulate `MTTKRP(delta, mode)` into `out` (`out += ...`).
/// Sequential coordinate-wise pass — the delta is small by design; when
/// it isn't, the merge policy should have fired.
pub fn delta_mttkrp_add(
    delta: &CooTensor,
    factors: &[DMat],
    mode: usize,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let nmodes = delta.nmodes();
    if factors.len() != nmodes || mode >= nmodes {
        return Err(AoAdmmError::Config("bad delta MTTKRP arguments".into()));
    }
    if delta.nnz() == 0 {
        return Ok(());
    }
    let rank = out.ncols();
    let mut prod = vec![0.0; rank];
    for n in 0..delta.nnz() {
        for p in prod.iter_mut() {
            *p = delta.values()[n];
        }
        for (m, fac) in factors.iter().enumerate() {
            if m == mode {
                continue;
            }
            vecops::hadamard_assign(&mut prod, fac.row(delta.mode_inds(m)[n] as usize));
        }
        let orow = out.row_mut(delta.mode_inds(mode)[n] as usize);
        for (o, &p) in orow.iter_mut().zip(&prod) {
            *o += p;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::StreamOp;
    use aoadmm::mttkrp::mttkrp_reference;
    use aoadmm::CsfPolicy;
    use testkit::tolerance::assert_mats_close;
    use testkit::{gen, tolerance};

    #[test]
    fn delta_mttkrp_matches_reference_on_pure_delta() {
        let coo = gen::tensor(&[9, 7, 5], 120, 11);
        let factors = gen::factors(&[9, 7, 5], 4, 0.0, 1.0, 12);
        for mode in 0..3 {
            let expect = mttkrp_reference(&coo, &factors, mode).unwrap();
            let mut out = DMat::zeros(coo.dims()[mode], 4);
            delta_mttkrp_add(&coo, &factors, mode, &mut out).unwrap();
            assert_mats_close(
                "pure delta vs reference",
                &out,
                &expect,
                tolerance::KERNEL_RTOL,
                tolerance::KERNEL_ATOL,
            );
        }
    }

    #[test]
    fn view_matches_reference_on_merged_tensor() {
        let base = gen::tensor(&[10, 8, 6], 160, 21);
        let mut buf = DeltaBuffer::new(base).unwrap();
        buf.ingest(&[
            StreamOp::Add {
                coord: vec![0, 0, 0],
                val: 0.7,
            },
            StreamOp::Set {
                coord: vec![9, 7, 5],
                val: 2.0,
            },
            StreamOp::Grow {
                mode: 0,
                new_len: 12,
            },
            StreamOp::Add {
                coord: vec![11, 3, 2],
                val: 1.3,
            },
        ])
        .unwrap();
        buf.decay(0.9).unwrap();

        let mut prepared = PreparedTensor::build(buf.base_coo(), CsfPolicy::PerMode).unwrap();
        prepared.grow_dims(buf.dims()).unwrap();
        let view = DeltaView::new(&prepared, &buf);

        let merged = buf.merged_coo();
        let factors = gen::factors(buf.dims(), 5, 0.0, 1.0, 31);
        let cfg = Factorizer::new(5);
        for mode in 0..3 {
            let expect = mttkrp_reference(&merged, &factors, mode).unwrap();
            let mut out = DMat::zeros(buf.dims()[mode], 5);
            view.mttkrp(mode, &factors, &cfg, &mut out).unwrap();
            assert_mats_close(
                &format!("delta view vs merged reference, mode {mode}"),
                &out,
                &expect,
                tolerance::KERNEL_RTOL,
                tolerance::KERNEL_ATOL,
            );
        }
        assert_eq!(view.nnz(), buf.nnz());
        let expect_norm = merged.norm_sq();
        assert!((view.norm_sq() - expect_norm).abs() < 1e-10 * expect_norm.max(1.0));
    }
}
