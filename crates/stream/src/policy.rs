//! When to stop serving CSF + delta and recompile.
//!
//! Serving the delta costs an extra `O(delta_nnz * rank * nmodes)` per
//! MTTKRP with no fiber reuse, so its cost grows linearly while the
//! compiled base amortizes. The policy caps the delta at a fraction of
//! the base nnz (SPLATT-style rule of thumb: recompilation pays for
//! itself once the delta pass rivals a CSF root's share of the work),
//! with an absolute floor so tiny tensors don't thrash on rebuilds.

/// How the merge + CSF/plan rebuild is executed when the policy fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildMode {
    /// Merge and recompile inline before the next refit. Simple,
    /// deterministic, but the batch that trips the threshold pays the
    /// full rebuild latency.
    Synchronous,
    /// Merge and recompile on a background thread while ingestion and
    /// refits continue against the old base; the new base is adopted at
    /// the next batch boundary after it completes, subtracting the
    /// snapshot's corrections from the live delta.
    Background,
}

/// Decides when the delta buffer is folded into the base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergePolicy {
    /// Merge once `delta_nnz > max_delta_fraction * base_nnz`.
    pub max_delta_fraction: f64,
    /// Never merge below this many delta entries, regardless of the
    /// fraction (rebuilds on small tensors cost more than they save).
    pub min_delta_nnz: usize,
    /// Inline or background rebuild.
    pub rebuild: RebuildMode,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy {
            max_delta_fraction: 0.2,
            min_delta_nnz: 1024,
            rebuild: RebuildMode::Synchronous,
        }
    }
}

impl MergePolicy {
    /// A policy that merges after every non-empty batch (useful for
    /// conformance testing: the served state is always a freshly
    /// compiled tensor).
    pub fn always(rebuild: RebuildMode) -> Self {
        MergePolicy {
            max_delta_fraction: 0.0,
            min_delta_nnz: 1,
            rebuild,
        }
    }

    /// A policy that never merges (pure CSF + delta serving).
    pub fn never() -> Self {
        MergePolicy {
            max_delta_fraction: f64::INFINITY,
            min_delta_nnz: usize::MAX,
            rebuild: RebuildMode::Synchronous,
        }
    }

    /// Should the buffer be merged given its current sizes?
    pub fn should_merge(&self, delta_nnz: usize, base_nnz: usize) -> bool {
        delta_nnz >= self.min_delta_nnz
            && delta_nnz as f64 > self.max_delta_fraction * base_nnz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_thresholds() {
        let p = MergePolicy::default();
        assert!(!p.should_merge(0, 10_000));
        assert!(!p.should_merge(1000, 10_000)); // below floor
        assert!(!p.should_merge(1500, 10_000)); // below fraction
        assert!(p.should_merge(2500, 10_000));
    }

    #[test]
    fn always_and_never() {
        let a = MergePolicy::always(RebuildMode::Background);
        assert!(a.should_merge(1, 1_000_000));
        assert!(!a.should_merge(0, 10));
        let n = MergePolicy::never();
        assert!(!n.should_merge(usize::MAX - 1, 1));
    }
}
