//! Error type for the streaming subsystem.

use aoadmm::AoAdmmError;
use sptensor::TensorError;
use std::fmt;

/// Errors raised while ingesting updates or refitting a streamed tensor.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid stream operation or configuration.
    Invalid(String),
    /// Propagated tensor-substrate error.
    Tensor(TensorError),
    /// Propagated factorization error.
    Factorize(AoAdmmError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Invalid(msg) => write!(f, "stream error: {msg}"),
            StreamError::Tensor(e) => write!(f, "tensor error: {e}"),
            StreamError::Factorize(e) => write!(f, "factorization error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Invalid(_) => None,
            StreamError::Tensor(e) => Some(e),
            StreamError::Factorize(e) => Some(e),
        }
    }
}

impl From<TensorError> for StreamError {
    fn from(e: TensorError) -> Self {
        StreamError::Tensor(e)
    }
}

impl From<AoAdmmError> for StreamError {
    fn from(e: AoAdmmError) -> Self {
        StreamError::Factorize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = StreamError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let t: StreamError = TensorError::Invalid("x".into()).into();
        assert!(t.to_string().contains("tensor"));
        assert!(t.source().is_some());
        let f: StreamError = AoAdmmError::Config("y".into()).into();
        assert!(f.to_string().contains("factorization"));
        assert!(f.source().is_some());
    }
}
