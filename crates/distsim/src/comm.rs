//! Simulated collectives and their cost accounting.
//!
//! The simulation executes the *data movement semantics* of the
//! collectives (so the algorithm is the real distributed algorithm) and
//! meters the bytes and message counts a ring implementation would move,
//! evaluated under a simple alpha-beta (latency + inverse-bandwidth)
//! machine model.

/// Bytes and messages moved by each collective type, plus per-phase
/// attribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Total bytes moved by all-reduce operations (sum over nodes).
    pub allreduce_bytes: u64,
    /// Total bytes moved by all-gather operations (sum over nodes).
    pub allgather_bytes: u64,
    /// Total point-to-point messages (ring steps summed over nodes).
    pub messages: u64,
    /// All-reduce bytes attributable to MTTKRP outputs.
    pub mttkrp_bytes: u64,
    /// Bytes attributable to factor-row all-gathers.
    pub factor_bytes: u64,
    /// Bytes attributable to `F x F` Gram all-reduces.
    pub gram_bytes: u64,
}

impl CommStats {
    /// Record a ring all-reduce of `elems` f64 elements over `p` nodes.
    ///
    /// A ring all-reduce of a `B`-byte buffer sends `2(p-1)/p * B` bytes
    /// per node in `2(p-1)` steps; summed over nodes that is
    /// `2(p-1) * B` bytes.
    pub fn allreduce(&mut self, elems: usize, p: usize, kind: Phase) {
        if p <= 1 {
            return;
        }
        let bytes = (elems * 8) as u64;
        let total = 2 * (p as u64 - 1) * bytes;
        self.allreduce_bytes += total;
        self.messages += (2 * (p - 1) * p) as u64;
        self.attribute(total, kind);
    }

    /// Record a ring all-gather where each node contributes
    /// `elems_per_node` f64 elements.
    pub fn allgather(&mut self, elems_per_node: usize, p: usize, kind: Phase) {
        if p <= 1 {
            return;
        }
        let per = (elems_per_node * 8) as u64;
        // Each node receives (p-1) shares: total (p-1)*per*p bytes.
        let total = (p as u64 - 1) * per * p as u64;
        self.allgather_bytes += total;
        self.messages += ((p - 1) * p) as u64;
        self.attribute(total, kind);
    }

    fn attribute(&mut self, bytes: u64, kind: Phase) {
        match kind {
            Phase::Mttkrp => self.mttkrp_bytes += bytes,
            Phase::Factor => self.factor_bytes += bytes,
            Phase::Gram => self.gram_bytes += bytes,
        }
    }

    /// Total bytes across collective types.
    pub fn total_bytes(&self) -> u64 {
        self.allreduce_bytes + self.allgather_bytes
    }

    /// Fraction of communicated bytes attributable to MTTKRP — the
    /// paper's claim is that this dominates (blocked ADMM adds nothing).
    pub fn mttkrp_fraction(&self) -> f64 {
        let t = self.total_bytes();
        if t == 0 {
            return 0.0;
        }
        self.mttkrp_bytes as f64 / t as f64
    }
}

/// Which algorithm phase a collective belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Summing partial MTTKRP outputs.
    Mttkrp,
    /// Replicating updated factor rows.
    Factor,
    /// Refreshing the `F x F` Gram cache.
    Gram,
}

/// Alpha-beta machine model for estimating communication time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency in seconds (default 1 microsecond).
    pub alpha: f64,
    /// Seconds per byte (default: 12.5 GB/s links, i.e. 8e-11 s/B).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1e-6,
            beta: 8e-11,
        }
    }
}

impl CostModel {
    /// Estimated seconds to execute the recorded collectives, assuming
    /// perfect overlap across nodes (divide totals by node count).
    pub fn estimate_seconds(&self, stats: &CommStats, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let per_node_bytes = stats.total_bytes() as f64 / p as f64;
        let per_node_msgs = stats.messages as f64 / p as f64;
        per_node_msgs * self.alpha + per_node_bytes * self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_free() {
        let mut s = CommStats::default();
        s.allreduce(1000, 1, Phase::Mttkrp);
        s.allgather(1000, 1, Phase::Factor);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages, 0);
    }

    #[test]
    fn bytes_grow_with_nodes() {
        let mut s2 = CommStats::default();
        s2.allreduce(10_000, 2, Phase::Mttkrp);
        let mut s8 = CommStats::default();
        s8.allreduce(10_000, 8, Phase::Mttkrp);
        assert!(s8.allreduce_bytes > s2.allreduce_bytes);
    }

    #[test]
    fn attribution_sums_to_total() {
        let mut s = CommStats::default();
        s.allreduce(5_000, 4, Phase::Mttkrp);
        s.allgather(2_000, 4, Phase::Factor);
        s.allreduce(64, 4, Phase::Gram);
        assert_eq!(
            s.mttkrp_bytes + s.factor_bytes + s.gram_bytes,
            s.total_bytes()
        );
        assert!(s.mttkrp_fraction() > 0.5);
    }

    #[test]
    fn cost_model_monotone_in_bytes() {
        let m = CostModel::default();
        let mut small = CommStats::default();
        small.allreduce(1_000, 4, Phase::Mttkrp);
        let mut big = CommStats::default();
        big.allreduce(1_000_000, 4, Phase::Mttkrp);
        assert!(m.estimate_seconds(&big, 4) > m.estimate_seconds(&small, 4));
        assert_eq!(m.estimate_seconds(&big, 1), 0.0);
    }
}
