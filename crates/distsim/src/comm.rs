//! Analytic communication-volume model and measured-traffic reports.
//!
//! [`CommPrediction`] computes, from a [`Partition`] and the rank alone,
//! exactly how many bytes the execution engine's message layer will move
//! per round, per phase and per directed edge. The comm-validation suite
//! asserts the measured [`CommLedger`] equals the prediction **byte for
//! byte** — so the model and the wiring cannot drift apart unnoticed.
//!
//! Per outer round the engine's protocol moves, for `S` shards, rank
//! `F`, split mode `s`:
//!
//! - **KReduce** (`m != s`): shard `p` sends shard `q` the rows of its
//!   partial MTTKRP that `q` owns — `|owned(m, q)| * F * 8` bytes per
//!   edge per mode (a reduce-scatter as point-to-point sends; empty
//!   blocks are skipped).
//! - **FactorRows** (`m != s`): shard `p` replicates its updated owned
//!   rows to every peer — `|owned(m, p)| * F * 8` bytes per edge per
//!   mode (an allgather).
//! - **GramReduce** (`m == s` only): each shard sends its partial
//!   `F x F` Gram to every peer — `F^2 * 8` bytes per edge. The
//!   split-mode factor rows themselves **never travel**: that mode's
//!   nonzeros are fully local (the medium-grained observation of Liavas
//!   & Sidiropoulos), so only the tiny Gram moves.
//! - **Objective** (last mode only): one scalar per edge, 8 bytes.
//!
//! Estimated wall time uses the usual alpha-beta machine model
//! ([`CostModel`]).

use crate::msg::{CommLedger, Phase, NPHASES};
use crate::partition::Partition;

/// Exact per-round, per-phase, per-edge byte prediction for a
/// partitioned run. Built by [`CommPrediction::predict`].
#[derive(Debug, Clone)]
pub struct CommPrediction {
    nshards: usize,
    rounds: usize,
    /// Per-round bytes `kreduce[src * S + dst]`.
    kreduce_edge: Vec<u64>,
    /// Per-round bytes `factor[src * S + dst]`.
    factor_edge: Vec<u64>,
    /// Per-round bytes on every off-diagonal edge.
    gram_edge: u64,
    /// Per-round bytes on every off-diagonal edge (last mode only, but
    /// that is once per round).
    objective_edge: u64,
    /// Per-round message counts by phase.
    msgs_per_round: [u64; NPHASES],
}

impl CommPrediction {
    /// Predict the traffic of `rounds` outer rounds at rank `rank` under
    /// `part`.
    pub fn predict(part: &Partition, rank: usize, rounds: usize) -> Self {
        let s = part.nshards();
        let split = part.split_mode();
        let f = rank as u64;
        let mut kreduce_edge = vec![0u64; s * s];
        let mut factor_edge = vec![0u64; s * s];
        let mut msgs = [0u64; NPHASES];
        for m in 0..part.nmodes() {
            if m == split {
                continue;
            }
            for p in 0..s {
                for q in 0..s {
                    if p == q {
                        continue;
                    }
                    let owned_q = part.owned(m, q).len() as u64;
                    let owned_p = part.owned(m, p).len() as u64;
                    kreduce_edge[p * s + q] += owned_q * f * 8;
                    factor_edge[p * s + q] += owned_p * f * 8;
                    if owned_q > 0 {
                        msgs[Phase::KReduce.index()] += 1;
                    }
                    if owned_p > 0 {
                        msgs[Phase::FactorRows.index()] += 1;
                    }
                }
            }
        }
        let off_diag = (s * s - s) as u64;
        msgs[Phase::GramReduce.index()] = off_diag;
        msgs[Phase::Objective.index()] = off_diag;
        CommPrediction {
            nshards: s,
            rounds,
            kreduce_edge,
            factor_edge,
            gram_edge: f * f * 8,
            objective_edge: 8,
            msgs_per_round: msgs,
        }
    }

    /// Rounds the prediction covers.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Predicted bytes from `src` to `dst` in one round of `phase`.
    pub fn edge_bytes(&self, phase: Phase, src: usize, dst: usize) -> u64 {
        if src == dst {
            return 0;
        }
        match phase {
            Phase::KReduce => self.kreduce_edge[src * self.nshards + dst],
            Phase::FactorRows => self.factor_edge[src * self.nshards + dst],
            Phase::GramReduce => self.gram_edge,
            Phase::Objective => self.objective_edge,
        }
    }

    /// Predicted bytes of one round of `phase` over all edges.
    pub fn round_bytes(&self, phase: Phase) -> u64 {
        let s = self.nshards;
        (0..s * s)
            .map(|e| self.edge_bytes(phase, e / s, e % s))
            .sum()
    }

    /// Predicted bytes of `phase` over the whole run.
    pub fn phase_bytes(&self, phase: Phase) -> u64 {
        self.round_bytes(phase) * self.rounds as u64
    }

    /// Predicted total bytes over the whole run.
    pub fn total_bytes(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_bytes(p)).sum()
    }

    /// Predicted total messages over the whole run.
    pub fn total_messages(&self) -> u64 {
        self.msgs_per_round.iter().sum::<u64>() * self.rounds as u64
    }

    /// Fraction of predicted bytes carried by the MTTKRP reduce phase —
    /// the paper's claim is that this (plus the factor gathers it
    /// implies) dominates, while ADMM itself contributes zero bytes.
    pub fn kreduce_fraction(&self) -> f64 {
        let t = self.total_bytes();
        if t == 0 {
            return 0.0;
        }
        self.phase_bytes(Phase::KReduce) as f64 / t as f64
    }
}

/// Measured traffic of a finished run: an immutable snapshot of the
/// [`CommLedger`] truncated to the rounds actually executed.
#[derive(Debug, Clone)]
pub struct CommReport {
    nshards: usize,
    rounds: usize,
    /// `bytes[(((round-1) * NPHASES + phase) * S + src) * S + dst]`.
    bytes: Vec<u64>,
    msgs: [u64; NPHASES],
}

impl CommReport {
    /// Snapshot `ledger` over the first `rounds` rounds.
    pub fn from_ledger(ledger: &CommLedger, nshards: usize, rounds: usize) -> Self {
        let mut bytes = vec![0u64; rounds * NPHASES * nshards * nshards];
        let mut idx = 0;
        for r in 1..=rounds {
            for &phase in &Phase::ALL {
                for src in 0..nshards {
                    for dst in 0..nshards {
                        bytes[idx] = ledger.edge_bytes(r as u32, phase, src, dst);
                        idx += 1;
                    }
                }
            }
        }
        let mut msgs = [0u64; NPHASES];
        for &phase in &Phase::ALL {
            msgs[phase.index()] = ledger.phase_messages(phase);
        }
        CommReport {
            nshards,
            rounds,
            bytes,
            msgs,
        }
    }

    /// Rounds the report covers.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Measured bytes from `src` to `dst` in round `round` (1-based) of
    /// `phase`.
    pub fn edge_bytes(&self, round: usize, phase: Phase, src: usize, dst: usize) -> u64 {
        let s = self.nshards;
        self.bytes[(((round - 1) * NPHASES + phase.index()) * s + src) * s + dst]
    }

    /// Measured bytes of `phase` in round `round`.
    pub fn round_bytes(&self, round: usize, phase: Phase) -> u64 {
        let s = self.nshards;
        let base = (((round - 1) * NPHASES + phase.index()) * s) * s;
        self.bytes[base..base + s * s].iter().sum()
    }

    /// Measured bytes of `phase` over the whole run.
    pub fn phase_bytes(&self, phase: Phase) -> u64 {
        (1..=self.rounds).map(|r| self.round_bytes(r, phase)).sum()
    }

    /// Measured total bytes.
    pub fn total_bytes(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_bytes(p)).sum()
    }

    /// Measured total messages.
    pub fn total_messages(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// First discrepancy between this report and `pred`, as a
    /// human-readable description — `None` when every `(round, phase,
    /// edge)` cell matches exactly. The comm-validation suite asserts
    /// `None`.
    pub fn diff_from_prediction(&self, pred: &CommPrediction) -> Option<String> {
        if pred.rounds() != self.rounds {
            return Some(format!(
                "prediction covers {} rounds, report covers {}",
                pred.rounds(),
                self.rounds
            ));
        }
        for r in 1..=self.rounds {
            for &phase in &Phase::ALL {
                for src in 0..self.nshards {
                    for dst in 0..self.nshards {
                        let got = self.edge_bytes(r, phase, src, dst);
                        let want = pred.edge_bytes(phase, src, dst);
                        if got != want {
                            return Some(format!(
                                "round {r} {phase:?} edge {src}->{dst}: measured {got} bytes, predicted {want}"
                            ));
                        }
                    }
                }
            }
        }
        if self.total_messages() != pred.total_messages() {
            return Some(format!(
                "measured {} messages, predicted {}",
                self.total_messages(),
                pred.total_messages()
            ));
        }
        None
    }
}

/// Alpha-beta machine model for estimating communication time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency in seconds (default 1 microsecond).
    pub alpha: f64,
    /// Seconds per byte (default: 12.5 GB/s links, i.e. 8e-11 s/B).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1e-6,
            beta: 8e-11,
        }
    }
}

impl CostModel {
    /// Estimated seconds for the measured traffic, assuming perfect
    /// overlap across shards (divide totals by the shard count).
    pub fn estimate_seconds(&self, report: &CommReport) -> f64 {
        if report.nshards <= 1 {
            return 0.0;
        }
        let per = report.nshards as f64;
        (report.total_messages() as f64 / per) * self.alpha
            + (report.total_bytes() as f64 / per) * self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::gen;

    fn prediction(s: usize, rounds: usize) -> (CommPrediction, Partition, usize) {
        let t = gen::random_uniform(&[40, 30, 20], 600, 3).unwrap();
        let part = Partition::build(&t, s).unwrap();
        (CommPrediction::predict(&part, 5, rounds), part, 5)
    }

    #[test]
    fn single_shard_predicts_zero() {
        let (pred, _, _) = prediction(1, 4);
        assert_eq!(pred.total_bytes(), 0);
        assert_eq!(pred.total_messages(), 0);
    }

    #[test]
    fn volumes_scale_with_rounds_and_shards() {
        let (p2, _, _) = prediction(2, 3);
        let (p4, _, _) = prediction(4, 3);
        assert!(p4.total_bytes() > p2.total_bytes());
        let (p2b, _, _) = prediction(2, 6);
        assert_eq!(p2b.total_bytes(), 2 * p2.total_bytes());
    }

    #[test]
    fn split_mode_moves_only_grams() {
        // The split mode contributes no KReduce/FactorRows bytes; its
        // footprint is the F^2 gram blocks. Non-split modes contribute
        // exactly their row count * rank * 8 per (phase, round).
        let (pred, part, rank) = prediction(3, 1);
        let s = part.nshards();
        let dims = [40usize, 30, 20];
        let split = part.split_mode();
        let expected_rows: u64 = (0..3)
            .filter(|&m| m != split)
            .map(|m| (dims[m] * rank * 8) as u64)
            .sum();
        assert_eq!(
            pred.round_bytes(Phase::KReduce),
            (s as u64 - 1) * expected_rows
        );
        assert_eq!(
            pred.round_bytes(Phase::FactorRows),
            (s as u64 - 1) * expected_rows
        );
        assert_eq!(
            pred.round_bytes(Phase::GramReduce),
            ((s * s - s) * rank * rank * 8) as u64
        );
        assert_eq!(pred.round_bytes(Phase::Objective), (s * s - s) as u64 * 8);
    }

    #[test]
    fn diagonal_edges_are_zero() {
        let (pred, _, _) = prediction(4, 2);
        for &phase in &Phase::ALL {
            for p in 0..4 {
                assert_eq!(pred.edge_bytes(phase, p, p), 0);
            }
        }
    }

    #[test]
    fn cost_model_monotone_in_traffic() {
        let m = CostModel::default();
        let t = gen::random_uniform(&[40, 30, 20], 600, 3).unwrap();
        let part = Partition::build(&t, 4).unwrap();
        let ledger = crate::msg::CommLedger::new(4, 2);
        let small = CommReport::from_ledger(&ledger, 4, 1);
        assert_eq!(m.estimate_seconds(&small), 0.0);
        let fabric = crate::msg::Fabric::new(4);
        let ep = fabric.endpoint(0);
        ep.send_block(1, Phase::KReduce, 0, 1, vec![0.0; 1000], &ledger);
        let bigger = CommReport::from_ledger(&ledger, 4, 1);
        assert!(m.estimate_seconds(&bigger) > 0.0);
        let _ = part;
    }
}
