//! The sharded AO-ADMM execution engine.
//!
//! [`shard_factorize`] partitions the tensor along its longest mode into
//! per-shard CSF sets ([`Partition`]), runs one SPMD worker thread per
//! shard — each with its own rayon pool — and exchanges factor rows,
//! partial-MTTKRP blocks and partial Grams through the typed message
//! fabric of [`crate::msg`]. No factor state is shared: every byte that
//! would cross a network in a real distributed run crosses a channel
//! here, and is metered into a [`CommLedger`] that the validation suite
//! compares against [`CommPrediction`] byte for byte.
//!
//! ## Protocol
//!
//! Per outer round, per mode `m` (split mode `s`), every shard runs the
//! same three sub-steps:
//!
//! 1. **Local** ([`ShardState::step_local`]): Hadamard Gram product,
//!    then a *partial* MTTKRP over the shard's local nonzeros; for
//!    `m != s` the partial rows owned by each peer are posted to it
//!    ([`Phase::KReduce`] — a reduce-scatter as point-to-point sends).
//! 2. **Update** ([`ShardState::step_update`]): peer partials are merged
//!    into the owned `K` rows in frozen shard order, blocked ADMM runs
//!    on the owned rows only, and the results go out — updated factor
//!    rows to every peer for `m != s` ([`Phase::FactorRows`]), or the
//!    local `F x F` partial Gram for `m == s` ([`Phase::GramReduce`]).
//!    Split-mode factor rows never travel: the split mode's nonzeros are
//!    fully local, so remote shards only need the Gram (the
//!    medium-grained observation of Liavas & Sidiropoulos).
//! 3. **Absorb** ([`ShardState::step_absorb`]): peer factor rows (or
//!    Gram partials) are merged, the mode's Gram is refreshed, and on
//!    the last mode the partial inner product `<K_local, A_owned>` is
//!    posted ([`Phase::Objective`]) so every shard evaluates the same
//!    stopping rule on the same relative error.
//!
//! ## Determinism
//!
//! All merges are *frozen shard-ordered reductions*: the first
//! contributor is copied, later contributors are added in ascending
//! shard index (`copy`-first also preserves signed zeros, so a 1-shard
//! run is bit-identical to the shared-memory driver, whose buffers are
//! overwritten rather than accumulated). Combined with the
//! bit-deterministic MTTKRP chunk schedules and the chunk-ordered panel
//! Gram reduction, the whole sharded trajectory is a pure function of
//! `(tensor, config, partition)` — independent of thread interleaving.
//! [`LockstepEngine`] exploits that: it runs the identical
//! [`ShardState`] sub-steps sequentially over the same fabric, giving a
//! single-threaded twin the conformance suite asserts bit-equal to the
//! threaded run, and an allocation-countable [`LockstepEngine::round`]
//! for the hot-path suite.

use crate::comm::{CommPrediction, CommReport, CostModel};
use crate::msg::{Body, CommLedger, Endpoint, Fabric, Phase, RecvError};
use crate::partition::Partition;
use admm::{admm_update_ws, AdmmWorkspace};
use aoadmm::kruskal::relative_error_fast;
use aoadmm::trace::{FactorizeTrace, IterRecord, ModeRecord};
use aoadmm::{
    init_factors, AoAdmmError, Factorizer, KruskalModel, MttkrpInfo, PreparedTensor,
    SparsityDecision, Structure, TensorSource,
};
use splinalg::{ops, panel, vecops, DMat, Workspace};
use sptensor::CooTensor;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution-engine configuration: how many shards, how much parallelism
/// inside each, and the machine model for the wall-time estimate.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards the tensor is partitioned into.
    pub nshards: usize,
    /// Rayon threads per shard worker (`0` = run on the ambient pool).
    pub threads_per_shard: usize,
    /// Alpha-beta model for [`ShardResult::est_comm_seconds`].
    pub cost: CostModel,
}

impl ShardConfig {
    /// Configuration with `nshards` shards on the ambient rayon pool.
    pub fn new(nshards: usize) -> Self {
        ShardConfig {
            nshards,
            threads_per_shard: 0,
            cost: CostModel::default(),
        }
    }

    /// Set the per-shard rayon pool size.
    pub fn threads_per_shard(mut self, n: usize) -> Self {
        self.threads_per_shard = n;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(2)
    }
}

/// Result of a sharded run: everything [`aoadmm::FactorizeResult`]
/// carries, plus the partition and the communication accounting.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// The factor matrices, assembled from the shard-owned blocks.
    pub model: KruskalModel,
    /// Convergence/timing history, recorded by shard 0.
    pub trace: FactorizeTrace,
    /// Final ADMM duals, stitched full-size from the owned blocks.
    pub duals: Vec<DMat>,
    /// Final Gram matrices (replicated; taken from shard 0).
    pub grams: Vec<DMat>,
    /// The partition the run executed under.
    pub partition: Partition,
    /// Measured wire traffic, per round / phase / edge.
    pub comm: CommReport,
    /// Analytic prediction for the same rounds (the validation suite
    /// asserts `comm.diff_from_prediction(&predicted)` is `None`).
    pub predicted: CommPrediction,
    /// Alpha-beta estimate of the communication wall time.
    pub est_comm_seconds: f64,
    /// Nonzeros held by the heaviest shard.
    pub max_shard_nnz: usize,
}

fn comm_error(e: RecvError) -> AoAdmmError {
    AoAdmmError::Config(format!("sharded engine: {e}"))
}

fn block_len_error(src: usize, phase: Phase, got: usize, want: usize) -> AoAdmmError {
    AoAdmmError::Config(format!(
        "sharded engine: {phase:?} block from shard {src} has {got} elements, expected {want}"
    ))
}

/// One shard's complete private state plus the sub-step methods of the
/// protocol. The threaded SPMD driver and the [`LockstepEngine`] run the
/// *same* methods — only the schedule differs — which is what makes the
/// sequential twin a bit-exact oracle for the concurrency layer.
struct ShardState {
    id: usize,
    nshards: usize,
    split: usize,
    cfg: Factorizer,
    part: Arc<Partition>,
    /// Local nonzeros compiled to CSF; `None` when the shard holds none.
    prepared: Option<PreparedTensor>,
    xnorm_sq: f64,
    rank: usize,
    dims: Vec<usize>,
    /// Full-size replicated factors. Split-mode rows outside `owned` go
    /// stale — and are never read, because every local nonzero's
    /// split-mode index is owned.
    factors: Vec<DMat>,
    /// Owned-rows primal working blocks (ADMM output), one per mode.
    hblocks: Vec<DMat>,
    /// Owned-rows dual blocks, one per mode.
    ublocks: Vec<DMat>,
    /// Owned-rows merged MTTKRP result, one per mode.
    k_owned: Vec<DMat>,
    /// Full-size partial MTTKRP buffers, one per mode.
    partials: Vec<DMat>,
    /// Replicated Gram cache.
    grams: Vec<DMat>,
    gram_buf: DMat,
    /// Split-mode partial Gram (of the owned rows).
    gpartial: DMat,
    admm_ws: AdmmWorkspace,
    lin_ws: Workspace,
    /// Last MTTKRP info per mode (trace reporting, shard 0).
    mttkrp_info: Vec<MttkrpInfo>,
    /// Last ADMM `(iterations, row_iterations)` per mode.
    admm_stats: Vec<(usize, u64)>,
    /// Partial `<K_last, A_last>` of the owned rows.
    partial_inner: f64,
}

fn dense_info() -> MttkrpInfo {
    MttkrpInfo {
        decision: SparsityDecision {
            density: 1.0,
            structure: Structure::Dense,
        },
        strategy: None,
        slab_hits: 0,
        slab_misses: 0,
    }
}

impl ShardState {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: usize,
        part: Arc<Partition>,
        cfg: &Factorizer,
        local: &CooTensor,
        xnorm_sq: f64,
        factors: Vec<DMat>,
        duals_full: &[DMat],
        grams: Vec<DMat>,
    ) -> Result<Self, AoAdmmError> {
        let rank = cfg.rank();
        let dims: Vec<usize> = local.dims().to_vec();
        let nmodes = dims.len();
        let prepared = if local.nnz() > 0 {
            Some(PreparedTensor::build(local, cfg.csf_policy_value())?)
        } else {
            None
        };
        let mut hblocks = Vec::with_capacity(nmodes);
        let mut ublocks = Vec::with_capacity(nmodes);
        let mut k_owned = Vec::with_capacity(nmodes);
        for (m, dual) in duals_full.iter().enumerate().take(nmodes) {
            let own = part.owned(m, id);
            hblocks.push(DMat::zeros(own.len(), rank));
            k_owned.push(DMat::zeros(own.len(), rank));
            let mut u = DMat::zeros(own.len(), rank);
            copy_rows(dual, &own, &mut u);
            ublocks.push(u);
        }
        Ok(ShardState {
            id,
            nshards: part.nshards(),
            split: part.split_mode(),
            cfg: cfg.clone(),
            part,
            prepared,
            xnorm_sq,
            rank,
            partials: dims.iter().map(|&d| DMat::zeros(d, rank)).collect(),
            dims,
            factors,
            hblocks,
            ublocks,
            k_owned,
            grams,
            gram_buf: DMat::zeros(rank, rank),
            gpartial: DMat::zeros(rank, rank),
            admm_ws: AdmmWorkspace::new(),
            lin_ws: Workspace::new(),
            mttkrp_info: vec![dense_info(); nmodes],
            admm_stats: vec![(0, 0); nmodes],
            partial_inner: 0.0,
        })
    }

    fn nmodes(&self) -> usize {
        self.dims.len()
    }

    fn owned(&self, m: usize) -> Range<usize> {
        self.part.owned(m, self.id)
    }

    /// Sub-step 1: combined Gram, partial MTTKRP, post `K` rows to their
    /// owners (`m != split`).
    fn step_local(
        &mut self,
        m: usize,
        round: u32,
        ep: &Endpoint,
        ledger: &CommLedger,
    ) -> Result<(), AoAdmmError> {
        ops::gram_hadamard_into(&self.grams, m, &mut self.gram_buf)?;
        if let Some(prep) = &self.prepared {
            self.mttkrp_info[m] =
                prep.mttkrp(m, &self.factors, &self.cfg, &mut self.partials[m])?;
        } else {
            self.partials[m].fill(0.0);
            self.mttkrp_info[m] = dense_info();
        }
        if m != self.split {
            let f = self.rank;
            for q in 0..self.nshards {
                if q == self.id {
                    continue;
                }
                let r = self.part.owned(m, q);
                if r.is_empty() {
                    continue;
                }
                let mut buf = ep.take_buffer(q);
                buf.extend_from_slice(&self.partials[m].as_slice()[r.start * f..r.end * f]);
                ep.send_block(q, Phase::KReduce, m, round, buf, ledger);
            }
        }
        Ok(())
    }

    /// Sub-step 2: merge peer `K` partials (frozen shard order), blocked
    /// ADMM on the owned rows, post updated rows (or the split-mode
    /// partial Gram).
    fn step_update(
        &mut self,
        m: usize,
        round: u32,
        ep: &Endpoint,
        ledger: &CommLedger,
    ) -> Result<(), AoAdmmError> {
        let own = self.owned(m);
        let f = self.rank;
        if !own.is_empty() {
            if m == self.split {
                // Split-mode nonzeros are fully local: the shard's own
                // partial already is the exact K for its rows.
                let src = &self.partials[m];
                self.k_owned[m]
                    .as_mut_slice()
                    .copy_from_slice(&src.as_slice()[own.start * f..own.end * f]);
            } else {
                for src in 0..self.nshards {
                    if src == self.id {
                        let rows = &self.partials[m].as_slice()[own.start * f..own.end * f];
                        merge_into(self.k_owned[m].as_mut_slice(), rows, src == 0);
                    } else {
                        let msg = ep.recv(src, Phase::KReduce, m, round).map_err(comm_error)?;
                        let Body::Block(buf) = msg.body else {
                            return Err(block_len_error(src, Phase::KReduce, 0, own.len() * f));
                        };
                        if buf.len() != own.len() * f {
                            return Err(block_len_error(
                                src,
                                Phase::KReduce,
                                buf.len(),
                                own.len() * f,
                            ));
                        }
                        merge_into(self.k_owned[m].as_mut_slice(), &buf, src == 0);
                        ep.return_buffer(src, buf);
                    }
                }
            }

            // Blocked ADMM on the owned rows only — zero communication,
            // the paper's Section IV-B property.
            copy_rows(&self.factors[m], &own, &mut self.hblocks[m]);
            let stats = admm_update_ws(
                &self.gram_buf,
                &self.k_owned[m],
                &mut self.hblocks[m],
                &mut self.ublocks[m],
                &**self.cfg.constraint_for(m),
                self.cfg.admm_config(),
                &mut self.admm_ws,
            )?;
            self.admm_stats[m] = (stats.iterations, stats.row_iterations);
            write_rows(&mut self.factors[m], &own, &self.hblocks[m]);
        } else {
            self.admm_stats[m] = (0, 0);
        }

        if m == self.split {
            // Only the F x F partial Gram travels for the split mode.
            if own.is_empty() {
                self.gpartial.fill(0.0);
            } else {
                panel::gram_into(&self.hblocks[m], &mut self.lin_ws, &mut self.gpartial)?;
            }
            for q in 0..self.nshards {
                if q == self.id {
                    continue;
                }
                let mut buf = ep.take_buffer(q);
                buf.extend_from_slice(self.gpartial.as_slice());
                ep.send_block(q, Phase::GramReduce, m, round, buf, ledger);
            }
        } else if !own.is_empty() {
            for q in 0..self.nshards {
                if q == self.id {
                    continue;
                }
                let mut buf = ep.take_buffer(q);
                buf.extend_from_slice(self.hblocks[m].as_slice());
                ep.send_block(q, Phase::FactorRows, m, round, buf, ledger);
            }
        }
        Ok(())
    }

    /// Sub-step 3: absorb peer rows / Gram partials, refresh the mode's
    /// Gram, and on the last mode post the partial inner product.
    fn step_absorb(
        &mut self,
        m: usize,
        round: u32,
        ep: &Endpoint,
        ledger: &CommLedger,
    ) -> Result<(), AoAdmmError> {
        let f = self.rank;
        if m == self.split {
            // Frozen shard-ordered all-reduce of the partial Grams.
            for src in 0..self.nshards {
                if src == self.id {
                    let first = src == 0;
                    let (gp, gm) = (&self.gpartial, &mut self.grams[m]);
                    merge_into(gm.as_mut_slice(), gp.as_slice(), first);
                } else {
                    let msg = ep
                        .recv(src, Phase::GramReduce, m, round)
                        .map_err(comm_error)?;
                    let Body::Block(buf) = msg.body else {
                        return Err(block_len_error(src, Phase::GramReduce, 0, f * f));
                    };
                    if buf.len() != f * f {
                        return Err(block_len_error(src, Phase::GramReduce, buf.len(), f * f));
                    }
                    merge_into(self.grams[m].as_mut_slice(), &buf, src == 0);
                    ep.return_buffer(src, buf);
                }
            }
        } else {
            for src in 0..self.nshards {
                if src == self.id {
                    continue;
                }
                let r = self.part.owned(m, src);
                if r.is_empty() {
                    continue;
                }
                let msg = ep
                    .recv(src, Phase::FactorRows, m, round)
                    .map_err(comm_error)?;
                let Body::Block(buf) = msg.body else {
                    return Err(block_len_error(src, Phase::FactorRows, 0, r.len() * f));
                };
                if buf.len() != r.len() * f {
                    return Err(block_len_error(
                        src,
                        Phase::FactorRows,
                        buf.len(),
                        r.len() * f,
                    ));
                }
                self.factors[m].as_mut_slice()[r.start * f..r.end * f].copy_from_slice(&buf);
                ep.return_buffer(src, buf);
            }
            // Full factor is now replicated: the Gram is recomputed
            // locally — zero wire bytes for non-split modes.
            panel::gram_into(&self.factors[m], &mut self.lin_ws, &mut self.grams[m])?;
        }
        if let Some(prep) = &self.prepared {
            prep.note_factor_changed(m);
        }
        if m == self.nmodes() - 1 {
            // Fit trick, shard-local part: <X, M> = <K_last, A_last> and
            // both operands are row-partitioned by ownership.
            let own = self.owned(m);
            self.partial_inner = if own.is_empty() {
                0.0
            } else {
                ops::inner_product(&self.k_owned[m], &self.hblocks[m])?
            };
            for q in 0..self.nshards {
                if q == self.id {
                    continue;
                }
                ep.send_scalar(q, Phase::Objective, m, round, self.partial_inner, ledger);
            }
        }
        Ok(())
    }

    /// End of round: frozen shard-ordered sum of the partial inner
    /// products, then the relative error every shard agrees on.
    fn finish_round(&mut self, round: u32, ep: &Endpoint) -> Result<f64, AoAdmmError> {
        let m = self.nmodes() - 1;
        let mut inner = 0.0;
        for src in 0..self.nshards {
            let v = if src == self.id {
                self.partial_inner
            } else {
                let msg = ep
                    .recv(src, Phase::Objective, m, round)
                    .map_err(comm_error)?;
                match msg.body {
                    Body::Scalar(v) => v,
                    Body::Block(_) => {
                        return Err(block_len_error(src, Phase::Objective, 0, 1));
                    }
                }
            };
            if src == 0 {
                inner = v;
            } else {
                inner += v;
            }
        }
        let model_norm_sq = ops::model_norm_sq(&self.grams)?;
        Ok(relative_error_fast(self.xnorm_sq, inner, model_norm_sq))
    }

    fn mode_record(&self, m: usize, mttkrp: Duration, admm: Duration) -> ModeRecord {
        let info = self.mttkrp_info[m];
        let (iters, row_iters) = self.admm_stats[m];
        ModeRecord {
            mode: m,
            mttkrp_strategy: info.strategy,
            mttkrp,
            admm,
            admm_iterations: iters,
            admm_row_iterations: row_iters,
            inner: Some(aoadmm::InnerSolverKind::Admm),
            sparsity: info.decision,
            slab_hits: info.slab_hits,
            slab_misses: info.slab_misses,
        }
    }
}

/// `dst = src` (first contributor) or `dst += src` (the rest). Copying
/// the first contributor rather than zero-filling and accumulating keeps
/// 1-shard merges bit-identical to the shared-memory driver's overwrites
/// (including signed zeros).
fn merge_into(dst: &mut [f64], src: &[f64], first: bool) {
    if first {
        dst.copy_from_slice(src);
    } else {
        vecops::axpy(1.0, src, dst);
    }
}

/// Copy rows `r` of `src` (full-size) into `dst` (block-size).
fn copy_rows(src: &DMat, r: &Range<usize>, dst: &mut DMat) {
    let f = src.ncols();
    dst.as_mut_slice()
        .copy_from_slice(&src.as_slice()[r.start * f..r.end * f]);
}

/// Copy `src` (block-size) into rows `r` of `dst` (full-size).
fn write_rows(dst: &mut DMat, r: &Range<usize>, src: &DMat) {
    let f = dst.ncols();
    dst.as_mut_slice()[r.start * f..r.end * f].copy_from_slice(src.as_slice());
}

/// Everything a run needs before the first round.
struct EngineSetup {
    part: Arc<Partition>,
    states: Vec<ShardState>,
    fabric: Arc<Fabric>,
    ledger: Arc<CommLedger>,
    max_shard_nnz: usize,
}

/// Warm-start payload: (model, optional duals, optional Gram cache).
type WarmState = (KruskalModel, Option<Vec<DMat>>, Option<Vec<DMat>>);

fn build_setup(
    tensor: &CooTensor,
    cfg: &Factorizer,
    sc: &ShardConfig,
    warm: Option<WarmState>,
) -> Result<EngineSetup, AoAdmmError> {
    cfg.validate(tensor)?;
    if sc.nshards == 0 {
        return Err(AoAdmmError::Config("nshards must be positive".into()));
    }
    let rank = cfg.rank();
    let part = Arc::new(Partition::build(tensor, sc.nshards)?);
    let locals = part.split_tensor(tensor);
    let max_shard_nnz = locals.iter().map(CooTensor::nnz).max().unwrap_or(0);
    let xnorm_sq = tensor.norm_sq();

    let (factors, duals_full, grams) = match warm {
        None => {
            let factors = init_factors(tensor.dims(), rank, cfg.seed_value(), xnorm_sq);
            let duals: Vec<DMat> = tensor
                .dims()
                .iter()
                .map(|&d| DMat::zeros(d, rank))
                .collect();
            let grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
            (factors, duals, grams)
        }
        Some((model, duals, grams)) => {
            let (factors, duals) = validate_warm_state(cfg, tensor.dims(), model, duals)?;
            let grams = match grams {
                Some(g) => {
                    if g.len() != factors.len()
                        || g.iter().any(|m| m.nrows() != rank || m.ncols() != rank)
                    {
                        return Err(AoAdmmError::Config(
                            "warm-start gram cache does not match the configured rank".into(),
                        ));
                    }
                    g
                }
                None => warm_grams(&factors, &part, rank)?,
            };
            (factors, duals, grams)
        }
    };

    let mut states = Vec::with_capacity(sc.nshards);
    for (p, local) in locals.iter().enumerate() {
        states.push(ShardState::new(
            p,
            Arc::clone(&part),
            cfg,
            local,
            xnorm_sq,
            factors.clone(),
            &duals_full,
            grams.clone(),
        )?);
    }
    let fabric = Fabric::new(sc.nshards);
    let ledger = CommLedger::new(sc.nshards, cfg.max_outer_iterations());
    Ok(EngineSetup {
        part,
        states,
        fabric,
        ledger,
        max_shard_nnz,
    })
}

/// Reconstruct the Gram invariant the running engine maintains, for a
/// warm start with no Gram cache. Non-split modes hold the full-matrix
/// panel Gram; the split mode holds the frozen shard-ordered sum of
/// owned-row partial Grams (empty shards contribute explicit zeros),
/// exactly as [`ShardState::step_absorb`] leaves it. Recomputing the
/// split mode with a full-matrix sweep instead would change the
/// summation order and knock a resumed run off the uninterrupted
/// trajectory's bits.
fn warm_grams(factors: &[DMat], part: &Partition, rank: usize) -> Result<Vec<DMat>, AoAdmmError> {
    let mut ws = Workspace::new();
    let mut grams = Vec::with_capacity(factors.len());
    for (m, fac) in factors.iter().enumerate() {
        let mut g = DMat::zeros(rank, rank);
        if m == part.split_mode() {
            let mut gp = DMat::zeros(rank, rank);
            for p in 0..part.nshards() {
                let own = part.owned(m, p);
                if own.is_empty() {
                    gp.fill(0.0);
                } else {
                    let mut block = DMat::zeros(own.len(), rank);
                    copy_rows(fac, &own, &mut block);
                    panel::gram_into(&block, &mut ws, &mut gp)?;
                }
                merge_into(g.as_mut_slice(), gp.as_slice(), p == 0);
            }
        } else {
            panel::gram_into(fac, &mut ws, &mut g)?;
        }
        grams.push(g);
    }
    Ok(grams)
}

/// Warm-start validation, mirroring the shared-memory driver's checks.
fn validate_warm_state(
    cfg: &Factorizer,
    dims: &[usize],
    model: KruskalModel,
    duals: Option<Vec<DMat>>,
) -> Result<(Vec<DMat>, Vec<DMat>), AoAdmmError> {
    let rank = cfg.rank();
    if model.rank() != rank {
        return Err(AoAdmmError::Config(format!(
            "warm-start model has rank {}, configuration says {rank}",
            model.rank()
        )));
    }
    if model.nmodes() != dims.len() {
        return Err(AoAdmmError::Config(format!(
            "warm-start model has {} modes, tensor has {}",
            model.nmodes(),
            dims.len()
        )));
    }
    for (m, fac) in model.factors().iter().enumerate() {
        if fac.nrows() != dims[m] {
            return Err(AoAdmmError::Config(format!(
                "warm-start factor {m} has {} rows; mode is {}",
                fac.nrows(),
                dims[m]
            )));
        }
    }
    let factors = model.into_factors();
    let duals = match duals {
        Some(d) => {
            if d.len() != factors.len()
                || d.iter()
                    .zip(&factors)
                    .any(|(a, b)| a.nrows() != b.nrows() || a.ncols() != b.ncols())
            {
                return Err(AoAdmmError::Config(
                    "warm-start duals do not match the factor shapes".into(),
                ));
            }
            d
        }
        None => factors
            .iter()
            .map(|f| DMat::zeros(f.nrows(), f.ncols()))
            .collect(),
    };
    Ok((factors, duals))
}

/// What one shard worker hands back after its loop.
struct ShardRun {
    iterations: Vec<IterRecord>,
    rel_errors: Vec<f64>,
    converged: bool,
}

/// One shard's SPMD loop: the shared-memory driver's outer loop with the
/// mode body replaced by the three sub-steps plus the round finish.
fn run_shard(
    st: &mut ShardState,
    ep: &Endpoint,
    ledger: &CommLedger,
    t0: Instant,
) -> Result<ShardRun, AoAdmmError> {
    let max_outer = st.cfg.max_outer_iterations();
    let tol = st.cfg.outer_tolerance();
    let nmodes = st.nmodes();
    let record = st.id == 0;
    let mut iterations: Vec<IterRecord> = Vec::new();
    let mut rel_errors: Vec<f64> = Vec::with_capacity(max_outer);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for outer in 1..=max_outer {
        let round = outer as u32;
        let mut modes: Vec<ModeRecord> = Vec::with_capacity(if record { nmodes } else { 0 });
        for m in 0..nmodes {
            let tm = Instant::now();
            st.step_local(m, round, ep, ledger)?;
            let mttkrp_time = tm.elapsed();
            let ta = Instant::now();
            st.step_update(m, round, ep, ledger)?;
            let admm_time = ta.elapsed();
            st.step_absorb(m, round, ep, ledger)?;
            if record {
                modes.push(st.mode_record(m, mttkrp_time, admm_time));
            }
        }
        let rel_error = st.finish_round(round, ep)?;
        rel_errors.push(rel_error);
        if record {
            iterations.push(IterRecord {
                iter: outer,
                rel_error,
                elapsed: t0.elapsed(),
                modes,
            });
            if let Some(cb) = st.cfg.progress_callback() {
                cb(iterations.last().expect("just pushed"));
            }
        }
        // The paper's stopping rule, evaluated on a relative error every
        // shard computed from identical merged scalars — all shards take
        // the same branch, no extra vote needed.
        if outer > 1 && prev_err - rel_error < tol {
            converged = true;
            break;
        }
        prev_err = rel_error;
    }
    Ok(ShardRun {
        iterations,
        rel_errors,
        converged,
    })
}

/// Run sharded AO-ADMM on `tensor`, cold-started exactly like the
/// shared-memory driver (same seeded init), over `sc.nshards` SPMD
/// worker threads.
pub fn shard_factorize(
    tensor: &CooTensor,
    cfg: &Factorizer,
    sc: &ShardConfig,
) -> Result<ShardResult, AoAdmmError> {
    let t0 = Instant::now();
    let setup = build_setup(tensor, cfg, sc, None)?;
    run_threaded(setup, sc, t0)
}

/// Run sharded AO-ADMM warm-started from an existing model (plus
/// optional duals and Gram cache) — checkpoint resumption on a sharded
/// engine. State validation mirrors the shared-memory driver.
pub fn shard_factorize_warm(
    tensor: &CooTensor,
    cfg: &Factorizer,
    sc: &ShardConfig,
    model: KruskalModel,
    duals: Option<Vec<DMat>>,
    grams: Option<Vec<DMat>>,
) -> Result<ShardResult, AoAdmmError> {
    let t0 = Instant::now();
    let setup = build_setup(tensor, cfg, sc, Some((model, duals, grams)))?;
    run_threaded(setup, sc, t0)
}

fn run_threaded(
    setup: EngineSetup,
    sc: &ShardConfig,
    t0: Instant,
) -> Result<ShardResult, AoAdmmError> {
    let EngineSetup {
        part,
        mut states,
        fabric,
        ledger,
        max_shard_nnz,
    } = setup;
    let setup_time = t0.elapsed();
    let threads = sc.threads_per_shard;

    let results: Vec<Result<ShardRun, AoAdmmError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(states.len());
        for (id, st) in states.iter_mut().enumerate() {
            let ep = fabric.endpoint(id);
            let ledger = Arc::clone(&ledger);
            handles.push(scope.spawn(move || -> Result<ShardRun, AoAdmmError> {
                // The endpoint must drop (closing this shard's outgoing
                // channels) even on error, so peers never deadlock on a
                // dead sender.
                if threads == 0 {
                    run_shard(st, &ep, &ledger, t0)
                } else {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .map_err(|e| AoAdmmError::Config(format!("shard worker pool: {e}")))?;
                    pool.install(|| run_shard(st, &ep, &ledger, t0))
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(AoAdmmError::Config(
                        "sharded engine: shard worker panicked".into(),
                    ))
                })
            })
            .collect()
    });

    let mut runs = Vec::with_capacity(results.len());
    for r in results {
        runs.push(r?);
    }
    // Every shard evaluated the stopping rule on identical scalars; a
    // disagreement would mean the determinism contract is broken.
    let rounds = runs[0].rel_errors.len();
    if runs.iter().any(|r| r.rel_errors.len() != rounds) {
        return Err(AoAdmmError::Config(
            "sharded engine: shards disagree on the round count".into(),
        ));
    }

    let run0 = runs.swap_remove(0);
    let final_error = run0.rel_errors.last().copied().unwrap_or(f64::NAN);
    let trace = FactorizeTrace {
        iterations: run0.iterations,
        total: t0.elapsed(),
        setup: setup_time,
        final_error,
        converged: run0.converged,
    };
    Ok(assemble(
        states,
        part,
        &ledger,
        &sc.cost,
        rounds,
        trace,
        max_shard_nnz,
    ))
}

/// Stitch the per-shard final state into a full-size result and snapshot
/// the communication accounting.
fn assemble(
    mut states: Vec<ShardState>,
    part: Arc<Partition>,
    ledger: &CommLedger,
    cost: &CostModel,
    rounds: usize,
    trace: FactorizeTrace,
    max_shard_nnz: usize,
) -> ShardResult {
    let nshards = part.nshards();
    let split = part.split_mode();
    let rank = states[0].rank;
    let dims = states[0].dims.clone();
    let nmodes = dims.len();

    // Shard 0's replicated factors are current everywhere except the
    // split-mode rows owned by other shards — stitch those in.
    let mut first = states.remove(0);
    for (i, st) in states.iter().enumerate() {
        let p = i + 1;
        let r = part.owned(split, p);
        if r.is_empty() {
            continue;
        }
        let f = rank;
        first.factors[split].as_mut_slice()[r.start * f..r.end * f]
            .copy_from_slice(&st.factors[split].as_slice()[r.start * f..r.end * f]);
    }

    let mut duals: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, rank)).collect();
    for (m, dual) in duals.iter_mut().enumerate().take(nmodes) {
        let r = part.owned(m, 0);
        if !r.is_empty() {
            write_rows(dual, &r, &first.ublocks[m]);
        }
        for (i, st) in states.iter().enumerate() {
            let r = part.owned(m, i + 1);
            if !r.is_empty() {
                write_rows(dual, &r, &st.ublocks[m]);
            }
        }
    }

    let comm = CommReport::from_ledger(ledger, nshards, rounds);
    let predicted = CommPrediction::predict(&part, rank, rounds);
    let est_comm_seconds = cost.estimate_seconds(&comm);
    let factors = std::mem::take(&mut first.factors);
    let grams = std::mem::take(&mut first.grams);
    ShardResult {
        model: KruskalModel::new(factors),
        trace,
        duals,
        grams,
        partition: part.as_ref().clone(),
        comm,
        predicted,
        est_comm_seconds,
        max_shard_nnz,
    }
}

/// The sequential twin of the threaded engine: the same [`ShardState`]
/// sub-steps over the same message fabric, scheduled round-robin on one
/// thread. Because the SPMD protocol is deterministic, the twin's
/// trajectory is bit-identical to the threaded run — the conformance
/// suite asserts exactly that, isolating the concurrency layer from the
/// numerics. Its [`LockstepEngine::round`] is also the unit the
/// allocation hot-path suite counts: after warmup a round performs no
/// heap allocation (recycled message buffers, pre-sized channels,
/// preallocated workspaces).
pub struct LockstepEngine {
    states: Vec<ShardState>,
    endpoints: Vec<Endpoint>,
    part: Arc<Partition>,
    ledger: Arc<CommLedger>,
    cost: CostModel,
    rel_errors: Vec<f64>,
    round: u32,
    prev_err: f64,
    converged: bool,
    max_shard_nnz: usize,
    t0: Instant,
    setup_time: Duration,
}

impl LockstepEngine {
    /// Build the engine cold-started exactly like [`shard_factorize`].
    pub fn build(
        tensor: &CooTensor,
        cfg: &Factorizer,
        sc: &ShardConfig,
    ) -> Result<Self, AoAdmmError> {
        let t0 = Instant::now();
        let setup = build_setup(tensor, cfg, sc, None)?;
        let endpoints: Vec<Endpoint> = (0..setup.states.len())
            .map(|p| setup.fabric.endpoint(p))
            .collect();
        let max_outer = setup.states[0].cfg.max_outer_iterations();
        Ok(LockstepEngine {
            endpoints,
            part: setup.part,
            ledger: setup.ledger,
            cost: sc.cost,
            rel_errors: Vec::with_capacity(max_outer),
            round: 0,
            prev_err: f64::INFINITY,
            converged: false,
            max_shard_nnz: setup.max_shard_nnz,
            t0,
            setup_time: t0.elapsed(),
            states: setup.states,
        })
    }

    /// Number of rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.round as usize
    }

    /// Relative errors of the rounds executed so far.
    pub fn rel_errors(&self) -> &[f64] {
        &self.rel_errors
    }

    /// Whether the stopping rule has fired.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Execute one outer round across all shards and return its relative
    /// error. Steady-state rounds are allocation-free — this is the unit
    /// the hot-path allocation suite counts.
    pub fn round(&mut self) -> Result<f64, AoAdmmError> {
        self.round += 1;
        let round = self.round;
        let nmodes = self.states[0].nmodes();
        let s = self.states.len();
        let states = &mut self.states;
        let eps = &self.endpoints;
        let ledger = &self.ledger;
        for m in 0..nmodes {
            // Within a stage every send strictly precedes the matching
            // receive of the next stage, so the single thread never
            // blocks on an empty channel.
            for p in 0..s {
                states[p].step_local(m, round, &eps[p], ledger)?;
            }
            for p in 0..s {
                states[p].step_update(m, round, &eps[p], ledger)?;
            }
            for p in 0..s {
                states[p].step_absorb(m, round, &eps[p], ledger)?;
            }
        }
        let mut rel_error = f64::NAN;
        for p in 0..s {
            let e = states[p].finish_round(round, &eps[p])?;
            if p == 0 {
                rel_error = e;
            } else {
                debug_assert_eq!(
                    e.to_bits(),
                    rel_error.to_bits(),
                    "shards disagree on the relative error"
                );
            }
        }
        self.rel_errors.push(rel_error);
        if self.round > 1 && self.prev_err - rel_error < self.states[0].cfg.outer_tolerance() {
            self.converged = true;
        }
        self.prev_err = rel_error;
        Ok(rel_error)
    }

    /// Run rounds under the driver's stopping rule (tolerance or the
    /// outer-iteration cap).
    pub fn run_to_convergence(&mut self) -> Result<(), AoAdmmError> {
        let max_outer = self.states[0].cfg.max_outer_iterations();
        while (self.round as usize) < max_outer && !self.converged {
            self.round()?;
        }
        Ok(())
    }

    /// Assemble the final [`ShardResult`]. The trace carries the
    /// per-round errors but no per-mode records — the lockstep twin is a
    /// conformance/counting vehicle, not a profiling one.
    pub fn finish(mut self) -> ShardResult {
        let rounds = self.round as usize;
        let final_error = self.rel_errors.last().copied().unwrap_or(f64::NAN);
        let iterations = self
            .rel_errors
            .iter()
            .enumerate()
            .map(|(i, &rel_error)| IterRecord {
                iter: i + 1,
                rel_error,
                elapsed: self.t0.elapsed(),
                modes: Vec::new(),
            })
            .collect();
        let trace = FactorizeTrace {
            iterations,
            total: self.t0.elapsed(),
            setup: self.setup_time,
            final_error,
            converged: self.converged,
        };
        // Drop the endpoints before assembling so the fabric closes in
        // the same order as the threaded teardown.
        self.endpoints.clear();
        assemble(
            std::mem::take(&mut self.states),
            Arc::clone(&self.part),
            &self.ledger,
            &self.cost,
            rounds,
            trace,
            self.max_shard_nnz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    /// Deterministic-reduction ADMM discipline: zero tolerance and a
    /// fixed inner-iteration count make the blocked solver a pure
    /// per-row function, so block boundaries (which differ between the
    /// sharded owned ranges and the shared-memory full matrix) cannot
    /// change the trajectory.
    fn fixed_admm() -> admm::AdmmConfig {
        let mut a = admm::AdmmConfig::blocked(50);
        a.tol = 0.0;
        a.max_inner = 8;
        a
    }

    fn cfg() -> Factorizer {
        Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .admm(fixed_admm())
            .max_outer(5)
            .tolerance(0.0)
            .seed(3)
    }

    #[test]
    fn single_shard_is_bit_identical_to_shared_memory() {
        let t = tensor();
        let oracle = cfg().factorize(&t).unwrap();
        let sharded = shard_factorize(&t, &cfg(), &ShardConfig::new(1)).unwrap();
        assert_eq!(
            oracle.trace.final_error.to_bits(),
            sharded.trace.final_error.to_bits()
        );
        for m in 0..3 {
            assert_eq!(
                oracle.model.factor(m).max_abs_diff(sharded.model.factor(m)),
                0.0
            );
            assert_eq!(oracle.duals[m].max_abs_diff(&sharded.duals[m]), 0.0);
            assert_eq!(oracle.grams[m].max_abs_diff(&sharded.grams[m]), 0.0);
        }
        assert_eq!(sharded.comm.total_bytes(), 0);
    }

    #[test]
    fn threaded_matches_lockstep_bitwise() {
        let t = tensor();
        for s in [2usize, 3] {
            let threaded = shard_factorize(&t, &cfg(), &ShardConfig::new(s)).unwrap();
            let mut twin = LockstepEngine::build(&t, &cfg(), &ShardConfig::new(s)).unwrap();
            twin.run_to_convergence().unwrap();
            let lockstep = twin.finish();
            assert_eq!(
                threaded.trace.final_error.to_bits(),
                lockstep.trace.final_error.to_bits(),
                "S={s}"
            );
            for m in 0..3 {
                assert_eq!(
                    threaded
                        .model
                        .factor(m)
                        .max_abs_diff(lockstep.model.factor(m)),
                    0.0,
                    "S={s} mode {m}"
                );
            }
            assert_eq!(threaded.comm.total_bytes(), lockstep.comm.total_bytes());
        }
    }

    #[test]
    fn sharded_tracks_oracle_within_tolerance() {
        let t = tensor();
        let oracle = cfg().factorize(&t).unwrap();
        for s in [2usize, 4] {
            let sharded = shard_factorize(&t, &cfg(), &ShardConfig::new(s)).unwrap();
            assert!(
                (sharded.trace.final_error - oracle.trace.final_error).abs() < 1e-8,
                "S={s}: {} vs {}",
                sharded.trace.final_error,
                oracle.trace.final_error
            );
        }
    }

    #[test]
    fn measured_comm_matches_prediction() {
        let t = tensor();
        for s in [1usize, 2, 3] {
            let res = shard_factorize(&t, &cfg(), &ShardConfig::new(s)).unwrap();
            assert_eq!(res.comm.diff_from_prediction(&res.predicted), None, "S={s}");
        }
    }

    #[test]
    fn warm_start_resumes_sharded_run() {
        let t = tensor();
        let full = shard_factorize(&t, &cfg().max_outer(6), &ShardConfig::new(2)).unwrap();
        let half = shard_factorize(&t, &cfg().max_outer(3), &ShardConfig::new(2)).unwrap();
        let resumed = shard_factorize_warm(
            &t,
            &cfg().max_outer(3),
            &ShardConfig::new(2),
            half.model.clone(),
            Some(half.duals.clone()),
            Some(half.grams.clone()),
        )
        .unwrap();
        assert_eq!(
            full.trace.final_error.to_bits(),
            resumed.trace.final_error.to_bits()
        );
        for m in 0..3 {
            assert_eq!(
                full.model.factor(m).max_abs_diff(resumed.model.factor(m)),
                0.0
            );
        }
        // Without the Gram cache, warm_grams must reconstruct the exact
        // shard-ordered gram state — same bits, checkpoint-grade resume.
        let reconstructed = shard_factorize_warm(
            &t,
            &cfg().max_outer(3),
            &ShardConfig::new(2),
            half.model,
            Some(half.duals),
            None,
        )
        .unwrap();
        assert_eq!(
            full.trace.final_error.to_bits(),
            reconstructed.trace.final_error.to_bits()
        );
        for m in 0..3 {
            assert_eq!(
                full.model
                    .factor(m)
                    .max_abs_diff(reconstructed.model.factor(m)),
                0.0
            );
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let t = tensor();
        assert!(shard_factorize(&t, &cfg(), &ShardConfig::new(0)).is_err());
        assert!(shard_factorize(&t, &Factorizer::new(0), &ShardConfig::new(2)).is_err());
        let wrong_model = KruskalModel::new(vec![DMat::zeros(3, 2); 3]);
        assert!(
            shard_factorize_warm(&t, &cfg(), &ShardConfig::new(2), wrong_model, None, None)
                .is_err()
        );
    }
}
