//! A [`TensorSource`] over per-shard CSF sets.
//!
//! [`ShardedSource`] presents a partitioned tensor — the same per-shard
//! locals the execution engine runs on — as a single logical
//! [`TensorSource`], serving MTTKRP as the frozen shard-ordered merge of
//! per-shard partials. Feeding it to the *shared-memory* driver
//! ([`aoadmm::factorize_source`]) proves the data-representation half of
//! the engine in isolation: if the sharded representation reproduces the
//! tensor's MTTKRP, it reproduces its factorization trajectory, with no
//! message layer or ownership protocol in the loop.
//!
//! The merge discipline is identical to the engine's: for the split mode
//! each shard's owned rows are copied from its own partial (split-mode
//! nonzeros are fully local, so no summation is needed); for every other
//! mode the full partials are reduced in ascending shard order,
//! copy-first then accumulate.

use crate::partition::Partition;
use aoadmm::{AoAdmmError, CsfPolicy, Factorizer, MttkrpInfo, PreparedTensor, TensorSource};
use splinalg::{vecops, DMat};
use sptensor::CooTensor;
use std::sync::Mutex;

/// A partitioned tensor behind the [`TensorSource`] interface.
pub struct ShardedSource {
    part: Partition,
    /// Per-shard compiled locals (`None` for shards holding no nonzeros).
    shards: Vec<Option<PreparedTensor>>,
    dims: Vec<usize>,
    nnz: usize,
    norm_sq: f64,
    /// Per-shard, per-mode partial MTTKRP buffers. Interior mutability
    /// bridges scratch reuse to the `&self` trait interface; the driver
    /// serves modes sequentially, so the lock is uncontended.
    scratch: Mutex<Vec<Vec<DMat>>>,
}

impl ShardedSource {
    /// Partition `tensor` over `nshards` shards (longest-mode split) and
    /// compile each local under `policy`.
    pub fn build(
        tensor: &CooTensor,
        policy: CsfPolicy,
        nshards: usize,
    ) -> Result<Self, AoAdmmError> {
        if nshards == 0 {
            return Err(AoAdmmError::Config("nshards must be positive".into()));
        }
        let part = Partition::build(tensor, nshards)?;
        let locals = part.split_tensor(tensor);
        let mut shards = Vec::with_capacity(nshards);
        for local in &locals {
            shards.push(if local.nnz() > 0 {
                Some(PreparedTensor::build(local, policy)?)
            } else {
                None
            });
        }
        let nmodes = tensor.nmodes();
        Ok(ShardedSource {
            part,
            shards,
            dims: tensor.dims().to_vec(),
            nnz: tensor.nnz(),
            norm_sq: tensor.norm_sq(),
            scratch: Mutex::new(vec![Vec::with_capacity(nmodes); nshards]),
        })
    }

    /// The partition behind the view.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Nonzeros held by shard `p`.
    pub fn shard_nnz(&self, p: usize) -> usize {
        self.shards[p].as_ref().map_or(0, |s| s.nnz())
    }
}

impl TensorSource for ShardedSource {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError> {
        let mut scratch = self.scratch.lock().expect("sharded source scratch");
        let (rows, cols) = (out.nrows(), out.ncols());
        let mut info: Option<MttkrpInfo> = None;
        let mut hits = 0u32;
        let mut misses = 0u32;
        for (p, prep) in self.shards.iter().enumerate() {
            let per_mode = &mut scratch[p];
            while per_mode.len() <= mode {
                let m = per_mode.len();
                per_mode.push(DMat::zeros(self.dims[m], cols));
            }
            let buf = &mut per_mode[mode];
            if buf.nrows() != rows || buf.ncols() != cols {
                *buf = DMat::zeros(rows, cols);
            }
            match prep {
                Some(prep) => {
                    let i = prep.mttkrp(mode, factors, cfg, buf)?;
                    hits += i.slab_hits;
                    misses += i.slab_misses;
                    if info.is_none() {
                        info = Some(i);
                    }
                }
                None => buf.fill(0.0),
            }
        }

        let f = cols;
        if mode == self.part.split_mode() {
            // Split-mode nonzeros are fully local: each owner's partial
            // holds the exact K rows, no summation required.
            for p in 0..self.shards.len() {
                let r = self.part.owned(mode, p);
                if r.is_empty() {
                    continue;
                }
                out.as_mut_slice()[r.start * f..r.end * f]
                    .copy_from_slice(&scratch[p][mode].as_slice()[r.start * f..r.end * f]);
            }
        } else {
            // Frozen shard-ordered reduction, copy-first — the same
            // discipline as the engine's KReduce merge.
            for (p, per_mode) in scratch.iter().enumerate() {
                let src = per_mode[mode].as_slice();
                if p == 0 {
                    out.as_mut_slice().copy_from_slice(src);
                } else {
                    vecops::axpy(1.0, src, out.as_mut_slice());
                }
            }
        }

        let mut info = info.unwrap_or(MttkrpInfo {
            decision: aoadmm::SparsityDecision {
                density: 1.0,
                structure: aoadmm::Structure::Dense,
            },
            strategy: None,
            slab_hits: 0,
            slab_misses: 0,
        });
        info.slab_hits = hits;
        info.slab_misses = misses;
        Ok(info)
    }

    fn note_factor_changed(&self, mode: usize) {
        for prep in self.shards.iter().flatten() {
            prep.note_factor_changed(mode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    fn cfg() -> Factorizer {
        // Zero inner tolerance + fixed inner iterations: the blocked
        // solver becomes a pure per-row function, so only MTTKRP
        // reduction order separates the sharded view from the oracle.
        let mut admm_cfg = admm::AdmmConfig::blocked(50);
        admm_cfg.tol = 0.0;
        admm_cfg.max_inner = 8;
        Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .admm(admm_cfg)
            .max_outer(5)
            .tolerance(0.0)
            .seed(7)
    }

    #[test]
    fn single_shard_source_is_bit_identical() {
        let t = tensor();
        let oracle = cfg().factorize(&t).unwrap();
        let source = ShardedSource::build(&t, cfg().csf_policy_value(), 1).unwrap();
        let via = cfg().factorize_source(&source).unwrap();
        assert_eq!(
            oracle.trace.final_error.to_bits(),
            via.trace.final_error.to_bits()
        );
        for m in 0..3 {
            assert_eq!(
                oracle.model.factor(m).max_abs_diff(via.model.factor(m)),
                0.0
            );
        }
    }

    #[test]
    fn sharded_source_matches_oracle_within_tolerance() {
        let t = tensor();
        let oracle = cfg().factorize(&t).unwrap();
        for s in [2usize, 3, 4] {
            let source = ShardedSource::build(&t, cfg().csf_policy_value(), s).unwrap();
            let via = cfg().factorize_source(&source).unwrap();
            assert!(
                (oracle.trace.final_error - via.trace.final_error).abs() < 1e-8,
                "S={s}: {} vs {}",
                oracle.trace.final_error,
                via.trace.final_error
            );
            for m in 0..3 {
                let d = oracle.model.factor(m).max_abs_diff(via.model.factor(m));
                assert!(d < 1e-6, "S={s} mode {m} diff {d}");
            }
        }
    }

    #[test]
    fn shard_nnz_sums_to_total() {
        let t = tensor();
        let source = ShardedSource::build(&t, CsfPolicy::PerMode, 3).unwrap();
        let sum: usize = (0..3).map(|p| source.shard_nnz(p)).sum();
        assert_eq!(sum, t.nnz());
        assert_eq!(source.nnz(), t.nnz());
        assert_eq!(source.dims(), t.dims());
    }
}
