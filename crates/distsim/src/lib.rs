//! Sharded (distributed-memory style) AO-ADMM execution.
//!
//! Section IV-B of the paper observes that the blockwise reformulation
//! is naturally distributed: blocks are independent, so "no communication
//! needs to occur beyond the MTTKRP operation". This crate *executes*
//! that design point inside one process: the tensor is partitioned along
//! its longest mode into per-shard CSF sets, each shard runs per-mode
//! MTTKRP and blocked ADMM on its own worker thread (with its own rayon
//! pool), and shards exchange factor rows, partial-MTTKRP blocks and
//! partial Grams through an explicit typed message fabric — no shared
//! factor state, every inter-shard byte metered.
//!
//! The decomposition is the coarse 1D scheme with the medium-grained
//! split-mode refinement (Liavas & Sidiropoulos; Smith & Karypis): the
//! split mode's nonzeros are fully local to their owner, so its factor
//! rows **never travel** — only `F x F` partial Grams do — while every
//! other mode pays a reduce-scatter of `K` rows plus an allgather of
//! updated factor rows, and ADMM itself contributes zero bytes (the
//! paper's claim, now measured).
//!
//! The crate is organized as five layers:
//!
//! - [`partition`]: nnz-balanced longest-mode row partitioning and
//!   tensor splitting;
//! - [`msg`]: the typed channel fabric with recycled payload buffers and
//!   the per-round, per-edge [`msg::CommLedger`];
//! - [`comm`]: the analytic byte-exact [`CommPrediction`], measured
//!   [`CommReport`]s and the alpha-beta [`CostModel`];
//! - [`engine`]: the SPMD driver [`shard_factorize`], its sequential
//!   bit-exact twin [`LockstepEngine`], and warm restarts;
//! - [`source`]: [`ShardedSource`], the partitioned tensor behind the
//!   shared-memory driver's `TensorSource` interface.
//!
//! Conformance is a ladder, each rung tested: a 1-shard run is
//! bit-identical to the shared-memory driver; the threaded SPMD run is
//! bit-identical to the lockstep twin for every shard count and pool
//! size; a multi-shard run tracks the shared-memory oracle within
//! floating-point reduction-order tolerance; and the measured wire
//! traffic equals the analytic prediction byte for byte.

#![warn(missing_docs)]

pub mod comm;
pub mod engine;
pub mod msg;
pub mod partition;
pub mod source;

pub use comm::{CommPrediction, CommReport, CostModel};
pub use engine::{shard_factorize, shard_factorize_warm, LockstepEngine, ShardConfig, ShardResult};
pub use msg::{CommLedger, Fabric, Phase};
pub use partition::Partition;
pub use source::ShardedSource;
