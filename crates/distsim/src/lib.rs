//! Simulated distributed-memory AO-ADMM.
//!
//! Section IV-B of the paper observes that the blockwise reformulation
//! is naturally distributed: blocks are independent, so "no communication
//! needs to occur beyond the MTTKRP operation", which has established
//! distributed algorithms (Kaya & Uçar SC'15; Smith & Karypis IPDPS'16).
//! This crate *simulates* that design point — it runs the distributed
//! algorithm faithfully (partitioned tensor, per-node kernels, explicit
//! collectives) inside one process, and meters every byte the collectives
//! would move, so the communication claims can be measured without a
//! cluster.
//!
//! The implemented scheme is the coarse-grained one-dimensional
//! decomposition (the baseline of Smith & Karypis' medium-grained paper):
//! every mode's rows are range-partitioned over `P` nodes; each node owns
//! the tensor nonzeros whose *mode-0* index it owns, plus the factor rows
//! of its range in every mode. Per outer iteration and mode `m`:
//!
//! 1. each node computes a *partial* MTTKRP from its local nonzeros;
//! 2. an all-reduce sums the partials into the full `K` (the only
//!    large-volume communication, exactly as the paper claims);
//! 3. each node runs blocked ADMM on *its own* rows of mode `m` — zero
//!    communication, the blocked property;
//! 4. an all-gather replicates the updated factor rows, and a tiny
//!    `F x F` all-reduce refreshes the Gram cache.
//!
//! [`verify`] contains the strongest correctness statement: with a fixed
//! inner-iteration count the distributed run is *numerically identical*
//! to the shared-memory driver for every node count.

#![warn(missing_docs)]

pub mod comm;
pub mod driver;
pub mod partition;

pub use comm::{CommStats, CostModel};
pub use driver::{dist_factorize, DistConfig, DistResult};
pub use partition::Partition;
