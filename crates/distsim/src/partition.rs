//! Row partitioning of modes over shards.
//!
//! The execution engine uses a coarse-grained 1D decomposition along the
//! tensor's **longest mode** (the *split mode*): each shard owns a
//! contiguous range of split-mode indices and every nonzero whose
//! split-mode coordinate falls in that range. Split-mode ranges are
//! balanced by *nonzero count* (they determine per-shard MTTKRP work);
//! every other mode is range-partitioned evenly by row count (those
//! ranges determine ADMM ownership, not data placement).
//!
//! ## Balance bound
//!
//! The split-mode ranges come from a greedy prefix scan of the slice
//! histogram that closes a range as soon as it reaches
//! `target = ceil(nnz / S)`. Each of the first `S-1` ranges therefore
//! holds fewer than `target + max_slice` nonzeros (it was below `target`
//! before its last slice), and the final range holds at most
//! `nnz - (S-1)*target <= target`. The documented (and property-tested)
//! bound is
//!
//! ```text
//! max_shard_nnz <= ceil(nnz / S) + max_slice_nnz - 1
//! ```
//!
//! where `max_slice_nnz` is the heaviest single slice of the split mode —
//! the irreducible granularity of any contiguous 1D split.

use aoadmm::AoAdmmError;
use sptensor::CooTensor;
use std::ops::Range;

/// Contiguous per-shard row ranges for every mode, plus the identity of
/// the split mode whose ranges also partition the nonzeros.
#[derive(Debug, Clone)]
pub struct Partition {
    nshards: usize,
    split_mode: usize,
    /// `ranges[m][p]` = rows of mode `m` owned by shard `p`.
    ranges: Vec<Vec<Range<usize>>>,
}

impl Partition {
    /// Partition `tensor` over `nshards` shards, splitting along the
    /// longest mode (ties break to the lowest mode index). Errors on a
    /// tensor with fewer than two modes (a 1D split of a vector is
    /// meaningless) or zero shards.
    pub fn build(tensor: &CooTensor, nshards: usize) -> Result<Self, AoAdmmError> {
        let Some(split) =
            (0..tensor.nmodes()).max_by_key(|&m| (tensor.dims()[m], std::cmp::Reverse(m)))
        else {
            return Err(AoAdmmError::Config(
                "cannot partition a tensor with no modes".into(),
            ));
        };
        Self::build_on_mode(tensor, split, nshards)
    }

    /// Partition along an explicit `split_mode` (tests and experiments;
    /// [`Partition::build`] picks the longest mode).
    pub fn build_on_mode(
        tensor: &CooTensor,
        split_mode: usize,
        nshards: usize,
    ) -> Result<Self, AoAdmmError> {
        if tensor.nmodes() < 2 {
            return Err(AoAdmmError::Config(format!(
                "cannot partition a {}-mode tensor: sharding needs >= 2 modes",
                tensor.nmodes()
            )));
        }
        if nshards == 0 {
            return Err(AoAdmmError::Config("need at least one shard".into()));
        }
        if split_mode >= tensor.nmodes() {
            return Err(AoAdmmError::Config(format!(
                "split mode {split_mode} out of range for a {}-mode tensor",
                tensor.nmodes()
            )));
        }
        let nmodes = tensor.nmodes();
        let mut ranges = Vec::with_capacity(nmodes);

        for m in 0..nmodes {
            let d = tensor.dims()[m];
            if m == split_mode {
                // Greedy nnz-balanced prefix split (see module docs for
                // the resulting balance bound).
                let counts = tensor.slice_counts(m);
                let total: usize = counts.iter().sum();
                let target = total.div_ceil(nshards).max(1);
                let mut v = Vec::with_capacity(nshards);
                let mut start = 0usize;
                let mut acc = 0usize;
                for (i, &c) in counts.iter().enumerate() {
                    acc += c;
                    if acc >= target && v.len() + 1 < nshards {
                        v.push(start..i + 1);
                        start = i + 1;
                        acc = 0;
                    }
                }
                v.push(start..d);
                while v.len() < nshards {
                    // Fewer slices than shards: trailing empty ranges.
                    let end = v.last().map(|r: &Range<usize>| r.end).unwrap_or(0);
                    v.push(end..end);
                }
                ranges.push(v);
            } else {
                // Even row split: ADMM ownership only.
                let per = d.div_ceil(nshards);
                let mut v = Vec::with_capacity(nshards);
                for p in 0..nshards {
                    let lo = (p * per).min(d);
                    let hi = ((p + 1) * per).min(d);
                    v.push(lo..hi);
                }
                ranges.push(v);
            }
        }
        Ok(Partition {
            nshards,
            split_mode,
            ranges,
        })
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The mode whose ranges partition the nonzeros.
    pub fn split_mode(&self) -> usize {
        self.split_mode
    }

    /// Number of modes covered by the partition.
    pub fn nmodes(&self) -> usize {
        self.ranges.len()
    }

    /// Rows of mode `m` owned by shard `p` (factor rows the shard
    /// updates in ADMM; for the split mode, also the nonzeros it holds).
    pub fn owned(&self, m: usize, p: usize) -> Range<usize> {
        self.ranges[m][p].clone()
    }

    /// The split-mode ranges of all shards, in shard order.
    pub fn split_ranges(&self) -> Vec<Range<usize>> {
        self.ranges[self.split_mode].clone()
    }

    /// Owner shard of row `i` in mode `m`.
    pub fn owner(&self, m: usize, i: usize) -> usize {
        self.ranges[m]
            .iter()
            .position(|r| r.contains(&i))
            .expect("row within dims is owned by some shard")
    }

    /// Split the tensor into per-shard locals by split-mode ownership.
    ///
    /// Each local keeps the *global* dimensions and coordinates, so
    /// factor indices remain global (remote factor rows are read from
    /// the replicated copies, exactly as the distributed algorithm
    /// does). Relative nonzero order is preserved, so a shard-ordered
    /// concatenation of the locals is a permutation of the input with a
    /// frozen order — the basis of the deterministic merges.
    pub fn split_tensor(&self, tensor: &CooTensor) -> Vec<CooTensor> {
        tensor
            .split_mode(self.split_mode, &self.ranges[self.split_mode], false)
            .expect("partition ranges are a contiguous cover by construction")
    }

    /// The balance bound the split-mode ranges satisfy (see module
    /// docs): `ceil(nnz/S) + max_slice_nnz - 1`.
    pub fn nnz_balance_bound(&self, tensor: &CooTensor) -> usize {
        let max_slice = tensor
            .slice_counts(self.split_mode)
            .into_iter()
            .max()
            .unwrap_or(0);
        tensor.nnz().div_ceil(self.nshards) + max_slice.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::gen;

    fn tensor() -> CooTensor {
        gen::random_uniform(&[40, 30, 20], 600, 3).unwrap()
    }

    #[test]
    fn splits_longest_mode() {
        let t = tensor();
        assert_eq!(Partition::build(&t, 3).unwrap().split_mode(), 0);
        let t2 = gen::random_uniform(&[10, 50, 20], 300, 4).unwrap();
        assert_eq!(Partition::build(&t2, 3).unwrap().split_mode(), 1);
        // Tie breaks to the lowest mode index.
        let t3 = gen::random_uniform(&[30, 30, 10], 300, 5).unwrap();
        assert_eq!(Partition::build(&t3, 2).unwrap().split_mode(), 0);
    }

    #[test]
    fn ranges_cover_and_are_disjoint() {
        let t = tensor();
        for p in [1usize, 2, 3, 7] {
            let part = Partition::build(&t, p).unwrap();
            for m in 0..3 {
                let mut prev_end = 0usize;
                let mut covered = 0usize;
                for shard in 0..p {
                    let r = part.owned(m, shard);
                    assert!(r.start == prev_end, "mode {m} shard {shard} gap");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, t.dims()[m], "mode {m} not fully covered");
                assert_eq!(covered, t.dims()[m]);
            }
        }
    }

    #[test]
    fn owner_matches_ranges() {
        let t = tensor();
        let part = Partition::build(&t, 4).unwrap();
        for m in 0..3 {
            for i in 0..t.dims()[m] {
                let p = part.owner(m, i);
                assert!(part.owned(m, p).contains(&i));
            }
        }
    }

    #[test]
    fn split_preserves_all_nonzeros() {
        let t = tensor();
        let part = Partition::build(&t, 3).unwrap();
        let locals = part.split_tensor(&t);
        let total: usize = locals.iter().map(|l| l.nnz()).sum();
        assert_eq!(total, t.nnz());
        let norm: f64 = locals.iter().map(|l| l.norm_sq()).sum();
        assert!((norm - t.norm_sq()).abs() < 1e-9);
        for (p, l) in locals.iter().enumerate() {
            assert_eq!(l.dims(), t.dims()); // global dims retained
            for &i in l.mode_inds(part.split_mode()) {
                assert_eq!(part.owner(part.split_mode(), i as usize), p);
            }
        }
    }

    #[test]
    fn split_respects_balance_bound() {
        // A skewed tensor stresses the greedy prefix split.
        let t = sptensor::gen::planted(&sptensor::gen::PlantedConfig {
            dims: vec![100, 20, 20],
            nnz: 5_000,
            rank: 3,
            noise: 0.1,
            factor_density: 1.0,
            zipf_exponents: vec![0.8, 0.3, 0.3],
            seed: 9,
        })
        .unwrap();
        for s in [2usize, 3, 4, 7] {
            let part = Partition::build(&t, s).unwrap();
            let locals = part.split_tensor(&t);
            let max = locals.iter().map(CooTensor::nnz).max().unwrap();
            let bound = part.nnz_balance_bound(&t);
            assert!(max <= bound, "S={s}: max shard nnz {max} > bound {bound}");
        }
    }

    #[test]
    fn invalid_requests_return_typed_errors() {
        // Regression: invalid partition requests used to abort via
        // `expect`/`assert!`; they now surface as typed Config errors.
        let t = tensor();
        let err = Partition::build(&t, 0).unwrap_err();
        assert!(err.to_string().contains("at least one shard"));
        let err = Partition::build_on_mode(&t, 3, 2).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn more_shards_than_slices_degenerates_gracefully() {
        let t = gen::random_uniform(&[10, 2, 10], 50, 1).unwrap();
        let part = Partition::build_on_mode(&t, 1, 5).unwrap();
        let locals = part.split_tensor(&t);
        assert_eq!(locals.iter().map(CooTensor::nnz).sum::<usize>(), t.nnz());
        let mut end = 0;
        for p in 0..5 {
            let r = part.owned(1, p);
            assert_eq!(r.start, end);
            end = r.end;
        }
        assert_eq!(end, 2);
    }
}
