//! Row partitioning of modes over simulated nodes.
//!
//! The coarse-grained 1D decomposition assigns each mode's rows to nodes
//! in contiguous ranges. Mode-0 ranges are balanced by *nonzero count*
//! (they determine MTTKRP work per node); the other modes are balanced
//! by row count (they determine ADMM work per node).

use sptensor::CooTensor;

/// Contiguous row ranges per node, for every mode.
#[derive(Debug, Clone)]
pub struct Partition {
    nnodes: usize,
    /// `ranges[m][p]` = row range of mode `m` owned by node `p`.
    ranges: Vec<Vec<std::ops::Range<usize>>>,
}

impl Partition {
    /// Partition `tensor` over `nnodes` nodes.
    ///
    /// Mode 0 is split at nonzero-count boundaries (greedy prefix split
    /// of the slice histogram); other modes are split evenly by rows.
    pub fn build(tensor: &CooTensor, nnodes: usize) -> Self {
        assert!(nnodes > 0, "need at least one node");
        let nmodes = tensor.nmodes();
        let mut ranges = Vec::with_capacity(nmodes);

        // Mode 0: balance nnz.
        let counts = tensor.slice_counts(0);
        let total: usize = counts.iter().sum();
        let target = total.div_ceil(nnodes).max(1);
        let mut mode0 = Vec::with_capacity(nnodes);
        let mut start = 0usize;
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target && mode0.len() + 1 < nnodes {
                mode0.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        mode0.push(start..counts.len());
        while mode0.len() < nnodes {
            // Degenerate: fewer slices than nodes; give empty ranges.
            let end = mode0.last().map(|r| r.end).unwrap_or(0);
            mode0.push(end..end);
        }
        ranges.push(mode0);

        // Other modes: even row split.
        for m in 1..nmodes {
            let d = tensor.dims()[m];
            let per = d.div_ceil(nnodes);
            let mut v = Vec::with_capacity(nnodes);
            for p in 0..nnodes {
                let lo = (p * per).min(d);
                let hi = ((p + 1) * per).min(d);
                v.push(lo..hi);
            }
            ranges.push(v);
        }
        Partition { nnodes, ranges }
    }

    /// Number of nodes.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Row range of mode `m` owned by node `p`.
    pub fn range(&self, m: usize, p: usize) -> std::ops::Range<usize> {
        self.ranges[m][p].clone()
    }

    /// Owner node of row `i` in mode `m`.
    pub fn owner(&self, m: usize, i: usize) -> usize {
        self.ranges[m]
            .iter()
            .position(|r| r.contains(&i))
            .expect("row within dims is owned by some node")
    }

    /// Split the tensor into per-node local tensors by mode-0 ownership.
    ///
    /// Every local tensor keeps the *global* dimensions so factor indices
    /// remain global (ghost rows of non-owned modes are read from the
    /// replicated factors, as in the real algorithm).
    pub fn split_tensor(&self, tensor: &CooTensor) -> Vec<CooTensor> {
        let mut locals: Vec<CooTensor> = (0..self.nnodes)
            .map(|_| CooTensor::new(tensor.dims().to_vec()).expect("valid dims"))
            .collect();
        let nmodes = tensor.nmodes();
        let mut coord = vec![0u32; nmodes];
        for n in 0..tensor.nnz() {
            for (m, c) in coord.iter_mut().enumerate() {
                *c = tensor.mode_inds(m)[n];
            }
            let p = self.owner(0, coord[0] as usize);
            locals[p]
                .push(&coord, tensor.values()[n])
                .expect("coordinate already validated");
        }
        locals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::gen;

    fn tensor() -> CooTensor {
        gen::random_uniform(&[40, 30, 20], 600, 3).unwrap()
    }

    #[test]
    fn ranges_cover_and_are_disjoint() {
        let t = tensor();
        for p in [1usize, 2, 3, 7] {
            let part = Partition::build(&t, p);
            for m in 0..3 {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for node in 0..p {
                    let r = part.range(m, node);
                    assert!(r.start == prev_end, "mode {m} node {node} gap");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, t.dims()[m], "mode {m} not fully covered");
                assert_eq!(covered, t.dims()[m]);
            }
        }
    }

    #[test]
    fn owner_matches_ranges() {
        let t = tensor();
        let part = Partition::build(&t, 4);
        for m in 0..3 {
            for i in 0..t.dims()[m] {
                let p = part.owner(m, i);
                assert!(part.range(m, p).contains(&i));
            }
        }
    }

    #[test]
    fn split_preserves_all_nonzeros() {
        let t = tensor();
        let part = Partition::build(&t, 3);
        let locals = part.split_tensor(&t);
        let total: usize = locals.iter().map(|l| l.nnz()).sum();
        assert_eq!(total, t.nnz());
        let norm: f64 = locals.iter().map(|l| l.norm_sq()).sum();
        assert!((norm - t.norm_sq()).abs() < 1e-9);
        // Every local nonzero's mode-0 index belongs to that node.
        for (p, l) in locals.iter().enumerate() {
            for &i in l.mode_inds(0) {
                assert_eq!(part.owner(0, i as usize), p);
            }
        }
    }

    #[test]
    fn mode0_split_is_nnz_balanced() {
        // A skewed tensor: node loads should be within 2x of each other
        // when slices allow it.
        let t = sptensor::gen::planted(&sptensor::gen::PlantedConfig {
            dims: vec![100, 20, 20],
            nnz: 5_000,
            rank: 3,
            noise: 0.1,
            factor_density: 1.0,
            zipf_exponents: vec![0.8, 0.3, 0.3],
            seed: 9,
        })
        .unwrap();
        let part = Partition::build(&t, 4);
        let locals = part.split_tensor(&t);
        let loads: Vec<usize> = locals.iter().map(|l| l.nnz()).collect();
        let max = *loads.iter().max().unwrap();
        let avg = t.nnz() / 4;
        assert!(max < avg * 3, "imbalanced loads {loads:?} (avg {avg})");
    }

    #[test]
    fn more_nodes_than_slices_degenerates_gracefully() {
        let t = gen::random_uniform(&[2, 10, 10], 50, 1).unwrap();
        let part = Partition::build(&t, 5);
        let locals = part.split_tensor(&t);
        assert_eq!(locals.iter().map(|l| l.nnz()).sum::<usize>(), t.nnz());
        // Ranges still partition mode 0.
        let mut end = 0;
        for p in 0..5 {
            let r = part.range(0, p);
            assert_eq!(r.start, end);
            end = r.end;
        }
        assert_eq!(end, 2);
    }
}
