//! The explicit message-passing layer between shards.
//!
//! Shards communicate only through typed point-to-point messages over a
//! [`Fabric`] of per-edge FIFO channels — no shared factor state. The
//! layer is built for two properties the engine's tests depend on:
//!
//! - **Determinism**: one channel per directed edge preserves per-sender
//!   order, and both sides of every collective walk peers in ascending
//!   shard index, so message matching needs no tags beyond a protocol
//!   check. Merges applied in receive order are therefore frozen,
//!   shard-ordered reductions.
//! - **Zero steady-state allocation**: channels are `VecDeque`s with
//!   pre-reserved capacity (`std::sync::mpsc` allocates per send), and
//!   block payload buffers are recycled through a per-edge return
//!   channel ([`Endpoint::return_buffer`]) so after warmup every send
//!   reuses a buffer that has already reached its high-water capacity.
//!
//! Every block send is metered into a [`CommLedger`] — a pre-sized table
//! of atomic counters indexed by `(round, phase, src, dst)` — which the
//! comm-validation suite compares against the analytic predictions of
//! [`crate::comm`], byte for byte.
//!
//! A dropped [`Endpoint`] (normal exit or unwinding panic) closes its
//! outgoing channels, so peers blocked in [`Endpoint::recv`] observe
//! `Disconnected` instead of deadlocking when a shard dies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Communication phases of one outer round, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Partial-MTTKRP blocks routed to the owner of the rows
    /// (reduce-scatter of `K`; every mode except the split mode).
    KReduce,
    /// Updated owned factor rows replicated to all peers (allgather;
    /// every mode except the split mode).
    FactorRows,
    /// Partial `F x F` Gram blocks of the split mode (allreduce; the
    /// split-mode factor itself never travels).
    GramReduce,
    /// Scalar partial inner products for the fit check (allreduce; last
    /// mode only).
    Objective,
}

/// Number of [`Phase`] variants (ledger sizing).
pub const NPHASES: usize = 4;

impl Phase {
    /// Dense index for ledger/prediction tables.
    pub fn index(self) -> usize {
        match self {
            Phase::KReduce => 0,
            Phase::FactorRows => 1,
            Phase::GramReduce => 2,
            Phase::Objective => 3,
        }
    }

    /// All phases in protocol order.
    pub const ALL: [Phase; NPHASES] = [
        Phase::KReduce,
        Phase::FactorRows,
        Phase::GramReduce,
        Phase::Objective,
    ];
}

/// Payload of one message.
#[derive(Debug)]
pub enum Body {
    /// A row-major block of `f64`s (factor rows, partial K rows, or a
    /// partial Gram). The buffer is recycled by the receiver.
    Block(Vec<f64>),
    /// A scalar (partial inner product).
    Scalar(f64),
}

/// A typed message between shards.
#[derive(Debug)]
pub struct Msg {
    /// Protocol phase this message belongs to.
    pub phase: Phase,
    /// Mode being updated when it was sent.
    pub mode: u32,
    /// 1-based outer round.
    pub round: u32,
    /// Payload.
    pub body: Body,
}

/// Channel error: the sending side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// A FIFO channel with pre-reserved capacity and close-on-drop
/// semantics. Sends never block (the deque grows past `cap` only if the
/// in-flight bound is exceeded, which the lockstep protocol prevents);
/// receives block until a message or a close arrives.
struct Channel<T> {
    q: Mutex<ChannelQ<T>>,
    cv: Condvar,
}

struct ChannelQ<T> {
    buf: VecDeque<T>,
    closed: bool,
}

impl<T> Channel<T> {
    fn new(cap: usize) -> Self {
        Channel {
            q: Mutex::new(ChannelQ {
                buf: VecDeque::with_capacity(cap),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn send(&self, t: T) {
        let mut q = self.q.lock().expect("channel lock");
        q.buf.push_back(t);
        drop(q);
        self.cv.notify_one();
    }

    fn recv(&self) -> Result<T, Disconnected> {
        let mut q = self.q.lock().expect("channel lock");
        loop {
            if let Some(t) = q.buf.pop_front() {
                return Ok(t);
            }
            if q.closed {
                return Err(Disconnected);
            }
            q = self.cv.wait(q).expect("channel wait");
        }
    }

    fn try_recv(&self) -> Option<T> {
        self.q.lock().expect("channel lock").buf.pop_front()
    }

    fn close(&self) {
        self.q.lock().expect("channel lock").closed = true;
        self.cv.notify_all();
    }
}

/// In-flight bound per directed edge. A shard can run at most one
/// collective step ahead of a peer before its own receives block, so a
/// small constant suffices; exceeding it only costs a deque growth.
const EDGE_CAPACITY: usize = 8;

/// The full `S x S` mesh of typed channels plus the buffer-return mesh.
pub struct Fabric {
    nshards: usize,
    /// `data[src * S + dst]`: messages from `src` to `dst`.
    data: Vec<Channel<Msg>>,
    /// `recycle[src * S + dst]`: consumed payload buffers flowing back
    /// from `dst` (the receiver) to `src` (the original sender).
    recycle: Vec<Channel<Vec<f64>>>,
}

impl Fabric {
    /// Build the mesh for `nshards` shards.
    pub fn new(nshards: usize) -> Arc<Self> {
        let n = nshards * nshards;
        Arc::new(Fabric {
            nshards,
            data: (0..n).map(|_| Channel::new(EDGE_CAPACITY)).collect(),
            recycle: (0..n).map(|_| Channel::new(EDGE_CAPACITY)).collect(),
        })
    }

    /// Number of shards in the mesh.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    fn edge(&self, src: usize, dst: usize) -> &Channel<Msg> {
        &self.data[src * self.nshards + dst]
    }

    fn recycle_edge(&self, src: usize, dst: usize) -> &Channel<Vec<f64>> {
        &self.recycle[src * self.nshards + dst]
    }

    /// One shard's handle on the mesh. Call once per shard id.
    pub fn endpoint(self: &Arc<Self>, id: usize) -> Endpoint {
        assert!(id < self.nshards, "endpoint id out of range");
        Endpoint {
            id,
            fabric: Arc::clone(self),
        }
    }
}

/// Per-round, per-edge, per-phase byte accounting, recorded at send
/// time. Pre-sized at construction so steady-state recording is a pair
/// of relaxed atomic adds.
pub struct CommLedger {
    nshards: usize,
    max_rounds: usize,
    /// `bytes[(((round-1) * NPHASES + phase) * S + src) * S + dst]`.
    bytes: Vec<AtomicU64>,
    /// Message counts per phase.
    msgs: [AtomicU64; NPHASES],
}

impl CommLedger {
    /// Ledger covering up to `max_rounds` outer rounds.
    pub fn new(nshards: usize, max_rounds: usize) -> Arc<Self> {
        let cells = max_rounds * NPHASES * nshards * nshards;
        Arc::new(CommLedger {
            nshards,
            max_rounds,
            bytes: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            msgs: Default::default(),
        })
    }

    fn cell(&self, round: u32, phase: Phase, src: usize, dst: usize) -> usize {
        let r = round as usize - 1;
        debug_assert!(r < self.max_rounds);
        ((r * NPHASES + phase.index()) * self.nshards + src) * self.nshards + dst
    }

    fn record(&self, round: u32, phase: Phase, src: usize, dst: usize, nbytes: u64) {
        self.bytes[self.cell(round, phase, src, dst)].fetch_add(nbytes, Ordering::Relaxed);
        self.msgs[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes recorded for one `(round, phase, src, dst)` cell.
    pub fn edge_bytes(&self, round: u32, phase: Phase, src: usize, dst: usize) -> u64 {
        self.bytes[self.cell(round, phase, src, dst)].load(Ordering::Relaxed)
    }

    /// Total bytes of one phase across all rounds and edges.
    pub fn phase_bytes(&self, phase: Phase) -> u64 {
        let s = self.nshards;
        let mut total = 0;
        for r in 0..self.max_rounds {
            let base = (r * NPHASES + phase.index()) * s * s;
            for cell in &self.bytes[base..base + s * s] {
                total += cell.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Total bytes across everything.
    pub fn total_bytes(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_bytes(p)).sum()
    }

    /// Messages sent in one phase.
    pub fn phase_messages(&self, phase: Phase) -> u64 {
        self.msgs[phase.index()].load(Ordering::Relaxed)
    }

    /// Total messages sent.
    pub fn total_messages(&self) -> u64 {
        self.msgs.iter().map(|m| m.load(Ordering::Relaxed)).sum()
    }
}

/// One shard's sending/receiving handle. Dropping it (including during a
/// panic unwind) closes the shard's outgoing channels so peers can't
/// deadlock on a dead sender.
pub struct Endpoint {
    id: usize,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    /// This endpoint's shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Take a recycled payload buffer for a send to `dst`, or a fresh
    /// one during warmup. The buffer comes back cleared.
    pub fn take_buffer(&self, dst: usize) -> Vec<f64> {
        let mut buf = self
            .fabric
            .recycle_edge(self.id, dst)
            .try_recv()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    /// Hand a consumed payload buffer back to its sender `src`.
    pub fn return_buffer(&self, src: usize, buf: Vec<f64>) {
        self.fabric.recycle_edge(src, self.id).send(buf);
    }

    /// Send a block to `dst`, metering its bytes into `ledger`.
    pub fn send_block(
        &self,
        dst: usize,
        phase: Phase,
        mode: usize,
        round: u32,
        data: Vec<f64>,
        ledger: &CommLedger,
    ) {
        ledger.record(round, phase, self.id, dst, (data.len() * 8) as u64);
        self.fabric.edge(self.id, dst).send(Msg {
            phase,
            mode: mode as u32,
            round,
            body: Body::Block(data),
        });
    }

    /// Send a scalar to `dst`, metering its 8 bytes into `ledger`.
    pub fn send_scalar(
        &self,
        dst: usize,
        phase: Phase,
        mode: usize,
        round: u32,
        value: f64,
        ledger: &CommLedger,
    ) {
        ledger.record(round, phase, self.id, dst, 8);
        self.fabric.edge(self.id, dst).send(Msg {
            phase,
            mode: mode as u32,
            round,
            body: Body::Scalar(value),
        });
    }

    /// Receive the next message from `src`, checking it belongs to the
    /// expected protocol step (per-edge FIFO plus the lockstep schedule
    /// make the next message unambiguous; a mismatch is a protocol bug).
    pub fn recv(
        &self,
        src: usize,
        phase: Phase,
        mode: usize,
        round: u32,
    ) -> Result<Msg, RecvError> {
        let msg = self
            .fabric
            .edge(src, self.id)
            .recv()
            .map_err(|_| RecvError::Disconnected { src })?;
        if msg.phase != phase || msg.mode != mode as u32 || msg.round != round {
            return Err(RecvError::Protocol {
                src,
                expected: (phase, mode as u32, round),
                got: (msg.phase, msg.mode, msg.round),
            });
        }
        Ok(msg)
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        for dst in 0..self.fabric.nshards {
            self.fabric.edge(self.id, dst).close();
        }
    }
}

/// Receive-side failure.
#[derive(Debug)]
pub enum RecvError {
    /// The peer endpoint is gone (it erred or panicked).
    Disconnected {
        /// Shard whose endpoint disappeared.
        src: usize,
    },
    /// The next in-order message did not match the protocol step.
    Protocol {
        /// Sending shard.
        src: usize,
        /// `(phase, mode, round)` this receive expected.
        expected: (Phase, u32, u32),
        /// `(phase, mode, round)` actually received.
        got: (Phase, u32, u32),
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected { src } => {
                write!(f, "shard {src} disconnected mid-protocol")
            }
            RecvError::Protocol { src, expected, got } => write!(
                f,
                "protocol violation from shard {src}: expected {expected:?}, got {got:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn block_roundtrip_with_recycling() {
        let fabric = Fabric::new(2);
        let ledger = CommLedger::new(2, 3);
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);

        let mut buf = a.take_buffer(1);
        buf.extend_from_slice(&[1.0, 2.0, 3.0]);
        a.send_block(1, Phase::KReduce, 0, 1, buf, &ledger);

        let msg = b.recv(0, Phase::KReduce, 0, 1).unwrap();
        let payload = match msg.body {
            Body::Block(v) => v,
            _ => panic!("expected block"),
        };
        assert_eq!(payload, vec![1.0, 2.0, 3.0]);
        let cap = payload.capacity();
        b.return_buffer(0, payload);

        // The recycled buffer comes back with its capacity intact.
        let again = a.take_buffer(1);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);

        assert_eq!(ledger.edge_bytes(1, Phase::KReduce, 0, 1), 24);
        assert_eq!(ledger.phase_bytes(Phase::KReduce), 24);
        assert_eq!(ledger.phase_messages(Phase::KReduce), 1);
    }

    #[test]
    fn protocol_mismatch_is_detected() {
        let fabric = Fabric::new(2);
        let ledger = CommLedger::new(2, 1);
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        a.send_scalar(1, Phase::Objective, 2, 1, 4.5, &ledger);
        let err = b.recv(0, Phase::KReduce, 0, 1).unwrap_err();
        assert!(matches!(err, RecvError::Protocol { src: 0, .. }));
    }

    #[test]
    fn dropped_endpoint_unblocks_receiver() {
        let fabric = Fabric::new(2);
        let b = fabric.endpoint(1);
        let f2 = Arc::clone(&fabric);
        let t = thread::spawn(move || {
            let a = f2.endpoint(0);
            drop(a); // shard 0 dies without sending
        });
        t.join().unwrap();
        let err = b.recv(0, Phase::KReduce, 0, 1).unwrap_err();
        assert!(matches!(err, RecvError::Disconnected { src: 0 }));
    }

    #[test]
    fn scalar_bytes_are_metered() {
        let fabric = Fabric::new(3);
        let ledger = CommLedger::new(3, 2);
        let a = fabric.endpoint(0);
        a.send_scalar(1, Phase::Objective, 2, 2, 1.0, &ledger);
        a.send_scalar(2, Phase::Objective, 2, 2, 1.0, &ledger);
        assert_eq!(ledger.phase_bytes(Phase::Objective), 16);
        assert_eq!(ledger.total_messages(), 2);
        assert_eq!(ledger.edge_bytes(2, Phase::Objective, 0, 2), 8);
        assert_eq!(ledger.edge_bytes(1, Phase::Objective, 0, 2), 0);
    }
}
