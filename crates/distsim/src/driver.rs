//! The simulated distributed AO-ADMM driver.
//!
//! Executes the coarse-grained 1D algorithm described in the crate docs:
//! node-local partial MTTKRPs, a reduce-scatter of `K`, node-local
//! blocked ADMM on owned factor rows (no communication — the paper's
//! point), an all-gather of updated rows and an `F x F` Gram all-reduce.
//! All collectives are metered through [`CommStats`].

use crate::comm::{CommStats, CostModel, Phase};
use crate::partition::Partition;
use admm::{admm_update, AdmmConfig, Prox};
use aoadmm::kruskal::{relative_error_fast, KruskalModel};
use aoadmm::mttkrp::mttkrp_dense;
use aoadmm::AoAdmmError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::{ops, DMat};
use sptensor::{CooTensor, Csf};
use std::sync::Arc;

/// Configuration of a simulated distributed run.
#[derive(Clone)]
pub struct DistConfig {
    /// Number of simulated nodes.
    pub nnodes: usize,
    /// Decomposition rank.
    pub rank: usize,
    /// Cap on outer iterations.
    pub max_outer: usize,
    /// Outer tolerance on relative-error improvement.
    pub tol: f64,
    /// Factor-initialization seed (matches the shared-memory driver).
    pub seed: u64,
    /// Inner ADMM configuration applied on every node.
    pub admm: AdmmConfig,
    /// Machine model for communication-time estimates.
    pub cost: CostModel,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            nnodes: 4,
            rank: 10,
            max_outer: 50,
            tol: 1e-6,
            seed: 0,
            admm: AdmmConfig::default(),
            cost: CostModel::default(),
        }
    }
}

/// Result of a simulated distributed factorization.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// The factor matrices (identical on every node after the final
    /// all-gather).
    pub model: KruskalModel,
    /// Final relative error.
    pub final_error: f64,
    /// Outer iterations executed.
    pub outer_iterations: usize,
    /// Metered communication.
    pub comm: CommStats,
    /// Estimated communication seconds under the cost model.
    pub est_comm_seconds: f64,
    /// Peak per-node nonzero count (load balance diagnostic).
    pub max_node_nnz: usize,
}

/// Run simulated distributed AO-ADMM with `prox` applied to every mode.
pub fn dist_factorize(
    tensor: &CooTensor,
    prox: Arc<dyn Prox>,
    cfg: &DistConfig,
) -> Result<DistResult, AoAdmmError> {
    if cfg.nnodes == 0 || cfg.rank == 0 || cfg.max_outer == 0 {
        return Err(AoAdmmError::Config(
            "nnodes, rank and max_outer must be positive".into(),
        ));
    }
    if tensor.nnz() == 0 {
        return Err(AoAdmmError::Config("tensor has no nonzeros".into()));
    }
    let nmodes = tensor.nmodes();
    let dims = tensor.dims().to_vec();
    let p = cfg.nnodes;
    let f = cfg.rank;

    // --- Partition and per-node CSFs (one per mode per node). ---
    let part = Partition::build(tensor, p);
    let locals = part.split_tensor(tensor);
    let max_node_nnz = locals.iter().map(|l| l.nnz()).max().unwrap_or(0);
    let mut node_csfs: Vec<Vec<Option<Csf>>> = Vec::with_capacity(p);
    for local in &locals {
        let mut per_mode = Vec::with_capacity(nmodes);
        for m in 0..nmodes {
            if local.nnz() == 0 {
                per_mode.push(None);
            } else {
                per_mode.push(Some(Csf::from_coo_rooted(local, m)?));
            }
        }
        node_csfs.push(per_mode);
    }

    // --- Replicated initial factors: byte-identical to the shared
    // driver's init (same seed stream + same norm matching). ---
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut factors: Vec<DMat> = dims
        .iter()
        .map(|&d| DMat::random(d, f, 0.0, 1.0, &mut rng))
        .collect();
    let mut grams: Vec<DMat> = factors.iter().map(|fa| fa.gram()).collect();
    let xnorm_sq = tensor.norm_sq();
    let mnorm_sq = ops::model_norm_sq(&grams)?;
    if mnorm_sq > 0.0 && xnorm_sq > 0.0 {
        let scale = (xnorm_sq / mnorm_sq).powf(1.0 / (2.0 * nmodes as f64));
        for fa in &mut factors {
            fa.scale(scale);
        }
        grams = factors.iter().map(|fa| fa.gram()).collect();
    }
    let mut duals: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, f)).collect();

    let mut comm = CommStats::default();
    let mut kbufs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, f)).collect();
    let mut partials: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, f)).collect();
    let mut prev_err = f64::INFINITY;
    let mut final_error = f64::NAN;
    let mut outer_done = 0;

    for outer in 1..=cfg.max_outer {
        let mut last_inner = 0.0;
        for m in 0..nmodes {
            let gram = ops::gram_hadamard(&grams, m)?;
            let d = dims[m];

            // 1. Partial MTTKRP per node, summed — the reduce of the
            // distributed algorithm (executed here as a serial sum; the
            // bytes a reduce-scatter would move are metered).
            kbufs[m].fill(0.0);
            for csfs in &node_csfs {
                if let Some(csf) = &csfs[m] {
                    mttkrp_dense(csf, &factors, &mut partials[m])?;
                    splinalg::vecops::axpy(1.0, partials[m].as_slice(), kbufs[m].as_mut_slice());
                }
            }
            // Reduce-scatter of the K matrix: half an all-reduce.
            comm.allreduce(d * f / 2, p, Phase::Mttkrp);

            // 2. Node-local blocked ADMM on owned rows. Zero
            // communication: each node's rows are an independent set of
            // blocks (Section IV-B).
            for node in 0..p {
                let range = part.range(m, node);
                if range.is_empty() {
                    continue;
                }
                let klocal = copy_rows(&kbufs[m], range.clone(), f);
                let mut hlocal = copy_rows(&factors[m], range.clone(), f);
                let mut ulocal = copy_rows(&duals[m], range.clone(), f);
                admm_update(&gram, &klocal, &mut hlocal, &mut ulocal, &*prox, &cfg.admm)?;
                write_rows(&mut factors[m], range.clone(), &hlocal);
                write_rows(&mut duals[m], range.clone(), &ulocal);
            }

            // 3. All-gather the updated factor rows.
            comm.allgather(d.div_ceil(p) * f, p, Phase::Factor);

            // 4. Gram refresh: partial per node + F x F all-reduce.
            grams[m] = factors[m].gram();
            comm.allreduce(f * f, p, Phase::Gram);

            if m == nmodes - 1 {
                last_inner = ops::inner_product(&kbufs[m], &factors[m])?;
            }
        }

        let model_norm_sq = ops::model_norm_sq(&grams)?;
        let rel_error = relative_error_fast(xnorm_sq, last_inner, model_norm_sq);
        final_error = rel_error;
        outer_done = outer;
        if outer > 1 && prev_err - rel_error < cfg.tol {
            break;
        }
        prev_err = rel_error;
    }

    let est = cfg.cost.estimate_seconds(&comm, p);
    Ok(DistResult {
        model: KruskalModel::new(factors),
        final_error,
        outer_iterations: outer_done,
        comm,
        est_comm_seconds: est,
        max_node_nnz,
    })
}

fn copy_rows(src: &DMat, range: std::ops::Range<usize>, f: usize) -> DMat {
    let mut out = DMat::zeros(range.len(), f);
    for (dst_i, src_i) in range.enumerate() {
        out.row_mut(dst_i).copy_from_slice(src.row(src_i));
    }
    out
}

fn write_rows(dst: &mut DMat, range: std::ops::Range<usize>, src: &DMat) {
    for (src_i, dst_i) in range.enumerate() {
        dst.row_mut(dst_i).copy_from_slice(src.row(src_i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> CooTensor {
        planted(&PlantedConfig {
            dims: vec![60, 40, 50],
            nnz: 6_000,
            rank: 4,
            noise: 0.1,
            factor_density: 1.0,
            zipf_exponents: vec![0.8, 0.5, 0.8],
            seed: 13,
        })
        .unwrap()
    }

    /// Fixed-work ADMM so every row sees an identical schedule regardless
    /// of how rows are grouped into blocks or nodes.
    fn fixed_admm() -> AdmmConfig {
        let mut a = AdmmConfig::blocked(50);
        a.tol = 0.0;
        a.max_inner = 8;
        a
    }

    #[test]
    fn distributed_matches_shared_memory_exactly() {
        let t = tensor();
        let shared = aoadmm::Factorizer::new(6)
            .constrain_all(constraints::nonneg())
            .admm(fixed_admm())
            .max_outer(5)
            .tolerance(0.0)
            .seed(21)
            .factorize(&t)
            .unwrap();

        for p in [1usize, 2, 3, 5] {
            let cfg = DistConfig {
                nnodes: p,
                rank: 6,
                max_outer: 5,
                tol: 0.0,
                seed: 21,
                admm: fixed_admm(),
                ..Default::default()
            };
            let dist = dist_factorize(&t, constraints::nonneg(), &cfg).unwrap();
            for m in 0..3 {
                let diff = dist.model.factor(m).max_abs_diff(shared.model.factor(m));
                assert!(diff < 1e-9, "p={p} mode {m} diff {diff}");
            }
            assert!(
                (dist.final_error - shared.trace.final_error).abs() < 1e-9,
                "p={p}: {} vs {}",
                dist.final_error,
                shared.trace.final_error
            );
        }
    }

    #[test]
    fn communication_is_mttkrp_dominated() {
        // The paper's distributed claim: beyond MTTKRP reductions, only
        // factor gathers and tiny gram reductions move — and for rank <<
        // mode lengths, MTTKRP reductions dominate the volume.
        let t = tensor();
        let cfg = DistConfig {
            nnodes: 8,
            rank: 16,
            max_outer: 3,
            tol: 0.0,
            seed: 1,
            admm: fixed_admm(),
            ..Default::default()
        };
        let res = dist_factorize(&t, constraints::nonneg(), &cfg).unwrap();
        assert!(res.comm.total_bytes() > 0);
        // The K reduce-scatter and the factor all-gather move comparable
        // volumes (both O(d*F) per mode); together they are everything —
        // ADMM itself contributes zero bytes, which is the claim.
        assert!(
            res.comm.mttkrp_fraction() > 0.3,
            "mttkrp fraction {}",
            res.comm.mttkrp_fraction()
        );
        assert_eq!(
            res.comm.mttkrp_bytes + res.comm.factor_bytes + res.comm.gram_bytes,
            res.comm.total_bytes()
        );
        // Gram reductions (F^2 per mode) stay a minority next to the
        // data-sized phases even on this tiny test tensor; on real mode
        // lengths (d >> F) they vanish.
        assert!(res.comm.gram_bytes * 3 < res.comm.total_bytes());
    }

    #[test]
    fn single_node_moves_no_bytes() {
        let t = tensor();
        let cfg = DistConfig {
            nnodes: 1,
            rank: 4,
            max_outer: 2,
            tol: 0.0,
            seed: 2,
            admm: fixed_admm(),
            ..Default::default()
        };
        let res = dist_factorize(&t, constraints::nonneg(), &cfg).unwrap();
        assert_eq!(res.comm.total_bytes(), 0);
        assert_eq!(res.est_comm_seconds, 0.0);
    }

    #[test]
    fn constraints_respected_across_nodes() {
        let t = tensor();
        let cfg = DistConfig {
            nnodes: 3,
            rank: 5,
            max_outer: 4,
            tol: 0.0,
            seed: 3,
            admm: fixed_admm(),
            ..Default::default()
        };
        let res = dist_factorize(&t, constraints::nonneg(), &cfg).unwrap();
        for m in 0..3 {
            assert!(res.model.factor(m).as_slice().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn validates_config() {
        let t = tensor();
        let bad = DistConfig {
            nnodes: 0,
            ..Default::default()
        };
        assert!(dist_factorize(&t, constraints::nonneg(), &bad).is_err());
        let empty = CooTensor::new(vec![2, 2]).unwrap();
        assert!(dist_factorize(&empty, constraints::nonneg(), &DistConfig::default()).is_err());
    }
}
