//! # aoadmm-served — the network serving tier
//!
//! `aoadmm-serve` answers queries in-process; this crate puts that
//! engine behind a socket. It is deliberately dependency-light: plain
//! nonblocking `std::net` sockets, `std::sync` channels, and the same
//! typed-message discipline as the distsim fabric, now length-prefixed
//! onto TCP.
//!
//! * [`wire`] — the protocol: `u32` length prefix + opcode byte,
//!   little-endian fields, `f64` scores as raw bits (so wire-served
//!   values are bit-identical to in-process scoring).
//! * [`Daemon`] — the `aoadmm serve` daemon: one nonblocking I/O
//!   thread feeding an SLO-deadline predict batcher and a top-K worker
//!   pool over a per-deployment [`aoadmm_serve::ShardedRegistry`].
//!   Per-connection token-bucket admission control, per-endpoint stats
//!   with log2 latency histograms, in-order response release (a
//!   client's observed epochs are monotone), and drain-before-exit
//!   shutdown.
//! * [`WireClient`] — blocking client with pipelined batch helpers,
//!   shared by the CLI subcommands and the `serve_wire` closed-loop
//!   benchmark.
//!
//! ```no_run
//! use aoadmm_served::{Daemon, DaemonConfig, WireClient, Tier};
//!
//! let daemon = Daemon::bind(DaemonConfig::default())?;
//! let addr = daemon.local_addr();
//! // ... publish a model through daemon.registry() ...
//! let mut client = WireClient::connect(addr)?;
//! let (epoch, value) = client.predict(&[3, 7, 2]).unwrap();
//! let (_, hits) = client.topk(Tier::Approx, 0, &[0, 7, 2], 10).unwrap();
//! client.shutdown().unwrap();
//! daemon.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{ClientError, WireClient};
pub use server::{Daemon, DaemonConfig};
pub use stats::{Endpoint, EndpointStats, StatsRegistry, StatsReport};
pub use wire::{ErrorCode, Request, Response, Tier, WireError};
