//! Per-endpoint request counters and latency histograms.
//!
//! The daemon records every request against its endpoint: a request
//! count, an error count (typed rejections included), and a log2
//! latency histogram — bucket `i` counts requests whose latency in
//! nanoseconds satisfied `2^i <= ns < 2^(i+1)`. Log2 buckets make the
//! histogram fixed-size and lock-free (one atomic increment per
//! request) while still resolving p50/p95/p99 to within a factor of
//! two, which is what a closed-loop benchmark needs from a stats RPC.
//!
//! Recording is wait-free (`Relaxed` atomics); a concurrent
//! [`StatsRegistry::report`] may be off by in-flight increments, never
//! torn.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets: `2^39` ns is ~9 minutes, far past
/// any latency this tier produces; slower requests clamp into the last
/// bucket.
pub const HIST_BUCKETS: usize = 40;

/// The daemon's request endpoints, in wire-code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Endpoint {
    /// Point reconstruction.
    Predict = 0,
    /// Exact top-K.
    TopKExact = 1,
    /// Approximate top-K.
    TopKApprox = 2,
    /// Stats RPC itself.
    Stats = 3,
    /// Liveness probe.
    Ping = 4,
}

/// All endpoints, in wire-code order.
pub const ENDPOINTS: [Endpoint; 5] = [
    Endpoint::Predict,
    Endpoint::TopKExact,
    Endpoint::TopKApprox,
    Endpoint::Stats,
    Endpoint::Ping,
];

impl Endpoint {
    /// Decode a wire endpoint code.
    pub fn from_u8(v: u8) -> Option<Endpoint> {
        ENDPOINTS.get(v as usize).copied()
    }

    /// Stable lowercase name (CSV column / log field).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::TopKExact => "topk_exact",
            Endpoint::TopKApprox => "topk_approx",
            Endpoint::Stats => "stats",
            Endpoint::Ping => "ping",
        }
    }
}

/// Bucket index of a latency: `floor(log2(ns))`, clamped.
fn bucket(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl Counters {
    fn new() -> Self {
        Counters {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Shared, wait-free stats sink: one set of counters per endpoint.
pub struct StatsRegistry {
    per: [Counters; 5],
}

impl Default for StatsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsRegistry {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        StatsRegistry {
            per: std::array::from_fn(|_| Counters::new()),
        }
    }

    /// Record one request: its endpoint, end-to-end daemon latency in
    /// nanoseconds, and whether it was answered with an error.
    pub fn record(&self, endpoint: Endpoint, latency_ns: u64, error: bool) {
        let c = &self.per[endpoint as usize];
        c.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.hist[bucket(latency_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every endpoint's counters.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            endpoints: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    let c = &self.per[endpoint as usize];
                    let mut hist = [0u64; HIST_BUCKETS];
                    for (slot, a) in hist.iter_mut().zip(&c.hist) {
                        *slot = a.load(Ordering::Relaxed);
                    }
                    EndpointStats {
                        endpoint,
                        requests: c.requests.load(Ordering::Relaxed),
                        errors: c.errors.load(Ordering::Relaxed),
                        hist,
                    }
                })
                .collect(),
        }
    }
}

/// One endpoint's counters as carried by the stats RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointStats {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// Requests answered (errors included).
    pub requests: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Log2 latency histogram; bucket `i` counts latencies in
    /// `[2^i, 2^(i+1))` nanoseconds.
    pub hist: [u64; HIST_BUCKETS],
}

impl EndpointStats {
    /// Zeroed counters for one endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        EndpointStats {
            endpoint,
            requests: 0,
            errors: 0,
            hist: [0; HIST_BUCKETS],
        }
    }

    /// Upper-bound estimate of the `q`-quantile latency in nanoseconds
    /// (the top edge of the bucket holding the quantile), or 0 with no
    /// samples. `q` in `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }
}

/// The full answer of the stats RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// One entry per endpoint, in wire-code order.
    pub endpoints: Vec<EndpointStats>,
}

impl StatsReport {
    /// The entry for one endpoint.
    pub fn endpoint(&self, endpoint: Endpoint) -> Option<&EndpointStats> {
        self.endpoints.iter().find(|e| e.endpoint == endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn record_and_report() {
        let reg = StatsRegistry::new();
        reg.record(Endpoint::Predict, 1000, false);
        reg.record(Endpoint::Predict, 2000, true);
        reg.record(Endpoint::TopKApprox, 500, false);
        let report = reg.report();
        let p = report.endpoint(Endpoint::Predict).unwrap();
        assert_eq!((p.requests, p.errors), (2, 1));
        assert_eq!(p.hist.iter().sum::<u64>(), 2);
        assert_eq!(report.endpoint(Endpoint::TopKApprox).unwrap().requests, 1);
        assert_eq!(report.endpoint(Endpoint::Ping).unwrap().requests, 0);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut ep = EndpointStats::new(Endpoint::Predict);
        // 90 samples in bucket 10 (~1-2us), 10 in bucket 20 (~1-2ms).
        ep.hist[10] = 90;
        ep.hist[20] = 10;
        assert_eq!(ep.quantile_ns(0.5), 1 << 11);
        assert_eq!(ep.quantile_ns(0.9), 1 << 11);
        assert_eq!(ep.quantile_ns(0.95), 1 << 21);
        assert_eq!(ep.quantile_ns(0.99), 1 << 21);
        assert_eq!(EndpointStats::new(Endpoint::Ping).quantile_ns(0.5), 0);
    }
}
