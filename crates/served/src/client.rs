//! Blocking wire client, with pipelining for the closed-loop bench.
//!
//! One client owns one connection. Because the daemon releases
//! responses in request order, a client may pipeline: write a window
//! of requests, then read the same number of responses back — the
//! batch helpers here do exactly that, which is what lets a single
//! connection keep the daemon's batcher fed instead of paying a full
//! round trip per query.

use crate::stats::StatsReport;
use crate::wire::{self, ErrorCode, FrameBuf, Request, Response, Tier, WireError};
use sptensor::Idx;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(io::Error),
    /// The daemon sent bytes that do not decode.
    Wire(WireError),
    /// The daemon answered with a typed error.
    Remote {
        /// Rejection category.
        code: ErrorCode,
        /// For `OverLimit`: suggested back-off.
        retry_after_ms: u32,
        /// Daemon-side detail.
        msg: String,
    },
    /// The daemon answered with the wrong response type or id.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote { code, msg, .. } => write!(f, "remote error ({code:?}): {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

fn remote(code: ErrorCode, retry_after_ms: u32, msg: String) -> ClientError {
    ClientError::Remote {
        code,
        retry_after_ms,
        msg,
    }
}

/// A blocking connection to an `aoadmm serve` daemon.
pub struct WireClient {
    stream: TcpStream,
    fb: FrameBuf,
    wbuf: Vec<u8>,
    next_id: u32,
}

impl WireClient {
    /// Connect (Nagle disabled — this protocol is request/response).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            fb: FrameBuf::new(),
            wbuf: Vec::new(),
            next_id: 1,
        })
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }

    /// Queue `req` into the write buffer without flushing — the
    /// pipelining primitive.
    fn enqueue(&mut self, req: &Request) {
        wire::encode_request(req, &mut self.wbuf);
    }

    /// Write every queued request to the socket.
    fn flush(&mut self) -> io::Result<()> {
        self.stream.write_all(&self.wbuf)?;
        self.wbuf.clear();
        Ok(())
    }

    /// Read the next response frame (blocking).
    fn recv(&mut self) -> Result<Response, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(body) = self.fb.next_frame()? {
                return Ok(wire::decode_response(&body)?);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                )));
            }
            self.fb.push(&buf[..n]);
        }
    }

    /// One full round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.enqueue(req);
        self.flush()?;
        self.recv()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.call(&Request::Ping { id })? {
            Response::Pong { id: got } if got == id => Ok(()),
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Err(remote(code, retry_after_ms, msg)),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Reconstruct one coordinate; returns `(epoch, value)`.
    pub fn predict(&mut self, coord: &[Idx]) -> Result<(u64, f64), ClientError> {
        let id = self.fresh_id();
        let resp = self.call(&Request::Predict {
            id,
            coord: coord.to_vec(),
        })?;
        Self::expect_value(id, resp)
    }

    /// Top-K over `free_mode`; returns `(epoch, hits)` best first.
    pub fn topk(
        &mut self,
        tier: Tier,
        free_mode: usize,
        anchor: &[Idx],
        k: usize,
    ) -> Result<(u64, Vec<(Idx, f64)>), ClientError> {
        let id = self.fresh_id();
        let resp = self.call(&Request::TopK {
            id,
            tier,
            free_mode: free_mode as u8,
            k: k as u32,
            anchor: anchor.to_vec(),
        })?;
        Self::expect_hits(id, resp)
    }

    /// Fetch the daemon's per-endpoint counters and histograms.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let id = self.fresh_id();
        match self.call(&Request::Stats { id })? {
            Response::Stats { id: got, report } if got == id => Ok(report),
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Err(remote(code, retry_after_ms, msg)),
            _ => Err(ClientError::Unexpected("stats report")),
        }
    }

    /// Ask the daemon to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.call(&Request::Shutdown { id })? {
            Response::ShutdownAck { id: got } if got == id => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown ack")),
        }
    }

    /// Pipelined point scoring: write every request, then read every
    /// response in order. Per-item results; the call itself only fails
    /// on transport errors.
    #[allow(clippy::type_complexity)]
    pub fn predict_pipelined(
        &mut self,
        coords: &[Vec<Idx>],
    ) -> Result<Vec<Result<(u64, f64), ClientError>>, ClientError> {
        let ids: Vec<u32> = coords
            .iter()
            .map(|coord| {
                let id = self.fresh_id();
                self.enqueue(&Request::Predict {
                    id,
                    coord: coord.clone(),
                });
                id
            })
            .collect();
        self.flush()?;
        ids.into_iter()
            .map(|id| {
                let resp = self.recv()?;
                Ok(Self::expect_value(id, resp))
            })
            .collect()
    }

    /// Pipelined top-K: write every query, then read every response in
    /// order.
    #[allow(clippy::type_complexity)]
    pub fn topk_pipelined(
        &mut self,
        tier: Tier,
        free_mode: usize,
        anchors: &[Vec<Idx>],
        k: usize,
    ) -> Result<Vec<Result<(u64, Vec<(Idx, f64)>), ClientError>>, ClientError> {
        let ids: Vec<u32> = anchors
            .iter()
            .map(|anchor| {
                let id = self.fresh_id();
                self.enqueue(&Request::TopK {
                    id,
                    tier,
                    free_mode: free_mode as u8,
                    k: k as u32,
                    anchor: anchor.clone(),
                });
                id
            })
            .collect();
        self.flush()?;
        ids.into_iter()
            .map(|id| {
                let resp = self.recv()?;
                Ok(Self::expect_hits(id, resp))
            })
            .collect()
    }

    fn expect_value(id: u32, resp: Response) -> Result<(u64, f64), ClientError> {
        match resp {
            Response::Value {
                id: got,
                epoch,
                value,
            } if got == id => Ok((epoch, value)),
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Err(remote(code, retry_after_ms, msg)),
            _ => Err(ClientError::Unexpected("value")),
        }
    }

    fn expect_hits(id: u32, resp: Response) -> Result<(u64, Vec<(Idx, f64)>), ClientError> {
        match resp {
            Response::Hits {
                id: got,
                epoch,
                hits,
            } if got == id => Ok((epoch, hits)),
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Err(remote(code, retry_after_ms, msg)),
            _ => Err(ClientError::Unexpected("hits")),
        }
    }
}
