//! Per-connection token-bucket admission control.
//!
//! Every connection gets its own bucket: `burst` tokens of capacity,
//! refilled continuously at `rate` tokens per second. A scoring
//! request (predict, top-K) costs one token; control requests (ping,
//! stats, shutdown) are free so a throttled client can still observe
//! the daemon. An empty bucket yields a typed `OverLimit` rejection
//! carrying the time until a token will have accrued — the client's
//! back-off hint, not a promise of admission (other requests may drain
//! the bucket first).
//!
//! The bucket is plain state mutated by the single I/O thread that
//! owns the connection; no atomics needed. Time is passed in by the
//! caller, which keeps the arithmetic deterministic under test.

use std::time::{Duration, Instant};

/// Continuous-refill token bucket.
#[derive(Debug)]
pub struct TokenBucket {
    /// Maximum tokens (burst size).
    capacity: f64,
    /// Refill rate in tokens per second; `f64::INFINITY` disables
    /// metering.
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket of `capacity` tokens refilling at `rate`
    /// tokens/second, with `now` as the refill reference point.
    pub fn new(rate: f64, capacity: f64, now: Instant) -> Self {
        TokenBucket {
            capacity,
            rate,
            tokens: capacity,
            last: now,
        }
    }

    /// Try to admit one request at time `now`. `Ok(())` admits;
    /// `Err(retry_after)` rejects with the delay after which one token
    /// will have accrued.
    pub fn admit(&mut self, now: Instant) -> Result<(), Duration> {
        if self.rate.is_infinite() {
            return Ok(());
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        Err(Duration::from_secs_f64(deficit / self.rate.max(1e-9)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 2.0, t0);
        // Burst capacity admits two back-to-back...
        assert!(b.admit(t0).is_ok());
        assert!(b.admit(t0).is_ok());
        // ...then the empty bucket rejects with a ~100ms hint (1 token
        // at 10/s).
        let retry = b.admit(t0).unwrap_err();
        assert!(retry > Duration::from_millis(90) && retry <= Duration::from_millis(110));
        // 150ms later one token has accrued; the next is refused again.
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.admit(t1).is_ok());
        assert!(b.admit(t1).is_err());
    }

    #[test]
    fn refill_caps_at_capacity() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 3.0, t0);
        // A long idle period refills to capacity, not beyond.
        let t1 = t0 + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(b.admit(t1).is_ok());
        }
        assert!(b.admit(t1).is_err());
    }

    #[test]
    fn infinite_rate_never_rejects() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(f64::INFINITY, 0.0, t0);
        for _ in 0..1000 {
            assert!(b.admit(t0).is_ok());
        }
    }
}
