//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` body length
//! followed by the body, whose first byte is the opcode. The same
//! typed-message discipline as `aoadmm-distsim`'s fabric — a reader
//! always knows how many bytes to wait for, and decoding is a total
//! function from body bytes to a typed [`Request`]/[`Response`] or a
//! [`WireError`] — applied to a real socket instead of an in-process
//! channel.
//!
//! All integers are little-endian; scores travel as raw `f64` bits, so
//! a value crosses the wire bit-identically. Requests carry a
//! client-chosen `id` echoed in the response; the daemon additionally
//! guarantees responses on one connection are written in request order,
//! so a pipelining client may simply count frames.
//!
//! Frame bodies are capped ([`MAX_FRAME`]) — a garbage length prefix
//! fails fast instead of waiting on gigabytes that will never arrive.

use crate::stats::{EndpointStats, StatsReport, HIST_BUCKETS};
use sptensor::Idx;
use std::fmt;

/// Hard cap on a frame body's length, generous for any top-K answer
/// this tier produces (a hit is 12 bytes).
pub const MAX_FRAME: usize = 1 << 22;

/// Which top-K tier a wire query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Norm-bound pruned exact scan.
    Exact,
    /// bf16 quantized scan with exact rescoring of survivors.
    Approx,
}

/// Typed rejection category carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or out-of-range query (client bug).
    Invalid,
    /// No model published yet; retry after a publish.
    Empty,
    /// Admission control rejected the request; `retry_after_ms` says
    /// when the token bucket will have refilled.
    OverLimit,
    /// Daemon-side failure (server bug).
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Invalid => 1,
            ErrorCode::Empty => 2,
            ErrorCode::OverLimit => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::Invalid,
            2 => ErrorCode::Empty,
            3 => ErrorCode::OverLimit,
            4 => ErrorCode::Internal,
            _ => return Err(WireError::BadField("error code")),
        })
    }
}

/// Client-to-daemon messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; free (not metered by admission control).
    Ping {
        /// Echoed in the response.
        id: u32,
    },
    /// Reconstruct one coordinate.
    Predict {
        /// Echoed in the response.
        id: u32,
        /// Full-arity coordinate.
        coord: Vec<Idx>,
    },
    /// Rank one free mode's rows.
    TopK {
        /// Echoed in the response.
        id: u32,
        /// Exact or approximate tier.
        tier: Tier,
        /// The mode whose rows are ranked.
        free_mode: u8,
        /// How many rows to return.
        k: u32,
        /// Full-arity anchor (free slot ignored).
        anchor: Vec<Idx>,
    },
    /// Fetch per-endpoint counters and latency histograms; free.
    Stats {
        /// Echoed in the response.
        id: u32,
    },
    /// Ask the daemon to drain in-flight work and exit; free.
    Shutdown {
        /// Echoed in the response.
        id: u32,
    },
}

/// Daemon-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echo of the request id.
        id: u32,
    },
    /// Answer to [`Request::Predict`].
    Value {
        /// Echo of the request id.
        id: u32,
        /// Model epoch the value was scored against.
        epoch: u64,
        /// Reconstructed value, bit-identical to in-process scoring.
        value: f64,
    },
    /// Answer to [`Request::TopK`].
    Hits {
        /// Echo of the request id.
        id: u32,
        /// Model epoch the ranking was computed against.
        epoch: u64,
        /// `(row id, score)` pairs, best first.
        hits: Vec<(Idx, f64)>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Echo of the request id.
        id: u32,
        /// Per-endpoint counters and histograms.
        report: StatsReport,
    },
    /// Typed rejection of any request.
    Error {
        /// Echo of the request id (0 when the request was undecodable).
        id: u32,
        /// Rejection category.
        code: ErrorCode,
        /// For [`ErrorCode::OverLimit`]: suggested client back-off.
        retry_after_ms: u32,
        /// Human-readable detail.
        msg: String,
    },
    /// Answer to [`Request::Shutdown`]; the daemon drains and exits
    /// after sending it.
    ShutdownAck {
        /// Echo of the request id.
        id: u32,
    },
}

/// Decoding failures. Anything here means the peer violated the
/// protocol; the daemon answers with [`ErrorCode::Invalid`] where a
/// request id is recoverable and drops the connection otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Body ended before the message did.
    Truncated,
    /// Body continued past the end of the message.
    Trailing,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A field held an out-of-domain value.
    BadField(&'static str),
    /// Frame length prefix exceeded [`MAX_FRAME`].
    TooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Trailing => write!(f, "trailing bytes after message"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadField(what) => write!(f, "bad field: {what}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for WireError {}

const OP_PING: u8 = 0x01;
const OP_PREDICT: u8 = 0x02;
const OP_TOPK: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_PONG: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_HITS: u8 = 0x83;
const OP_STATS_REPORT: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_SHUTDOWN_ACK: u8 = 0x86;

/// Incremental frame assembly over a byte stream: push whatever the
/// socket produced, pop complete frame bodies.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame body, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(WireError::TooLarge(len));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(body))
    }

    fn compact(&mut self) {
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Sequential little-endian reader over a frame body.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.b.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

/// Append one full frame (length prefix + body) built by `body` to
/// `out`.
fn frame(out: &mut Vec<u8>, body: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]);
    body(out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn put_coords(out: &mut Vec<u8>, coord: &[Idx]) {
    out.push(coord.len() as u8);
    for &c in coord {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

fn get_coords(rd: &mut Rd<'_>) -> Result<Vec<Idx>, WireError> {
    let n = rd.u8()? as usize;
    let mut coord = Vec::with_capacity(n);
    for _ in 0..n {
        coord.push(rd.u32()?);
    }
    Ok(coord)
}

/// Append `req` to `out` as one frame.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    frame(out, |b| match req {
        Request::Ping { id } => {
            b.push(OP_PING);
            b.extend_from_slice(&id.to_le_bytes());
        }
        Request::Predict { id, coord } => {
            b.push(OP_PREDICT);
            b.extend_from_slice(&id.to_le_bytes());
            put_coords(b, coord);
        }
        Request::TopK {
            id,
            tier,
            free_mode,
            k,
            anchor,
        } => {
            b.push(OP_TOPK);
            b.extend_from_slice(&id.to_le_bytes());
            b.push(match tier {
                Tier::Exact => 0,
                Tier::Approx => 1,
            });
            b.push(*free_mode);
            b.extend_from_slice(&k.to_le_bytes());
            put_coords(b, anchor);
        }
        Request::Stats { id } => {
            b.push(OP_STATS);
            b.extend_from_slice(&id.to_le_bytes());
        }
        Request::Shutdown { id } => {
            b.push(OP_SHUTDOWN);
            b.extend_from_slice(&id.to_le_bytes());
        }
    });
}

/// Decode one request body (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut rd = Rd::new(body);
    let op = rd.u8()?;
    let req = match op {
        OP_PING => Request::Ping { id: rd.u32()? },
        OP_PREDICT => Request::Predict {
            id: rd.u32()?,
            coord: get_coords(&mut rd)?,
        },
        OP_TOPK => {
            let id = rd.u32()?;
            let tier = match rd.u8()? {
                0 => Tier::Exact,
                1 => Tier::Approx,
                _ => return Err(WireError::BadField("tier")),
            };
            let free_mode = rd.u8()?;
            let k = rd.u32()?;
            let anchor = get_coords(&mut rd)?;
            Request::TopK {
                id,
                tier,
                free_mode,
                k,
                anchor,
            }
        }
        OP_STATS => Request::Stats { id: rd.u32()? },
        OP_SHUTDOWN => Request::Shutdown { id: rd.u32()? },
        other => return Err(WireError::BadOpcode(other)),
    };
    rd.done()?;
    Ok(req)
}

/// Append `resp` to `out` as one frame.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    frame(out, |b| match resp {
        Response::Pong { id } => {
            b.push(OP_PONG);
            b.extend_from_slice(&id.to_le_bytes());
        }
        Response::Value { id, epoch, value } => {
            b.push(OP_VALUE);
            b.extend_from_slice(&id.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
            b.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        Response::Hits { id, epoch, hits } => {
            b.push(OP_HITS);
            b.extend_from_slice(&id.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
            b.extend_from_slice(&(hits.len() as u32).to_le_bytes());
            for &(row, score) in hits {
                b.extend_from_slice(&row.to_le_bytes());
                b.extend_from_slice(&score.to_bits().to_le_bytes());
            }
        }
        Response::Stats { id, report } => {
            b.push(OP_STATS_REPORT);
            b.extend_from_slice(&id.to_le_bytes());
            b.push(report.endpoints.len() as u8);
            for ep in &report.endpoints {
                b.push(ep.endpoint as u8);
                b.extend_from_slice(&ep.requests.to_le_bytes());
                b.extend_from_slice(&ep.errors.to_le_bytes());
                for &count in &ep.hist {
                    b.extend_from_slice(&count.to_le_bytes());
                }
            }
        }
        Response::Error {
            id,
            code,
            retry_after_ms,
            msg,
        } => {
            b.push(OP_ERROR);
            b.extend_from_slice(&id.to_le_bytes());
            b.push(code.to_u8());
            b.extend_from_slice(&retry_after_ms.to_le_bytes());
            let bytes = msg.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            b.extend_from_slice(&(len as u16).to_le_bytes());
            b.extend_from_slice(&bytes[..len]);
        }
        Response::ShutdownAck { id } => {
            b.push(OP_SHUTDOWN_ACK);
            b.extend_from_slice(&id.to_le_bytes());
        }
    });
}

/// Decode one response body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let mut rd = Rd::new(body);
    let op = rd.u8()?;
    let resp = match op {
        OP_PONG => Response::Pong { id: rd.u32()? },
        OP_VALUE => Response::Value {
            id: rd.u32()?,
            epoch: rd.u64()?,
            value: rd.f64()?,
        },
        OP_HITS => {
            let id = rd.u32()?;
            let epoch = rd.u64()?;
            let n = rd.u32()? as usize;
            let mut hits = Vec::with_capacity(n.min(MAX_FRAME / 12));
            for _ in 0..n {
                hits.push((rd.u32()?, rd.f64()?));
            }
            Response::Hits { id, epoch, hits }
        }
        OP_STATS_REPORT => {
            let id = rd.u32()?;
            let n = rd.u8()? as usize;
            let mut endpoints = Vec::with_capacity(n);
            for _ in 0..n {
                let endpoint = crate::stats::Endpoint::from_u8(rd.u8()?)
                    .ok_or(WireError::BadField("endpoint"))?;
                let requests = rd.u64()?;
                let errors = rd.u64()?;
                let mut hist = [0u64; HIST_BUCKETS];
                for slot in hist.iter_mut() {
                    *slot = rd.u64()?;
                }
                endpoints.push(EndpointStats {
                    endpoint,
                    requests,
                    errors,
                    hist,
                });
            }
            Response::Stats {
                id,
                report: StatsReport { endpoints },
            }
        }
        OP_ERROR => {
            let id = rd.u32()?;
            let code = ErrorCode::from_u8(rd.u8()?)?;
            let retry_after_ms = rd.u32()?;
            let len = rd.u16()? as usize;
            let msg = String::from_utf8_lossy(rd.take(len)?).into_owned();
            Response::Error {
                id,
                code,
                retry_after_ms,
                msg,
            }
        }
        OP_SHUTDOWN_ACK => Response::ShutdownAck { id: rd.u32()? },
        other => return Err(WireError::BadOpcode(other)),
    };
    rd.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Endpoint;

    fn roundtrip_req(req: Request) {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        let mut fb = FrameBuf::new();
        fb.push(&wire);
        let body = fb.next_frame().unwrap().unwrap();
        assert_eq!(decode_request(&body).unwrap(), req);
        assert!(fb.next_frame().unwrap().is_none());
    }

    fn roundtrip_resp(resp: Response) {
        let mut wire = Vec::new();
        encode_response(&resp, &mut wire);
        let mut fb = FrameBuf::new();
        fb.push(&wire);
        let body = fb.next_frame().unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping { id: 7 });
        roundtrip_req(Request::Predict {
            id: 1,
            coord: vec![3, 0, 9],
        });
        roundtrip_req(Request::TopK {
            id: 2,
            tier: Tier::Approx,
            free_mode: 1,
            k: 10,
            anchor: vec![5, 0, 2],
        });
        roundtrip_req(Request::Stats { id: 3 });
        roundtrip_req(Request::Shutdown { id: 4 });
    }

    #[test]
    fn responses_roundtrip_bit_exact() {
        roundtrip_resp(Response::Pong { id: 7 });
        // A value with a busy mantissa survives bit-for-bit.
        roundtrip_resp(Response::Value {
            id: 1,
            epoch: 42,
            value: 0.1 + 0.2,
        });
        roundtrip_resp(Response::Hits {
            id: 2,
            epoch: 3,
            hits: vec![(9, 1.5), (0, -0.25), (4, f64::MIN_POSITIVE)],
        });
        let mut ep = EndpointStats::new(Endpoint::Predict);
        ep.requests = 10;
        ep.errors = 1;
        ep.hist[3] = 9;
        roundtrip_resp(Response::Stats {
            id: 5,
            report: StatsReport {
                endpoints: vec![ep],
            },
        });
        roundtrip_resp(Response::Error {
            id: 6,
            code: ErrorCode::OverLimit,
            retry_after_ms: 12,
            msg: "slow down".into(),
        });
        roundtrip_resp(Response::ShutdownAck { id: 8 });
    }

    #[test]
    fn framebuf_reassembles_split_frames() {
        let mut wire = Vec::new();
        encode_request(&Request::Ping { id: 1 }, &mut wire);
        encode_request(
            &Request::Predict {
                id: 2,
                coord: vec![1, 2],
            },
            &mut wire,
        );
        // Feed one byte at a time: frames pop exactly when complete.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for &b in &wire {
            fb.push(&[b]);
            while let Some(body) = fb.next_frame().unwrap() {
                got.push(decode_request(&body).unwrap());
            }
        }
        assert_eq!(
            got,
            vec![
                Request::Ping { id: 1 },
                Request::Predict {
                    id: 2,
                    coord: vec![1, 2]
                }
            ]
        );
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Oversized length prefix.
        let mut fb = FrameBuf::new();
        fb.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::TooLarge(_))));
        // Unknown opcode.
        assert_eq!(decode_request(&[0x7f]), Err(WireError::BadOpcode(0x7f)));
        // Truncated body.
        assert_eq!(
            decode_request(&[OP_PREDICT, 1, 0]),
            Err(WireError::Truncated)
        );
        // Trailing bytes.
        assert_eq!(
            decode_request(&[OP_PING, 1, 0, 0, 0, 9]),
            Err(WireError::Trailing)
        );
        // Bad tier.
        let mut body = vec![OP_TOPK];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(9);
        assert_eq!(decode_request(&body), Err(WireError::BadField("tier")));
    }
}
