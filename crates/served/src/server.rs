//! The `aoadmm serve` daemon: a nonblocking TCP front-end over a
//! sharded registry.
//!
//! ## Thread layout
//!
//! One **I/O thread** owns the listener and every connection. It runs
//! a nonblocking poll loop — accept, read, frame-decode, admission
//! check, dispatch, write — with a short idle sleep; no async runtime,
//! just `std::net` sockets in nonblocking mode. Scoring never happens
//! on the I/O thread:
//!
//! * **Predict** requests go to the *deadline batcher*: the first
//!   request of a batch is the leader and arms the SLO deadline;
//!   followers ride along until the batch fills
//!   ([`DaemonConfig::batch_max`]) or the deadline expires
//!   ([`DaemonConfig::batch_deadline`]), whichever comes first — the
//!   wire-level analog of the in-process leader/follower micro-batcher.
//!   A flush scores the whole batch through the panel kernels.
//! * **Top-K** requests go to a small worker pool over an MPSC queue.
//!
//! ## Epoch coherence
//!
//! The I/O thread pins one [`ShardSet`] snapshot per request *at
//! decode time* and attaches it to the dispatched work, and responses
//! on a connection are released strictly in request order (out-of-order
//! completions park until their turn). Snapshots taken later in the
//! single decode stream never have a smaller epoch, so the epoch
//! sequence a client observes on one connection is monotone — across
//! hot swaps, batching, and worker reordering. A swap mid-batch is
//! also harmless: each request scores against its own pinned set, so a
//! flush spanning a swap splits into per-epoch runs instead of mixing
//! factors.
//!
//! ## Shutdown
//!
//! A wire `Shutdown` (or [`Daemon::shutdown`]) stops accepts and
//! reads, then drains: every dispatched request completes, every
//! response is written, and only then do the threads exit. In-flight
//! work is never dropped.

use crate::admission::TokenBucket;
use crate::stats::{Endpoint, StatsRegistry, StatsReport};
use crate::wire::{self, ErrorCode, FrameBuf, Request, Response, Tier};
use aoadmm_serve::{ApproxPolicy, ServeError, ShardSet, ShardedEngine, ShardedRegistry, TopKQuery};
use sptensor::Idx;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon needs to bind and serve.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (read it
    /// back from [`Daemon::local_addr`]).
    pub addr: String,
    /// Mode whose rows partition the registry (the "user" mode).
    pub split_mode: usize,
    /// Number of shards per published epoch.
    pub nshards: usize,
    /// Top-K worker threads.
    pub workers: usize,
    /// Flush a predict batch at this many requests even before the
    /// deadline.
    pub batch_max: usize,
    /// SLO deadline: a predict waits at most this long for followers
    /// before its batch flushes.
    pub batch_deadline: Duration,
    /// Token-bucket refill rate per connection, tokens/second;
    /// `f64::INFINITY` disables admission control.
    pub rate: f64,
    /// Token-bucket capacity (burst size) per connection.
    pub burst: f64,
    /// Approximate-tier policy served for `Tier::Approx` queries.
    pub approx: ApproxPolicy,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            split_mode: 0,
            nshards: 1,
            workers: 2,
            batch_max: 64,
            batch_deadline: Duration::from_micros(500),
            rate: f64::INFINITY,
            burst: 64.0,
            approx: ApproxPolicy::default(),
        }
    }
}

/// One top-K unit of work for the pool.
struct TopKWork {
    conn: u64,
    seq: u64,
    id: u32,
    tier: Tier,
    q: TopKQuery,
    set: Arc<ShardSet>,
    t0: Instant,
}

/// One completed response heading back to the I/O thread.
struct Done {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// One predict waiting in the deadline batcher.
struct PendingPredict {
    conn: u64,
    seq: u64,
    id: u32,
    coord: Vec<Idx>,
    set: Arc<ShardSet>,
    t0: Instant,
}

struct BatchState {
    pending: Vec<PendingPredict>,
    /// Arrival of the current leader (first pending request).
    leader_at: Option<Instant>,
    closed: bool,
}

/// SLO-aware predict batcher: leader arms the deadline, followers ride.
struct Batcher {
    state: Mutex<BatchState>,
    cv: Condvar,
}

impl Batcher {
    fn new() -> Self {
        Batcher {
            state: Mutex::new(BatchState {
                pending: Vec::new(),
                leader_at: None,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, item: PendingPredict, batch_max: usize) {
        let mut st = self.state.lock().expect("batcher lock");
        if st.pending.is_empty() {
            st.leader_at = Some(item.t0);
        }
        st.pending.push(item);
        if st.pending.len() == 1 || st.pending.len() >= batch_max {
            self.cv.notify_one();
        }
    }

    fn close(&self) {
        self.state.lock().expect("batcher lock").closed = true;
        self.cv.notify_all();
    }

    /// Block until a batch is due (full, past deadline, or draining on
    /// close); `None` means closed and fully drained.
    fn next_batch(&self, batch_max: usize, deadline: Duration) -> Option<Vec<PendingPredict>> {
        let mut st = self.state.lock().expect("batcher lock");
        loop {
            if st.pending.len() >= batch_max {
                break;
            }
            if let Some(leader) = st.leader_at {
                let due = leader + deadline;
                let now = Instant::now();
                if now >= due || st.closed {
                    break;
                }
                let (s, _) = self.cv.wait_timeout(st, due - now).expect("batcher wait");
                st = s;
            } else if st.closed {
                return None;
            } else {
                let (s, _) = self
                    .cv
                    .wait_timeout(st, Duration::from_millis(5))
                    .expect("batcher wait");
                st = s;
            }
        }
        st.leader_at = None;
        Some(std::mem::take(&mut st.pending))
    }
}

fn error_response(id: u32, e: &ServeError) -> Response {
    let code = match e {
        ServeError::Invalid(_) => ErrorCode::Invalid,
        ServeError::Empty => ErrorCode::Empty,
        ServeError::Linalg(_) => ErrorCode::Internal,
    };
    Response::Error {
        id,
        code,
        retry_after_ms: 0,
        msg: e.to_string(),
    }
}

fn encode(resp: &Response) -> Vec<u8> {
    let mut bytes = Vec::new();
    wire::encode_response(resp, &mut bytes);
    bytes
}

/// One live connection, owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    fb: FrameBuf,
    wq: VecDeque<Vec<u8>>,
    /// Bytes of `wq.front()` already written.
    woff: usize,
    bucket: TokenBucket,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number allowed to enter the write queue.
    next_release: u64,
    /// Out-of-order completions waiting for their turn.
    parked: BTreeMap<u64, Vec<u8>>,
    dead: bool,
}

impl Conn {
    fn release(&mut self, seq: u64, bytes: Vec<u8>) {
        if seq != self.next_release {
            self.parked.insert(seq, bytes);
            return;
        }
        self.wq.push_back(bytes);
        self.next_release += 1;
        while let Some(next) = self.parked.remove(&self.next_release) {
            self.wq.push_back(next);
            self.next_release += 1;
        }
    }
}

struct IoState {
    cfg: DaemonConfig,
    listener: TcpListener,
    registry: Arc<ShardedRegistry>,
    stats: Arc<StatsRegistry>,
    batcher: Arc<Batcher>,
    work_tx: Sender<TopKWork>,
    resp_rx: Receiver<Done>,
    shutdown: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Requests dispatched to the batcher or pool whose responses have
    /// not yet come back. Only the I/O thread touches it.
    in_flight: u64,
    draining: bool,
}

impl IoState {
    fn run(mut self) {
        loop {
            let mut busy = false;
            if self.shutdown.load(Ordering::Relaxed) {
                self.draining = true;
            }
            if !self.draining {
                busy |= self.accept_new();
                busy |= self.read_all();
            }
            busy |= self.collect_done();
            busy |= self.flush_writes();
            self.reap_dead();
            if self.draining && self.in_flight == 0 && self.writes_drained() {
                break;
            }
            if !busy {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        // Final best-effort flush already happened (writes_drained);
        // close the scoring side so workers and the batcher exit.
        self.batcher.close();
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            fb: FrameBuf::new(),
                            wq: VecDeque::new(),
                            woff: 0,
                            bucket: TokenBucket::new(self.cfg.rate, self.cfg.burst, Instant::now()),
                            next_seq: 0,
                            next_release: 0,
                            parked: BTreeMap::new(),
                            dead: false,
                        },
                    );
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    fn read_all(&mut self) -> bool {
        let mut any = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut conn = self.conns.remove(&id).expect("conn present");
            if !conn.dead {
                any |= self.read_conn(id, &mut conn);
            }
            self.conns.insert(id, conn);
        }
        any
    }

    fn read_conn(&mut self, conn_id: u64, conn: &mut Conn) -> bool {
        let mut buf = [0u8; 16 * 1024];
        let mut any = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    any = true;
                    conn.fb.push(&buf[..n]);
                    loop {
                        match conn.fb.next_frame() {
                            Ok(Some(body)) => self.handle_frame(conn_id, conn, &body),
                            Ok(None) => break,
                            Err(e) => {
                                // Framing is unrecoverable: answer once,
                                // then drop the connection.
                                let seq = conn.next_seq;
                                conn.next_seq += 1;
                                conn.release(
                                    seq,
                                    encode(&Response::Error {
                                        id: 0,
                                        code: ErrorCode::Invalid,
                                        retry_after_ms: 0,
                                        msg: e.to_string(),
                                    }),
                                );
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                    if conn.dead || self.draining {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        any
    }

    fn handle_frame(&mut self, conn_id: u64, conn: &mut Conn, body: &[u8]) {
        let t0 = Instant::now();
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let req = match wire::decode_request(body) {
            Ok(req) => req,
            Err(e) => {
                conn.release(
                    seq,
                    encode(&Response::Error {
                        id: 0,
                        code: ErrorCode::Invalid,
                        retry_after_ms: 0,
                        msg: e.to_string(),
                    }),
                );
                return;
            }
        };
        match req {
            Request::Ping { id } => {
                conn.release(seq, encode(&Response::Pong { id }));
                self.stats
                    .record(Endpoint::Ping, t0.elapsed().as_nanos() as u64, false);
            }
            Request::Stats { id } => {
                let report = self.stats.report();
                conn.release(seq, encode(&Response::Stats { id, report }));
                self.stats
                    .record(Endpoint::Stats, t0.elapsed().as_nanos() as u64, false);
            }
            Request::Shutdown { id } => {
                conn.release(seq, encode(&Response::ShutdownAck { id }));
                self.draining = true;
            }
            Request::Predict { id, coord } => {
                if let Err(resp) = self.admit(conn, Endpoint::Predict, id, t0) {
                    conn.release(seq, resp);
                    return;
                }
                match self.registry.snapshot() {
                    None => {
                        conn.release(seq, encode(&error_response(id, &ServeError::Empty)));
                        self.stats
                            .record(Endpoint::Predict, t0.elapsed().as_nanos() as u64, true);
                    }
                    Some(set) => {
                        self.in_flight += 1;
                        self.batcher.push(
                            PendingPredict {
                                conn: conn_id,
                                seq,
                                id,
                                coord,
                                set,
                                t0,
                            },
                            self.cfg.batch_max,
                        );
                    }
                }
            }
            Request::TopK {
                id,
                tier,
                free_mode,
                k,
                anchor,
            } => {
                let endpoint = match tier {
                    Tier::Exact => Endpoint::TopKExact,
                    Tier::Approx => Endpoint::TopKApprox,
                };
                if let Err(resp) = self.admit(conn, endpoint, id, t0) {
                    conn.release(seq, resp);
                    return;
                }
                match self.registry.snapshot() {
                    None => {
                        conn.release(seq, encode(&error_response(id, &ServeError::Empty)));
                        self.stats
                            .record(endpoint, t0.elapsed().as_nanos() as u64, true);
                    }
                    Some(set) => {
                        self.in_flight += 1;
                        let work = TopKWork {
                            conn: conn_id,
                            seq,
                            id,
                            tier,
                            q: TopKQuery {
                                free_mode: free_mode as usize,
                                anchor,
                                k: k as usize,
                            },
                            set,
                            t0,
                        };
                        // Workers only exit after this sender is gone.
                        self.work_tx.send(work).expect("worker pool alive");
                    }
                }
            }
        }
    }

    /// Admission-check one scoring request; `Err` carries the encoded
    /// over-limit response.
    fn admit(
        &self,
        conn: &mut Conn,
        endpoint: Endpoint,
        id: u32,
        t0: Instant,
    ) -> Result<(), Vec<u8>> {
        match conn.bucket.admit(t0) {
            Ok(()) => Ok(()),
            Err(retry) => {
                self.stats
                    .record(endpoint, t0.elapsed().as_nanos() as u64, true);
                Err(encode(&Response::Error {
                    id,
                    code: ErrorCode::OverLimit,
                    retry_after_ms: retry.as_millis().min(u32::MAX as u128) as u32 + 1,
                    msg: "token bucket empty".into(),
                }))
            }
        }
    }

    fn collect_done(&mut self) -> bool {
        let mut any = false;
        while let Ok(done) = self.resp_rx.try_recv() {
            any = true;
            self.in_flight -= 1;
            if let Some(conn) = self.conns.get_mut(&done.conn) {
                conn.release(done.seq, done.bytes);
            }
        }
        any
    }

    fn flush_writes(&mut self) -> bool {
        let mut any = false;
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            while let Some(front) = conn.wq.front() {
                match conn.stream.write(&front[conn.woff..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        conn.woff += n;
                        if conn.woff == front.len() {
                            conn.wq.pop_front();
                            conn.woff = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        any
    }

    fn reap_dead(&mut self) {
        self.conns.retain(|_, c| !c.dead);
    }

    /// True when every live connection's queue (and parked set, which
    /// only matters while requests are in flight) is empty.
    fn writes_drained(&self) -> bool {
        self.conns
            .values()
            .all(|c| c.dead || (c.wq.is_empty() && c.parked.is_empty()))
    }
}

fn worker_loop(
    rx: Arc<Mutex<Receiver<TopKWork>>>,
    resp_tx: Sender<Done>,
    engine: Arc<ShardedEngine>,
    policy: ApproxPolicy,
    stats: Arc<StatsRegistry>,
) {
    let mut hits: Vec<(Idx, f64)> = Vec::new();
    loop {
        let work = match rx.lock().expect("pool lock").recv() {
            Ok(w) => w,
            Err(_) => return,
        };
        let res = match work.tier {
            Tier::Exact => engine.topk_on(&work.set, &work.q, true, &mut hits),
            Tier::Approx => engine.topk_approx_on(&work.set, &work.q, policy, &mut hits),
        };
        let (endpoint, is_err) = match work.tier {
            Tier::Exact => (Endpoint::TopKExact, res.is_err()),
            Tier::Approx => (Endpoint::TopKApprox, res.is_err()),
        };
        let resp = match res {
            Ok(()) => Response::Hits {
                id: work.id,
                epoch: work.set.epoch(),
                hits: hits.clone(),
            },
            Err(e) => error_response(work.id, &e),
        };
        stats.record(endpoint, work.t0.elapsed().as_nanos() as u64, is_err);
        let _ = resp_tx.send(Done {
            conn: work.conn,
            seq: work.seq,
            bytes: encode(&resp),
        });
    }
}

fn batcher_loop(
    batcher: Arc<Batcher>,
    resp_tx: Sender<Done>,
    engine: Arc<ShardedEngine>,
    stats: Arc<StatsRegistry>,
    batch_max: usize,
    deadline: Duration,
) {
    let mut coords: Vec<Vec<Idx>> = Vec::new();
    let mut results: Vec<Result<f64, ServeError>> = Vec::new();
    while let Some(mut batch) = batcher.next_batch(batch_max, deadline) {
        // A flush spanning a hot swap splits into per-epoch runs; each
        // request scores against the set pinned at its decode.
        let mut lo = 0;
        while lo < batch.len() {
            let mut hi = lo + 1;
            while hi < batch.len() && Arc::ptr_eq(&batch[hi].set, &batch[lo].set) {
                hi += 1;
            }
            coords.clear();
            coords.extend(
                batch[lo..hi]
                    .iter_mut()
                    .map(|p| std::mem::take(&mut p.coord)),
            );
            let run_set = batch[lo].set.clone();
            let epoch = run_set.epoch();
            if let Err(e) = engine.predict_batch_on(&run_set, &coords, &mut results) {
                // Kernel-level failure (programming error): every item
                // in the run gets the same typed internal error.
                results.clear();
                results.resize_with(coords.len(), || {
                    Err(ServeError::Invalid(format!("internal: {e}")))
                });
            }
            for (item, res) in batch[lo..hi].iter().zip(results.drain(..)) {
                let (resp, is_err) = match res {
                    Ok(value) => (
                        Response::Value {
                            id: item.id,
                            epoch,
                            value,
                        },
                        false,
                    ),
                    Err(e) => (error_response(item.id, &e), true),
                };
                stats.record(
                    Endpoint::Predict,
                    item.t0.elapsed().as_nanos() as u64,
                    is_err,
                );
                let _ = resp_tx.send(Done {
                    conn: item.conn,
                    seq: item.seq,
                    bytes: encode(&resp),
                });
            }
            lo = hi;
        }
    }
}

/// A running daemon: bound socket, I/O thread, worker pool, batcher.
///
/// Publish models through [`Daemon::registry`] (it implements
/// `ModelSink`, so a streaming refit loop can republish directly into
/// the sharded registry). Drop or [`Daemon::shutdown`] drains and
/// joins every thread.
pub struct Daemon {
    addr: SocketAddr,
    registry: Arc<ShardedRegistry>,
    stats: Arc<StatsRegistry>,
    shutdown: Arc<AtomicBool>,
    batcher: Arc<Batcher>,
    io: Option<JoinHandle<()>>,
    scorers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Bind `cfg.addr` and start serving. The registry starts empty;
    /// queries answer `Empty` until the first publish.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(ShardedRegistry::new(cfg.split_mode, cfg.nshards));
        let engine = Arc::new(ShardedEngine::new(registry.clone()).approx_policy(cfg.approx));
        let stats = Arc::new(StatsRegistry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let batcher = Arc::new(Batcher::new());
        let (work_tx, work_rx) = channel::<TopKWork>();
        let (resp_tx, resp_rx) = channel::<Done>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let mut scorers = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let rx = work_rx.clone();
            let tx = resp_tx.clone();
            let eng = engine.clone();
            let st = stats.clone();
            let policy = cfg.approx;
            scorers.push(
                std::thread::Builder::new()
                    .name(format!("serve-topk-{i}"))
                    .spawn(move || worker_loop(rx, tx, eng, policy, st))
                    .expect("spawn worker"),
            );
        }
        {
            let b = batcher.clone();
            let tx = resp_tx;
            let eng = engine;
            let st = stats.clone();
            let (bmax, bdl) = (cfg.batch_max.max(1), cfg.batch_deadline);
            scorers.push(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || batcher_loop(b, tx, eng, st, bmax, bdl))
                    .expect("spawn batcher"),
            );
        }
        let io_state = IoState {
            cfg,
            listener,
            registry: registry.clone(),
            stats: stats.clone(),
            batcher: batcher.clone(),
            work_tx,
            resp_rx,
            shutdown: shutdown.clone(),
            conns: HashMap::new(),
            next_conn: 0,
            in_flight: 0,
            draining: false,
        };
        let io = std::thread::Builder::new()
            .name("serve-io".into())
            .spawn(move || io_state.run())
            .expect("spawn io");

        Ok(Daemon {
            addr,
            registry,
            stats,
            shutdown,
            batcher,
            io: Some(io),
            scorers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The sharded registry queries read from. Publish here (it is a
    /// `ModelSink`) to hot-swap the served model.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// In-process view of the same counters the stats RPC reports.
    pub fn stats_report(&self) -> StatsReport {
        self.stats.report()
    }

    /// Block until the daemon exits (a wire `Shutdown` arrived or
    /// [`Daemon::shutdown`] was called from another handle), then join
    /// every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Signal shutdown, drain in-flight work, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
        // The I/O thread closed the batcher and dropped the work
        // sender on exit; scorers drain and return.
        self.batcher.close();
        for h in self.scorers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join_all();
    }
}
