//! The blocked Condat–Vu primal-dual sweep.
//!
//! [`pds_update_ws`] plays the role [`admm::admm_update_ws`] plays for
//! ADMM: one full inner solve of a factor matrix against the cached
//! Gram matrix `G` and MTTKRP output `K`, updating the primal factor
//! and the per-row dual iterates in place. Rows are swept in
//! independent blocks (per-block convergence, rayon work stealing over
//! disjoint row ranges, frozen sequential stats merge — the
//! bit-determinism discipline of the blocked ADMM).

use crate::config::PdsConfig;
use crate::conj::ConjugateProx;
use crate::constraint::PdsConstraint;
use crate::linop::LinOp;
use crate::workspace::{PdsBlockScratch, PdsWorkspace};
use admm::Prox;
use rayon::prelude::*;
use splinalg::{vecops, DMat, LinalgError};

/// Outcome of one block's PDS run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PdsBlockOutcome {
    /// Inner iterations executed.
    pub iterations: usize,
    /// Final squared relative primal step change.
    pub primal: f64,
    /// Final squared relative dual step change (0 without a composite
    /// term).
    pub dual: f64,
    /// Whether both step changes fell below tolerance.
    pub converged: bool,
}

/// Aggregate statistics of a PDS update over a whole factor matrix,
/// shaped like [`admm::AdmmStats`] so the driver records both backends
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdsStats {
    /// Inner iterations: maximum over blocks (the wall-clock-determining
    /// block).
    pub iterations: usize,
    /// Sum over rows of the iterations applied to that row.
    pub row_iterations: u64,
    /// Number of blocks that reached tolerance.
    pub blocks_converged: usize,
    /// Total number of blocks.
    pub blocks: usize,
    /// Worst final squared relative primal step change.
    pub primal: f64,
    /// Worst final squared relative dual step change.
    pub dual: f64,
}

impl PdsStats {
    /// Whether every block converged.
    pub fn converged(&self) -> bool {
        self.blocks_converged == self.blocks
    }
}

/// Relative squared residual with a zero-denominator guard (an exactly
/// zero numerator is converged regardless of the denominator) — same
/// semantics as the ADMM residual measure.
#[inline]
fn relative(num: f64, den: f64) -> f64 {
    if num == 0.0 {
        0.0
    } else if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Primal and dual step sizes from the Gram bound.
///
/// `beta` is the Gershgorin bound `max_i sum_j |G_ij|` on
/// `lambda_max(G)` — for a symmetric PSD Gram this dominates the
/// spectral radius, so the gradient of the quadratic is `beta`-Lipschitz.
/// With a composite term the dual step balances the condition
/// `1/g1 - g2 mu^2 >= beta/2` at `g2 = beta/(2 mu^2)`, leaving
/// `g1 <= 1/beta`; without one, plain forward-backward allows
/// `g1 < 2/beta`.
fn step_sizes(gram: &DMat, mu_sq: Option<f64>, step_scale: f64) -> (f64, f64) {
    let f = gram.nrows();
    let mut beta = 0.0f64;
    for i in 0..f {
        let row_sum: f64 = gram.row(i).iter().map(|x| x.abs()).sum();
        beta = beta.max(row_sum);
    }
    if !beta.is_finite() || beta <= 1e-12 {
        beta = 1.0;
    }
    match mu_sq {
        Some(mu_sq) => (step_scale / beta, beta / (2.0 * mu_sq.max(1e-12))),
        None => (step_scale * 2.0 / beta, 0.0),
    }
}

/// Run PDS to convergence on a contiguous block of rows.
///
/// `k`, `x` are the block's rows of the MTTKRP output and primal factor
/// (flat, row-major, `nrows * f`); `y` is the block's dual rows
/// (`nrows * p`, empty when there is no composite term). Per inner
/// iteration each row performs: gradient of the quadratic from the
/// shared Gram, a forward-backward primal step through the row prox,
/// and (composite only) the reflected dual ascent step through the
/// conjugate prox. Residual partials accumulate in ascending row order,
/// so the sweep is bit-deterministic for a fixed block partition.
#[allow(clippy::too_many_arguments)]
fn run_block_pds(
    gram: &DMat,
    gamma1: f64,
    gamma2: f64,
    k: &[f64],
    x: &mut [f64],
    y: &mut [f64],
    f: usize,
    p: usize,
    prox: &dyn Prox,
    dual_term: Option<(&dyn LinOp, &dyn ConjugateProx)>,
    tol: f64,
    max_inner: usize,
    scratch: &mut PdsBlockScratch,
) -> PdsBlockOutcome {
    debug_assert_eq!(k.len(), x.len());
    let nrows = k.len() / f.max(1);
    scratch.ensure(f, p);
    let PdsBlockScratch {
        xprev,
        grad,
        reflect,
        lbuf,
        yprev,
        ..
    } = scratch;
    let xprev = &mut xprev[..f];
    let grad = &mut grad[..f];
    let reflect = &mut reflect[..f];
    let lbuf = &mut lbuf[..p];
    let yprev = &mut yprev[..p];
    let rho = 1.0 / gamma1; // prox_{g1 g} == Prox::apply_row(.., 1/g1)

    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_inner {
        iterations += 1;
        let mut dx = 0.0; // ||X+ - X||^2
        let mut x_sq = 0.0; // ||X+||^2
        let mut dy = 0.0; // ||Y+ - Y||^2
        let mut y_sq = 0.0; // ||Y+||^2

        for r in 0..nrows {
            let xr = &mut x[r * f..(r + 1) * f];

            // grad = G x - k (+ L^T y). The Gram is symmetric, so the
            // j-th entry is a dot with G's j-th row — contiguous reads.
            let kr = &k[r * f..(r + 1) * f];
            for j in 0..f {
                grad[j] = vecops::dot(xr, gram.row(j)) - kr[j];
            }
            if let Some((linop, _)) = dual_term {
                let yr = &y[r * p..(r + 1) * p];
                linop.apply_transpose_acc(yr, grad);
            }

            // Forward-backward primal step through the row prox.
            xprev.copy_from_slice(xr);
            for j in 0..f {
                xr[j] -= gamma1 * grad[j];
            }
            prox.apply_row(xr, rho);
            dx += vecops::dist_sq(xr, xprev);
            x_sq += vecops::norm_sq(xr);

            // Reflected dual ascent through the conjugate prox.
            if let Some((linop, conj)) = dual_term {
                let yr = &mut y[r * p..(r + 1) * p];
                for j in 0..f {
                    reflect[j] = 2.0 * xr[j] - xprev[j];
                }
                linop.apply(reflect, lbuf);
                yprev.copy_from_slice(yr);
                for (yv, lv) in yr.iter_mut().zip(lbuf.iter()) {
                    *yv += gamma2 * *lv;
                }
                conj.apply_row(yr, gamma2);
                dy += vecops::dist_sq(yr, yprev);
                y_sq += vecops::norm_sq(yr);
            }
        }

        primal = relative(dx, x_sq);
        // An inactive composite term keeps the dual exactly still; fall
        // back to the primal denominator so a zero dual trajectory is
        // detected as converged (same guard as the ADMM dual residual).
        dual = if dual_term.is_some() {
            relative(dy, if y_sq > 0.0 { y_sq } else { x_sq })
        } else {
            0.0
        };
        if primal <= tol && dual <= tol {
            return PdsBlockOutcome {
                iterations,
                primal,
                dual,
                converged: true,
            };
        }
    }
    PdsBlockOutcome {
        iterations,
        primal,
        dual,
        converged: false,
    }
}

/// One full PDS update of a factor matrix, with caller-owned scratch:
/// zero heap allocation once the workspace is warm.
///
/// * `gram` — the combined Gram matrix `G` of the other modes.
/// * `k` — the MTTKRP output for this mode.
/// * `x` — primal factor, updated in place (also the warm-start input).
/// * `y` — dual iterates, one row of width [`PdsConstraint::dual_dim`]
///   per factor row, updated in place. Ignored (and unvalidated) when
///   the constraint has no composite term, so the driver can keep its
///   uniform factor-shaped dual carrier for prox-only runs.
pub fn pds_update_ws(
    gram: &DMat,
    k: &DMat,
    x: &mut DMat,
    y: &mut DMat,
    constraint: &PdsConstraint,
    cfg: &PdsConfig,
    ws: &mut PdsWorkspace,
) -> Result<PdsStats, LinalgError> {
    let f = gram.nrows();
    if gram.ncols() != f || k.ncols() != f || x.ncols() != f {
        return Err(LinalgError::DimMismatch {
            op: "pds_update",
            lhs: (f, f),
            rhs: (k.nrows(), k.ncols()),
        });
    }
    if k.nrows() != x.nrows() {
        return Err(LinalgError::DimMismatch {
            op: "pds_update rows",
            lhs: (x.nrows(), f),
            rhs: (k.nrows(), f),
        });
    }
    let p = constraint.dual_dim(f);
    let dual_active = p > 0;
    if dual_active && (y.nrows() != x.nrows() || y.ncols() != p) {
        return Err(LinalgError::DimMismatch {
            op: "pds_update duals",
            lhs: (x.nrows(), p),
            rhs: (y.nrows(), y.ncols()),
        });
    }

    let nrows = k.nrows();
    let mut stats = PdsStats {
        iterations: 0,
        row_iterations: 0,
        blocks_converged: 0,
        blocks: 0,
        primal: 0.0,
        dual: 0.0,
    };
    if nrows == 0 || f == 0 {
        return Ok(stats);
    }

    let dual_term: Option<(&dyn LinOp, &dyn ConjugateProx)> = if dual_active {
        constraint.dual_term().map(|(l, c)| (&**l, &**c))
    } else {
        None
    };
    let (gamma1, gamma2) = step_sizes(
        gram,
        dual_term.map(|(l, _)| l.norm_sq_bound()),
        cfg.step_scale,
    );

    let bs = cfg.block_size.max(1);
    let chunk_x = bs.saturating_mul(f);
    let chunk_y = bs.saturating_mul(p);
    let nblocks = x.as_slice().len().div_ceil(chunk_x);

    // Grow the per-block scratch pool outside the parallel region (no-op
    // once warm), so the row sweep itself never allocates.
    if ws.blocks.len() < nblocks {
        ws.blocks.resize_with(nblocks, PdsBlockScratch::default);
    }
    let scratch = &mut ws.blocks[..nblocks];
    for b in scratch.iter_mut() {
        b.ensure(f, p);
    }
    let prox = &**constraint.prox();

    // Each rayon job owns disjoint row blocks of X (and Y), the matching
    // block of K, and its entry of the scratch pool. Two zip shapes:
    // with an active composite term the dual matrix is chunked in
    // lockstep; without one Y is never touched.
    if dual_active {
        x.as_mut_slice()
            .par_chunks_mut(chunk_x)
            .zip(y.as_mut_slice().par_chunks_mut(chunk_y))
            .zip(k.as_slice().par_chunks(chunk_x))
            .zip(scratch.par_iter_mut())
            .for_each(|(((xb, yb), kb), sc)| {
                sc.rows = kb.len() / f;
                sc.outcome = run_block_pds(
                    gram,
                    gamma1,
                    gamma2,
                    kb,
                    xb,
                    yb,
                    f,
                    p,
                    prox,
                    dual_term,
                    cfg.tol,
                    cfg.max_inner,
                    sc,
                );
            });
    } else {
        x.as_mut_slice()
            .par_chunks_mut(chunk_x)
            .zip(k.as_slice().par_chunks(chunk_x))
            .zip(scratch.par_iter_mut())
            .for_each(|((xb, kb), sc)| {
                sc.rows = kb.len() / f;
                let mut empty: [f64; 0] = [];
                sc.outcome = run_block_pds(
                    gram,
                    gamma1,
                    gamma2,
                    kb,
                    xb,
                    &mut empty,
                    f,
                    0,
                    prox,
                    None,
                    cfg.tol,
                    cfg.max_inner,
                    sc,
                );
            });
    }

    // Frozen sequential merge in block order (bit-deterministic across
    // thread pools).
    stats.blocks = nblocks;
    for sc in ws.blocks[..nblocks].iter() {
        let o = &sc.outcome;
        stats.iterations = stats.iterations.max(o.iterations);
        stats.row_iterations += (o.iterations * sc.rows) as u64;
        if o.converged {
            stats.blocks_converged += 1;
        }
        stats.primal = stats.primal.max(o.primal);
        stats.dual = stats.dual.max(o.dual);
    }
    Ok(stats)
}

/// [`pds_update_ws`] with internally allocated scratch, for one-off
/// callers and tests; hot loops should hold a [`PdsWorkspace`].
pub fn pds_update(
    gram: &DMat,
    k: &DMat,
    x: &mut DMat,
    y: &mut DMat,
    constraint: &PdsConstraint,
    cfg: &PdsConfig,
) -> Result<PdsStats, LinalgError> {
    let mut ws = PdsWorkspace::new();
    pds_update_ws(gram, k, x, y, constraint, cfg, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::pds_constraints;
    use admm::constraints;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splinalg::Cholesky;

    /// K = target * G so the unconstrained minimizer of the quadratic is
    /// exactly `target` (same construction as the ADMM solver tests).
    fn setup(n: usize, f: usize, seed: u64) -> (DMat, DMat, DMat) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = DMat::random(3 * f, f, 0.0, 1.0, &mut rng);
        let gram = w.gram();
        let target = DMat::random(n, f, 0.0, 1.0, &mut rng);
        let k = target.matmul(&gram).unwrap();
        (gram, k, target)
    }

    fn tight() -> PdsConfig {
        PdsConfig {
            tol: 1e-14,
            max_inner: 20_000,
            ..PdsConfig::default()
        }
    }

    #[test]
    fn unconstrained_pds_reaches_least_squares_solution() {
        let (gram, k, target) = setup(40, 4, 1);
        let mut x = DMat::zeros(40, 4);
        let mut y = DMat::zeros(40, 4);
        let c = pds_constraints::from_prox(constraints::unconstrained());
        let stats = pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
        assert!(stats.converged(), "{stats:?}");
        assert!(
            x.max_abs_diff(&target) < 1e-4,
            "max diff {}",
            x.max_abs_diff(&target)
        );
    }

    #[test]
    fn nonneg_pds_matches_admm_fixed_point() {
        let (gram, mut k, _) = setup(30, 5, 2);
        for v in k.as_mut_slice().iter_mut().step_by(3) {
            *v = -*v; // push part of the optimum infeasible
        }
        let mut xp = DMat::zeros(30, 5);
        let mut yp = DMat::zeros(30, 5);
        let c = pds_constraints::from_prox(constraints::nonneg());
        pds_update(&gram, &k, &mut xp, &mut yp, &c, &tight()).unwrap();

        let mut ha = DMat::zeros(30, 5);
        let mut ua = DMat::zeros(30, 5);
        let acfg = admm::AdmmConfig {
            tol: 1e-14,
            max_inner: 20_000,
            ..admm::AdmmConfig::default()
        };
        admm::admm_update(&gram, &k, &mut ha, &mut ua, &*constraints::nonneg(), &acfg).unwrap();

        assert!(
            xp.max_abs_diff(&ha) < 1e-4,
            "PDS vs ADMM diff {}",
            xp.max_abs_diff(&ha)
        );
        assert!(xp.as_slice().iter().all(|&v| v >= 0.0));
    }

    /// TV-constrained solve: the KKT condition of
    /// min 1/2 x^T G x - k x + lambda ||D x||_1 is checked via the dual:
    /// at the solution, G x - k + D^T y = 0 with y in [-lambda, lambda].
    #[test]
    fn tv_solution_satisfies_stationarity() {
        let (gram, k, _) = setup(20, 6, 3);
        let mut x = DMat::zeros(20, 6);
        let mut y = DMat::zeros(20, 5);
        let c = pds_constraints::tv(0.4);
        let stats = pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
        assert!(stats.converged(), "{stats:?}");
        for r in 0..20 {
            let xr = x.row(r);
            let yr = y.row(r);
            assert!(yr.iter().all(|&v| v.abs() <= 0.4 + 1e-9), "dual infeasible");
            let mut resid = vec![0.0; 6];
            for (j, rj) in resid.iter_mut().enumerate() {
                *rj = vecops::dot(xr, gram.row(j)) - k.get(r, j);
            }
            crate::FirstDifference.apply_transpose_acc(yr, &mut resid);
            let norm = resid.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm < 1e-4, "row {r} stationarity residual {norm}");
        }
    }

    /// Heavier TV weight means flatter rows (smaller total variation).
    #[test]
    fn tv_weight_flattens_rows() {
        let (gram, k, _) = setup(25, 8, 4);
        let run = |lambda: f64| {
            let mut x = DMat::zeros(25, 8);
            let mut y = DMat::zeros(25, 7);
            let c = pds_constraints::tv(lambda);
            pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
            let mut tv = 0.0;
            for r in 0..25 {
                let row = x.row(r);
                for j in 1..8 {
                    tv += (row[j] - row[j - 1]).abs();
                }
            }
            tv
        };
        let loose = run(0.01);
        let tight_tv = run(1.0);
        assert!(
            tight_tv < loose * 0.5,
            "TV {tight_tv} not much flatter than {loose}"
        );
    }

    #[test]
    fn bounded_tv_enforces_box_exactly() {
        let (gram, mut k, _) = setup(15, 6, 5);
        for v in k.as_mut_slice().iter_mut() {
            *v *= 3.0; // push the optimum outside [0, 1]
        }
        let mut x = DMat::zeros(15, 6);
        let mut y = DMat::zeros(15, 5);
        let c = pds_constraints::bounded_tv(0.0, 1.0, 0.2);
        pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
        assert!(
            x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "box violated"
        );
    }

    /// Warm-started duals resume the trajectory: a capped run continued
    /// from its own (x, y) state lands where a longer run lands.
    #[test]
    fn warm_start_resumes_trajectory() {
        let (gram, k, _) = setup(20, 6, 6);
        let c = pds_constraints::tv(0.3);
        let cfg_short = PdsConfig {
            tol: 0.0,
            max_inner: 200,
            ..PdsConfig::default()
        };
        let cfg_long = PdsConfig {
            tol: 0.0,
            max_inner: 400,
            ..PdsConfig::default()
        };
        let mut x1 = DMat::zeros(20, 6);
        let mut y1 = DMat::zeros(20, 5);
        pds_update(&gram, &k, &mut x1, &mut y1, &c, &cfg_long).unwrap();

        let mut x2 = DMat::zeros(20, 6);
        let mut y2 = DMat::zeros(20, 5);
        pds_update(&gram, &k, &mut x2, &mut y2, &c, &cfg_short).unwrap();
        pds_update(&gram, &k, &mut x2, &mut y2, &c, &cfg_short).unwrap();
        assert_eq!(
            x1.max_abs_diff(&x2),
            0.0,
            "resumed trajectory diverged from straight run"
        );
    }

    #[test]
    fn block_size_does_not_change_fixed_point() {
        let (gram, k, _) = setup(120, 3, 7);
        let run = |bs: usize| {
            let mut x = DMat::zeros(120, 3);
            let mut y = DMat::zeros(120, 2);
            let c = pds_constraints::tv(0.2);
            let cfg = PdsConfig {
                block_size: bs,
                ..tight()
            };
            pds_update(&gram, &k, &mut x, &mut y, &c, &cfg).unwrap();
            x
        };
        let x1 = run(1);
        let x50 = run(50);
        let xall = run(120);
        assert!(x1.max_abs_diff(&x50) < 1e-4, "{}", x1.max_abs_diff(&x50));
        assert!(
            x50.max_abs_diff(&xall) < 1e-4,
            "{}",
            x50.max_abs_diff(&xall)
        );
    }

    #[test]
    fn unconstrained_pds_agrees_with_cholesky() {
        let (gram, k, _) = setup(10, 4, 8);
        let direct = {
            let ch = Cholesky::factor(&gram).unwrap();
            let mut t = k.clone();
            ch.solve_mat(&mut t).unwrap();
            t
        };
        let mut x = DMat::zeros(10, 4);
        let mut y = DMat::zeros(10, 4);
        let c = pds_constraints::from_prox(constraints::unconstrained());
        pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
        assert!(x.max_abs_diff(&direct) < 1e-4);
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let gram = DMat::eye(3);
        let k = DMat::zeros(10, 4);
        let mut x = DMat::zeros(10, 3);
        let mut y = DMat::zeros(10, 2);
        let c = pds_constraints::tv(0.1);
        assert!(pds_update(&gram, &k, &mut x, &mut y, &c, &PdsConfig::default()).is_err());
        let k = DMat::zeros(10, 3);
        let mut bad_y = DMat::zeros(10, 3);
        assert!(pds_update(&gram, &k, &mut x, &mut bad_y, &c, &PdsConfig::default()).is_err());
        let mut y = DMat::zeros(10, 2);
        assert!(pds_update(&gram, &k, &mut x, &mut y, &c, &PdsConfig::default()).is_ok());
    }

    #[test]
    fn empty_and_zero_cases() {
        // Empty matrix: no blocks, instant return.
        let gram = DMat::eye(2);
        let k = DMat::zeros(0, 2);
        let mut x = DMat::zeros(0, 2);
        let mut y = DMat::zeros(0, 1);
        let c = pds_constraints::tv(0.1);
        let stats = pds_update(&gram, &k, &mut x, &mut y, &c, &PdsConfig::default()).unwrap();
        assert_eq!(stats.blocks, 0);

        // Zero gram: beta falls back to 1, converges to the prox of 0.
        let gram = DMat::zeros(3, 3);
        let k = DMat::zeros(5, 3);
        let mut x = DMat::zeros(5, 3);
        let mut y = DMat::zeros(5, 3);
        let c = pds_constraints::from_prox(constraints::nonneg());
        let stats = pds_update(&gram, &k, &mut x, &mut y, &c, &PdsConfig::default()).unwrap();
        assert!(stats.converged());
        assert_eq!(x.norm_fro(), 0.0);
    }

    /// Width-1 factors make the difference operator empty; the composite
    /// term must degrade to prox-only instead of dividing by zero.
    #[test]
    fn tv_on_width_one_factor_degrades_gracefully() {
        let gram = DMat::from_vec(1, 1, vec![2.0]).unwrap();
        let k = DMat::from_vec(4, 1, vec![2.0, 4.0, -2.0, 0.0]).unwrap();
        let mut x = DMat::zeros(4, 1);
        let mut y = DMat::zeros(4, 0);
        let c = pds_constraints::tv(0.5);
        let stats = pds_update(&gram, &k, &mut x, &mut y, &c, &tight()).unwrap();
        assert!(stats.converged());
        assert!((x.get(0, 0) - 1.0).abs() < 1e-6); // plain least squares
    }
}
