//! Composite constraint specifications `g(x) + h(L x)` for the PDS
//! inner solver.
//!
//! The prox-only part `g` reuses the [`admm::Prox`] operators unchanged
//! — any constraint ADMM can express, PDS can too (that is what makes
//! the differential conformance suite possible). The optional dual term
//! `(L, h*)` is what ADMM cannot express.

use crate::conj::{ConjugateProx, L1Conj};
use crate::linop::{FirstDifference, LinOp};
use admm::prox::{BoxBound, Unconstrained};
use admm::Prox;
use std::sync::Arc;

/// A composite dual term: the linear operator `L` and the prox of the
/// conjugate `h*` it feeds.
pub type DualTerm = (Arc<dyn LinOp>, Arc<dyn ConjugateProx>);

/// A constraint for the PDS inner solver: a row-separable prox term `g`
/// plus an optional composite term `h(L x)` handled through the dual.
#[derive(Clone)]
pub struct PdsConstraint {
    prox: Arc<dyn Prox>,
    dual: Option<DualTerm>,
}

impl PdsConstraint {
    /// A constraint with no composite term: PDS solves the same problem
    /// the inner ADMM would (differential-testing configuration).
    pub fn prox_only(prox: Arc<dyn Prox>) -> Self {
        PdsConstraint { prox, dual: None }
    }

    /// Full composite constraint `g(x) + h(L x)`.
    pub fn composite(
        prox: Arc<dyn Prox>,
        linop: Arc<dyn LinOp>,
        conj: Arc<dyn ConjugateProx>,
    ) -> Self {
        PdsConstraint {
            prox,
            dual: Some((linop, conj)),
        }
    }

    /// The prox-only part `g`.
    pub fn prox(&self) -> &Arc<dyn Prox> {
        &self.prox
    }

    /// The composite term `(L, prox of h*)`, if any.
    pub fn dual_term(&self) -> Option<&DualTerm> {
        self.dual.as_ref()
    }

    /// Dual dimension per row for factor width `f` (0 when there is no
    /// composite term — the dual iterate is unused).
    pub fn dual_dim(&self, f: usize) -> usize {
        self.dual.as_ref().map_or(0, |(l, _)| l.out_dim(f))
    }

    /// Human-readable description for traces: `"non-negative"`,
    /// `"non-negative + l1-conjugate(first-difference)"`, ...
    pub fn describe(&self) -> String {
        match &self.dual {
            None => self.prox.name().to_string(),
            Some((l, c)) => format!("{} + {}({})", self.prox.name(), c.name(), l.name()),
        }
    }

    /// Full penalty `sum_rows g(x_r) + h(L x_r)` of a factor matrix —
    /// objective reporting for tests and harnesses, not the hot path
    /// (allocates a dual-sized buffer per call).
    pub fn penalty(&self, x: &splinalg::DMat) -> f64 {
        let f = x.ncols();
        let mut total = 0.0;
        let mut buf = vec![0.0; self.dual_dim(f)];
        for r in 0..x.nrows() {
            let row = x.row(r);
            total += self.prox.penalty_row(row);
            if let Some((l, c)) = &self.dual {
                if !buf.is_empty() {
                    l.apply(row, &mut buf);
                    total += c.penalty_row(&buf);
                }
            }
        }
        total
    }
}

impl std::fmt::Debug for PdsConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PdsConstraint")
            .field("spec", &self.describe())
            .finish()
    }
}

/// Convenience constructors returning shareable constraint specs,
/// mirroring [`admm::constraints`].
pub mod pds_constraints {
    use super::*;

    /// Wrap any row-separable prox (the ADMM-expressible family).
    pub fn from_prox(prox: Arc<dyn Prox>) -> Arc<PdsConstraint> {
        Arc::new(PdsConstraint::prox_only(prox))
    }

    /// Row-wise total variation `lambda * sum_i |x_{i+1} - x_i|` —
    /// the canonical constraint ADMM's row-separable prox cannot
    /// express.
    pub fn tv(lambda: f64) -> Arc<PdsConstraint> {
        Arc::new(PdsConstraint::composite(
            Arc::new(Unconstrained),
            Arc::new(FirstDifference),
            Arc::new(L1Conj { lambda }),
        ))
    }

    /// Box bound `lo <= x <= hi` *plus* row-wise total variation: the
    /// bound is enforced exactly through the primal prox while the TV
    /// coupling rides on the dual — a composite no single row-separable
    /// prox can express.
    pub fn bounded_tv(lo: f64, hi: f64, lambda: f64) -> Arc<PdsConstraint> {
        Arc::new(PdsConstraint::composite(
            Arc::new(BoxBound { lo, hi }),
            Arc::new(FirstDifference),
            Arc::new(L1Conj { lambda }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;
    use splinalg::DMat;

    #[test]
    fn describe_spells_out_the_composite() {
        assert_eq!(
            pds_constraints::from_prox(constraints::nonneg()).describe(),
            "non-negative"
        );
        assert_eq!(
            pds_constraints::tv(0.5).describe(),
            "unconstrained + l1-conjugate(first-difference)"
        );
        assert_eq!(
            pds_constraints::bounded_tv(0.0, 1.0, 0.5).describe(),
            "box + l1-conjugate(first-difference)"
        );
    }

    #[test]
    fn dual_dim_tracks_operator() {
        assert_eq!(pds_constraints::tv(0.1).dual_dim(6), 5);
        assert_eq!(pds_constraints::tv(0.1).dual_dim(1), 0);
        assert_eq!(
            pds_constraints::from_prox(constraints::nonneg()).dual_dim(6),
            0
        );
    }

    #[test]
    fn penalty_sums_tv_over_rows() {
        let x = DMat::from_vec(2, 3, vec![0.0, 1.0, 1.0, 2.0, 2.0, 0.0]).unwrap();
        let c = pds_constraints::tv(2.0);
        // Row 0: |1-0| + |1-1| = 1; row 1: |2-2| + |0-2| = 2. Total 3*2.
        assert!((c.penalty(&x) - 6.0).abs() < 1e-12);
        // Prox-only l1 penalty passes through.
        let l1 = pds_constraints::from_prox(constraints::lasso(1.0));
        assert!((l1.penalty(&x) - 6.0).abs() < 1e-12);
    }
}
