//! Primal-dual splitting (AO-PDS) inner solver.
//!
//! The AO-ADMM framework of the source paper handles constraints purely
//! through row-separable proximity operators: the inner ADMM needs
//! `prox_{r/rho}` in closed form. That silently excludes composite
//! penalties of the form `r(x) = g(x) + h(L x)` — total variation,
//! difference-operator couplings — whose prox is not separable even when
//! `g` and `h` individually are trivial.
//!
//! Following Ono & Kasai (*Alternating optimization with primal-dual
//! splitting*, arXiv:1711.00603), this crate replaces the inner ADMM
//! with a Condat–Vu primal-dual iteration that only ever needs
//!
//! * `prox_{gamma g}` — the ordinary row prox ([`admm::Prox`], reused
//!   verbatim), and
//! * `prox_{gamma h*}` — the prox of the *convex conjugate* of `h`
//!   ([`ConjugateProx`]), applied to a dual variable living in the range
//!   of the linear operator `L` ([`LinOp`]).
//!
//! Per row `x` of the factor (with dual row `y`), one iteration is
//!
//! ```text
//! x+ <- prox_{g1 g}( x - g1 * (G x - k + L^T y) )
//! y+ <- prox_{g2 h*}( y + g2 * L (2 x+ - x) )
//! ```
//!
//! where `G` is the cached Gram matrix of the other modes and `k` the
//! row's MTTKRP output — exactly the quadratic the inner ADMM solves,
//! but handled by explicit gradient steps instead of a Cholesky solve.
//! Step sizes are preconditioned from the Gram: with `beta` a cheap
//! Gershgorin bound on `lambda_max(G)` and `mu^2` a bound on `||L||^2`,
//! the choice `g2 = beta / (2 mu^2)`, `g1 <= 1/beta` satisfies the
//! Condat convergence condition `1/g1 - g2 ||L||^2 >= beta/2`.
//!
//! The execution discipline mirrors the blocked ADMM of PRs 4-9: rows
//! are swept in independent blocks with per-block convergence, blocks
//! run under rayon over disjoint row ranges with a frozen sequential
//! merge (bit-determinism across thread pools), and all scratch lives
//! in a grow-once [`PdsWorkspace`] so steady-state calls perform no
//! heap allocation.

#![warn(missing_docs)]

pub mod config;
pub mod conj;
pub mod constraint;
pub mod linop;
pub mod solver;
pub mod workspace;

pub use config::PdsConfig;
pub use conj::{ConjugateProx, L1Conj};
pub use constraint::{pds_constraints, DualTerm, PdsConstraint};
pub use linop::{FirstDifference, LinOp};
pub use solver::{pds_update, pds_update_ws, PdsStats};
pub use workspace::PdsWorkspace;
