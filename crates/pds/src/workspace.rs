//! Grow-once scratch for the PDS hot loop, mirroring
//! [`admm::AdmmWorkspace`]'s allocation discipline: one workspace is
//! owned by the outer AO driver, lent to every update, and sized to the
//! high-water mark on first use — steady-state updates allocate nothing.

use crate::solver::PdsBlockOutcome;

/// Per-block scratch state for the blocked PDS sweep.
#[derive(Debug, Default)]
pub(crate) struct PdsBlockScratch {
    /// Previous primal row (`f`), for the step-change residual.
    pub xprev: Vec<f64>,
    /// Gradient accumulator `G x - k + L^T y` (`f`).
    pub grad: Vec<f64>,
    /// Reflected point `2 x+ - x` fed to the operator (`f`).
    pub reflect: Vec<f64>,
    /// `L`-image buffer (`p`).
    pub lbuf: Vec<f64>,
    /// Previous dual row (`p`), for the dual step-change residual.
    pub yprev: Vec<f64>,
    /// Outcome of the block's last run (written in place so the parallel
    /// sweep never collects).
    pub outcome: PdsBlockOutcome,
    /// Rows the block covered on its last run.
    pub rows: usize,
}

impl PdsBlockScratch {
    /// Grow the scratch for factor width `f` and dual width `p`; no-op
    /// once warm.
    pub fn ensure(&mut self, f: usize, p: usize) {
        if self.xprev.len() < f {
            self.xprev.resize(f, 0.0);
        }
        if self.grad.len() < f {
            self.grad.resize(f, 0.0);
        }
        if self.reflect.len() < f {
            self.reflect.resize(f, 0.0);
        }
        if self.lbuf.len() < p {
            self.lbuf.resize(p, 0.0);
        }
        if self.yprev.len() < p {
            self.yprev.resize(p, 0.0);
        }
    }
}

/// Grow-once scratch arena for [`crate::pds_update_ws`].
#[derive(Debug, Default)]
pub struct PdsWorkspace {
    /// Per-block scratch for the blocked sweep.
    pub(crate) blocks: Vec<PdsBlockScratch>,
}

impl PdsWorkspace {
    /// Create an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
