//! Row-wise linear operators for composite penalties `h(L x)`.
//!
//! An operator maps one factor row `x in R^f` to `L x in R^p`; the dual
//! variable of the primal-dual iteration lives in `R^p`. Implementations
//! must be cheap (they run inside the row sweep) and allocation-free.

/// A linear operator applied row-wise inside the primal-dual iteration.
///
/// Implementations must be pure functions of their input slices so rows
/// can be processed from many threads at once.
pub trait LinOp: Sync + Send {
    /// Output dimension `p` for an input row of length `f`.
    fn out_dim(&self, f: usize) -> usize;

    /// `out = L x` (`out.len() == out_dim(x.len())`, overwritten).
    fn apply(&self, x: &[f64], out: &mut [f64]);

    /// `out += L^T y` (`out.len()` is the row length `f`).
    fn apply_transpose_acc(&self, y: &[f64], out: &mut [f64]);

    /// An upper bound on the squared operator norm `||L||^2`, used to
    /// precondition the dual step size. Must not under-estimate, or the
    /// Condat step-size condition silently breaks.
    fn norm_sq_bound(&self) -> f64;

    /// Short human-readable name for traces and harness output.
    fn name(&self) -> &'static str;
}

/// First-order finite differences along a row:
/// `(L x)_i = x_{i+1} - x_i`, `p = f - 1`.
///
/// This is the operator of one-dimensional total variation
/// `TV(x) = sum_i |x_{i+1} - x_i|`; its squared operator norm is
/// `4 sin^2(pi (f-1) / (2f)) < 4` (the second-difference Laplacian
/// spectrum), so 4 is a tight uniform bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstDifference;

impl LinOp for FirstDifference {
    fn out_dim(&self, f: usize) -> usize {
        f.saturating_sub(1)
    }

    #[inline]
    fn apply(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len() + 1, x.len().max(1));
        for (i, o) in out.iter_mut().enumerate() {
            *o = x[i + 1] - x[i];
        }
    }

    #[inline]
    fn apply_transpose_acc(&self, y: &[f64], out: &mut [f64]) {
        // L^T y: (L^T y)_0 = -y_0, (L^T y)_i = y_{i-1} - y_i,
        // (L^T y)_{f-1} = y_{f-2}.
        let p = y.len();
        debug_assert_eq!(out.len(), p + 1);
        if p == 0 {
            return;
        }
        out[0] -= y[0];
        for i in 1..p {
            out[i] += y[i - 1] - y[i];
        }
        out[p] += y[p - 1];
    }

    fn norm_sq_bound(&self) -> f64 {
        4.0
    }

    fn name(&self) -> &'static str {
        "first-difference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_difference_forward() {
        let x = [1.0, 3.0, 2.0, 2.0];
        let mut out = [0.0; 3];
        FirstDifference.apply(&x, &mut out);
        assert_eq!(out, [2.0, -1.0, 0.0]);
        assert_eq!(FirstDifference.out_dim(4), 3);
        assert_eq!(FirstDifference.out_dim(1), 0);
        assert_eq!(FirstDifference.out_dim(0), 0);
    }

    /// `<L x, y> == <x, L^T y>` for arbitrary vectors: the transpose is
    /// really the adjoint.
    #[test]
    fn transpose_is_adjoint() {
        let x = [0.3, -1.2, 2.0, 0.7, -0.4];
        let y = [1.0, -2.0, 0.5, 3.0];
        let mut lx = [0.0; 4];
        FirstDifference.apply(&x, &mut lx);
        let lhs: f64 = lx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut lty = [0.0; 5];
        FirstDifference.apply_transpose_acc(&y, &mut lty);
        let rhs: f64 = lty.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
    }

    /// Power iteration on L^T L stays below the advertised norm bound.
    #[test]
    fn norm_bound_holds() {
        let f = 16;
        // Start away from the operator's kernel (constant vectors); the
        // alternating vector is close to the top eigenvector.
        let mut v: Vec<f64> = (0..f)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut lv = vec![0.0; f - 1];
        let mut ltlv = vec![0.0; f];
        let mut lambda = 0.0;
        for _ in 0..200 {
            FirstDifference.apply(&v, &mut lv);
            ltlv.iter_mut().for_each(|x| *x = 0.0);
            FirstDifference.apply_transpose_acc(&lv, &mut ltlv);
            let norm = ltlv.iter().map(|x| x * x).sum::<f64>().sqrt();
            lambda = norm;
            for (a, b) in v.iter_mut().zip(&ltlv) {
                *a = b / norm.max(1e-300);
            }
        }
        assert!(
            lambda <= FirstDifference.norm_sq_bound(),
            "lambda_max {lambda} exceeds bound"
        );
        assert!(lambda > 3.5, "bound should be near-tight, got {lambda}");
    }

    #[test]
    fn transpose_handles_empty_dual() {
        let y: [f64; 0] = [];
        let mut out = [7.0];
        FirstDifference.apply_transpose_acc(&y, &mut out);
        assert_eq!(out, [7.0]);
    }
}
