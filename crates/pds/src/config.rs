//! PDS inner-solver configuration.

/// Settings for one PDS factor update ([`crate::pds_update_ws`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdsConfig {
    /// Convergence tolerance on the squared relative step change of the
    /// primal (and, when present, dual) iterates — the same measure and
    /// default as the inner ADMM's residual tolerance.
    pub tol: f64,
    /// Cap on inner iterations per block. PDS takes explicit gradient
    /// steps instead of exact Cholesky solves, so it needs more inner
    /// iterations than ADMM's 25 to make equivalent per-update progress.
    pub max_inner: usize,
    /// Rows per independent block (the blocked-ADMM discipline: per-block
    /// convergence, cache residency, work stealing over blocks).
    pub block_size: usize,
    /// Fraction of the theoretical maximum primal step actually taken,
    /// in `(0, 1]`. The maximum is `2/beta` without a composite term and
    /// `1/beta` with one (`beta` = Gershgorin bound on `lambda_max(G)`).
    pub step_scale: f64,
}

impl Default for PdsConfig {
    fn default() -> Self {
        PdsConfig {
            tol: 1e-3,
            max_inner: 60,
            block_size: 50,
            step_scale: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PdsConfig::default();
        assert_eq!(c.tol, 1e-3);
        assert_eq!(c.block_size, 50);
        assert!(c.step_scale > 0.0 && c.step_scale <= 1.0);
        assert!(c.max_inner >= 25);
    }
}
