//! Proximity operators of convex conjugates, for the dual update.
//!
//! The primal-dual iteration needs `prox_{gamma h*}` where `h*` is the
//! Fenchel conjugate of the outer penalty `h` in `h(L x)`. For the
//! penalties shipped here the conjugate prox is available directly —
//! no Moreau decomposition at run time.

/// The prox of `gamma * h*` applied to one dual row in place.
///
/// Implementations must be pure functions of the row (no shared mutable
/// state) so they can be applied from many threads at once.
pub trait ConjugateProx: Sync + Send {
    /// Replace `row` with `prox_{gamma h*}(row)`.
    fn apply_row(&self, row: &mut [f64], gamma: f64);

    /// The *primal* penalty value `h(z)` (for objective reporting, never
    /// inside the solver loop).
    fn penalty_row(&self, z: &[f64]) -> f64;

    /// Short human-readable name for traces and harness output.
    fn name(&self) -> &'static str;
}

/// Conjugate prox of `h = lambda * ||.||_1`.
///
/// `h*` is the indicator of the infinity-norm ball of radius `lambda`,
/// so `prox_{gamma h*}` is the gamma-independent projection
/// `clamp(., -lambda, lambda)`. Paired with [`crate::FirstDifference`]
/// this yields one-dimensional total variation.
#[derive(Debug, Clone, Copy)]
pub struct L1Conj {
    /// Weight `lambda` of the primal l1 penalty.
    pub lambda: f64,
}

impl ConjugateProx for L1Conj {
    #[inline]
    fn apply_row(&self, row: &mut [f64], _gamma: f64) {
        for x in row {
            *x = x.clamp(-self.lambda, self.lambda);
        }
    }

    fn penalty_row(&self, z: &[f64]) -> f64 {
        self.lambda * z.iter().map(|x| x.abs()).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "l1-conjugate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_conjugate_projects_to_inf_ball() {
        let c = L1Conj { lambda: 0.5 };
        let mut row = [1.0, -2.0, 0.2, -0.5];
        c.apply_row(&mut row, 3.7); // gamma-independent projection
        assert_eq!(row, [0.5, -0.5, 0.2, -0.5]);
        // Idempotent.
        let again = row;
        c.apply_row(&mut row, 0.1);
        assert_eq!(row, again);
    }

    #[test]
    fn l1_penalty_value() {
        let c = L1Conj { lambda: 2.0 };
        assert_eq!(c.penalty_row(&[1.0, -3.0]), 8.0);
    }

    /// Moreau identity: prox_{g h}(v) + g * prox_{h*/g}(v/g) = v.
    /// With h = lambda|.|_1 the left prox is soft thresholding; check the
    /// conjugate prox against it numerically.
    #[test]
    fn moreau_identity_against_soft_threshold() {
        let lambda = 0.7;
        let c = L1Conj { lambda };
        let gamma = 1.3;
        for &v in &[-2.0, -0.5, 0.0, 0.3, 1.9] {
            let soft = if v > gamma * lambda {
                v - gamma * lambda
            } else if v < -gamma * lambda {
                v + gamma * lambda
            } else {
                0.0
            };
            let mut dual = [v / gamma];
            c.apply_row(&mut dual, 1.0 / gamma);
            let reconstructed = soft + gamma * dual[0];
            assert!((reconstructed - v).abs() < 1e-12, "v={v}");
        }
    }
}
