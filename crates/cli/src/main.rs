//! `aoadmm` — command-line constrained sparse tensor factorization.
//!
//! Subcommands:
//!
//! * `factorize` — run AO-ADMM on a FROSTT `.tns` tensor with configurable
//!   rank, constraints (global and per-mode), ADMM strategy and sparsity
//!   policy; optionally save the model and a convergence trace.
//! * `generate` — write a synthetic tensor (dataset analog or custom
//!   shape) in `.tns` format.
//! * `stats` — print summary statistics of a `.tns` tensor.
//! * `als` — the unconstrained CP-ALS baseline.
//! * `stream` — replay a `.tns` tensor as timed update batches through
//!   the streaming subsystem, reporting per-batch refit latency and fit.
//! * `serve-bench` — closed-loop latency/throughput benchmark of the
//!   serving engine (batched vs direct point queries, pruned vs brute
//!   vs approximate top-K) against a saved or freshly fit model.
//! * `serve` — run the network serving daemon: a sharded model registry
//!   behind a length-prefixed TCP protocol with SLO-deadline batching,
//!   per-connection admission control and a stats RPC.
//! * `serve-client` — one-shot wire client for a running daemon
//!   (predict, top-K, stats, ping, shutdown).
//!
//! Run `aoadmm help` for full usage.

mod args;
mod constraint_spec;

use aoadmm::als::{als_factorize, AlsConfig};
use aoadmm::prelude::PdsConfig;
use aoadmm::{
    model_io, Factorizer, InnerSolverKind, KruskalModel, SparsityConfig, Structure, StructureChoice,
};
use args::Args;
use constraint_spec::{parse_constraint, parse_constraint_spec, ConstraintSpec};
use sptensor::gen::Analog;
use sptensor::TensorStats;
use std::process::ExitCode;

const USAGE: &str = "\
aoadmm — constrained sparse tensor factorization (AO-ADMM, ICPP 2017)

USAGE:
  aoadmm factorize --input X.tns --rank R [options]
  aoadmm als       --input X.tns --rank R [--max-outer N] [--tol T] [--seed S]
  aoadmm generate  (--analog reddit|nell|amazon|patents | --dims I,J,K --nnz N)
                   --output X.tns [--scale F] [--seed S]
  aoadmm stats     --input X.tns
  aoadmm stream    --input X.tns --rank R [options]
  aoadmm serve-bench (--model M.model | --input X.tns --rank R) [options]
  aoadmm serve     (--model M.model | --input X.tns --rank R) [options]
  aoadmm serve-client --addr HOST:PORT (--ping | --predict I,J,K |
                   --topk I,J,K | --stats | --shutdown) [options]
  aoadmm help

factorize options:
  --constraint SPEC        constraint for all modes (default: nonneg)
  --mode-constraint M=SPEC per-mode override (repeatable)
  --inner-solver admm|pds  inner solver backend (default admm); pds is the
                           primal-dual splitting solver, required for the
                           composite tv / box-tv constraints
  --max-outer N            outer iteration cap (default 200)
  --tol T                  outer tolerance on error improvement (default 1e-6)
  --seed S                 factor init seed (default 0)
  --strategy blocked|fused inner ADMM strategy (default blocked)
  --block-size B           rows per block (default 50)
  --inner-tol T            inner tolerance (default 1e-3)
  --max-inner N            inner iteration cap (default 25 admm, 60 pds)
  --adaptive-rho           enable residual-balancing penalty adaptation
                           (ADMM backend only)
  --sparsity auto|off|csr|hybrid   leaf-factor MTTKRP policy (default auto)
  --csf per-mode|one|dimtree|alto|auto   tensor representation (default
                           per-mode); dimtree memoizes partial-MTTKRP slabs
                           across modes, alto is the bit-interleaved linearized
                           SIMD substrate, auto picks from tensor statistics
  --threads N              rayon thread count (default: all cores)
  --shards N               run the sharded execution engine over N shards
                           (longest-mode partition; prints a wire-traffic
                           report validated against the analytic model)
  --shard-threads N        rayon threads per shard pool (default 0: run
                           each shard inline on its worker thread)
  --output FILE            save the factor model
  --trace FILE             save per-iteration CSV
                           (iter,seconds,rel_error,slab_hits,slab_misses,
                           substrates,inner,constraints — substrates and
                           inner are per-mode labels joined with '|', so
                           --csf auto decisions and the inner-solver
                           backend are observable; constraints is the
                           per-mode constraint description)
  --checkpoint FILE        save resumable state (factors + duals) at the end
  --resume FILE            start from a previously saved checkpoint

stream options (replays the tensor's nonzeros as update batches):
  --batches N              update batches after the base (default 10)
  --base-frac F            fraction of nonzeros forming the base (default 0.5)
  --refit-outer K          outer iterations per warm refit (default 10)
  --refit-tol T            refit early-stopping tolerance (default: --tol)
  --decay G                exponential decay of old values per batch, in (0,1]
  --merge-frac F           merge when delta exceeds F * base nnz (default 0.2)
  --min-merge N            never merge below N delta entries (default 1024)
  --background-merge       rebuild CSF on a background thread
  --compare-cold           also cold-refactorize after every batch and report
                           the warm-vs-cold iteration and latency totals
  (--constraint, --max-outer, --tol, --seed, --threads as for factorize)

serve-bench options (closed-loop read-path benchmark):
  --model FILE             serve a saved factor model (skips fitting)
  --input X.tns --rank R   or fit one first (--max-outer, --seed as above)
  --clients N              concurrent query threads (default 4)
  --queries N              queries per client per scenario (default 2000)
  --k K                    top-K depth (default 10)
  --free-mode M            top-K free mode (default 0)
  --seed S                 query-sequence seed (default 0)
  --warm-requests N        untimed warm-up queries per client per scenario
                           (default 100) before measurement starts, so
                           scratch pools reach steady state and timings
                           reflect the warm path, not first-touch
                           allocation

serve options (network daemon; blocks until a wire shutdown arrives):
  --model FILE             serve a saved factor model (skips fitting)
  --input X.tns --rank R   or fit one first (--max-outer, --seed as above)
  --addr HOST:PORT         bind address (default 127.0.0.1:0 = ephemeral;
                           the chosen address is printed on startup)
  --port-file FILE         also write the bound port to FILE (for scripts)
  --shards N               registry shards over the split mode (default 1)
  --split-mode M           mode whose rows partition the shards (default 0)
  --workers N              top-K worker threads (default 2)
  --batch-max N            flush a predict batch at N requests (default 64)
  --batch-deadline-us U    SLO deadline per predict batch (default 500)
  --rate R --burst B       per-connection token bucket, tokens/sec and
                           capacity (default: admission control off)
  --oversample N --guard G approximate-tier policy (default 4, 0.01)

serve-client options (one-shot actions against a running daemon):
  --addr HOST:PORT         daemon address (required)
  --ping                   liveness probe
  --predict I,J,K          score one coordinate
  --topk I,J,K             top-K with this anchor (--k, --free-mode as
                           above; --approx uses the approximate tier)
  --stats                  print per-endpoint counters and latency
                           quantiles
  --shutdown               ask the daemon to drain and exit

constraint SPECs:
  none | nonneg | l1:LAMBDA | nonneg-l1:LAMBDA | ridge:LAMBDA |
  simplex | box:LO,HI | maxnorm:BOUND
  tv:LAMBDA | box-tv:LO,HI,LAMBDA   composite row-wise total-variation
                                    terms; require --inner-solver pds
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "factorize" => factorize(&args),
        "als" => als(&args),
        "generate" => generate(&args),
        "stats" => stats(&args),
        "stream" => stream(&args),
        "serve-bench" => serve_bench(&args),
        "serve" => serve(&args),
        "serve-client" => serve_client(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; see `aoadmm help`")),
    }
}

fn load_input(args: &Args) -> Result<sptensor::CooTensor, String> {
    let path = args.require("input")?;
    eprintln!("reading {path} ...");
    let t = sptensor::io::read_tns_file(&path, None).map_err(|e| e.to_string())?;
    eprintln!("loaded: nnz={} dims={:?}", t.nnz(), t.dims());
    Ok(t)
}

fn setup_threads(args: &Args) -> Result<(), String> {
    if let Some(n) = args.get_opt::<usize>("threads")? {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn factorize(args: &Args) -> Result<(), String> {
    setup_threads(args)?;
    let tensor = load_input(args)?;
    let rank: usize = args.require_parsed("rank")?;

    let mut admm_cfg = match args.get_str("strategy").as_deref().unwrap_or("blocked") {
        "blocked" => admm::AdmmConfig::blocked(args.get("block-size", 50)?),
        "fused" => admm::AdmmConfig::fused(),
        other => return Err(format!("unknown strategy {other:?}")),
    };
    admm_cfg.tol = args.get("inner-tol", 1e-3)?;
    admm_cfg.max_inner = args.get("max-inner", 25)?;
    if args.has("adaptive-rho") {
        admm_cfg.adaptive_rho = Some(admm::AdaptiveRho::default());
    }

    let sparsity = match args.get_str("sparsity").as_deref().unwrap_or("auto") {
        "auto" => SparsityConfig::default(),
        "off" => SparsityConfig::disabled(),
        "csr" => SparsityConfig {
            choice: StructureChoice::Force(Structure::Csr),
            ..Default::default()
        },
        "hybrid" => SparsityConfig {
            choice: StructureChoice::Force(Structure::Hybrid),
            ..Default::default()
        },
        other => return Err(format!("unknown sparsity policy {other:?}")),
    };

    let csf = match args.get_str("csf").as_deref().unwrap_or("per-mode") {
        "per-mode" => aoadmm::CsfPolicy::PerMode,
        "one" => aoadmm::CsfPolicy::One,
        "dimtree" => aoadmm::CsfPolicy::DimTree,
        "alto" => aoadmm::CsfPolicy::Alto,
        "auto" => aoadmm::CsfPolicy::Auto,
        other => return Err(format!("unknown csf policy {other:?}")),
    };

    let inner = match args.get_str("inner-solver").as_deref().unwrap_or("admm") {
        "admm" => InnerSolverKind::Admm,
        "pds" => InnerSolverKind::Pds,
        other => return Err(format!("unknown inner solver {other:?} (admm or pds)")),
    };

    let global = parse_constraint_spec(args.get_str("constraint").as_deref().unwrap_or("nonneg"))?;
    // Per-mode constraint descriptions for the trace CSV.
    let nmodes = tensor.dims().len();
    let mut constraint_descs = vec![global.describe(); nmodes];
    let mut fz = Factorizer::new(rank)
        .inner_solver(inner)
        .admm(admm_cfg)
        .sparsity(sparsity)
        .csf_policy(csf)
        .max_outer(args.get("max-outer", 200)?)
        .tolerance(args.get("tol", 1e-6)?)
        .seed(args.get("seed", 0)?);
    if inner == InnerSolverKind::Pds {
        fz = fz.pds(PdsConfig {
            tol: args.get("inner-tol", 1e-3)?,
            max_inner: args.get("max-inner", 60)?,
            block_size: args.get("block-size", 50)?,
            ..PdsConfig::default()
        });
    }
    fz = match global {
        ConstraintSpec::Prox(p) => fz.constrain_all(p),
        ConstraintSpec::Composite(c) => fz.constrain_all_pds(c),
    };
    for spec in args.get_all("mode-constraint") {
        let (mode, cspec) = spec
            .split_once('=')
            .ok_or_else(|| format!("--mode-constraint expects M=SPEC, got {spec:?}"))?;
        let mode: usize = mode
            .parse()
            .map_err(|_| format!("bad mode in --mode-constraint {spec:?}"))?;
        let parsed = parse_constraint_spec(cspec)?;
        if mode < nmodes {
            constraint_descs[mode] = parsed.describe();
        }
        fz = match parsed {
            ConstraintSpec::Prox(p) => fz.constrain_mode(mode, p),
            ConstraintSpec::Composite(c) => fz.constrain_mode_pds(mode, c),
        };
    }

    let resume = args
        .get_str("resume")
        .map(|ckpath| {
            let ck = aoadmm::checkpoint::Checkpoint::load(&ckpath).map_err(|e| e.to_string())?;
            eprintln!("resuming from {ckpath}");
            Ok::<_, String>(ck)
        })
        .transpose()?;
    let res = if let Some(nshards) = args.get_opt::<usize>("shards")? {
        let sc = aoadmm_distsim::ShardConfig::new(nshards)
            .threads_per_shard(args.get("shard-threads", 0)?);
        let sres = match resume {
            Some(ck) => aoadmm_distsim::shard_factorize_warm(
                &tensor,
                &fz,
                &sc,
                ck.model,
                Some(ck.duals),
                None,
            ),
            None => aoadmm_distsim::shard_factorize(&tensor, &fz, &sc),
        }
        .map_err(|e| e.to_string())?;
        print_comm_report(&sres);
        aoadmm::FactorizeResult {
            model: sres.model,
            trace: sres.trace,
            duals: sres.duals,
            grams: sres.grams,
        }
    } else if let Some(ck) = resume {
        fz.factorize_warm(&tensor, ck.model, Some(ck.duals))
            .map_err(|e| e.to_string())?
    } else {
        fz.factorize(&tensor).map_err(|e| e.to_string())?
    };
    println!(
        "done: {} outer iterations in {:.2}s (converged: {})",
        res.trace.outer_iterations(),
        res.trace.total.as_secs_f64(),
        res.trace.converged
    );
    println!("relative error: {:.6}", res.trace.final_error);
    let (m, a, o) = res.trace.time_fractions();
    println!(
        "time split: MTTKRP {:.0}%  ADMM {:.0}%  other {:.0}%",
        m * 100.0,
        a * 100.0,
        o * 100.0
    );
    let (hits, misses) = slab_totals(&res.trace);
    if hits + misses > 0 {
        println!("dim-tree slab reuse: {hits} hits / {misses} rebuilds");
    }
    let dens = res.model.factor_densities(0.0);
    for (mode, d) in dens.iter().enumerate() {
        println!("factor {mode}: density {:.1}%", d * 100.0);
    }

    if let Some(path) = args.get_str("output") {
        model_io::save_model(&res.model, &path).map_err(|e| e.to_string())?;
        println!("model written to {path}");
    }
    if let Some(path) = args.get_str("trace") {
        write_trace(&res.trace, &constraint_descs, &path)?;
        println!("trace written to {path}");
    }
    if let Some(path) = args.get_str("checkpoint") {
        aoadmm::checkpoint::Checkpoint::from_result(&res)
            .save(&path)
            .map_err(|e| e.to_string())?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

/// Summarize where a sharded run's wire bytes went and confirm the
/// measured traffic matches the analytic communication model.
fn print_comm_report(res: &aoadmm_distsim::ShardResult) {
    use aoadmm_distsim::Phase;
    let part = &res.partition;
    println!(
        "sharded over {} shard(s), split mode {} ({} rows), max {} nnz/shard",
        part.nshards(),
        part.split_mode(),
        part.split_ranges().last().map_or(0, |r| r.end),
        res.max_shard_nnz
    );
    let mb = |b: u64| b as f64 / 1e6;
    println!(
        "wire traffic: {:.3} MB total (KReduce {:.3} MB, FactorRows {:.3} MB, \
         GramReduce {:.3} MB) over {} round(s)",
        mb(res.comm.total_bytes()),
        mb(res.comm.phase_bytes(Phase::KReduce)),
        mb(res.comm.phase_bytes(Phase::FactorRows)),
        mb(res.comm.phase_bytes(Phase::GramReduce)),
        res.comm.rounds()
    );
    match res.comm.diff_from_prediction(&res.predicted) {
        None => println!(
            "traffic matches the analytic prediction exactly; est. network time {:.4}s",
            res.est_comm_seconds
        ),
        Some(diff) => println!("WARNING: traffic deviates from prediction: {diff}"),
    }
}

fn als(args: &Args) -> Result<(), String> {
    setup_threads(args)?;
    let tensor = load_input(args)?;
    let cfg = AlsConfig {
        rank: args.require_parsed("rank")?,
        max_outer: args.get("max-outer", 200)?,
        tol: args.get("tol", 1e-6)?,
        seed: args.get("seed", 0)?,
        ..Default::default()
    };
    let res = als_factorize(&tensor, &cfg).map_err(|e| e.to_string())?;
    println!(
        "ALS done: {} outer iterations in {:.2}s, relative error {:.6}",
        res.trace.outer_iterations(),
        res.trace.total.as_secs_f64(),
        res.trace.final_error
    );
    if let Some(path) = args.get_str("output") {
        model_io::save_model(&res.model, &path).map_err(|e| e.to_string())?;
        println!("model written to {path}");
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let out = args.require("output")?;
    let seed: u64 = args.get("seed", 1)?;
    let tensor = if let Some(name) = args.get_str("analog") {
        let analog = match name.to_lowercase().as_str() {
            "reddit" => Analog::Reddit,
            "nell" => Analog::Nell,
            "amazon" => Analog::Amazon,
            "patents" => Analog::Patents,
            other => return Err(format!("unknown analog {other:?}")),
        };
        analog
            .generate(args.get("scale", 1.0)?, seed)
            .map_err(|e| e.to_string())?
    } else {
        let dims: Vec<usize> = args
            .require("dims")?
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad dims entry {s:?}"))
            })
            .collect::<Result<_, _>>()?;
        let cfg = sptensor::gen::PlantedConfig {
            zipf_exponents: vec![0.8; dims.len()],
            dims,
            nnz: args.require_parsed("nnz")?,
            rank: args.get("planted-rank", 10)?,
            noise: args.get("noise", 0.1)?,
            factor_density: args.get("factor-density", 1.0)?,
            seed,
        };
        sptensor::gen::planted(&cfg).map_err(|e| e.to_string())?
    };
    sptensor::io::write_tns_file(&tensor, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nnz, dims {:?})",
        out,
        tensor.nnz(),
        tensor.dims()
    );
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    setup_threads(args)?;
    let tensor = load_input(args)?;
    let rank: usize = args.require_parsed("rank")?;
    let max_outer = args.get("max-outer", 200)?;
    let tol = args.get("tol", 1e-6)?;

    let global = parse_constraint(args.get_str("constraint").as_deref().unwrap_or("nonneg"))?;
    let fz = Factorizer::new(rank)
        .constrain_all(global)
        .max_outer(max_outer)
        .tolerance(tol)
        .seed(args.get("seed", 0)?);

    let replay = aoadmm_stream::ReplayConfig {
        batches: args.get("batches", 10)?,
        base_fraction: args.get("base-frac", 0.5)?,
    };
    let (base, batches) =
        aoadmm_stream::replay_batches(&tensor, &replay).map_err(|e| e.to_string())?;
    eprintln!(
        "replaying {} nonzeros: base {} + {} batches",
        tensor.nnz(),
        base.nnz(),
        batches.len()
    );

    let policy = aoadmm_stream::MergePolicy {
        max_delta_fraction: args.get("merge-frac", 0.2)?,
        min_delta_nnz: args.get("min-merge", 1024)?,
        rebuild: if args.has("background-merge") {
            aoadmm_stream::RebuildMode::Background
        } else {
            aoadmm_stream::RebuildMode::Synchronous
        },
    };
    let mut scfg = aoadmm_stream::StreamingConfig::new(fz.clone())
        .refit_outer(args.get("refit-outer", 10)?)
        .refit_tol(args.get("refit-tol", tol)?)
        .policy(policy);
    if let Some(g) = args.get_opt::<f64>("decay")? {
        scfg = scfg.decay(g);
    }

    let compare_cold = args.has("compare-cold");
    let mut sf = aoadmm_stream::StreamingFactorizer::new(base, scfg).map_err(|e| e.to_string())?;
    let r0 = &sf.records()[0];
    println!(
        "batch   0: base fit           nnz={:<8} iters={:<3} rel_error={:.6} build={:>7.1?} fit={:>7.1?}",
        r0.total_nnz, r0.outer_iterations, r0.rel_error, r0.ingest, r0.refit
    );
    let mut warm_iters = r0.outer_iterations;
    let (mut cold_iters, mut cold_secs, mut cold_final) = (0usize, 0.0f64, f64::NAN);
    if compare_cold {
        let res = fz
            .factorize(sf.buffer().base_coo())
            .map_err(|e| e.to_string())?;
        cold_iters += res.trace.outer_iterations();
        cold_secs += res.trace.total.as_secs_f64();
        cold_final = res.trace.final_error;
    }

    for ops in &batches {
        let rec = sf.push_batch(ops).map_err(|e| e.to_string())?;
        println!(
            "batch {:>3}: +{:<5} ~{:<5} grown={:?} delta={:<7} nnz={:<8} merged={} iters={:<3} rel_error={:.6} ingest={:>7.1?} refit={:>7.1?}",
            rec.batch,
            rec.appended,
            rec.updated,
            rec.grown_rows,
            rec.delta_nnz,
            rec.total_nnz,
            if rec.merged { "y" } else { "n" },
            rec.outer_iterations,
            rec.rel_error,
            rec.ingest,
            rec.refit
        );
        warm_iters += rec.outer_iterations;
        if compare_cold {
            let merged = sf.current_coo();
            let res = fz.factorize(&merged).map_err(|e| e.to_string())?;
            cold_iters += res.trace.outer_iterations();
            cold_secs += res.trace.total.as_secs_f64();
            cold_final = res.trace.final_error;
        }
    }
    sf.flush().map_err(|e| e.to_string())?;

    let warm_secs: f64 = sf
        .records()
        .iter()
        .map(|r| r.batch_time().as_secs_f64())
        .sum();
    println!(
        "stream done: {} batches, {} total outer iterations, {:.2}s total, final rel_error {:.6}",
        sf.records().len() - 1,
        warm_iters,
        warm_secs,
        sf.rel_error()
    );
    if compare_cold {
        println!(
            "cold baseline: {cold_iters} total outer iterations, {cold_secs:.2}s total, final rel_error {cold_final:.6}"
        );
        println!(
            "warm-start advantage: {:.1}x fewer outer iterations",
            cold_iters as f64 / warm_iters.max(1) as f64
        );
    }

    if let Some(path) = args.get_str("output") {
        model_io::save_model(&sf.model(), &path).map_err(|e| e.to_string())?;
        println!("model written to {path}");
    }
    Ok(())
}

/// One serve-bench query: (query id, top-K hit buffer).
type QueryFn<'a> = dyn Fn(u64, &mut Vec<(sptensor::Idx, f64)>) + Sync + 'a;

/// Shared by the serving subcommands: load a saved model, or fit one
/// from a tensor.
fn load_or_fit_model(args: &Args) -> Result<KruskalModel, String> {
    if let Some(path) = args.get_str("model") {
        eprintln!("loading model {path} ...");
        model_io::load_model(&path).map_err(|e| e.to_string())
    } else {
        let tensor = load_input(args)?;
        let rank: usize = args.require_parsed("rank")?;
        let res = Factorizer::new(rank)
            .max_outer(args.get("max-outer", 20)?)
            .seed(args.get("seed", 0)?)
            .factorize(&tensor)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "fit rank-{rank} model, relative error {:.4}",
            res.trace.final_error
        );
        Ok(res.model)
    }
}

fn serve_bench(args: &Args) -> Result<(), String> {
    use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
    use std::sync::Arc;
    use std::time::Instant;

    setup_threads(args)?;
    let model = load_or_fit_model(args)?;
    let dims = model.dims();
    let rank = model.rank();
    println!("serving rank-{rank} model over dims {dims:?}");

    let clients: usize = args.get("clients", 4)?;
    let queries: usize = args.get("queries", 2000)?;
    let k: usize = args.get("k", 10)?;
    let free_mode: usize = args.get("free-mode", 0)?;
    if free_mode >= dims.len() {
        return Err(format!("--free-mode {free_mode} out of range for {dims:?}"));
    }
    let seed: u64 = args.get("seed", 0)?;
    let warm: usize = args.get("warm-requests", 100)?;

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(model);
    let engine = Arc::new(ServeEngine::new(registry));

    // Deterministic per-client query coordinates.
    let coord_for = |i: u64| -> Vec<sptensor::Idx> {
        dims.iter()
            .enumerate()
            .map(|(m, &d)| {
                ((i ^ seed)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(m as u64 * 0x85ebca6b)
                    % d as u64) as sptensor::Idx
            })
            .collect()
    };

    // Closed loop: each client issues its queries back to back; one
    // latency sample per query, throughput over the whole wall. Each
    // client first runs `warm` untimed requests so scratch pools and
    // slot cells reach capacity before measurement — the timed loop
    // then sees the warm, allocation-free path.
    let run_scenario = |name: &str, f: &QueryFn<'_>| {
        let (mut lats, wall) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut lats = Vec::with_capacity(queries);
                        let mut hits = Vec::new();
                        for i in 0..warm {
                            f((c * warm + i) as u64, &mut hits);
                        }
                        let timed = Instant::now();
                        for i in 0..queries {
                            let id = (c * queries + i) as u64;
                            let t = Instant::now();
                            f(id, &mut hits);
                            lats.push(t.elapsed().as_nanos() as u64);
                        }
                        (lats, timed.elapsed().as_secs_f64())
                    })
                })
                .collect();
            let mut lats = Vec::with_capacity(clients * queries);
            // Warm-up is excluded: the wall is the slowest client's
            // timed loop only.
            let mut wall = 0.0f64;
            for h in handles {
                let (l, w) = h.join().expect("client thread");
                lats.extend(l);
                wall = wall.max(w);
            }
            (lats, wall)
        });
        lats.sort_unstable();
        let pct = |p: f64| lats[(p * (lats.len() - 1) as f64).round() as usize] as f64 / 1e3;
        println!(
            "{name:<16} qps {:>9.0}  p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us",
            lats.len() as f64 / wall,
            pct(0.50),
            pct(0.95),
            pct(0.99)
        );
    };

    println!("{clients} clients x {queries} queries per scenario ({warm} warm-up each)\n");
    let e = &engine;
    run_scenario("point/batched", &|i, _hits| {
        e.predict(&coord_for(i)).expect("predict");
    });
    run_scenario("point/direct", &|i, _hits| {
        e.predict_direct(&coord_for(i)).expect("predict");
    });
    let tq = |i: u64| TopKQuery {
        free_mode,
        anchor: coord_for(i),
        k,
    };
    run_scenario("topk/pruned", &|i, hits| {
        e.topk_into_with(&tq(i), true, hits).expect("topk");
    });
    run_scenario("topk/brute", &|i, hits| {
        e.topk_into_with(&tq(i), false, hits).expect("topk");
    });
    run_scenario("topk/approx", &|i, hits| {
        e.topk_approx_into(&tq(i), hits).expect("topk");
    });
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    use aoadmm_served::{Daemon, DaemonConfig};
    use std::time::Duration;

    setup_threads(args)?;
    let model = load_or_fit_model(args)?;
    let dims = model.dims();
    let rank = model.rank();

    let cfg = DaemonConfig {
        addr: args
            .get_str("addr")
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        split_mode: args.get("split-mode", 0)?,
        nshards: args.get("shards", 1)?,
        workers: args.get("workers", 2)?,
        batch_max: args.get("batch-max", 64)?,
        batch_deadline: Duration::from_micros(args.get("batch-deadline-us", 500)?),
        rate: args.get("rate", f64::INFINITY)?,
        burst: args.get("burst", 64.0)?,
        approx: aoadmm_serve::ApproxPolicy {
            oversample: args.get("oversample", 4)?,
            guard: args.get("guard", 0.01)?,
        },
    };
    if cfg.split_mode >= dims.len() {
        return Err(format!(
            "--split-mode {} out of range for {dims:?}",
            cfg.split_mode
        ));
    }
    let nshards = cfg.nshards;
    let daemon = Daemon::bind(cfg).map_err(|e| e.to_string())?;
    daemon
        .registry()
        .set_swap_trace(std::sync::Arc::new(|epoch, dims| {
            eprintln!("swap: epoch {epoch} dims {dims:?}");
        }));
    let epoch = daemon
        .registry()
        .publish(model)
        .map_err(|e| e.to_string())?;
    let addr = daemon.local_addr();
    println!(
        "serving rank-{rank} model over dims {dims:?} on {addr} \
         ({nshards} shard(s), epoch {epoch})"
    );
    if let Some(path) = args.get_str("port-file") {
        std::fs::write(&path, format!("{}\n", addr.port())).map_err(|e| e.to_string())?;
    }
    // Blocks until a wire Shutdown drains the daemon.
    daemon.wait();
    println!("daemon drained and exited");
    Ok(())
}

fn serve_client(args: &Args) -> Result<(), String> {
    use aoadmm_served::{Tier, WireClient};

    let addr = args.require("addr")?;
    let mut client = WireClient::connect(&addr).map_err(|e| e.to_string())?;
    let parse_coord = |spec: &str| -> Result<Vec<sptensor::Idx>, String> {
        spec.split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad coordinate entry {s:?}"))
            })
            .collect()
    };

    let mut acted = false;
    if args.has("ping") {
        client.ping().map_err(|e| e.to_string())?;
        println!("pong");
        acted = true;
    }
    if let Some(spec) = args.get_str("predict") {
        let coord = parse_coord(&spec)?;
        let (epoch, value) = client.predict(&coord).map_err(|e| e.to_string())?;
        println!("epoch {epoch}: {value}");
        acted = true;
    }
    if let Some(spec) = args.get_str("topk") {
        let anchor = parse_coord(&spec)?;
        let tier = if args.has("approx") {
            Tier::Approx
        } else {
            Tier::Exact
        };
        let (epoch, hits) = client
            .topk(tier, args.get("free-mode", 0)?, &anchor, args.get("k", 10)?)
            .map_err(|e| e.to_string())?;
        println!("epoch {epoch}: {} hit(s)", hits.len());
        for (rank_i, (id, score)) in hits.iter().enumerate() {
            println!("{:>4}. id {id:<10} score {score}", rank_i + 1);
        }
        acted = true;
    }
    if args.has("stats") {
        let report = client.stats().map_err(|e| e.to_string())?;
        println!(
            "{:<12} {:>10} {:>8} {:>10} {:>10} {:>10}",
            "endpoint", "requests", "errors", "p50", "p95", "p99"
        );
        for ep in &report.endpoints {
            let us = |q: f64| ep.quantile_ns(q) as f64 / 1e3;
            println!(
                "{:<12} {:>10} {:>8} {:>8.1}us {:>8.1}us {:>8.1}us",
                ep.endpoint.name(),
                ep.requests,
                ep.errors,
                us(0.50),
                us(0.95),
                us(0.99)
            );
        }
        acted = true;
    }
    if args.has("shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("daemon acknowledged shutdown");
        acted = true;
    }
    if !acted {
        return Err(
            "serve-client needs an action: --ping, --predict I,J,K, --topk I,J,K, \
             --stats or --shutdown"
                .to_string(),
        );
    }
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let tensor = load_input(args)?;
    print!("{}", TensorStats::compute(&tensor).summary());
    Ok(())
}

/// Dimension-tree slab reuse totals over a whole run (0/0 off the
/// dim-tree path).
fn slab_totals(trace: &aoadmm::FactorizeTrace) -> (u64, u64) {
    let mut hits = 0u64;
    let mut misses = 0u64;
    for it in &trace.iterations {
        for m in &it.modes {
            hits += m.slab_hits as u64;
            misses += m.slab_misses as u64;
        }
    }
    (hits, misses)
}

fn write_trace(
    trace: &aoadmm::FactorizeTrace,
    constraints: &[String],
    path: &str,
) -> Result<(), String> {
    use std::io::Write;
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = std::io::BufWriter::new(f);
    writeln!(
        w,
        "iter,seconds,rel_error,slab_hits,slab_misses,substrates,inner,constraints"
    )
    .map_err(|e| e.to_string())?;
    let constraints = constraints.join("|");
    for it in &trace.iterations {
        let hits: u64 = it.modes.iter().map(|m| m.slab_hits as u64).sum();
        let misses: u64 = it.modes.iter().map(|m| m.slab_misses as u64).sum();
        // Per-mode strategy labels ('-' for the one-CSF non-root path,
        // which has none), so --csf auto decisions land in the trace.
        let substrates: Vec<&str> = it
            .modes
            .iter()
            .map(|m| m.mttkrp_strategy.map(|s| s.name()).unwrap_or("-"))
            .collect();
        // Per-mode inner-solver backend, '-' for updates outside the
        // AO-ADMM driver (ALS, PGD).
        let inner: Vec<&str> = it
            .modes
            .iter()
            .map(|m| m.inner.map(|k| k.name()).unwrap_or("-"))
            .collect();
        writeln!(
            w,
            "{},{:.6},{:.8},{hits},{misses},{},{},{constraints}",
            it.iter,
            it.elapsed.as_secs_f64(),
            it.rel_error,
            substrates.join("|"),
            inner.join("|")
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_runs() {
        assert!(run(&["help".to_string()]).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["bogus".to_string()]).is_err());
    }

    #[test]
    fn end_to_end_generate_stats_factorize() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_test.tns");
        let model = dir.join("aoadmm_cli_test.model");
        let trace = dir.join("aoadmm_cli_test.csv");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("30,20,25"),
            s("--nnz"),
            s("800"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();
        assert!(tns.exists());

        run(&[s("stats"), s("--input"), s(tns.to_str().unwrap())]).unwrap();

        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("5"),
            s("--constraint"),
            s("nonneg-l1:0.1"),
            s("--mode-constraint"),
            s("1=simplex"),
            s("--output"),
            s(model.to_str().unwrap()),
            s("--trace"),
            s(trace.to_str().unwrap()),
        ])
        .unwrap();
        assert!(model.exists());
        assert!(trace.exists());

        // The saved model loads back.
        let m = model_io::load_model(&model).unwrap();
        assert_eq!(m.rank(), 4);

        // Checkpoint + resume through the CLI.
        let ck = dir.join("aoadmm_cli_test.ckpt");
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--checkpoint"),
            s(ck.to_str().unwrap()),
        ])
        .unwrap();
        assert!(ck.exists());
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--resume"),
            s(ck.to_str().unwrap()),
        ])
        .unwrap();
        let _ = std::fs::remove_file(ck);

        run(&[
            s("als"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--max-outer"),
            s("3"),
        ])
        .unwrap();

        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn sharded_factorize_matches_shared_memory() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_shard.tns");
        let m1 = dir.join("aoadmm_cli_shard_1.model");
        let m3 = dir.join("aoadmm_cli_shard_3.model");
        let ck = dir.join("aoadmm_cli_shard.ckpt");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("40,24,28"),
            s("--nnz"),
            s("900"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();

        // Fixed inner work (zero inner tolerance, fixed iteration count)
        // makes the trajectory shard-count invariant.
        let factorize_to = |extra: &[String], out: &std::path::Path| {
            let mut v = vec![
                s("factorize"),
                s("--input"),
                s(tns.to_str().unwrap()),
                s("--rank"),
                s("4"),
                s("--max-outer"),
                s("4"),
                s("--tol"),
                s("0"),
                s("--inner-tol"),
                s("0"),
                s("--max-inner"),
                s("8"),
                s("--output"),
                s(out.to_str().unwrap()),
            ];
            v.extend_from_slice(extra);
            run(&v).unwrap();
        };
        factorize_to(&[], &m1);
        factorize_to(&[s("--shards"), s("3"), s("--shard-threads"), s("1")], &m3);

        let shared = model_io::load_model(&m1).unwrap();
        let sharded = model_io::load_model(&m3).unwrap();
        for m in 0..3 {
            let d = shared.factor(m).max_abs_diff(sharded.factor(m));
            assert!(d < 1e-6, "mode {m}: sharded CLI run diverged by {d}");
        }

        // Sharded checkpoint + sharded resume round-trips.
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--shards"),
            s("2"),
            s("--checkpoint"),
            s(ck.to_str().unwrap()),
        ])
        .unwrap();
        assert!(ck.exists());
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--shards"),
            s("2"),
            s("--resume"),
            s(ck.to_str().unwrap()),
        ])
        .unwrap();

        for f in [&tns, &m1, &m3, &ck] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn dimtree_policy_trace_reports_slab_reuse() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_dimtree.tns");
        let trace = dir.join("aoadmm_cli_dimtree.csv");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("24,18,20"),
            s("--nnz"),
            s("700"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();

        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("4"),
            s("--csf"),
            s("dimtree"),
            s("--trace"),
            s(trace.to_str().unwrap()),
        ])
        .unwrap();

        let csv = std::fs::read_to_string(&trace).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "iter,seconds,rel_error,slab_hits,slab_misses,substrates,inner,constraints"
        );
        let mut hits = 0u64;
        let mut misses = 0u64;
        for line in lines {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 8, "bad row {line:?}");
            hits += cols[3].parse::<u64>().unwrap();
            misses += cols[4].parse::<u64>().unwrap();
            assert_eq!(cols[5], "dim-tree|dim-tree|dim-tree", "bad substrates");
            assert_eq!(cols[6], "admm|admm|admm", "bad inner backend");
        }
        assert!(hits > 0, "dim-tree run recorded no slab reuse:\n{csv}");
        assert!(misses > 0, "dim-tree run recorded no slab rebuilds:\n{csv}");

        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn alto_policy_trace_reports_substrate() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_alto.tns");
        let trace = dir.join("aoadmm_cli_alto.csv");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("24,18,20"),
            s("--nnz"),
            s("700"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();

        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("3"),
            s("--csf"),
            s("alto"),
            s("--trace"),
            s(trace.to_str().unwrap()),
        ])
        .unwrap();

        let csv = std::fs::read_to_string(&trace).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "iter,seconds,rel_error,slab_hits,slab_misses,substrates,inner,constraints"
        );
        for line in lines {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 8, "bad row {line:?}");
            assert_eq!(cols[5], "alto|alto|alto", "bad substrates in {line:?}");
        }

        // `--csf auto` parses and runs end to end.
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--csf"),
            s("auto"),
        ])
        .unwrap();

        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn end_to_end_pds_factorize() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_pds.tns");
        let model = dir.join("aoadmm_cli_pds.model");
        let trace = dir.join("aoadmm_cli_pds.csv");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("24,18,20"),
            s("--nnz"),
            s("700"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();

        // PDS backend with a composite TV constraint on mode 2, through
        // the full CLI surface: parse, fit, save, trace.
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("5"),
            s("--inner-solver"),
            s("pds"),
            s("--constraint"),
            s("nonneg"),
            s("--mode-constraint"),
            s("2=tv:0.1"),
            s("--output"),
            s(model.to_str().unwrap()),
            s("--trace"),
            s(trace.to_str().unwrap()),
        ])
        .unwrap();
        assert!(model.exists());
        let m = model_io::load_model(&model).unwrap();
        assert_eq!(m.rank(), 4);

        // The trace records the backend and the per-mode constraints.
        let csv = std::fs::read_to_string(&trace).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "iter,seconds,rel_error,slab_hits,slab_misses,substrates,inner,constraints"
        );
        for line in lines {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 8, "bad row {line:?}");
            assert_eq!(cols[6], "pds|pds|pds", "bad inner backend in {line:?}");
            assert_eq!(
                cols[7], "non-negative|non-negative|unconstrained + l1-conjugate(first-difference)",
                "bad constraints in {line:?}"
            );
        }

        // A composite constraint under the default ADMM backend is a
        // configuration error, caught before any work runs.
        assert!(run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--max-outer"),
            s("2"),
            s("--constraint"),
            s("tv:0.1"),
        ])
        .is_err());

        // Unknown backends are rejected.
        assert!(run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("4"),
            s("--inner-solver"),
            s("cg"),
        ])
        .is_err());

        for f in [&tns, &model, &trace] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn end_to_end_stream() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_stream.tns");
        let model = dir.join("aoadmm_cli_stream.model");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("25,20,15"),
            s("--nnz"),
            s("600"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();

        run(&[
            s("stream"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--batches"),
            s("4"),
            s("--base-frac"),
            s("0.6"),
            s("--max-outer"),
            s("8"),
            s("--refit-outer"),
            s("3"),
            s("--min-merge"),
            s("50"),
            s("--compare-cold"),
            s("--output"),
            s(model.to_str().unwrap()),
        ])
        .unwrap();
        assert!(model.exists());
        let m = model_io::load_model(&model).unwrap();
        assert_eq!(m.rank(), 3);

        // Background merges and decay through the CLI surface.
        run(&[
            s("stream"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--batches"),
            s("3"),
            s("--max-outer"),
            s("6"),
            s("--refit-outer"),
            s("2"),
            s("--decay"),
            s("0.95"),
            s("--min-merge"),
            s("50"),
            s("--background-merge"),
        ])
        .unwrap();

        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn end_to_end_serve_bench() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_serve.tns");
        let model = dir.join("aoadmm_cli_serve.model");
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("20,15,10"),
            s("--nnz"),
            s("400"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--max-outer"),
            s("3"),
            s("--output"),
            s(model.to_str().unwrap()),
        ])
        .unwrap();

        // Serve the saved model, tiny load.
        run(&[
            s("serve-bench"),
            s("--model"),
            s(model.to_str().unwrap()),
            s("--clients"),
            s("2"),
            s("--queries"),
            s("50"),
            s("--k"),
            s("5"),
            s("--free-mode"),
            s("1"),
        ])
        .unwrap();

        // Or fit on the fly from a tensor.
        run(&[
            s("serve-bench"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--max-outer"),
            s("2"),
            s("--clients"),
            s("1"),
            s("--queries"),
            s("20"),
        ])
        .unwrap();

        // Free mode must be in range.
        assert!(run(&[
            s("serve-bench"),
            s("--model"),
            s(model.to_str().unwrap()),
            s("--queries"),
            s("1"),
            s("--free-mode"),
            s("9"),
        ])
        .is_err());

        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn end_to_end_serve_daemon_and_client() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_daemon.tns");
        let model = dir.join("aoadmm_cli_daemon.model");
        let port_file = dir.join("aoadmm_cli_daemon.port");
        let _ = std::fs::remove_file(&port_file);
        let s = |x: &str| x.to_string();

        run(&[
            s("generate"),
            s("--dims"),
            s("24,12,10"),
            s("--nnz"),
            s("500"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();
        run(&[
            s("factorize"),
            s("--input"),
            s(tns.to_str().unwrap()),
            s("--rank"),
            s("3"),
            s("--max-outer"),
            s("3"),
            s("--output"),
            s(model.to_str().unwrap()),
        ])
        .unwrap();

        // The daemon blocks until a wire shutdown, so it gets a thread;
        // the port file is the rendezvous.
        let daemon = {
            let model = model.clone();
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                run(&[
                    s("serve"),
                    s("--model"),
                    s(model.to_str().unwrap()),
                    s("--shards"),
                    s("2"),
                    s("--port-file"),
                    s(port_file.to_str().unwrap()),
                ])
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(std::time::Instant::now() < deadline, "daemon never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");

        for action in [
            vec![s("--ping")],
            vec![s("--predict"), s("1,2,3")],
            vec![s("--topk"), s("0,2,3"), s("--k"), s("5")],
            vec![s("--topk"), s("0,2,3"), s("--k"), s("5"), s("--approx")],
            vec![s("--stats")],
        ] {
            let mut argv = vec![s("serve-client"), s("--addr"), addr.clone()];
            argv.extend(action);
            run(&argv).unwrap();
        }
        // A bad coordinate is a typed remote error, not a hang.
        assert!(run(&[
            s("serve-client"),
            s("--addr"),
            addr.clone(),
            s("--predict"),
            s("999,0,0"),
        ])
        .is_err());
        // serve-client with no action is rejected client-side.
        assert!(run(&[s("serve-client"), s("--addr"), addr.clone()]).is_err());

        run(&[s("serve-client"), s("--addr"), addr, s("--shutdown")]).unwrap();
        daemon.join().unwrap().unwrap();

        for f in [&tns, &model, &port_file] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn factorize_requires_input() {
        assert!(run(&[
            "factorize".to_string(),
            "--rank".to_string(),
            "3".to_string()
        ])
        .is_err());
    }

    #[test]
    fn generate_analog_small() {
        let dir = std::env::temp_dir();
        let tns = dir.join("aoadmm_cli_analog.tns");
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--analog"),
            s("patents"),
            s("--scale"),
            s("0.001"),
            s("--output"),
            s(tns.to_str().unwrap()),
        ])
        .unwrap();
        assert!(tns.exists());
        let _ = std::fs::remove_file(tns);
    }
}
