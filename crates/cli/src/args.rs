//! Flag parsing for the CLI: `--key value` pairs, bare `--flag`
//! booleans, and repeatable keys.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, Vec<String>>,
}

impl Args {
    /// Parse the arguments after the subcommand. A `--key` followed by a
    /// non-`--` token is a key/value pair; otherwise it is a boolean
    /// flag. Bare positional tokens are rejected.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument {tok:?}"))?;
            if key.is_empty() {
                return Err("empty flag `--`".into());
            }
            let entry = values.entry(key.to_string()).or_default();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                entry.push(argv[i + 1].clone());
                i += 2;
            } else {
                entry.push("true".to_string());
                i += 1;
            }
        }
        Ok(Args { values })
    }

    /// Whether the flag appeared at all.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Last value of a flag, as a string.
    pub fn get_str(&self, key: &str) -> Option<String> {
        self.values.get(key).and_then(|v| v.last()).cloned()
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, key: &str) -> Vec<String> {
        self.values.get(key).cloned().unwrap_or_default()
    }

    /// Parse a flag into `T`, with a default when absent.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get_str(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key} has invalid value {v:?}")),
        }
    }

    /// Parse a flag into `T`, erroring when absent or invalid.
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get_str(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{key} has invalid value {v:?}")),
        }
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.get_str(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Required parsed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.require(key)?;
        v.parse()
            .map_err(|_| format!("flag --{key} has invalid value {v:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(&toks.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_and_boolean() {
        let a = parse(&["--rank", "50", "--adaptive-rho", "--tol", "1e-4"]);
        assert_eq!(a.get::<usize>("rank", 0).unwrap(), 50);
        assert!(a.has("adaptive-rho"));
        assert_eq!(a.get::<f64>("tol", 0.0).unwrap(), 1e-4);
        assert_eq!(a.get::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn repeatable_flags_collect() {
        let a = parse(&[
            "--mode-constraint",
            "0=nonneg",
            "--mode-constraint",
            "1=simplex",
        ]);
        assert_eq!(a.get_all("mode-constraint").len(), 2);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&["oops".to_string()]).is_err());
        assert!(Args::parse(&["--".to_string()]).is_err());
    }

    #[test]
    fn invalid_parse_is_error() {
        let a = parse(&["--rank", "abc"]);
        assert!(a.get::<usize>("rank", 0).is_err());
        assert!(a.require_parsed::<usize>("rank").is_err());
        assert!(a.get_opt::<usize>("rank").is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        assert!(a.require("input").is_err());
        assert!(a.get_opt::<usize>("threads").unwrap().is_none());
    }
}
