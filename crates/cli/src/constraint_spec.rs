//! Textual constraint specifications for the CLI.
//!
//! Grammar (case-insensitive names):
//!
//! ```text
//! SPEC := none | nonneg | simplex
//!       | l1:LAMBDA | nonneg-l1:LAMBDA | ridge:LAMBDA
//!       | box:LO,HI | maxnorm:BOUND
//!       | tv:LAMBDA | box-tv:LO,HI,LAMBDA      (PDS inner solver only)
//! ```

use admm::{constraints, Prox};
use aoadmm::prelude::{pds_constraints, PdsConstraint};
use std::sync::Arc;

/// A parsed constraint: either a plain row-separable proximity operator
/// (any inner solver can run it) or a composite `g(x) + h(Lx)` term that
/// only the PDS backend can express.
pub enum ConstraintSpec {
    /// Row-separable prox — ADMM or PDS.
    Prox(Arc<dyn Prox>),
    /// Composite constraint — requires `--inner-solver pds`.
    Composite(Arc<PdsConstraint>),
}

impl ConstraintSpec {
    /// Human-readable description, for the trace CSV.
    pub fn describe(&self) -> String {
        match self {
            ConstraintSpec::Prox(p) => p.name().to_string(),
            ConstraintSpec::Composite(c) => c.describe(),
        }
    }
}

/// Parse a constraint specification, accepting both the row-separable
/// prox grammar and the composite (PDS-only) forms.
pub fn parse_constraint_spec(spec: &str) -> Result<ConstraintSpec, String> {
    let trimmed = spec.trim();
    let (name, arg) = match trimmed.split_once(':') {
        Some((n, a)) => (n.trim().to_lowercase(), Some(a.trim())),
        None => (trimmed.to_lowercase(), None),
    };
    match name.as_str() {
        "tv" => {
            let a =
                arg.ok_or_else(|| "constraint \"tv\" needs a lambda (e.g. tv:0.1)".to_string())?;
            let lambda: f64 = a
                .parse()
                .map_err(|_| format!("constraint \"tv\": bad lambda {a:?}"))?;
            Ok(ConstraintSpec::Composite(pds_constraints::tv(positive(
                lambda,
            )?)))
        }
        "box-tv" | "boxtv" => {
            let a = arg.ok_or_else(|| {
                "box-tv needs bounds and a lambda, e.g. box-tv:0,1,0.1".to_string()
            })?;
            let parts: Vec<&str> = a.split(',').map(str::trim).collect();
            let [lo, hi, lambda] = parts.as_slice() else {
                return Err(format!("box-tv expects LO,HI,LAMBDA; got {a:?}"));
            };
            let lo: f64 = lo
                .parse()
                .map_err(|_| format!("bad box-tv lower bound {lo:?}"))?;
            let hi: f64 = hi
                .parse()
                .map_err(|_| format!("bad box-tv upper bound {hi:?}"))?;
            let lambda: f64 = lambda
                .parse()
                .map_err(|_| format!("bad box-tv lambda {lambda:?}"))?;
            if lo > hi {
                return Err(format!("box-tv bounds out of order: {lo} > {hi}"));
            }
            Ok(ConstraintSpec::Composite(pds_constraints::bounded_tv(
                lo,
                hi,
                positive(lambda)?,
            )))
        }
        _ => parse_constraint(trimmed).map(ConstraintSpec::Prox),
    }
}

/// Parse a constraint specification into a proximity operator.
pub fn parse_constraint(spec: &str) -> Result<Arc<dyn Prox>, String> {
    let spec = spec.trim();
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n.trim().to_lowercase(), Some(a.trim())),
        None => (spec.to_lowercase(), None),
    };
    let need_num = |what: &str| -> Result<f64, String> {
        let a = arg.ok_or_else(|| format!("constraint {name:?} needs {what} (e.g. {name}:0.1)"))?;
        a.parse()
            .map_err(|_| format!("constraint {name:?}: bad {what} {a:?}"))
    };
    match name.as_str() {
        "none" | "unconstrained" => no_arg(arg, constraints::unconstrained()),
        "nonneg" | "nn" => no_arg(arg, constraints::nonneg()),
        "simplex" => no_arg(arg, constraints::simplex()),
        "l1" | "lasso" => Ok(constraints::lasso(positive(need_num("a lambda")?)?)),
        "nonneg-l1" | "nnl1" => Ok(constraints::nonneg_lasso(positive(need_num("a lambda")?)?)),
        "ridge" | "l2" => Ok(constraints::ridge(positive(need_num("a lambda")?)?)),
        "maxnorm" => Ok(constraints::max_row_norm(positive(need_num("a bound")?)?)),
        "box" => {
            let a = arg.ok_or_else(|| "box needs bounds, e.g. box:0,1".to_string())?;
            let (lo, hi) = a
                .split_once(',')
                .ok_or_else(|| format!("box bounds must be LO,HI; got {a:?}"))?;
            let lo: f64 = lo
                .trim()
                .parse()
                .map_err(|_| format!("bad box lower bound {lo:?}"))?;
            let hi: f64 = hi
                .trim()
                .parse()
                .map_err(|_| format!("bad box upper bound {hi:?}"))?;
            if lo > hi {
                return Err(format!("box bounds out of order: {lo} > {hi}"));
            }
            Ok(constraints::boxed(lo, hi))
        }
        "tv" | "box-tv" | "boxtv" => Err(format!(
            "constraint {name:?} is composite and only runs under the PDS backend \
             (`factorize --inner-solver pds`)"
        )),
        other => Err(format!("unknown constraint {other:?}; see `aoadmm help`")),
    }
}

fn no_arg(arg: Option<&str>, c: Arc<dyn Prox>) -> Result<Arc<dyn Prox>, String> {
    match arg {
        Some(a) => Err(format!(
            "constraint {:?} takes no argument (got {a:?})",
            c.name()
        )),
        None => Ok(c),
    }
}

fn positive(x: f64) -> Result<f64, String> {
    if x > 0.0 && x.is_finite() {
        Ok(x)
    } else {
        Err(format!("parameter must be positive and finite, got {x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_names() {
        assert_eq!(parse_constraint("nonneg").unwrap().name(), "non-negative");
        assert_eq!(parse_constraint("NONE").unwrap().name(), "unconstrained");
        assert_eq!(parse_constraint("simplex").unwrap().name(), "row-simplex");
        assert_eq!(parse_constraint(" nn ").unwrap().name(), "non-negative");
    }

    #[test]
    fn parameterized() {
        assert_eq!(parse_constraint("l1:0.1").unwrap().name(), "l1");
        assert_eq!(
            parse_constraint("nonneg-l1:0.5").unwrap().name(),
            "non-negative l1"
        );
        assert_eq!(parse_constraint("ridge:2").unwrap().name(), "l2");
        assert_eq!(parse_constraint("box:0,1").unwrap().name(), "box");
        assert_eq!(
            parse_constraint("maxnorm:3.5").unwrap().name(),
            "max-row-norm"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_constraint("l1").is_err()); // missing lambda
        assert!(parse_constraint("l1:x").is_err());
        assert!(parse_constraint("l1:-1").is_err());
        assert!(parse_constraint("nonneg:0.1").is_err()); // spurious arg
        assert!(parse_constraint("box:1").is_err());
        assert!(parse_constraint("box:2,1").is_err());
        assert!(parse_constraint("wat").is_err());
    }

    #[test]
    fn composite_specs() {
        match parse_constraint_spec("tv:0.1").unwrap() {
            ConstraintSpec::Composite(c) => {
                assert_eq!(
                    c.describe(),
                    "unconstrained + l1-conjugate(first-difference)"
                );
            }
            ConstraintSpec::Prox(_) => panic!("tv parsed as a plain prox"),
        }
        match parse_constraint_spec("box-tv:0,1,0.5").unwrap() {
            ConstraintSpec::Composite(c) => {
                assert_eq!(c.describe(), "box + l1-conjugate(first-difference)");
            }
            ConstraintSpec::Prox(_) => panic!("box-tv parsed as a plain prox"),
        }
        // The prox grammar falls through unchanged.
        assert_eq!(
            parse_constraint_spec("simplex").unwrap().describe(),
            "row-simplex"
        );
    }

    #[test]
    fn composite_specs_reject_bad_input() {
        assert!(parse_constraint_spec("tv").is_err()); // missing lambda
        assert!(parse_constraint_spec("tv:x").is_err());
        assert!(parse_constraint_spec("tv:-1").is_err());
        assert!(parse_constraint_spec("box-tv:0,1").is_err());
        assert!(parse_constraint_spec("box-tv:1,0,0.5").is_err());
        assert!(parse_constraint_spec("wat").is_err());
        // The prox-only parser names the PDS requirement for composites.
        let err = parse_constraint("tv:0.1")
            .err()
            .expect("tv must be rejected");
        assert!(err.contains("PDS"), "{err}");
    }
}
