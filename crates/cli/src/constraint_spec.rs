//! Textual constraint specifications for the CLI.
//!
//! Grammar (case-insensitive names):
//!
//! ```text
//! SPEC := none | nonneg | simplex
//!       | l1:LAMBDA | nonneg-l1:LAMBDA | ridge:LAMBDA
//!       | box:LO,HI | maxnorm:BOUND
//! ```

use admm::{constraints, Prox};
use std::sync::Arc;

/// Parse a constraint specification into a proximity operator.
pub fn parse_constraint(spec: &str) -> Result<Arc<dyn Prox>, String> {
    let spec = spec.trim();
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n.trim().to_lowercase(), Some(a.trim())),
        None => (spec.to_lowercase(), None),
    };
    let need_num = |what: &str| -> Result<f64, String> {
        let a = arg.ok_or_else(|| format!("constraint {name:?} needs {what} (e.g. {name}:0.1)"))?;
        a.parse()
            .map_err(|_| format!("constraint {name:?}: bad {what} {a:?}"))
    };
    match name.as_str() {
        "none" | "unconstrained" => no_arg(arg, constraints::unconstrained()),
        "nonneg" | "nn" => no_arg(arg, constraints::nonneg()),
        "simplex" => no_arg(arg, constraints::simplex()),
        "l1" | "lasso" => Ok(constraints::lasso(positive(need_num("a lambda")?)?)),
        "nonneg-l1" | "nnl1" => Ok(constraints::nonneg_lasso(positive(need_num("a lambda")?)?)),
        "ridge" | "l2" => Ok(constraints::ridge(positive(need_num("a lambda")?)?)),
        "maxnorm" => Ok(constraints::max_row_norm(positive(need_num("a bound")?)?)),
        "box" => {
            let a = arg.ok_or_else(|| "box needs bounds, e.g. box:0,1".to_string())?;
            let (lo, hi) = a
                .split_once(',')
                .ok_or_else(|| format!("box bounds must be LO,HI; got {a:?}"))?;
            let lo: f64 = lo
                .trim()
                .parse()
                .map_err(|_| format!("bad box lower bound {lo:?}"))?;
            let hi: f64 = hi
                .trim()
                .parse()
                .map_err(|_| format!("bad box upper bound {hi:?}"))?;
            if lo > hi {
                return Err(format!("box bounds out of order: {lo} > {hi}"));
            }
            Ok(constraints::boxed(lo, hi))
        }
        other => Err(format!("unknown constraint {other:?}; see `aoadmm help`")),
    }
}

fn no_arg(arg: Option<&str>, c: Arc<dyn Prox>) -> Result<Arc<dyn Prox>, String> {
    match arg {
        Some(a) => Err(format!(
            "constraint {:?} takes no argument (got {a:?})",
            c.name()
        )),
        None => Ok(c),
    }
}

fn positive(x: f64) -> Result<f64, String> {
    if x > 0.0 && x.is_finite() {
        Ok(x)
    } else {
        Err(format!("parameter must be positive and finite, got {x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_names() {
        assert_eq!(parse_constraint("nonneg").unwrap().name(), "non-negative");
        assert_eq!(parse_constraint("NONE").unwrap().name(), "unconstrained");
        assert_eq!(parse_constraint("simplex").unwrap().name(), "row-simplex");
        assert_eq!(parse_constraint(" nn ").unwrap().name(), "non-negative");
    }

    #[test]
    fn parameterized() {
        assert_eq!(parse_constraint("l1:0.1").unwrap().name(), "l1");
        assert_eq!(
            parse_constraint("nonneg-l1:0.5").unwrap().name(),
            "non-negative l1"
        );
        assert_eq!(parse_constraint("ridge:2").unwrap().name(), "l2");
        assert_eq!(parse_constraint("box:0,1").unwrap().name(), "box");
        assert_eq!(
            parse_constraint("maxnorm:3.5").unwrap().name(),
            "max-row-norm"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_constraint("l1").is_err()); // missing lambda
        assert!(parse_constraint("l1:x").is_err());
        assert!(parse_constraint("l1:-1").is_err());
        assert!(parse_constraint("nonneg:0.1").is_err()); // spurious arg
        assert!(parse_constraint("box:1").is_err());
        assert!(parse_constraint("box:2,1").is_err());
        assert!(parse_constraint("wat").is_err());
    }
}
