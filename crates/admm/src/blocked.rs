//! Blockwise ADMM (Section IV-B of the paper).
//!
//! The row-separable objective is split into blocks of rows, each of which
//! is an *independent* ADMM problem sharing only the Cholesky factor of
//! `G + rho*I`. Benefits, per the paper:
//!
//! * **convergence** — each block iterates until *it* converges, so
//!   high-signal rows (heavy power-law slices) get the extra iterations
//!   they need while already-converged rows stop early;
//! * **cache locality** — a block of ~50 rows of `K`, `H` and `U` fits in
//!   L1/L2 and stays resident across all of its inner iterations, turning
//!   a memory-bound loop into a compute-bound one;
//! * **parallelism** — blocks run with no synchronization at all; dynamic
//!   (work-stealing) scheduling balances blocks that need different
//!   iteration counts.

use crate::config::AdmmConfig;
use crate::prox::Prox;
use crate::solver::{run_block, AdmmStats};
use crate::workspace::BlockScratch;
use rayon::prelude::*;
use splinalg::{Cholesky, DMat};

/// Run the blockwise strategy. Called via [`crate::admm_update_ws`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_blocked(
    chol: &Cholesky,
    rho: f64,
    gram: &DMat,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
    scratch_pool: &mut Vec<BlockScratch>,
) -> AdmmStats {
    let f = k.ncols();
    let nrows = k.nrows();
    if nrows == 0 {
        return AdmmStats {
            iterations: 0,
            row_iterations: 0,
            blocks_converged: 0,
            blocks: 0,
            primal: 0.0,
            dual: 0.0,
        };
    }
    // Saturate: a block size of usize::MAX means "one block" and must
    // not overflow the chunk arithmetic.
    let chunk = cfg.block_size.max(1).saturating_mul(f);
    let nblocks = h.as_slice().len().div_ceil(chunk);

    // Grow the per-block scratch pool outside the parallel region (no-op
    // once warm), so the row sweep itself never allocates.
    if scratch_pool.len() < nblocks {
        scratch_pool.resize_with(nblocks, BlockScratch::default);
    }
    let scratch = &mut scratch_pool[..nblocks];
    for b in scratch.iter_mut() {
        b.ensure(f);
    }

    // Each rayon job owns disjoint row blocks of H/U, the matching block
    // of K, and its entry of the scratch pool; outcomes are written into
    // the scratch instead of collected into a fresh Vec.
    h.as_mut_slice()
        .par_chunks_mut(chunk)
        .zip(u.as_mut_slice().par_chunks_mut(chunk))
        .zip(k.as_slice().par_chunks(chunk))
        .zip(scratch.par_iter_mut())
        .for_each(|(((hb, ub), kb), sc)| {
            sc.rows = kb.len() / f;
            let out = run_block(
                chol,
                rho,
                gram,
                cfg.adaptive_rho,
                cfg.relaxation,
                kb,
                hb,
                ub,
                f,
                prox,
                cfg.tol,
                cfg.max_inner,
                sc,
            );
            sc.outcome = out;
        });

    let mut stats = AdmmStats {
        iterations: 0,
        row_iterations: 0,
        blocks_converged: 0,
        blocks: nblocks,
        primal: 0.0,
        dual: 0.0,
    };
    for sc in scratch_pool[..nblocks].iter() {
        let o = &sc.outcome;
        stats.iterations = stats.iterations.max(o.iterations);
        stats.row_iterations += (o.iterations * sc.rows) as u64;
        if o.converged {
            stats.blocks_converged += 1;
        }
        stats.primal = stats.primal.max(o.primal);
        stats.dual = stats.dual.max(o.dual);
    }
    stats
}

/// Number of blocks a matrix of `nrows` rows splits into.
pub fn num_blocks(nrows: usize, block_size: usize) -> usize {
    nrows.div_ceil(block_size.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::NonNeg;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn num_blocks_rounding() {
        assert_eq!(num_blocks(100, 50), 2);
        assert_eq!(num_blocks(101, 50), 3);
        assert_eq!(num_blocks(1, 50), 1);
        assert_eq!(num_blocks(10, 0), 10); // clamped block size
    }

    #[test]
    fn block_size_does_not_change_fixed_point() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let f = 3;
        let w = DMat::random(10, f, 0.1, 1.0, &mut rng);
        let gram = w.gram();
        let k = DMat::random(120, f, 0.0, 2.0, &mut rng);

        let run = |bs: usize| {
            let mut h = DMat::zeros(120, f);
            let mut u = DMat::zeros(120, f);
            let cfg = AdmmConfig {
                tol: 1e-13,
                max_inner: 2000,
                ..AdmmConfig::blocked(bs)
            };
            crate::admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
            h
        };
        // The update trajectory of a row is independent of every other
        // row; block size only changes *when* a row stops iterating, so
        // with a tight tolerance all block sizes land near the same fixed
        // point (within the convergence tolerance's basin).
        let h1 = run(1);
        let h50 = run(50);
        let hall = run(120);
        assert!(
            h1.max_abs_diff(&h50) < 1e-3,
            "diff {}",
            h1.max_abs_diff(&h50)
        );
        assert!(
            h50.max_abs_diff(&hall) < 1e-3,
            "diff {}",
            h50.max_abs_diff(&hall)
        );
    }

    #[test]
    fn per_block_iteration_counts_vary_with_difficulty() {
        // Rows whose unconstrained optimum is deep in the infeasible
        // region need more iterations than rows already feasible; blocking
        // lets the easy block stop early, so total row-iterations must be
        // below (max_iterations * rows).
        let f = 4;
        let gram = DMat::eye(f);
        let mut k = DMat::zeros(100, f);
        // Easy rows: K = 0 (solution 0, instant convergence).
        // Hard rows (50..100): alternating large +/- targets.
        for i in 50..100 {
            for c in 0..f {
                k.set(i, c, if (i + c) % 2 == 0 { 10.0 } else { -10.0 });
            }
        }
        let mut h = DMat::zeros(100, f);
        let mut u = DMat::zeros(100, f);
        let cfg = AdmmConfig {
            tol: 1e-10,
            max_inner: 300,
            ..AdmmConfig::blocked(50)
        };
        let stats = crate::admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
        assert_eq!(stats.blocks, 2);
        // The easy block converges almost immediately; total row work must
        // be well under iterations * 100 rows.
        assert!(
            stats.row_iterations < (stats.iterations * 100) as u64,
            "row_iterations={} iterations={}",
            stats.row_iterations,
            stats.iterations
        );
    }

    #[test]
    fn empty_matrix_is_fine() {
        let gram = DMat::eye(2);
        let k = DMat::zeros(0, 2);
        let mut h = DMat::zeros(0, 2);
        let mut u = DMat::zeros(0, 2);
        let stats =
            crate::admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::default()).unwrap();
        assert_eq!(stats.blocks, 0);
    }
}
