//! Scaled-dual-variable state persisted across ADMM calls.
//!
//! The inner ADMM ([`crate::admm_update`]) takes its dual matrix by
//! `&mut` and converges in very few iterations when the duals carry over
//! from the previous outer iteration — that is the warm start the paper's
//! framework relies on. A streaming deployment needs the same state to
//! survive *across factorization calls* (one bounded refit per ingested
//! batch) and to grow rows when new users/items appear; [`DualState`]
//! owns that lifecycle.

use splinalg::DMat;

/// ADMM scaled dual variables for every mode, persisted across
/// warm-started factorization calls.
#[derive(Debug, Clone, PartialEq)]
pub struct DualState {
    mats: Vec<DMat>,
}

impl DualState {
    /// Zero duals matching `factors` shape-for-shape — the correct cold
    /// start.
    pub fn zeros_like(factors: &[DMat]) -> Self {
        DualState {
            mats: factors
                .iter()
                .map(|f| DMat::zeros(f.nrows(), f.ncols()))
                .collect(),
        }
    }

    /// Wrap existing dual matrices (e.g. from a
    /// checkpoint or a `FactorizeResult`).
    pub fn from_mats(mats: Vec<DMat>) -> Self {
        DualState { mats }
    }

    /// The per-mode dual matrices.
    pub fn mats(&self) -> &[DMat] {
        &self.mats
    }

    /// Unwrap into the per-mode dual matrices.
    pub fn into_mats(self) -> Vec<DMat> {
        self.mats
    }

    /// Append `extra` zero rows to mode `m`'s duals (mode growth: a new
    /// entity starts with no constraint-violation history).
    pub fn grow_mode(&mut self, mode: usize, extra: usize) {
        self.mats[mode].append_zero_rows(extra);
    }

    /// Whether the duals match `factors` shape-for-shape (the warm-start
    /// precondition).
    pub fn matches(&self, factors: &[DMat]) -> bool {
        self.mats.len() == factors.len()
            && self
                .mats
                .iter()
                .zip(factors)
                .all(|(u, f)| u.nrows() == f.nrows() && u.ncols() == f.ncols())
    }

    /// Reset every dual to zero (cold-restart the constraint state while
    /// keeping the factors — e.g. after a drastic decay step).
    pub fn reset(&mut self) {
        for m in &mut self.mats {
            m.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_like_matches_shapes() {
        let factors = vec![DMat::zeros(4, 2), DMat::zeros(3, 2)];
        let d = DualState::zeros_like(&factors);
        assert!(d.matches(&factors));
        assert!(d
            .mats()
            .iter()
            .all(|m| m.as_slice().iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn grow_mode_keeps_existing_rows() {
        let mut m0 = DMat::zeros(2, 3);
        m0.set(1, 2, 5.0);
        let mut d = DualState::from_mats(vec![m0]);
        d.grow_mode(0, 2);
        assert_eq!(d.mats()[0].nrows(), 4);
        assert_eq!(d.mats()[0].get(1, 2), 5.0);
        assert_eq!(d.mats()[0].row(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn matches_detects_mismatch() {
        let factors = vec![DMat::zeros(4, 2)];
        let mut d = DualState::zeros_like(&factors);
        assert!(d.matches(&factors));
        d.grow_mode(0, 1);
        assert!(!d.matches(&factors));
        assert!(!DualState::from_mats(vec![]).matches(&factors));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = DMat::zeros(2, 2);
        m.fill(3.0);
        let mut d = DualState::from_mats(vec![m]);
        d.reset();
        assert!(d.mats()[0].as_slice().iter().all(|&x| x == 0.0));
        let back = d.into_mats();
        assert_eq!(back.len(), 1);
    }
}
