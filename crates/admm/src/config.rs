//! ADMM solver configuration.

/// Which parallel formulation of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmmStrategy {
    /// Baseline (Section IV-A): parallelize each kernel over rows, with a
    /// barrier between kernels and a global convergence test.
    Fused,
    /// Blockwise reformulation (Section IV-B): independent ADMM per block
    /// of rows, blocks dynamically scheduled onto threads.
    Blocked,
}

/// Residual-balancing adaptive penalty (Boyd et al. 2011, Section
/// 3.4.1): when the primal residual outweighs the dual by more than
/// `mu`, the penalty `rho` is multiplied by `tau` (and vice versa), and
/// the scaled dual variable is rescaled accordingly.
///
/// With the paper's blocked formulation each block owns its penalty, so
/// a rescale only re-factors that block's `F x F` normal matrix — cheap
/// relative to the block's row work. This is an extension beyond the
/// paper (which keeps `rho = trace(G)/F` fixed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveRho {
    /// Imbalance ratio that triggers a rescale (Boyd's default: 10).
    pub mu: f64,
    /// Rescale factor (Boyd's default: 2).
    pub tau: f64,
    /// Cap on rescales per ADMM run, bounding refactorization cost.
    pub max_rescales: usize,
}

impl Default for AdaptiveRho {
    fn default() -> Self {
        AdaptiveRho {
            mu: 10.0,
            tau: 2.0,
            max_rescales: 8,
        }
    }
}

/// Parameters of the inner ADMM (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct AdmmConfig {
    /// Convergence tolerance applied to both the squared relative primal
    /// residual `||H - Ht||^2 / ||H||^2` and dual residual
    /// `||H - H0||^2 / ||U||^2` (Algorithm 1, lines 10-12).
    pub tol: f64,
    /// Cap on inner iterations (per block when blocked).
    pub max_inner: usize,
    /// Rows per block for [`AdmmStrategy::Blocked`]. The paper found 50
    /// to balance convergence benefits against per-block overheads.
    pub block_size: usize,
    /// Parallel formulation.
    pub strategy: AdmmStrategy,
    /// Optional residual-balancing penalty adaptation (blocked strategy
    /// only; the fused strategy ignores it to stay faithful to the
    /// paper's baseline).
    pub adaptive_rho: Option<AdaptiveRho>,
    /// Over-relaxation parameter `alpha` (Boyd et al. 2011, Section
    /// 3.4.3): the prox and dual steps use
    /// `alpha * Ht + (1 - alpha) * H_old` in place of `Ht`. `1.0`
    /// disables it (the paper's setting); values in `[1.5, 1.8]` often
    /// accelerate convergence.
    pub relaxation: f64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            tol: 1e-3,
            // AO-ADMM warm-starts each mode's ADMM from the previous
            // outer iteration, so a modest cap loses little accuracy per
            // outer pass while bounding the worst case (Huang et al.
            // report useful inner counts well under this).
            max_inner: 25,
            block_size: 50,
            strategy: AdmmStrategy::Blocked,
            adaptive_rho: None,
            relaxation: 1.0,
        }
    }
}

impl AdmmConfig {
    /// Baseline configuration (fused kernels, as in Section IV-A).
    pub fn fused() -> Self {
        AdmmConfig {
            strategy: AdmmStrategy::Fused,
            ..Default::default()
        }
    }

    /// Blocked configuration with an explicit block size.
    pub fn blocked(block_size: usize) -> Self {
        AdmmConfig {
            strategy: AdmmStrategy::Blocked,
            block_size: block_size.max(1),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_blocked_50() {
        let c = AdmmConfig::default();
        assert_eq!(c.strategy, AdmmStrategy::Blocked);
        assert_eq!(c.block_size, 50);
        assert!(c.tol > 0.0);
        assert!(c.max_inner > 0);
    }

    #[test]
    fn constructors() {
        assert_eq!(AdmmConfig::fused().strategy, AdmmStrategy::Fused);
        let b = AdmmConfig::blocked(10);
        assert_eq!(b.strategy, AdmmStrategy::Blocked);
        assert_eq!(b.block_size, 10);
        // Zero block size is clamped to 1.
        assert_eq!(AdmmConfig::blocked(0).block_size, 1);
    }
}
