//! Row-separable proximity operators.
//!
//! AO-ADMM handles a constraint or regularization `r(·)` entirely through
//! its proximity operator (Algorithm 1, line 8):
//!
//! ```text
//! prox_{r/rho}(v) = argmin_x  r(x) + (rho/2) * ||x - v||^2
//! ```
//!
//! The paper's blocked reformulation requires `r` to be *row separable*
//! (Section IV-B) — the prox of a matrix is the prox of each row
//! independently — which holds for every operator here. Implementing a
//! new constraint means implementing [`Prox::apply_row`]; everything else
//! (parallelism, blocking, convergence, sparsity exploitation) is
//! inherited.

use std::sync::Arc;

/// A row-separable proximity operator for a penalty `r(·)`.
///
/// Implementations must be pure functions of the row (no shared mutable
/// state) so they can be applied from many threads at once.
pub trait Prox: Sync + Send {
    /// Replace `row` with `prox_{r/rho}(row)`.
    fn apply_row(&self, row: &mut [f64], rho: f64);

    /// The penalty value `r(row)` (0 for feasible hard constraints; used
    /// for objective reporting, never inside the solver loop).
    fn penalty_row(&self, row: &[f64]) -> f64 {
        let _ = row;
        0.0
    }

    /// Whether `row` satisfies the hard constraint (within `tol`).
    /// Regularizers (which admit any point) return `true`.
    ///
    /// Deliberately *not* defaulted: an earlier default of `true` let
    /// hard constraints silently report infeasible points as feasible
    /// when an implementor forgot the override. Every operator now
    /// states its feasible set explicitly.
    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool;

    /// Hint: does this operator produce exact zeros, so the factor tends
    /// to become sparse? Drives the dynamic-sparsity MTTKRP of
    /// Section IV-C.
    fn induces_sparsity(&self) -> bool {
        false
    }

    /// Short human-readable name for traces and harness output.
    fn name(&self) -> &'static str;
}

/// No constraint: `r = 0`, prox is the identity. AO-ADMM with this
/// operator degenerates to (damped) ALS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unconstrained;

impl Prox for Unconstrained {
    #[inline]
    fn apply_row(&self, _row: &mut [f64], _rho: f64) {}

    fn is_feasible_row(&self, _row: &[f64], _tol: f64) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "unconstrained"
    }
}

/// Non-negativity: indicator of the non-negative orthant; prox zeroes out
/// negative entries ("project to the non-negative orthant").
#[derive(Debug, Clone, Copy, Default)]
pub struct NonNeg;

impl Prox for NonNeg {
    #[inline]
    fn apply_row(&self, row: &mut [f64], _rho: f64) {
        for x in row {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        row.iter().all(|&x| x >= -tol)
    }

    fn induces_sparsity(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "non-negative"
    }
}

/// l1 regularization `r(x) = lambda * ||x||_1`; prox is soft thresholding.
/// This is the sparsity-promoting penalty of Table II.
#[derive(Debug, Clone, Copy)]
pub struct Lasso {
    /// Regularization weight.
    pub lambda: f64,
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

impl Prox for Lasso {
    #[inline]
    fn apply_row(&self, row: &mut [f64], rho: f64) {
        let t = self.lambda / rho;
        for x in row {
            *x = soft_threshold(*x, t);
        }
    }

    fn penalty_row(&self, row: &[f64]) -> f64 {
        self.lambda * row.iter().map(|x| x.abs()).sum::<f64>()
    }

    fn is_feasible_row(&self, _row: &[f64], _tol: f64) -> bool {
        true // regularizer: every point is feasible
    }

    fn induces_sparsity(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "l1"
    }
}

/// Non-negative l1: `r(x) = lambda*||x||_1 + indicator(x >= 0)`; prox is
/// one-sided soft thresholding.
#[derive(Debug, Clone, Copy)]
pub struct NonNegLasso {
    /// Regularization weight.
    pub lambda: f64,
}

impl Prox for NonNegLasso {
    #[inline]
    fn apply_row(&self, row: &mut [f64], rho: f64) {
        let t = self.lambda / rho;
        for x in row {
            *x = (*x - t).max(0.0);
        }
    }

    fn penalty_row(&self, row: &[f64]) -> f64 {
        self.lambda * row.iter().map(|x| x.abs()).sum::<f64>()
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        row.iter().all(|&x| x >= -tol)
    }

    fn induces_sparsity(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "non-negative l1"
    }
}

/// Tikhonov / ridge regularization `r(x) = lambda * ||x||_2^2`; prox is a
/// uniform shrink toward the origin.
#[derive(Debug, Clone, Copy)]
pub struct Ridge {
    /// Regularization weight.
    pub lambda: f64,
}

impl Prox for Ridge {
    #[inline]
    fn apply_row(&self, row: &mut [f64], rho: f64) {
        let scale = rho / (rho + 2.0 * self.lambda);
        for x in row {
            *x *= scale;
        }
    }

    fn penalty_row(&self, row: &[f64]) -> f64 {
        self.lambda * row.iter().map(|x| x * x).sum::<f64>()
    }

    fn is_feasible_row(&self, _row: &[f64], _tol: f64) -> bool {
        true // regularizer: every point is feasible
    }

    fn name(&self) -> &'static str {
        "l2"
    }
}

/// Box constraint `lo <= x <= hi` elementwise; prox clamps.
#[derive(Debug, Clone, Copy)]
pub struct BoxBound {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Prox for BoxBound {
    #[inline]
    fn apply_row(&self, row: &mut [f64], _rho: f64) {
        for x in row {
            *x = x.clamp(self.lo, self.hi);
        }
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        row.iter()
            .all(|&x| x >= self.lo - tol && x <= self.hi + tol)
    }

    fn induces_sparsity(&self) -> bool {
        self.lo == 0.0
    }

    fn name(&self) -> &'static str {
        "box"
    }
}

/// Row-simplex constraint: each row lies on the probability simplex
/// (non-negative, sums to one). Projection via the sort-based algorithm
/// of Duchi et al. (2008). The paper names row-simplex constraints as a
/// motivating row-separable example (Section IV-A).
#[derive(Debug, Clone, Copy, Default)]
pub struct Simplex;

impl Prox for Simplex {
    fn apply_row(&self, row: &mut [f64], _rho: f64) {
        let n = row.len();
        if n == 0 {
            return;
        }
        // Sort a copy descending.
        let mut sorted: Vec<f64> = row.to_vec();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        // Largest k with sorted[k] - (cumsum(sorted[..=k]) - 1)/(k+1) > 0.
        let mut cumsum = 0.0;
        let mut theta = 0.0;
        for (k, &v) in sorted.iter().enumerate() {
            cumsum += v;
            let t = (cumsum - 1.0) / (k + 1) as f64;
            if v - t > 0.0 {
                theta = t;
            }
        }
        for x in row {
            *x = (*x - theta).max(0.0);
        }
    }

    fn penalty_row(&self, _row: &[f64]) -> f64 {
        // Hard constraint: the indicator contributes 0 at feasible
        // points, and the solver only evaluates penalties on iterates
        // that have passed through the projection.
        0.0
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        let sum: f64 = row.iter().sum();
        (sum - 1.0).abs() <= tol * row.len() as f64 && row.iter().all(|&x| x >= -tol)
    }

    fn induces_sparsity(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "row-simplex"
    }
}

/// Row max-norm bound: `||x||_2 <= bound` per row; prox rescales rows
/// that exceed the ball.
#[derive(Debug, Clone, Copy)]
pub struct MaxRowNorm {
    /// Euclidean radius of the row ball.
    pub bound: f64,
}

impl Prox for MaxRowNorm {
    fn apply_row(&self, row: &mut [f64], _rho: f64) {
        let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > self.bound && norm > 0.0 {
            let s = self.bound / norm;
            for x in row {
                *x *= s;
            }
        }
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        row.iter().map(|x| x * x).sum::<f64>().sqrt() <= self.bound + tol
    }

    fn name(&self) -> &'static str {
        "max-row-norm"
    }
}

/// Convenience constructors returning shareable trait objects.
///
/// ```
/// use admm::constraints;
/// let nn = constraints::nonneg();
/// let mut row = [0.5, -0.25];
/// nn.apply_row(&mut row, 1.0);
/// assert_eq!(row, [0.5, 0.0]);
/// ```
pub mod constraints {
    use super::*;

    /// No constraint (plain least squares).
    pub fn unconstrained() -> Arc<dyn Prox> {
        Arc::new(Unconstrained)
    }

    /// Non-negativity constraint.
    pub fn nonneg() -> Arc<dyn Prox> {
        Arc::new(NonNeg)
    }

    /// `lambda * ||x||_1` sparsity regularization.
    pub fn lasso(lambda: f64) -> Arc<dyn Prox> {
        Arc::new(Lasso { lambda })
    }

    /// Non-negative `lambda * ||x||_1`.
    pub fn nonneg_lasso(lambda: f64) -> Arc<dyn Prox> {
        Arc::new(NonNegLasso { lambda })
    }

    /// `lambda * ||x||_2^2` ridge regularization.
    pub fn ridge(lambda: f64) -> Arc<dyn Prox> {
        Arc::new(Ridge { lambda })
    }

    /// Elementwise box constraint.
    pub fn boxed(lo: f64, hi: f64) -> Arc<dyn Prox> {
        Arc::new(BoxBound { lo, hi })
    }

    /// Row-simplex constraint.
    pub fn simplex() -> Arc<dyn Prox> {
        Arc::new(Simplex)
    }

    /// Row Euclidean-norm bound.
    pub fn max_row_norm(bound: f64) -> Arc<dyn Prox> {
        Arc::new(MaxRowNorm { bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_identity() {
        let mut row = vec![1.0, -2.0, 3.0];
        Unconstrained.apply_row(&mut row, 1.0);
        assert_eq!(row, vec![1.0, -2.0, 3.0]);
        assert!(Unconstrained.is_feasible_row(&row, 0.0));
    }

    #[test]
    fn nonneg_zeroes_negatives() {
        let mut row = vec![1.0, -2.0, 0.0, 3.0];
        NonNeg.apply_row(&mut row, 5.0);
        assert_eq!(row, vec![1.0, 0.0, 0.0, 3.0]);
        assert!(NonNeg.is_feasible_row(&row, 0.0));
        assert!(!NonNeg.is_feasible_row(&[-1.0], 1e-9));
        assert!(NonNeg.induces_sparsity());
    }

    #[test]
    fn lasso_soft_thresholds() {
        let l = Lasso { lambda: 1.0 };
        let mut row = vec![2.0, -2.0, 0.5, -0.5];
        l.apply_row(&mut row, 2.0); // threshold = 0.5
        assert_eq!(row, vec![1.5, -1.5, 0.0, 0.0]);
        assert_eq!(l.penalty_row(&[1.0, -2.0]), 3.0);
    }

    #[test]
    fn lasso_threshold_scales_with_rho() {
        let l = Lasso { lambda: 1.0 };
        let mut a = vec![1.0];
        l.apply_row(&mut a, 10.0); // t = 0.1
        assert!((a[0] - 0.9).abs() < 1e-15);
    }

    #[test]
    fn nonneg_lasso_one_sided() {
        let l = NonNegLasso { lambda: 1.0 };
        let mut row = vec![2.0, -2.0, 0.4];
        l.apply_row(&mut row, 2.0); // t = 0.5
        assert_eq!(row, vec![1.5, 0.0, 0.0]);
    }

    #[test]
    fn ridge_shrinks() {
        let r = Ridge { lambda: 1.0 };
        let mut row = vec![4.0];
        r.apply_row(&mut row, 2.0); // scale 2/(2+2) = 0.5
        assert_eq!(row, vec![2.0]);
        assert_eq!(r.penalty_row(&[3.0]), 9.0);
    }

    /// The prox definition says apply_row minimizes
    /// r(x) + rho/2 ||x - v||^2; check numerically for ridge.
    #[test]
    fn ridge_prox_is_argmin() {
        let r = Ridge { lambda: 0.7 };
        let rho = 1.3;
        let v = 2.0;
        let mut row = vec![v];
        r.apply_row(&mut row, rho);
        let obj = |x: f64| 0.7 * x * x + rho / 2.0 * (x - v) * (x - v);
        let fx = obj(row[0]);
        for dx in [-0.01, 0.01] {
            assert!(obj(row[0] + dx) > fx);
        }
    }

    #[test]
    fn box_clamps() {
        let b = BoxBound { lo: 0.0, hi: 1.0 };
        let mut row = vec![-0.5, 0.5, 1.5];
        b.apply_row(&mut row, 1.0);
        assert_eq!(row, vec![0.0, 0.5, 1.0]);
        assert!(b.is_feasible_row(&row, 0.0));
    }

    #[test]
    fn simplex_projects_to_simplex() {
        let s = Simplex;
        let mut row = vec![0.5, 0.5, 2.0, -1.0];
        s.apply_row(&mut row, 1.0);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(row.iter().all(|&x| x >= 0.0));
        assert!(s.is_feasible_row(&row, 1e-9));
    }

    #[test]
    fn simplex_fixed_point() {
        // A point already on the simplex must not move.
        let s = Simplex;
        let mut row = vec![0.2, 0.3, 0.5];
        s.apply_row(&mut row, 1.0);
        assert!((row[0] - 0.2).abs() < 1e-12);
        assert!((row[1] - 0.3).abs() < 1e-12);
        assert!((row[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_uniform_from_equal_inputs() {
        let s = Simplex;
        let mut row = vec![5.0, 5.0, 5.0, 5.0];
        s.apply_row(&mut row, 1.0);
        for &x in &row {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn max_row_norm_rescales() {
        let m = MaxRowNorm { bound: 5.0 };
        let mut row = vec![6.0, 8.0]; // norm 10
        m.apply_row(&mut row, 1.0);
        assert!((row[0] - 3.0).abs() < 1e-12);
        assert!((row[1] - 4.0).abs() < 1e-12);
        // Inside the ball: untouched.
        let mut small = vec![1.0, 1.0];
        m.apply_row(&mut small, 1.0);
        assert_eq!(small, vec![1.0, 1.0]);
    }

    #[test]
    fn constructors_produce_named_operators() {
        assert_eq!(constraints::nonneg().name(), "non-negative");
        assert_eq!(constraints::lasso(0.1).name(), "l1");
        assert_eq!(constraints::simplex().name(), "row-simplex");
        assert_eq!(constraints::unconstrained().name(), "unconstrained");
        assert_eq!(constraints::ridge(0.1).name(), "l2");
        assert_eq!(constraints::boxed(0.0, 1.0).name(), "box");
        assert_eq!(constraints::nonneg_lasso(0.1).name(), "non-negative l1");
        assert_eq!(constraints::max_row_norm(1.0).name(), "max-row-norm");
    }

    /// Regression for the removed `is_feasible_row` default: every hard
    /// constraint must actively reject an infeasible point instead of
    /// inheriting a blanket `true`, and every regularizer must accept
    /// everything. A new operator that forgets to think about
    /// feasibility no longer compiles; this pins the semantics for the
    /// ones that exist.
    #[test]
    fn feasibility_is_explicit_per_operator() {
        let bad = [-2.0, 0.5, 3.0]; // negative entry, sum != 1, norm > 2
        let hard: Vec<Arc<dyn Prox>> = vec![
            constraints::nonneg(),
            constraints::nonneg_lasso(0.1),
            constraints::boxed(0.0, 1.0),
            constraints::simplex(),
            constraints::max_row_norm(2.0),
        ];
        for op in &hard {
            assert!(
                !op.is_feasible_row(&bad, 1e-9),
                "{} accepted an infeasible point",
                op.name()
            );
            let mut projected = bad.to_vec();
            op.apply_row(&mut projected, 1.0);
            assert!(
                op.is_feasible_row(&projected, 1e-9),
                "{} rejects its own projection",
                op.name()
            );
        }
        let soft: Vec<Arc<dyn Prox>> = vec![
            constraints::unconstrained(),
            constraints::lasso(0.1),
            constraints::ridge(0.1),
        ];
        for op in &soft {
            assert!(
                op.is_feasible_row(&bad, 0.0),
                "regularizer {} rejected a point",
                op.name()
            );
        }
    }

    #[test]
    fn simplex_penalty_is_zero_indicator() {
        assert_eq!(Simplex.penalty_row(&[0.25, 0.75]), 0.0);
    }

    /// Projection operators must be idempotent.
    #[test]
    fn projections_idempotent() {
        let ops: Vec<Arc<dyn Prox>> = vec![
            constraints::nonneg(),
            constraints::boxed(-1.0, 1.0),
            constraints::simplex(),
            constraints::max_row_norm(2.0),
        ];
        for op in ops {
            let mut row = vec![2.0, -3.0, 0.5, 1.5];
            op.apply_row(&mut row, 1.7);
            let once = row.clone();
            op.apply_row(&mut row, 1.7);
            for (a, b) in row.iter().zip(&once) {
                assert!((a - b).abs() < 1e-12, "{} not idempotent", op.name());
            }
        }
    }
}
