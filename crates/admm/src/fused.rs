//! Baseline "fused kernel" ADMM (Section IV-A of the paper).
//!
//! Each step of Algorithm 1 is treated as an independent dense kernel
//! parallelized over the rows of the tall-and-skinny matrices:
//!
//! 1. the triangular solves of line 6 write a full auxiliary matrix,
//! 2. prox + dual update + residual partials run as a second pass,
//! 3. residual partials are reduced and a *global* convergence test runs.
//!
//! The two passes and the global reduction put a synchronization barrier
//! inside every inner iteration, and each pass streams the full `I x F`
//! matrices from memory — exactly the memory-bandwidth-bound behaviour
//! the blocked reformulation removes. This implementation is kept
//! deliberately faithful to that structure because it is the baseline of
//! Figures 4 and 6. Within each kernel, rows are processed in panels of
//! [`PANEL_ROWS`] so the triangular factor streams once per panel and
//! the residual partials reduce deterministically (fixed panels merged
//! in panel order, not in work-stealing order).

use crate::config::AdmmConfig;
use crate::prox::Prox;
use crate::solver::{relative, AdmmStats};
use rayon::prelude::*;
use splinalg::panel::PANEL_ROWS;
use splinalg::{vecops, Cholesky, DMat};

/// Residual partial sums reduced across row panels.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Partials {
    pub(crate) r_num: f64,
    pub(crate) h_sq: f64,
    pub(crate) s_num: f64,
    pub(crate) u_sq: f64,
}

impl Partials {
    pub(crate) fn merge(self, o: Partials) -> Partials {
        Partials {
            r_num: self.r_num + o.r_num,
            h_sq: self.h_sq + o.h_sq,
            s_num: self.s_num + o.s_num,
            u_sq: self.u_sq + o.u_sq,
        }
    }
}

/// Per-panel scratch for the fused strategy.
#[derive(Debug, Default)]
pub(crate) struct FusedScratch {
    /// Transposed-panel scratch for [`Cholesky::solve_panel`].
    pub(crate) tpose: Vec<f64>,
    /// Previous primal row (`F`).
    pub(crate) hold: Vec<f64>,
    /// The panel's residual partials, merged in panel order after the
    /// sweep (replaces the nondeterministic fold/reduce grouping).
    pub(crate) partials: Partials,
}

impl FusedScratch {
    fn ensure(&mut self, f: usize) {
        let panel = PANEL_ROWS * f;
        if self.tpose.len() < panel {
            self.tpose.resize(panel, 0.0);
        }
        if self.hold.len() < f {
            self.hold.resize(f, 0.0);
        }
    }
}

/// Run the fused baseline strategy. Called via [`crate::admm_update_ws`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fused(
    chol: &Cholesky,
    rho: f64,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
    haux_buf: &mut Vec<f64>,
    panel_pool: &mut Vec<FusedScratch>,
) -> AdmmStats {
    let f = k.ncols();
    let nrows = k.nrows();
    if nrows == 0 {
        return AdmmStats {
            iterations: 0,
            row_iterations: 0,
            blocks_converged: 1,
            blocks: 1,
            primal: 0.0,
            dual: 0.0,
        };
    }

    // The full auxiliary matrix is materialized, as in the baseline: each
    // inner iteration streams K, H, U and Ht through memory. The buffer
    // (and the per-panel scratch below) comes from the workspace, so
    // steady-state updates allocate nothing.
    if haux_buf.len() < nrows * f {
        haux_buf.resize(nrows * f, 0.0);
    }
    let haux = &mut haux_buf[..nrows * f];

    let chunk = PANEL_ROWS * f;
    let npanels = nrows.div_ceil(PANEL_ROWS);
    if panel_pool.len() < npanels {
        panel_pool.resize_with(npanels, FusedScratch::default);
    }
    let panels = &mut panel_pool[..npanels];
    for p in panels.iter_mut() {
        p.ensure(f);
    }

    let mut iterations = 0;
    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let mut converged = false;

    while iterations < cfg.max_inner {
        iterations += 1;

        // Kernel 1 (parallel over panels, then barrier): line 6 solves,
        // one streaming of L per panel.
        haux.par_chunks_mut(chunk)
            .zip(k.as_slice().par_chunks(chunk))
            .zip(h.as_slice().par_chunks(chunk))
            .zip(u.as_slice().par_chunks(chunk))
            .zip(panels.par_iter_mut())
            .for_each(|((((hx, kp), hp), up), sc)| {
                for i in 0..hx.len() {
                    hx[i] = kp[i] + rho * (hp[i] + up[i]);
                }
                chol.solve_panel(hx, &mut sc.tpose[..hx.len()]);
            });

        // Kernel 2 (parallel over panels): lines 7-11, partials per
        // panel.
        h.as_mut_slice()
            .par_chunks_mut(chunk)
            .zip(u.as_mut_slice().par_chunks_mut(chunk))
            .zip(haux.par_chunks(chunk))
            .zip(panels.par_iter_mut())
            .for_each(|(((hp, up), hxp), sc)| {
                let mut acc = Partials::default();
                let hold = &mut sc.hold[..f];
                let alpha = cfg.relaxation;
                for r in 0..hp.len() / f {
                    let hr = &mut hp[r * f..(r + 1) * f];
                    let ur = &mut up[r * f..(r + 1) * f];
                    let hx = &hxp[r * f..(r + 1) * f];
                    hold.copy_from_slice(hr);
                    // With over-relaxation the prox/dual steps see the
                    // blended auxiliary alpha*Ht + (1-alpha)*H_old.
                    let blend = |c: usize| {
                        if alpha == 1.0 {
                            hx[c]
                        } else {
                            alpha * hx[c] + (1.0 - alpha) * hold[c]
                        }
                    };
                    for c in 0..f {
                        hr[c] = blend(c) - ur[c];
                    }
                    prox.apply_row(hr, rho);
                    let mut r_num = 0.0;
                    for c in 0..f {
                        let hb = blend(c);
                        ur[c] += hr[c] - hb;
                        r_num += (hr[c] - hb) * (hr[c] - hb);
                    }
                    acc.r_num += r_num;
                    acc.h_sq += vecops::norm_sq(hr);
                    acc.s_num += vecops::dist_sq(hr, hold);
                    acc.u_sq += vecops::norm_sq(ur);
                }
                sc.partials = acc;
            });

        // Deterministic reduction: fixed panels merged in panel order, so
        // the convergence test sees the same floating-point grouping at
        // any thread count.
        let mut p = Partials::default();
        for sc in panels.iter() {
            p = p.merge(sc.partials);
        }

        primal = relative(p.r_num, p.h_sq);
        // Same zero-dual fallback as `run_block`: unconstrained runs keep
        // U = 0 and would otherwise never register convergence.
        dual = relative(p.s_num, if p.u_sq > 0.0 { p.u_sq } else { p.h_sq });
        if primal <= cfg.tol && dual <= cfg.tol {
            converged = true;
            break;
        }
    }

    AdmmStats {
        iterations,
        row_iterations: (iterations * nrows) as u64,
        blocks_converged: usize::from(converged),
        blocks: 1,
        primal,
        dual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::{NonNeg, Unconstrained};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem(n: usize, f: usize, seed: u64) -> (DMat, DMat) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = DMat::random(8, f, 0.1, 1.0, &mut rng);
        (w.gram(), DMat::random(n, f, -1.0, 2.0, &mut rng))
    }

    #[test]
    fn fused_solves_unconstrained_least_squares() {
        let (gram, k) = problem(37, 4, 1);
        let mut h = DMat::zeros(37, 4);
        let mut u = DMat::zeros(37, 4);
        let cfg = AdmmConfig {
            tol: 1e-12,
            max_inner: 1000,
            ..AdmmConfig::fused()
        };
        let stats = crate::admm_update(&gram, &k, &mut h, &mut u, &Unconstrained, &cfg).unwrap();
        assert!(stats.converged());
        // Residual of the normal equations H G = K.
        let hg = h.matmul(&gram).unwrap();
        assert!(
            hg.max_abs_diff(&k) < 1e-4,
            "residual {}",
            hg.max_abs_diff(&k)
        );
    }

    #[test]
    fn fused_respects_constraints() {
        let (gram, k) = problem(25, 3, 2);
        let mut h = DMat::zeros(25, 3);
        let mut u = DMat::zeros(25, 3);
        let cfg = AdmmConfig::fused();
        crate::admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
        assert!(h.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn fused_row_iterations_is_uniform() {
        // The defining property of the baseline: every row gets the same
        // number of iterations (no per-block early exit).
        let (gram, k) = problem(40, 3, 3);
        let mut h = DMat::zeros(40, 3);
        let mut u = DMat::zeros(40, 3);
        let stats =
            crate::admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::fused()).unwrap();
        assert_eq!(stats.row_iterations, (stats.iterations * 40) as u64);
        assert_eq!(stats.blocks, 1);
    }

    #[test]
    fn partials_merge() {
        let a = Partials {
            r_num: 1.0,
            h_sq: 2.0,
            s_num: 3.0,
            u_sq: 4.0,
        };
        let b = a.merge(a);
        assert_eq!(b.h_sq, 4.0);
        assert_eq!(b.u_sq, 8.0);
    }
}
