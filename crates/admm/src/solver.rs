//! Core ADMM machinery shared by the fused and blocked formulations.
//!
//! [`admm_update`] is the entry point used by the outer AO loop: given the
//! Gram matrix `G` and the MTTKRP output `K` for one mode, it forms
//! `rho = trace(G)/F`, factors `G + rho*I` once (Algorithm 1, lines 3-4),
//! and then runs inner iterations with the configured strategy.
//!
//! [`run_block`] is the sequential kernel both strategies build on: one
//! full ADMM on a contiguous block of rows, touching each row once per
//! inner iteration (solve -> prox -> dual -> residuals in a single pass,
//! which is what gives the blocked formulation its temporal locality).

use crate::config::{AdmmConfig, AdmmStrategy};
use crate::prox::Prox;
use crate::workspace::{AdmmWorkspace, BlockScratch};
use splinalg::panel::PANEL_ROWS;
use splinalg::{vecops, Cholesky, DMat, LinalgError};

/// Outcome of one ADMM run (per block, or global for the fused strategy).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockOutcome {
    /// Inner iterations executed.
    pub iterations: usize,
    /// Final squared relative primal residual.
    pub primal: f64,
    /// Final squared relative dual residual.
    pub dual: f64,
    /// Whether both residuals fell below tolerance.
    pub converged: bool,
}

/// Aggregate statistics of an ADMM update over a whole factor matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmStats {
    /// Inner iterations: global count for fused; the maximum over blocks
    /// for blocked (wall-clock-determining block).
    pub iterations: usize,
    /// Sum over rows of the iterations applied to that row — the total
    /// work measure that blocking reduces on "low-signal" rows.
    pub row_iterations: u64,
    /// Number of blocks that reached tolerance (fused counts as 1 block).
    pub blocks_converged: usize,
    /// Total number of blocks.
    pub blocks: usize,
    /// Worst final squared relative primal residual.
    pub primal: f64,
    /// Worst final squared relative dual residual.
    pub dual: f64,
}

impl AdmmStats {
    /// Whether every block converged.
    pub fn converged(&self) -> bool {
        self.blocks_converged == self.blocks
    }
}

/// Run ADMM to convergence on a contiguous block of rows.
///
/// `k`, `h`, `u` are the block's rows of the MTTKRP output, primal and
/// dual matrices (flat, row-major, `nrows * f` long). All scratch —
/// solve panels, the previous-row buffer, the block-private factor —
/// comes from `scratch` and is reused across calls.
///
/// Rows are swept in panels of [`PANEL_ROWS`]: the right-hand sides of a
/// whole panel are built in one pass, solved with one streaming of the
/// triangular factor ([`Cholesky::solve_panel`]), and then relaxed /
/// proxed / dual-updated row by row. Per row this performs exactly the
/// operations of the row-at-a-time kernel in exactly the same order
/// (rows are independent within an inner iteration, and the residual
/// partials still accumulate in ascending row order), so the sweep is
/// bit-identical to [`crate::reference::run_block_reference`].
///
/// When `adaptive` is set, the block privately rebalances its penalty
/// with Boyd's residual-balancing rule, re-factoring `gram + rho*I`
/// into the scratch factor on each rescale (no allocation once warm;
/// `gram` must be the Gram matrix `chol` was built from).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    chol: &Cholesky,
    rho: f64,
    gram: &DMat,
    adaptive: Option<crate::config::AdaptiveRho>,
    relaxation: f64,
    k: &[f64],
    h: &mut [f64],
    u: &mut [f64],
    f: usize,
    prox: &dyn Prox,
    tol: f64,
    max_inner: usize,
    scratch: &mut BlockScratch,
) -> BlockOutcome {
    debug_assert_eq!(k.len(), h.len());
    debug_assert_eq!(k.len(), u.len());
    let nrows = k.len() / f;
    scratch.ensure(f);
    let BlockScratch {
        rhs,
        tpose,
        hold,
        chol: local_chol,
        ..
    } = scratch;
    let hold = &mut hold[..f];

    // Penalty state: starts on the shared factorization; a rescale
    // switches to the block-private factor. `local_chol` may hold a
    // stale factor from a previous update, so an explicit flag tracks
    // whether it is current.
    let mut rho = rho;
    let mut use_local = false;
    let mut rescales = 0usize;

    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_inner {
        iterations += 1;
        let chol = if use_local {
            local_chol.as_ref().expect("set when use_local")
        } else {
            chol
        };
        let mut r_num = 0.0; // ||H - Ht||^2
        let mut h_sq = 0.0; // ||H||^2
        let mut s_num = 0.0; // ||H - H0||^2
        let mut u_sq = 0.0; // ||U||^2

        let mut row = 0;
        while row < nrows {
            let p = PANEL_ROWS.min(nrows - row);
            let base = row * f;
            let len = p * f;
            let rhs_p = &mut rhs[..len];

            // Line 6 for the whole panel:
            // Ht = (G + rho I)^-1 (K + rho (H + U)).
            {
                let kp = &k[base..base + len];
                let hp = &h[base..base + len];
                let up = &u[base..base + len];
                for i in 0..len {
                    rhs_p[i] = kp[i] + rho * (hp[i] + up[i]);
                }
            }
            chol.solve_panel(rhs_p, &mut tpose[..len]);

            // Lines 7-11 row by row within the panel.
            for r in 0..p {
                let hx = &mut rhs_p[r * f..(r + 1) * f];
                let hr = &mut h[base + r * f..base + (r + 1) * f];
                let ur = &mut u[base + r * f..base + (r + 1) * f];

                // Over-relaxation (Boyd 3.4.3): blend toward the previous
                // primal before the prox and dual steps.
                if relaxation != 1.0 {
                    for c in 0..f {
                        hx[c] = relaxation * hx[c] + (1.0 - relaxation) * hr[c];
                    }
                }

                // Line 7: H0 <- H.
                hold.copy_from_slice(hr);

                // Line 8: H <- prox_{r/rho}(Ht - U).
                for c in 0..f {
                    hr[c] = hx[c] - ur[c];
                }
                prox.apply_row(hr, rho);

                // Line 9: U <- U + H - Ht.
                for c in 0..f {
                    ur[c] += hr[c] - hx[c];
                }

                // Lines 10-11 partials.
                r_num += vecops::dist_sq(hr, hx);
                h_sq += vecops::norm_sq(hr);
                s_num += vecops::dist_sq(hr, hold);
                u_sq += vecops::norm_sq(ur);
            }
            row += p;
        }

        primal = relative(r_num, h_sq);
        // With no active constraint the dual variable stays exactly zero;
        // fall back to measuring the step relative to ||H||^2 so the
        // unconstrained (ALS-like) case can still be detected as
        // converged.
        dual = relative(s_num, if u_sq > 0.0 { u_sq } else { h_sq });
        if primal <= tol && dual <= tol {
            return BlockOutcome {
                iterations,
                primal,
                dual,
                converged: true,
            };
        }

        // Residual balancing (raw squared norms, so the imbalance test
        // compares mu^2).
        if let Some(ar) = adaptive {
            if rescales < ar.max_rescales {
                let mu_sq = ar.mu * ar.mu;
                let new_rho = if r_num > mu_sq * s_num {
                    Some(rho * ar.tau)
                } else if s_num > mu_sq * r_num {
                    Some(rho / ar.tau)
                } else {
                    None
                };
                if let Some(nr) = new_rho {
                    // Scaled dual u = y / rho must be rescaled with rho.
                    let scale = rho / nr;
                    for x in u.iter_mut() {
                        *x *= scale;
                    }
                    // A PSD gram + positive rho is always factorable; the
                    // diagonal shift is applied inside the factorization,
                    // reusing the scratch factor's buffers (the legacy
                    // path cloned the gram and reallocated the factor on
                    // every rescale).
                    match local_chol.as_mut() {
                        Some(c) => c.refactor_shifted(gram, nr).expect("G + rho I is SPD"),
                        None => {
                            *local_chol =
                                Some(Cholesky::factor_shifted(gram, nr).expect("G + rho I is SPD"))
                        }
                    }
                    use_local = true;
                    rho = nr;
                    rescales += 1;
                }
            }
        }
    }
    BlockOutcome {
        iterations,
        primal,
        dual,
        converged: false,
    }
}

/// Relative squared residual with a zero-denominator guard: an exactly
/// zero numerator is converged regardless of the denominator.
#[inline]
pub(crate) fn relative(num: f64, den: f64) -> f64 {
    if num == 0.0 {
        0.0
    } else if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// One full ADMM update of a factor matrix (one call site of Algorithm 1
/// from Algorithm 2).
///
/// * `gram` — the combined Gram matrix `G` of the other modes.
/// * `k` — the MTTKRP output for this mode.
/// * `h`, `u` — primal and dual matrices, updated in place.
///
/// Returns per-update statistics. Errors only if `G + rho I` is not
/// positive definite, which cannot happen for `rho > 0` with a
/// positive semidefinite `G` (Gram matrices are PSD by construction).
///
/// Allocates its scratch internally; hot loops should hold an
/// [`AdmmWorkspace`] and call [`admm_update_ws`] instead.
pub fn admm_update(
    gram: &DMat,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
) -> Result<AdmmStats, LinalgError> {
    let mut ws = AdmmWorkspace::new();
    admm_update_ws(gram, k, h, u, prox, cfg, &mut ws)
}

/// [`admm_update`] with caller-owned scratch: zero heap allocation once
/// the workspace is warm.
///
/// The workspace carries the Cholesky factor of `G + rho*I` (re-factored
/// in place each call — the shift is applied inside the factorization,
/// so the gram is never cloned), the per-block solve panels, and the
/// fused strategy's auxiliary matrix. Results are bit-identical to
/// [`admm_update`] and to the scalar reference path
/// ([`crate::reference::admm_update_reference`]) for the blocked
/// strategy; the fused strategy's residual reduction is deterministic
/// (fixed panels merged in panel order) where the reference reduces in
/// work-stealing order.
#[allow(clippy::too_many_arguments)]
pub fn admm_update_ws(
    gram: &DMat,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
    ws: &mut AdmmWorkspace,
) -> Result<AdmmStats, LinalgError> {
    let f = gram.nrows();
    if k.ncols() != f || h.ncols() != f || u.ncols() != f {
        return Err(LinalgError::DimMismatch {
            op: "admm_update",
            lhs: (f, f),
            rhs: (k.nrows(), k.ncols()),
        });
    }
    if k.nrows() != h.nrows() || k.nrows() != u.nrows() {
        return Err(LinalgError::DimMismatch {
            op: "admm_update rows",
            lhs: (h.nrows(), f),
            rhs: (k.nrows(), f),
        });
    }

    // Line 3: rho = trace(G) / F. A vanishing trace means the other
    // factors collapsed to zero; fall back to rho = 1 so the system stays
    // well posed.
    let mut rho = gram.trace() / f as f64;
    if rho.is_nan() || rho <= 1e-12 {
        rho = 1.0;
    }

    // Line 4: L = Cholesky(G + rho I), shared by every row and block,
    // re-factored into the workspace's buffers.
    if let Some(c) = ws.chol.as_mut() {
        c.refactor_shifted(gram, rho)?;
    } else {
        ws.chol = Some(Cholesky::factor_shifted(gram, rho)?);
    }
    let AdmmWorkspace {
        chol,
        blocks,
        fused_haux,
        fused_panels,
    } = ws;
    let chol = chol.as_ref().expect("factored above");

    match cfg.strategy {
        AdmmStrategy::Blocked => Ok(crate::blocked::run_blocked(
            chol, rho, gram, k, h, u, prox, cfg, blocks,
        )),
        AdmmStrategy::Fused => Ok(crate::fused::run_fused(
            chol,
            rho,
            k,
            h,
            u,
            prox,
            cfg,
            fused_haux,
            fused_panels,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::{constraints, NonNeg};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Build a small least-squares problem: K = X * W where we ask ADMM to
    /// recover H with X(1) = H W^T; here we test the stationary equation
    /// H (G + ..) directly through convergence behaviour.
    fn setup(n: usize, f: usize, seed: u64) -> (DMat, DMat, DMat, DMat) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = DMat::random(3 * f, f, 0.0, 1.0, &mut rng);
        let gram = w.gram();
        let target = DMat::random(n, f, 0.0, 1.0, &mut rng);
        // K = target * G so that the unconstrained minimizer of
        // 1/2||X - H W^T||^2 (normal equations H G = K) is exactly target.
        let k = target.matmul(&gram).unwrap();
        let h = DMat::zeros(n, f);
        let u = DMat::zeros(n, f);
        (gram, k, h, u)
    }

    #[test]
    fn unconstrained_admm_approaches_least_squares_solution() {
        let (gram, k, mut h, mut u) = setup(40, 4, 1);
        let target = {
            // Recover target = K G^-1 via Cholesky for reference.
            let ch = Cholesky::factor(&gram).unwrap();
            let mut t = k.clone();
            ch.solve_mat(&mut t).unwrap();
            t
        };
        let cfg = AdmmConfig {
            tol: 1e-12,
            max_inner: 5000,
            ..AdmmConfig::blocked(8)
        };
        let stats = admm_update(
            &gram,
            &k,
            &mut h,
            &mut u,
            &*constraints::unconstrained(),
            &cfg,
        )
        .unwrap();
        assert!(stats.converged(), "stats: {stats:?}");
        assert!(
            h.max_abs_diff(&target) < 1e-3,
            "max diff {}",
            h.max_abs_diff(&target)
        );
    }

    #[test]
    fn nonneg_admm_produces_feasible_output() {
        let (gram, mut k, mut h, mut u) = setup(30, 5, 2);
        // Make parts of the optimal solution negative by flipping K signs.
        for v in k.as_mut_slice().iter_mut().step_by(3) {
            *v = -*v;
        }
        let cfg = AdmmConfig::default();
        let stats = admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
        assert!(stats.iterations >= 1);
        for i in 0..h.nrows() {
            assert!(NonNeg.is_feasible_row(h.row(i), 1e-12));
        }
    }

    #[test]
    fn fused_and_blocked_agree_on_tight_tolerance() {
        let (gram, k, h0, u0) = setup(64, 4, 3);
        let tol = 1e-12;
        let mut hf = h0.clone();
        let mut uf = u0.clone();
        let mut cfg = AdmmConfig::fused();
        cfg.tol = tol;
        cfg.max_inner = 1000;
        admm_update(&gram, &k, &mut hf, &mut uf, &NonNeg, &cfg).unwrap();

        let mut hb = h0;
        let mut ub = u0;
        let mut cfg = AdmmConfig::blocked(16);
        cfg.tol = tol;
        cfg.max_inner = 1000;
        admm_update(&gram, &k, &mut hb, &mut ub, &NonNeg, &cfg).unwrap();

        // Both drive the same fixed point; with tight tolerance they agree.
        assert!(hf.max_abs_diff(&hb) < 1e-4, "diff {}", hf.max_abs_diff(&hb));
    }

    #[test]
    fn zero_gram_falls_back_gracefully() {
        let gram = DMat::zeros(3, 3);
        let k = DMat::zeros(10, 3);
        let mut h = DMat::zeros(10, 3);
        let mut u = DMat::zeros(10, 3);
        let stats =
            admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::default()).unwrap();
        // All-zero problem: converges immediately to zero.
        assert!(stats.converged());
        assert_eq!(h.norm_fro(), 0.0);
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let gram = DMat::eye(3);
        let k = DMat::zeros(10, 4);
        let mut h = DMat::zeros(10, 3);
        let mut u = DMat::zeros(10, 3);
        assert!(admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::default()).is_err());

        let k = DMat::zeros(9, 3);
        assert!(admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::default()).is_err());
    }

    #[test]
    fn relative_guards() {
        assert_eq!(relative(0.0, 0.0), 0.0);
        assert_eq!(relative(1.0, 0.0), f64::INFINITY);
        assert_eq!(relative(1.0, 2.0), 0.5);
    }

    #[test]
    fn over_relaxation_converges_to_same_fixed_point() {
        let (gram, k, h0, u0) = setup(50, 4, 31);
        let run = |alpha: f64, strategy_blocked: bool| {
            let mut cfg = if strategy_blocked {
                AdmmConfig::blocked(10)
            } else {
                AdmmConfig::fused()
            };
            cfg.relaxation = alpha;
            cfg.max_inner = 2000;
            cfg.tol = 1e-13;
            let mut h = h0.clone();
            let mut u = u0.clone();
            admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
            h
        };
        let plain = run(1.0, true);
        for alpha in [1.5, 1.8] {
            let relaxed = run(alpha, true);
            assert!(
                plain.max_abs_diff(&relaxed) < 1e-3,
                "alpha={alpha} blocked diff {}",
                plain.max_abs_diff(&relaxed)
            );
            let relaxed_fused = run(alpha, false);
            assert!(
                plain.max_abs_diff(&relaxed_fused) < 1e-3,
                "alpha={alpha} fused diff {}",
                plain.max_abs_diff(&relaxed_fused)
            );
        }
    }

    #[test]
    fn over_relaxation_does_not_slow_convergence_much() {
        // Boyd: alpha in [1.5, 1.8] typically accelerates; at minimum it
        // must not explode the iteration count on a benign problem.
        let (gram, k, h0, u0) = setup(80, 4, 32);
        let iters = |alpha: f64| {
            let mut cfg = AdmmConfig::blocked(80);
            cfg.relaxation = alpha;
            cfg.max_inner = 3000;
            cfg.tol = 1e-10;
            let mut h = h0.clone();
            let mut u = u0.clone();
            admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg)
                .unwrap()
                .iterations
        };
        let plain = iters(1.0);
        let relaxed = iters(1.6);
        assert!(
            relaxed <= plain * 2,
            "relaxed {relaxed} iters vs plain {plain}"
        );
    }

    #[test]
    fn adaptive_rho_still_converges_and_respects_constraints() {
        let (gram, mut k, h0, u0) = setup(60, 4, 21);
        for v in k.as_mut_slice().iter_mut().step_by(2) {
            *v *= -3.0; // push part of the optimum infeasible
        }
        let mut cfg = AdmmConfig::blocked(20);
        cfg.adaptive_rho = Some(crate::config::AdaptiveRho::default());
        cfg.max_inner = 400;
        cfg.tol = 1e-10;
        let mut h = h0;
        let mut u = u0;
        let stats = admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
        assert!(stats.iterations >= 1);
        assert!(h.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn adaptive_rho_matches_fixed_rho_fixed_point() {
        // Adapting the penalty changes the path, not the destination.
        let (gram, k, h0, u0) = setup(40, 3, 22);
        let run = |adaptive| {
            let mut cfg = AdmmConfig::blocked(10);
            cfg.adaptive_rho = adaptive;
            cfg.max_inner = 2000;
            cfg.tol = 1e-13;
            let mut h = h0.clone();
            let mut u = u0.clone();
            admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
            h
        };
        let fixed = run(None);
        let adaptive = run(Some(crate::config::AdaptiveRho::default()));
        assert!(
            fixed.max_abs_diff(&adaptive) < 1e-3,
            "diff {}",
            fixed.max_abs_diff(&adaptive)
        );
    }

    #[test]
    fn stats_track_block_counts() {
        let (gram, k, mut h, mut u) = setup(100, 3, 5);
        let cfg = AdmmConfig::blocked(30); // 4 blocks (30+30+30+10)
        let stats = admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &cfg).unwrap();
        assert_eq!(stats.blocks, 4);
        assert!(stats.blocks_converged <= 4);
        assert!(stats.row_iterations >= 100);
    }
}
