//! Constraint framework and ADMM solvers for AO-ADMM.
//!
//! This crate implements Algorithm 1 of the paper — the inner ADMM that
//! enforces constraints on one factor matrix — in the two parallel forms
//! the paper compares:
//!
//! * the fused baseline ([`AdmmStrategy::Fused`]) of Section IV-A: every kernel
//!   (triangular solves, proximity operator, dual update, residuals) is
//!   individually parallelized over the rows of the tall-and-skinny
//!   matrices, with a synchronization barrier between kernels and a global
//!   convergence test each iteration.
//! * the blockwise reformulation ([`AdmmStrategy::Blocked`]) of
//!   Section IV-B: rows are split into blocks (default 50 rows) and each
//!   block runs its *own* ADMM to its own convergence. Blocks are
//!   distributed to threads dynamically (rayon work stealing, the
//!   analogue of OpenMP `schedule(dynamic)`), eliminating inner-iteration
//!   synchronization and keeping each block cache resident.
//!
//! Constraints and regularizations are row-separable proximity operators
//! behind the [`Prox`] trait ([`prox`]); adding a new constraint means
//! implementing one method, which is the flexibility claim of the paper.

#![warn(missing_docs)]

pub mod blocked;
pub mod config;
pub mod dual;
pub mod fused;
pub mod prox;
pub mod reference;
pub mod solver;
pub mod workspace;

pub use config::{AdaptiveRho, AdmmConfig, AdmmStrategy};
pub use dual::DualState;
pub use prox::{constraints, Prox};
pub use reference::admm_update_reference;
pub use solver::{admm_update, admm_update_ws, AdmmStats};
pub use workspace::AdmmWorkspace;
