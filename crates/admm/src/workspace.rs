//! Reusable scratch for the ADMM hot loop.
//!
//! One [`AdmmWorkspace`] is owned by the outer AO driver and lent to
//! [`crate::admm_update_ws`] on every mode update. It holds everything
//! the update used to allocate per call:
//!
//! * the Cholesky factor of `G + rho*I` (re-factored in place — the
//!   normal matrix keeps its `F x F` shape across all modes),
//! * per-block scratch for the blocked strategy (solve panels, the
//!   previous-row buffer, the block-private factor used by adaptive rho,
//!   and the block's outcome — written in place so the parallel sweep
//!   no longer `collect()`s),
//! * the materialized auxiliary matrix and per-panel scratch for the
//!   fused baseline strategy.
//!
//! Buffers grow to the high-water mark of the shapes they have served
//! and are then reused, so steady-state outer iterations perform no heap
//! allocation anywhere in the ADMM row sweep.

use crate::fused::FusedScratch;
use crate::solver::BlockOutcome;
use splinalg::panel::PANEL_ROWS;
use splinalg::Cholesky;

/// Per-block scratch state for the blocked strategy.
#[derive(Debug, Default)]
pub(crate) struct BlockScratch {
    /// Right-hand-side panel (`PANEL_ROWS * F`), overwritten by the
    /// panel solve.
    pub rhs: Vec<f64>,
    /// Transposed-panel scratch for [`Cholesky::solve_panel`].
    pub tpose: Vec<f64>,
    /// Previous primal row (`F`), for the dual-residual partial.
    pub hold: Vec<f64>,
    /// Block-private factor of `G + rho*I` once adaptive rho diverges
    /// from the shared penalty; re-factored in place on later rescales.
    pub chol: Option<Cholesky>,
    /// Outcome of the block's last run (replaces the collected tuples).
    pub outcome: BlockOutcome,
    /// Rows the block covered on its last run.
    pub rows: usize,
}

impl BlockScratch {
    /// Grow the scratch rows for factor width `f`; no-op once warm.
    pub fn ensure(&mut self, f: usize) {
        let panel = PANEL_ROWS * f;
        if self.rhs.len() < panel {
            self.rhs.resize(panel, 0.0);
        }
        if self.tpose.len() < panel {
            self.tpose.resize(panel, 0.0);
        }
        if self.hold.len() < f {
            self.hold.resize(f, 0.0);
        }
    }
}

/// Grow-once scratch arena for [`crate::admm_update_ws`].
///
/// Create one per factorization loop and pass it to every update; the
/// first call sizes everything, later calls allocate nothing.
#[derive(Debug, Default)]
pub struct AdmmWorkspace {
    /// Shared factor of `G + rho*I`, re-factored in place per update.
    pub(crate) chol: Option<Cholesky>,
    /// Per-block scratch for the blocked strategy.
    pub(crate) blocks: Vec<BlockScratch>,
    /// Materialized auxiliary matrix for the fused strategy.
    pub(crate) fused_haux: Vec<f64>,
    /// Per-panel scratch for the fused strategy.
    pub(crate) fused_panels: Vec<FusedScratch>,
}

impl AdmmWorkspace {
    /// Create an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
