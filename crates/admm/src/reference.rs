//! Legacy scalar (row-at-a-time) ADMM kernels.
//!
//! This is the pre-panel implementation of the inner ADMM, kept verbatim
//! as a differential-testing oracle and benchmark baseline for the
//! panelized hot path:
//!
//! * the conformance suite pins [`crate::admm_update_ws`] (blocked
//!   strategy) **bit-equal** to [`admm_update_reference`] — rows are
//!   independent within an inner iteration and the panel sweep issues
//!   the same per-row operations in the same order, so even the early
//!   convergence decisions must match exactly;
//! * the `panel_vs_scalar` criterion groups measure the panel layer's
//!   speedup against this path.
//!
//! It intentionally retains the legacy allocation behaviour (per-block
//! scratch rows, `gram.clone()` per factorization and per adaptive-rho
//! rescale, collected outcome vectors, work-stealing residual reduction
//! in the fused strategy) — that overhead is the baseline the workspace
//! path is measured against. Do not "fix" it.

use crate::config::{AdmmConfig, AdmmStrategy};
use crate::prox::Prox;
use crate::solver::{relative, AdmmStats, BlockOutcome};
use rayon::prelude::*;
use splinalg::{vecops, Cholesky, DMat, LinalgError};

/// Legacy row-at-a-time ADMM on a contiguous block of rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block_reference(
    chol: &Cholesky,
    rho: f64,
    gram: &DMat,
    adaptive: Option<crate::config::AdaptiveRho>,
    relaxation: f64,
    k: &[f64],
    h: &mut [f64],
    u: &mut [f64],
    f: usize,
    prox: &dyn Prox,
    tol: f64,
    max_inner: usize,
    haux_buf: &mut [f64],
    hold_buf: &mut [f64],
) -> BlockOutcome {
    debug_assert_eq!(k.len(), h.len());
    debug_assert_eq!(k.len(), u.len());
    debug_assert_eq!(haux_buf.len(), f);
    debug_assert_eq!(hold_buf.len(), f);
    let nrows = k.len() / f;

    let mut rho = rho;
    let mut local_chol: Option<Cholesky> = None;
    let mut rescales = 0usize;

    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_inner {
        iterations += 1;
        let chol = local_chol.as_ref().unwrap_or(chol);
        let mut r_num = 0.0;
        let mut h_sq = 0.0;
        let mut s_num = 0.0;
        let mut u_sq = 0.0;

        for r in 0..nrows {
            let kr = &k[r * f..(r + 1) * f];
            let hr = &mut h[r * f..(r + 1) * f];
            let ur = &mut u[r * f..(r + 1) * f];

            for c in 0..f {
                haux_buf[c] = kr[c] + rho * (hr[c] + ur[c]);
            }
            chol.solve_row(haux_buf);

            if relaxation != 1.0 {
                for c in 0..f {
                    haux_buf[c] = relaxation * haux_buf[c] + (1.0 - relaxation) * hr[c];
                }
            }

            hold_buf.copy_from_slice(hr);

            for c in 0..f {
                hr[c] = haux_buf[c] - ur[c];
            }
            prox.apply_row(hr, rho);

            for c in 0..f {
                ur[c] += hr[c] - haux_buf[c];
            }

            r_num += vecops::dist_sq(hr, haux_buf);
            h_sq += vecops::norm_sq(hr);
            s_num += vecops::dist_sq(hr, hold_buf);
            u_sq += vecops::norm_sq(ur);
        }

        primal = relative(r_num, h_sq);
        dual = relative(s_num, if u_sq > 0.0 { u_sq } else { h_sq });
        if primal <= tol && dual <= tol {
            return BlockOutcome {
                iterations,
                primal,
                dual,
                converged: true,
            };
        }

        if let Some(ar) = adaptive {
            if rescales < ar.max_rescales {
                let mu_sq = ar.mu * ar.mu;
                let new_rho = if r_num > mu_sq * s_num {
                    Some(rho * ar.tau)
                } else if s_num > mu_sq * r_num {
                    Some(rho / ar.tau)
                } else {
                    None
                };
                if let Some(nr) = new_rho {
                    let scale = rho / nr;
                    for x in u.iter_mut() {
                        *x *= scale;
                    }
                    let mut normal = gram.clone();
                    normal.add_diag(nr);
                    local_chol = Some(Cholesky::factor(&normal).expect("G + rho I is SPD"));
                    rho = nr;
                    rescales += 1;
                }
            }
        }
    }
    BlockOutcome {
        iterations,
        primal,
        dual,
        converged: false,
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Partials {
    r_num: f64,
    h_sq: f64,
    s_num: f64,
    u_sq: f64,
}

impl Partials {
    fn merge(self, o: Partials) -> Partials {
        Partials {
            r_num: self.r_num + o.r_num,
            h_sq: self.h_sq + o.h_sq,
            s_num: self.s_num + o.s_num,
            u_sq: self.u_sq + o.u_sq,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_blocked_reference(
    chol: &Cholesky,
    rho: f64,
    gram: &DMat,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
) -> AdmmStats {
    let f = k.ncols();
    let nrows = k.nrows();
    if nrows == 0 {
        return AdmmStats {
            iterations: 0,
            row_iterations: 0,
            blocks_converged: 0,
            blocks: 0,
            primal: 0.0,
            dual: 0.0,
        };
    }
    let chunk = cfg.block_size.max(1).saturating_mul(f);

    let outcomes: Vec<(BlockOutcome, usize)> = h
        .as_mut_slice()
        .par_chunks_mut(chunk)
        .zip(u.as_mut_slice().par_chunks_mut(chunk))
        .zip(k.as_slice().par_chunks(chunk))
        .map(|((hb, ub), kb)| {
            let mut haux = vec![0.0; f];
            let mut hold = vec![0.0; f];
            let rows = kb.len() / f;
            let out = run_block_reference(
                chol,
                rho,
                gram,
                cfg.adaptive_rho,
                cfg.relaxation,
                kb,
                hb,
                ub,
                f,
                prox,
                cfg.tol,
                cfg.max_inner,
                &mut haux,
                &mut hold,
            );
            (out, rows)
        })
        .collect();

    let mut stats = AdmmStats {
        iterations: 0,
        row_iterations: 0,
        blocks_converged: 0,
        blocks: outcomes.len(),
        primal: 0.0,
        dual: 0.0,
    };
    for (o, rows) in &outcomes {
        stats.iterations = stats.iterations.max(o.iterations);
        stats.row_iterations += (o.iterations * rows) as u64;
        if o.converged {
            stats.blocks_converged += 1;
        }
        stats.primal = stats.primal.max(o.primal);
        stats.dual = stats.dual.max(o.dual);
    }
    stats
}

fn run_fused_reference(
    chol: &Cholesky,
    rho: f64,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
) -> AdmmStats {
    let f = k.ncols();
    let nrows = k.nrows();
    if nrows == 0 {
        return AdmmStats {
            iterations: 0,
            row_iterations: 0,
            blocks_converged: 1,
            blocks: 1,
            primal: 0.0,
            dual: 0.0,
        };
    }

    let mut haux = DMat::zeros(nrows, f);

    let mut iterations = 0;
    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let mut converged = false;

    while iterations < cfg.max_inner {
        iterations += 1;

        haux.as_mut_slice()
            .par_chunks_mut(f)
            .zip(k.as_slice().par_chunks(f))
            .zip(h.as_slice().par_chunks(f))
            .zip(u.as_slice().par_chunks(f))
            .for_each(|(((hx, kr), hr), ur)| {
                for c in 0..f {
                    hx[c] = kr[c] + rho * (hr[c] + ur[c]);
                }
                chol.solve_row(hx);
            });

        let p = h
            .as_mut_slice()
            .par_chunks_mut(f)
            .zip(u.as_mut_slice().par_chunks_mut(f))
            .zip(haux.as_slice().par_chunks(f))
            .fold(
                || (vec![0.0; f], Partials::default()),
                |(mut hold, mut acc), ((hr, ur), hx)| {
                    hold.copy_from_slice(hr);
                    let alpha = cfg.relaxation;
                    let blend = |c: usize| {
                        if alpha == 1.0 {
                            hx[c]
                        } else {
                            alpha * hx[c] + (1.0 - alpha) * hold[c]
                        }
                    };
                    for c in 0..f {
                        hr[c] = blend(c) - ur[c];
                    }
                    prox.apply_row(hr, rho);
                    let mut r_num = 0.0;
                    for c in 0..f {
                        let hb = blend(c);
                        ur[c] += hr[c] - hb;
                        r_num += (hr[c] - hb) * (hr[c] - hb);
                    }
                    acc.r_num += r_num;
                    acc.h_sq += vecops::norm_sq(hr);
                    acc.s_num += vecops::dist_sq(hr, &hold);
                    acc.u_sq += vecops::norm_sq(ur);
                    (hold, acc)
                },
            )
            .map(|(_, acc)| acc)
            .reduce(Partials::default, Partials::merge);

        primal = relative(p.r_num, p.h_sq);
        dual = relative(p.s_num, if p.u_sq > 0.0 { p.u_sq } else { p.h_sq });
        if primal <= cfg.tol && dual <= cfg.tol {
            converged = true;
            break;
        }
    }

    AdmmStats {
        iterations,
        row_iterations: (iterations * nrows) as u64,
        blocks_converged: usize::from(converged),
        blocks: 1,
        primal,
        dual,
    }
}

/// Legacy scalar [`crate::admm_update`]: per-row solves, per-call
/// allocations, work-stealing fused reduction.
///
/// Differential-testing oracle and benchmark baseline only — use
/// [`crate::admm_update_ws`] in production code.
pub fn admm_update_reference(
    gram: &DMat,
    k: &DMat,
    h: &mut DMat,
    u: &mut DMat,
    prox: &dyn Prox,
    cfg: &AdmmConfig,
) -> Result<AdmmStats, LinalgError> {
    let f = gram.nrows();
    if k.ncols() != f || h.ncols() != f || u.ncols() != f {
        return Err(LinalgError::DimMismatch {
            op: "admm_update",
            lhs: (f, f),
            rhs: (k.nrows(), k.ncols()),
        });
    }
    if k.nrows() != h.nrows() || k.nrows() != u.nrows() {
        return Err(LinalgError::DimMismatch {
            op: "admm_update rows",
            lhs: (h.nrows(), f),
            rhs: (k.nrows(), f),
        });
    }

    let mut rho = gram.trace() / f as f64;
    if rho.is_nan() || rho <= 1e-12 {
        rho = 1.0;
    }

    let mut normal = gram.clone();
    normal.add_diag(rho);
    let chol = Cholesky::factor(&normal)?;

    match cfg.strategy {
        AdmmStrategy::Blocked => Ok(run_blocked_reference(&chol, rho, gram, k, h, u, prox, cfg)),
        AdmmStrategy::Fused => Ok(run_fused_reference(&chol, rho, k, h, u, prox, cfg)),
    }
}
