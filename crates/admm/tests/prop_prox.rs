//! Property-based tests of the proximity operators and the ADMM solver.
//!
//! All built-in penalties are convex, so their proximity operators must
//! be *firmly non-expansive*; projections must additionally be
//! idempotent and land in the feasible set. These properties hold for
//! arbitrary inputs, which is exactly what proptest shakes out.

use admm::prox::{BoxBound, Lasso, MaxRowNorm, NonNeg, NonNegLasso, Prox, Ridge, Simplex};
use admm::{admm_update, AdmmConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;

fn row_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 1..12)
}

fn all_ops() -> Vec<Box<dyn Prox>> {
    vec![
        Box::new(NonNeg),
        Box::new(Lasso { lambda: 0.5 }),
        Box::new(NonNegLasso { lambda: 0.5 }),
        Box::new(Ridge { lambda: 0.5 }),
        Box::new(BoxBound { lo: -1.0, hi: 1.0 }),
        Box::new(Simplex),
        Box::new(MaxRowNorm { bound: 2.0 }),
    ]
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prox_is_nonexpansive(x in row_strategy(), shift in -2.0f64..2.0, rho in 0.1f64..10.0) {
        // y = x + shift elementwise; ||prox(x) - prox(y)|| <= ||x - y||.
        let y: Vec<f64> = x.iter().map(|v| v + shift).collect();
        for op in all_ops() {
            let mut px = x.clone();
            let mut py = y.clone();
            op.apply_row(&mut px, rho);
            op.apply_row(&mut py, rho);
            let d_in: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            let d_out: f64 = px.iter().zip(&py).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            prop_assert!(d_out <= d_in + 1e-9, "{} expanded: {d_out} > {d_in}", op.name());
        }
    }

    #[test]
    fn projections_idempotent_and_feasible(x in row_strategy(), rho in 0.1f64..10.0) {
        let projections: Vec<Box<dyn Prox>> = vec![
            Box::new(NonNeg),
            Box::new(BoxBound { lo: -1.0, hi: 1.0 }),
            Box::new(Simplex),
            Box::new(MaxRowNorm { bound: 2.0 }),
        ];
        for op in projections {
            let mut once = x.clone();
            op.apply_row(&mut once, rho);
            prop_assert!(op.is_feasible_row(&once, 1e-9), "{} infeasible output", op.name());
            let mut twice = once.clone();
            op.apply_row(&mut twice, rho);
            for (a, b) in once.iter().zip(&twice) {
                prop_assert!((a - b).abs() < 1e-9, "{} not idempotent", op.name());
            }
        }
    }

    #[test]
    fn soft_threshold_shrinks_l1_norm(x in row_strategy(), rho in 0.1f64..10.0) {
        let op = Lasso { lambda: 1.0 };
        let mut px = x.clone();
        op.apply_row(&mut px, rho);
        let before: f64 = x.iter().map(|v| v.abs()).sum();
        let after: f64 = px.iter().map(|v| v.abs()).sum();
        prop_assert!(after <= before + 1e-12);
        // Sign preservation on surviving entries.
        for (a, b) in x.iter().zip(&px) {
            prop_assert!(*b == 0.0 || a.signum() == b.signum());
        }
    }

    #[test]
    fn ridge_prox_scales_toward_zero(x in row_strategy(), rho in 0.1f64..10.0, lambda in 0.01f64..5.0) {
        let op = Ridge { lambda };
        let mut px = x.clone();
        op.apply_row(&mut px, rho);
        prop_assert!(norm(&px) <= norm(&x) + 1e-12);
    }

    #[test]
    fn admm_fixed_point_is_feasible(rows in 1usize..40, f in 1usize..6, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = DMat::random(f + 2, f, -1.0, 1.0, &mut rng);
        let mut gram = w.gram();
        gram.add_diag(0.1);
        let k = DMat::random(rows, f, -2.0, 2.0, &mut rng);
        let mut h = DMat::zeros(rows, f);
        let mut u = DMat::zeros(rows, f);
        admm_update(&gram, &k, &mut h, &mut u, &NonNeg, &AdmmConfig::default()).unwrap();
        prop_assert!(h.as_slice().iter().all(|&x| x >= 0.0));
        prop_assert!(h.as_slice().iter().all(|x| x.is_finite()));
        prop_assert!(u.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn blocked_block_size_never_changes_feasibility(bs in 1usize..200, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = 4;
        let w = DMat::random(f + 3, f, 0.0, 1.0, &mut rng);
        let gram = w.gram();
        let k = DMat::random(60, f, -1.0, 1.0, &mut rng);
        let mut h = DMat::zeros(60, f);
        let mut u = DMat::zeros(60, f);
        let cfg = AdmmConfig::blocked(bs);
        let stats = admm_update(&gram, &k, &mut h, &mut u, &Simplex, &cfg).unwrap();
        prop_assert!(stats.blocks >= 1);
        for i in 0..60 {
            prop_assert!(Simplex.is_feasible_row(h.row(i), 1e-6), "row {i} infeasible");
        }
    }
}
