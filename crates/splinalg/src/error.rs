//! Error types for the linear-algebra substrate.

use std::fmt;

/// Errors raised by dense and sparse matrix kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions do not agree for the requested operation.
    DimMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// Cholesky factorization encountered a non-positive pivot; the matrix
    /// is not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An argument was structurally invalid (e.g. an empty matrix where a
    /// non-empty one is required).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dim_mismatch() {
        let e = LinalgError::DimMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_not_spd() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::InvalidArgument("x".into()));
    }
}
