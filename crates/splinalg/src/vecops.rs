//! Small vector kernels shared by the dense and sparse matrix code.
//!
//! These are the innermost loops of ADMM and MTTKRP; they are written over
//! plain slices so the compiler can unroll and vectorize them, and so that
//! callers can apply them to rows of [`crate::DMat`] without copies.

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over equally sized slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Squared Euclidean distance between two equally sized slices.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Elementwise product accumulated into an output slice: `out += a .* b`.
#[inline]
pub fn hadamard_acc(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o += x * y;
    }
}

/// Elementwise product in place: `a .*= b`.
#[inline]
pub fn hadamard_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x *= y;
    }
}

/// Fill a slice with a constant.
#[inline]
pub fn fill(a: &mut [f64], v: f64) {
    for x in a.iter_mut() {
        *x = v;
    }
}

/// Count entries whose magnitude is strictly greater than `tol`.
#[inline]
pub fn count_nonzeros(a: &[f64], tol: f64) -> usize {
    a.iter().filter(|x| x.abs() > tol).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn hadamard_ops() {
        let mut out = vec![1.0, 1.0];
        hadamard_acc(&[2.0, 3.0], &[4.0, 5.0], &mut out);
        assert_eq!(out, vec![9.0, 16.0]);

        let mut a = vec![2.0, 3.0];
        hadamard_assign(&mut a, &[4.0, 5.0]);
        assert_eq!(a, vec![8.0, 15.0]);
    }

    #[test]
    fn fill_and_count() {
        let mut a = vec![0.0; 4];
        fill(&mut a, 2.5);
        assert!(a.iter().all(|&x| x == 2.5));
        assert_eq!(count_nonzeros(&[0.0, 1e-12, 0.5, -0.5], 1e-9), 2);
    }
}
