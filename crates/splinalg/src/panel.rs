//! Panelized (register/cache-blocked) dense kernels.
//!
//! The paper hands all dense work to MKL; this module is our equivalent
//! of MKL's SYRK/TRSM panel kernels, written so the compiler can
//! autovectorize the inner loops: fixed-width register blocks over rows,
//! unit-stride innermost loops over columns, and no per-call heap
//! allocation (scratch comes from a [`Workspace`]).
//!
//! # Determinism contract
//!
//! Every kernel here is **bit-identical** to the legacy scalar kernel it
//! replaces ([`DMat::gram`], [`crate::Cholesky::solve_row`]) for finite
//! inputs, across any rayon thread count. Two mechanisms make that hold:
//!
//! * Parallel reductions use fixed-size chunks whose partials are merged
//!   sequentially in chunk order (never work-stealing fold/reduce), so
//!   the floating-point grouping is independent of scheduling.
//! * Register blocking only batches *independent* per-entry update
//!   chains: the 4-row Gram micro-kernel issues the same per-entry adds
//!   in the same order as the row-at-a-time loop, and the panel solve
//!   performs the same per-row elimination sequence as `solve_row`, just
//!   interleaved across rows of a panel.
//!
//! Inputs are assumed finite (no NaN/inf); the factorization pipeline
//! guards against non-finite values upstream. With finite inputs,
//! accumulating `0.0 * x` is exact and sign-preserving, which is what
//! lets the micro-kernel drop the legacy `row[a] == 0.0` skip without
//! changing a single bit of the result.

use crate::dense::DMat;
use crate::error::LinalgError;
use crate::vecops;
use crate::workspace::Workspace;
use rayon::prelude::*;

/// Rows per solve/sweep panel.
///
/// Large enough that the `F x F` triangular factor is streamed once per
/// P rows instead of once per row; small enough that a transposed panel
/// (`P * F` doubles, up to 50 KB at F = 200) stays cache-resident.
pub const PANEL_ROWS: usize = 32;

/// Rows per parallel Gram chunk. Must match the chunking of
/// [`DMat::gram`] so the two kernels share one deterministic reduction
/// order (the conformance suite pins them bit-equal).
pub const GRAM_CHUNK_ROWS: usize = 512;

/// Gram matrix `A^T A` into a caller-owned `F x F` output, allocation-free.
///
/// Bit-identical to [`DMat::gram`]: same fixed 512-row chunks, same
/// chunk-ordered merge of partials, same per-entry accumulation order
/// inside a chunk — but the partials live in the workspace instead of a
/// fresh `Vec<Vec<f64>>` per call, and rows are processed four at a time
/// so the compiler keeps four accumulator chains in registers.
///
/// Returns an error when `out` is not `ncols x ncols`.
pub fn gram_into(a: &DMat, ws: &mut Workspace, out: &mut DMat) -> Result<(), LinalgError> {
    let f = a.ncols();
    if out.nrows() != f || out.ncols() != f {
        return Err(LinalgError::DimMismatch {
            op: "gram_into",
            lhs: (a.nrows(), a.ncols()),
            rhs: (out.nrows(), out.ncols()),
        });
    }
    if f == 0 || a.nrows() == 0 {
        out.fill(0.0);
        return Ok(());
    }
    let chunk = f * GRAM_CHUNK_ROWS;
    let data = a.as_slice();
    let nchunks = data.len().div_ceil(chunk);
    let partials = ws.gram_partials(nchunks * f * f);
    partials
        .par_chunks_mut(f * f)
        .zip(data.par_chunks(chunk))
        .for_each(|(acc, rows)| {
            vecops::fill(acc, 0.0);
            accumulate_gram_chunk(acc, rows, f);
        });
    // Merge partials sequentially in chunk order: bit-identical across
    // runs and thread counts (see DMat::gram).
    let g = out.as_mut_slice();
    vecops::fill(g, 0.0);
    for p in partials.chunks_exact(f * f) {
        for (a, b) in g.iter_mut().zip(p) {
            *a += b;
        }
    }
    // Mirror the upper triangle into the lower triangle.
    for a in 0..f {
        for b in (a + 1)..f {
            g[b * f + a] = g[a * f + b];
        }
    }
    Ok(())
}

/// Upper-triangle Gram accumulation for one chunk of rows, register
/// blocked four rows at a time.
///
/// The legacy loop accumulates, for each entry `(a, b)`, the products
/// `row_r[a] * row_r[b]` in ascending row order `r`. The quad block
/// issues those same adds per entry as four sequential `+=` (Rust never
/// reassociates or FMA-contracts float arithmetic), so the sum for every
/// entry is grouped exactly as in the row-at-a-time kernel. The legacy
/// `ra == 0.0` skip is dropped in the quad block: for finite inputs,
/// adding `0.0 * row[b]` cannot change the accumulator's value *or* its
/// sign bit (the running sum never becomes `-0.0`: it starts at `+0.0`
/// and `+0.0 + -0.0 == +0.0` under round-to-nearest), so skipping and
/// not skipping produce the same bits.
fn accumulate_gram_chunk(acc: &mut [f64], rows: &[f64], f: usize) {
    let mut quads = rows.chunks_exact(4 * f);
    for quad in quads.by_ref() {
        let (r0, rest) = quad.split_at(f);
        let (r1, rest) = rest.split_at(f);
        let (r2, r3) = rest.split_at(f);
        for a in 0..f {
            let (a0, a1, a2, a3) = (r0[a], r1[a], r2[a], r3[a]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let grow = &mut acc[a * f..(a + 1) * f];
            for b in a..f {
                let mut s = grow[b];
                s += a0 * r0[b];
                s += a1 * r1[b];
                s += a2 * r2[b];
                s += a3 * r3[b];
                grow[b] = s;
            }
        }
    }
    // Remainder rows (< 4): legacy row-at-a-time kernel.
    for row in quads.remainder().chunks_exact(f) {
        for (a, &ra) in row.iter().enumerate() {
            if ra == 0.0 {
                continue;
            }
            let grow = &mut acc[a * f..(a + 1) * f];
            for b in a..f {
                grow[b] += ra * row[b];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bits(m: &DMat) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn gram_into_bit_identical_to_legacy() {
        let mut ws = Workspace::new();
        // Row counts straddling the quad width and the chunk width.
        for &(n, f) in &[(1usize, 3usize), (4, 3), (5, 3), (513, 8), (1027, 5)] {
            let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
            let a = DMat::random(n, f, -1.0, 1.0, &mut rng);
            let legacy = a.gram();
            let mut out = DMat::zeros(f, f);
            gram_into(&a, &mut ws, &mut out).unwrap();
            assert_eq!(bits(&legacy), bits(&out), "n={n} f={f}");
        }
    }

    #[test]
    fn gram_into_handles_zero_rows_in_quads() {
        // Sparse-ish rows exercise the dropped zero-skip inside quads.
        let mut a = DMat::zeros(9, 4);
        for i in 0..9 {
            if i % 3 != 0 {
                a.set(i, i % 4, (i as f64) - 4.0);
            }
        }
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(4, 4);
        gram_into(&a, &mut ws, &mut out).unwrap();
        assert_eq!(bits(&a.gram()), bits(&out));
    }

    #[test]
    fn gram_into_rejects_bad_shape() {
        let a = DMat::zeros(3, 2);
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(3, 3);
        assert!(gram_into(&a, &mut ws, &mut out).is_err());
    }

    #[test]
    fn gram_into_empty_matrix() {
        let a = DMat::zeros(0, 4);
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(4, 4);
        out.fill(7.0);
        gram_into(&a, &mut ws, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }
}
