//! Panelized (register/cache-blocked) dense kernels.
//!
//! The paper hands all dense work to MKL; this module is our equivalent
//! of MKL's SYRK/TRSM panel kernels, written so the compiler can
//! autovectorize the inner loops: fixed-width register blocks over rows,
//! unit-stride innermost loops over columns, and no per-call heap
//! allocation (scratch comes from a [`Workspace`]).
//!
//! # Determinism contract
//!
//! Every kernel here is **bit-identical** to the legacy scalar kernel it
//! replaces ([`DMat::gram`], [`crate::Cholesky::solve_row`]) for finite
//! inputs, across any rayon thread count. Two mechanisms make that hold:
//!
//! * Parallel reductions use fixed-size chunks whose partials are merged
//!   sequentially in chunk order (never work-stealing fold/reduce), so
//!   the floating-point grouping is independent of scheduling.
//! * Register blocking only batches *independent* per-entry update
//!   chains: the 4-row Gram micro-kernel issues the same per-entry adds
//!   in the same order as the row-at-a-time loop, and the panel solve
//!   performs the same per-row elimination sequence as `solve_row`, just
//!   interleaved across rows of a panel.
//!
//! Inputs are assumed finite (no NaN/inf); the factorization pipeline
//! guards against non-finite values upstream. With finite inputs,
//! accumulating `0.0 * x` is exact and sign-preserving, which is what
//! lets the micro-kernel drop the legacy `row[a] == 0.0` skip without
//! changing a single bit of the result.

use crate::dense::DMat;
use crate::error::LinalgError;
use crate::vecops;
use crate::workspace::Workspace;
use rayon::prelude::*;

/// Rows per solve/sweep panel.
///
/// Large enough that the `F x F` triangular factor is streamed once per
/// P rows instead of once per row; small enough that a transposed panel
/// (`P * F` doubles, up to 50 KB at F = 200) stays cache-resident.
pub const PANEL_ROWS: usize = 32;

/// Rows per parallel Gram chunk. Must match the chunking of
/// [`DMat::gram`] so the two kernels share one deterministic reduction
/// order (the conformance suite pins them bit-equal).
pub const GRAM_CHUNK_ROWS: usize = 512;

/// Gram matrix `A^T A` into a caller-owned `F x F` output, allocation-free.
///
/// Bit-identical to [`DMat::gram`]: same fixed 512-row chunks, same
/// chunk-ordered merge of partials, same per-entry accumulation order
/// inside a chunk — but the partials live in the workspace instead of a
/// fresh `Vec<Vec<f64>>` per call, and rows are processed four at a time
/// so the compiler keeps four accumulator chains in registers.
///
/// Returns an error when `out` is not `ncols x ncols`.
pub fn gram_into(a: &DMat, ws: &mut Workspace, out: &mut DMat) -> Result<(), LinalgError> {
    let f = a.ncols();
    if out.nrows() != f || out.ncols() != f {
        return Err(LinalgError::DimMismatch {
            op: "gram_into",
            lhs: (a.nrows(), a.ncols()),
            rhs: (out.nrows(), out.ncols()),
        });
    }
    if f == 0 || a.nrows() == 0 {
        out.fill(0.0);
        return Ok(());
    }
    let chunk = f * GRAM_CHUNK_ROWS;
    let data = a.as_slice();
    let nchunks = data.len().div_ceil(chunk);
    let partials = ws.gram_partials(nchunks * f * f);
    partials
        .par_chunks_mut(f * f)
        .zip(data.par_chunks(chunk))
        .for_each(|(acc, rows)| {
            vecops::fill(acc, 0.0);
            accumulate_gram_chunk(acc, rows, f);
        });
    // Merge partials sequentially in chunk order: bit-identical across
    // runs and thread counts (see DMat::gram).
    let g = out.as_mut_slice();
    vecops::fill(g, 0.0);
    for p in partials.chunks_exact(f * f) {
        for (a, b) in g.iter_mut().zip(p) {
            *a += b;
        }
    }
    // Mirror the upper triangle into the lower triangle.
    for a in 0..f {
        for b in (a + 1)..f {
            g[b * f + a] = g[a * f + b];
        }
    }
    Ok(())
}

/// Upper-triangle Gram accumulation for one chunk of rows, register
/// blocked four rows at a time.
///
/// The legacy loop accumulates, for each entry `(a, b)`, the products
/// `row_r[a] * row_r[b]` in ascending row order `r`. The quad block
/// issues those same adds per entry as four sequential `+=` (Rust never
/// reassociates or FMA-contracts float arithmetic), so the sum for every
/// entry is grouped exactly as in the row-at-a-time kernel. The legacy
/// `ra == 0.0` skip is dropped in the quad block: for finite inputs,
/// adding `0.0 * row[b]` cannot change the accumulator's value *or* its
/// sign bit (the running sum never becomes `-0.0`: it starts at `+0.0`
/// and `+0.0 + -0.0 == +0.0` under round-to-nearest), so skipping and
/// not skipping produce the same bits.
fn accumulate_gram_chunk(acc: &mut [f64], rows: &[f64], f: usize) {
    let mut quads = rows.chunks_exact(4 * f);
    for quad in quads.by_ref() {
        let (r0, rest) = quad.split_at(f);
        let (r1, rest) = rest.split_at(f);
        let (r2, r3) = rest.split_at(f);
        for a in 0..f {
            let (a0, a1, a2, a3) = (r0[a], r1[a], r2[a], r3[a]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let grow = &mut acc[a * f..(a + 1) * f];
            for b in a..f {
                let mut s = grow[b];
                s += a0 * r0[b];
                s += a1 * r1[b];
                s += a2 * r2[b];
                s += a3 * r3[b];
                grow[b] = s;
            }
        }
    }
    // Remainder rows (< 4): legacy row-at-a-time kernel.
    for row in quads.remainder().chunks_exact(f) {
        for (a, &ra) in row.iter().enumerate() {
            if ra == 0.0 {
                continue;
            }
            let grow = &mut acc[a * f..(a + 1) * f];
            for b in a..f {
                grow[b] += ra * row[b];
            }
        }
    }
}

/// Batched row scoring: `out[i * w.nrows() + q] = dot(a.row(row0 + i), w.row(q))`
/// for `i in 0..nrows`.
///
/// This is the serving-side entry point: `a` is a factor matrix, each
/// row of `w` is one query's weight vector (the Hadamard product of the
/// fixed-mode factor rows), and the output is a `nrows x B` score panel.
/// Rows of `a` are processed four at a time with one accumulator chain
/// per row, so the compiler keeps the chains in registers and the `F`
/// loop stays unit-stride in both operands. Per-score accumulation runs
/// in ascending column order, matching the scalar
/// `dot(a.row(i), w.row(q))` loop bit-for-bit.
///
/// Returns an error when the widths disagree, the row range is out of
/// bounds, or `out` is not `nrows * w.nrows()` long.
pub fn scores_into(
    a: &DMat,
    row0: usize,
    nrows: usize,
    w: &DMat,
    out: &mut [f64],
) -> Result<(), LinalgError> {
    let f = a.ncols();
    let b = w.nrows();
    if w.ncols() != f || row0 + nrows > a.nrows() || out.len() != nrows * b {
        return Err(LinalgError::DimMismatch {
            op: "scores_into",
            lhs: (a.nrows(), a.ncols()),
            rhs: (w.nrows(), w.ncols()),
        });
    }
    let rows = &a.as_slice()[row0 * f..(row0 + nrows) * f];
    let mut quads = rows.chunks_exact(4 * f);
    let mut i = 0;
    for quad in quads.by_ref() {
        let (r0, rest) = quad.split_at(f);
        let (r1, rest) = rest.split_at(f);
        let (r2, r3) = rest.split_at(f);
        for q in 0..b {
            let wq = w.row(q);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (c, &wc) in wq.iter().enumerate() {
                s0 += r0[c] * wc;
                s1 += r1[c] * wc;
                s2 += r2[c] * wc;
                s3 += r3[c] * wc;
            }
            out[i * b + q] = s0;
            out[(i + 1) * b + q] = s1;
            out[(i + 2) * b + q] = s2;
            out[(i + 3) * b + q] = s3;
        }
        i += 4;
    }
    for row in quads.remainder().chunks_exact(f) {
        for q in 0..b {
            let mut s = 0.0;
            for (&rc, &wc) in row.iter().zip(w.row(q)) {
                s += rc * wc;
            }
            out[i * b + q] = s;
        }
        i += 1;
    }
    Ok(())
}

/// Gathered Hadamard accumulation for batched point reconstruction.
///
/// For each query `q`, multiplies `acc[q * F..]` elementwise by
/// `fac.row(ids[q])` — or initializes it to that row when `init` is
/// set. A batch of point queries calls this once per mode over pooled
/// workspace scratch, then reduces with [`row_sums_into`]; the resulting
/// per-query value groups its arithmetic exactly like the scalar
/// `sum_f prod_m fac_m[c_m, f]` loop (products in mode order, sum in
/// ascending column order), so batched and scalar scoring agree
/// bit-for-bit.
///
/// Returns an error when `acc` is not `ids.len() * F` long or an id is
/// out of range.
pub fn gather_hadamard_rows(
    fac: &DMat,
    ids: &[usize],
    init: bool,
    acc: &mut [f64],
) -> Result<(), LinalgError> {
    let f = fac.ncols();
    if acc.len() != ids.len() * f {
        return Err(LinalgError::DimMismatch {
            op: "gather_hadamard_rows",
            lhs: (ids.len(), f),
            rhs: (acc.len(), 1),
        });
    }
    if let Some(&bad) = ids.iter().find(|&&i| i >= fac.nrows()) {
        return Err(LinalgError::InvalidArgument(format!(
            "gather_hadamard_rows: row {bad} out of range for {} rows",
            fac.nrows()
        )));
    }
    for (slot, &id) in acc.chunks_exact_mut(f).zip(ids) {
        let row = fac.row(id);
        if init {
            slot.copy_from_slice(row);
        } else {
            for (s, &v) in slot.iter_mut().zip(row) {
                *s *= v;
            }
        }
    }
    Ok(())
}

/// Reduce a `B x F` accumulator panel to per-query sums:
/// `out[q] = sum_c acc[q * F + c]`, accumulated in ascending column
/// order. Companion to [`gather_hadamard_rows`].
pub fn row_sums_into(acc: &[f64], f: usize, out: &mut [f64]) -> Result<(), LinalgError> {
    if f == 0 || acc.len() != out.len() * f {
        return Err(LinalgError::DimMismatch {
            op: "row_sums_into",
            lhs: (out.len(), f),
            rhs: (acc.len(), 1),
        });
    }
    for (o, slot) in out.iter_mut().zip(acc.chunks_exact(f)) {
        let mut s = 0.0;
        for &v in slot {
            s += v;
        }
        *o = s;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bits(m: &DMat) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn gram_into_bit_identical_to_legacy() {
        let mut ws = Workspace::new();
        // Row counts straddling the quad width and the chunk width.
        for &(n, f) in &[(1usize, 3usize), (4, 3), (5, 3), (513, 8), (1027, 5)] {
            let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
            let a = DMat::random(n, f, -1.0, 1.0, &mut rng);
            let legacy = a.gram();
            let mut out = DMat::zeros(f, f);
            gram_into(&a, &mut ws, &mut out).unwrap();
            assert_eq!(bits(&legacy), bits(&out), "n={n} f={f}");
        }
    }

    #[test]
    fn gram_into_handles_zero_rows_in_quads() {
        // Sparse-ish rows exercise the dropped zero-skip inside quads.
        let mut a = DMat::zeros(9, 4);
        for i in 0..9 {
            if i % 3 != 0 {
                a.set(i, i % 4, (i as f64) - 4.0);
            }
        }
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(4, 4);
        gram_into(&a, &mut ws, &mut out).unwrap();
        assert_eq!(bits(&a.gram()), bits(&out));
    }

    #[test]
    fn gram_into_rejects_bad_shape() {
        let a = DMat::zeros(3, 2);
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(3, 3);
        assert!(gram_into(&a, &mut ws, &mut out).is_err());
    }

    #[test]
    fn gram_into_empty_matrix() {
        let a = DMat::zeros(0, 4);
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(4, 4);
        out.fill(7.0);
        gram_into(&a, &mut ws, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scores_into_bit_identical_to_scalar_dots() {
        // Row counts straddling the quad width; several batch widths.
        for &(n, f, b) in &[(1usize, 3usize, 1usize), (4, 5, 2), (7, 8, 3), (35, 2, 5)] {
            let mut rng = ChaCha8Rng::seed_from_u64((n * 31 + b) as u64);
            let a = DMat::random(n, f, -1.0, 1.0, &mut rng);
            let w = DMat::random(b, f, -1.0, 1.0, &mut rng);
            let mut out = vec![0.0; n * b];
            scores_into(&a, 0, n, &w, &mut out).unwrap();
            for i in 0..n {
                for q in 0..b {
                    let mut s = 0.0;
                    for c in 0..f {
                        s += a.get(i, c) * w.get(q, c);
                    }
                    assert_eq!(s.to_bits(), out[i * b + q].to_bits(), "n={n} f={f} b={b}");
                }
            }
        }
    }

    #[test]
    fn scores_into_row_window() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = DMat::random(10, 4, -1.0, 1.0, &mut rng);
        let w = DMat::random(2, 4, -1.0, 1.0, &mut rng);
        let mut full = vec![0.0; 10 * 2];
        scores_into(&a, 0, 10, &w, &mut full).unwrap();
        let mut win = vec![0.0; 5 * 2];
        scores_into(&a, 3, 5, &w, &mut win).unwrap();
        assert_eq!(&full[6..16], &win[..]);
    }

    #[test]
    fn scores_into_rejects_bad_shapes() {
        let a = DMat::zeros(4, 3);
        let w = DMat::zeros(2, 2);
        let mut out = vec![0.0; 8];
        assert!(scores_into(&a, 0, 4, &w, &mut out).is_err());
        let w = DMat::zeros(2, 3);
        assert!(scores_into(&a, 2, 3, &w, &mut out).is_err());
        let mut short = vec![0.0; 3];
        assert!(scores_into(&a, 0, 4, &w, &mut short).is_err());
    }

    #[test]
    fn gather_hadamard_and_row_sums_match_scalar_model_value() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let facs = [
            DMat::random(5, 3, -1.0, 1.0, &mut rng),
            DMat::random(4, 3, -1.0, 1.0, &mut rng),
            DMat::random(6, 3, -1.0, 1.0, &mut rng),
        ];
        let coords = [[0usize, 0, 0], [4, 3, 5], [2, 1, 4]];
        let mut acc = vec![0.0; coords.len() * 3];
        for (m, fac) in facs.iter().enumerate() {
            let ids: Vec<usize> = coords.iter().map(|c| c[m]).collect();
            gather_hadamard_rows(fac, &ids, m == 0, &mut acc).unwrap();
        }
        let mut out = vec![0.0; coords.len()];
        row_sums_into(&acc, 3, &mut out).unwrap();
        for (q, c) in coords.iter().enumerate() {
            let mut expect = 0.0;
            for r in 0..3 {
                let mut p = 1.0;
                for (m, fac) in facs.iter().enumerate() {
                    p *= fac.get(c[m], r);
                }
                expect += p;
            }
            assert_eq!(expect.to_bits(), out[q].to_bits());
        }
    }

    #[test]
    fn gather_hadamard_rejects_bad_ids_and_shapes() {
        let fac = DMat::zeros(3, 2);
        let mut acc = vec![0.0; 4];
        assert!(gather_hadamard_rows(&fac, &[0, 3], true, &mut acc).is_err());
        assert!(gather_hadamard_rows(&fac, &[0], true, &mut acc).is_err());
        let mut out = vec![0.0; 2];
        assert!(row_sums_into(&acc, 3, &mut out).is_err());
        assert!(row_sums_into(&acc, 0, &mut out).is_err());
    }
}
