//! Compressed sparse row (CSR) matrices.
//!
//! Section IV-C of the paper stores a sparse *copy* of the leaf-level
//! factor matrix in CSR during MTTKRP: only nonzero values and their
//! column indices are fetched from memory, so bandwidth scales with the
//! factor's density. The conversion from dense is an `O(K*F)` pass that is
//! re-done whenever the (dynamically evolving) sparsity pattern changes.

use crate::dense::DMat;
use crate::Idx;

/// A CSR matrix built as a read-only snapshot of a dense factor matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<Idx>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Snapshot a dense matrix, keeping entries with `|x| > tol`.
    ///
    /// `tol = 0.0` keeps every entry that is not exactly zero — the right
    /// choice after a proximity operator that produces exact zeros
    /// (non-negativity projection, soft thresholding).
    pub fn from_dense(dense: &DMat, tol: f64) -> Self {
        let nrows = dense.nrows();
        let ncols = dense.ncols();
        let nnz = dense.count_nonzeros(tol);
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colidx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        rowptr.push(0);
        for i in 0..nrows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > tol {
                    colidx.push(j as Idx);
                    vals.push(v);
                }
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of stored entries: `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows * self.ncols) as f64
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Idx], &[f64]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colidx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Accumulate `out += alpha * row(i)` scattered to original columns.
    ///
    /// This is the inner MTTKRP operation (Algorithm 3 line 9) with a
    /// sparse factor.
    #[inline]
    pub fn scatter_axpy(&self, i: usize, alpha: f64, out: &mut [f64]) {
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            out[c as usize] += alpha * v;
        }
    }

    /// Expand back to a dense matrix (tests / cold paths).
    pub fn to_dense(&self) -> DMat {
        let mut out = DMat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&c, &v) in cols.iter().zip(vals) {
                orow[c as usize] = v;
            }
        }
        out
    }

    /// Per-column nonzero counts (used to build the hybrid structure).
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.colidx {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Approximate heap footprint in bytes (for the structure-selection
    /// heuristic).
    pub fn memory_bytes(&self) -> usize {
        self.rowptr.len() * std::mem::size_of::<usize>()
            + self.colidx.len() * std::mem::size_of::<Idx>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sparse_dense(rows: usize, cols: usize, keep: f64, seed: u64) -> DMat {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = DMat::random(rows, cols, -1.0, 1.0, &mut rng);
        use rand::Rng;
        for v in m.as_mut_slice() {
            if rng.gen::<f64>() > keep {
                *v = 0.0;
            }
        }
        m
    }

    #[test]
    fn roundtrip_dense() {
        let d = sparse_dense(20, 8, 0.3, 1);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        assert!(csr.to_dense().max_abs_diff(&d) == 0.0);
        assert_eq!(csr.nnz(), d.count_nonzeros(0.0));
    }

    #[test]
    fn empty_matrix() {
        let d = DMat::zeros(5, 3);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
        for i in 0..5 {
            assert_eq!(csr.row_nnz(i), 0);
        }
    }

    #[test]
    fn tolerance_filters_small_entries() {
        let d = DMat::from_vec(1, 3, vec![0.5, 1e-12, -0.5]).unwrap();
        let csr = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(csr.nnz(), 2);
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[0.5, -0.5]);
    }

    #[test]
    fn scatter_axpy_matches_dense_axpy() {
        let d = sparse_dense(10, 6, 0.4, 9);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        for i in 0..10 {
            let mut sparse_out = vec![0.1; 6];
            let mut dense_out = vec![0.1; 6];
            csr.scatter_axpy(i, 2.5, &mut sparse_out);
            crate::vecops::axpy(2.5, d.row(i), &mut dense_out);
            for (a, b) in sparse_out.iter().zip(&dense_out) {
                assert!((a - b).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn col_counts_sum_to_nnz() {
        let d = sparse_dense(30, 7, 0.25, 5);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        let counts = csr.col_counts();
        assert_eq!(counts.iter().sum::<usize>(), csr.nnz());
    }

    #[test]
    fn density_matches_dense_density() {
        let d = sparse_dense(40, 5, 0.2, 3);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        assert!((csr.density() - d.density(0.0)).abs() < 1e-15);
    }

    #[test]
    fn memory_scales_with_nnz() {
        let dense_full = DMat::from_vec(4, 4, vec![1.0; 16]).unwrap();
        let sparse = {
            let mut m = DMat::zeros(4, 4);
            m.set(0, 0, 1.0);
            m
        };
        let a = CsrMatrix::from_dense(&dense_full, 0.0);
        let b = CsrMatrix::from_dense(&sparse, 0.0);
        assert!(b.memory_bytes() < a.memory_bytes());
    }
}
