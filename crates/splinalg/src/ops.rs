//! Matrix products specific to CP decomposition: Khatri–Rao, Hadamard,
//! and the Gram-matrix combinations of Algorithm 2.

use crate::dense::DMat;
use crate::error::LinalgError;
use crate::vecops;

/// Khatri–Rao product (column-wise Kronecker): for `B (J x F)` and
/// `C (K x F)` produces a `J*K x F` matrix whose row `j*K + k` is
/// `B(j,:) .* C(k,:)`.
///
/// Only used by reference implementations and tests — the production
/// MTTKRP never materializes this matrix (that is the whole point of the
/// CSF kernel).
pub fn khatri_rao(b: &DMat, c: &DMat) -> Result<DMat, LinalgError> {
    if b.ncols() != c.ncols() {
        return Err(LinalgError::DimMismatch {
            op: "khatri_rao",
            lhs: (b.nrows(), b.ncols()),
            rhs: (c.nrows(), c.ncols()),
        });
    }
    let mut out = DMat::zeros(b.nrows() * c.nrows(), b.ncols());
    khatri_rao_into(b, c, &mut out)?;
    Ok(out)
}

/// [`khatri_rao`] into a caller-owned `J*K x F` output, allocation-free.
///
/// Repeated oracle comparisons and the dimension-tree slab rebuilds call
/// the Khatri–Rao product in a loop; writing into reused workspace
/// storage keeps the allocator off those paths. Every entry of `out` is
/// overwritten.
pub fn khatri_rao_into(b: &DMat, c: &DMat, out: &mut DMat) -> Result<(), LinalgError> {
    if b.ncols() != c.ncols() {
        return Err(LinalgError::DimMismatch {
            op: "khatri_rao_into",
            lhs: (b.nrows(), b.ncols()),
            rhs: (c.nrows(), c.ncols()),
        });
    }
    if out.nrows() != b.nrows() * c.nrows() || out.ncols() != b.ncols() {
        return Err(LinalgError::DimMismatch {
            op: "khatri_rao_into",
            lhs: (b.nrows() * c.nrows(), b.ncols()),
            rhs: (out.nrows(), out.ncols()),
        });
    }
    let f = b.ncols();
    for j in 0..b.nrows() {
        let brow = b.row(j);
        for k in 0..c.nrows() {
            let crow = c.row(k);
            let orow = out.row_mut(j * c.nrows() + k);
            for t in 0..f {
                orow[t] = brow[t] * crow[t];
            }
        }
    }
    Ok(())
}

/// Elementwise (Hadamard) product of two equally shaped matrices.
pub fn hadamard(a: &DMat, b: &DMat) -> Result<DMat, LinalgError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(LinalgError::DimMismatch {
            op: "hadamard",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut out = a.clone();
    vecops::hadamard_assign(out.as_mut_slice(), b.as_slice());
    Ok(out)
}

/// Hadamard product of all Gram matrices except `skip_mode`:
/// `G = *_{m != skip} (A_m^T A_m)`.
///
/// This is lines 4/8/12 of Algorithm 2 — the normal matrix of the
/// least-squares subproblem for `skip_mode`.
pub fn gram_hadamard(grams: &[DMat], skip_mode: usize) -> Result<DMat, LinalgError> {
    let first = grams
        .iter()
        .enumerate()
        .find(|(m, _)| *m != skip_mode)
        .map(|(_, g)| g)
        .ok_or_else(|| LinalgError::InvalidArgument("gram_hadamard needs >= 2 modes".into()))?;
    let mut out = DMat::zeros(first.nrows(), first.ncols());
    gram_hadamard_into(grams, skip_mode, &mut out)?;
    Ok(out)
}

/// [`gram_hadamard`] into a caller-owned output, allocation-free.
///
/// The outer driver calls this once per mode per outer iteration with a
/// reused `F x F` buffer, so the normal-matrix assembly stops cloning.
/// `out` must already have the shape of the combined Gram matrices.
pub fn gram_hadamard_into(
    grams: &[DMat],
    skip_mode: usize,
    out: &mut DMat,
) -> Result<(), LinalgError> {
    let mut iter = grams
        .iter()
        .enumerate()
        .filter(|(m, _)| *m != skip_mode)
        .map(|(_, g)| g);
    let first = iter
        .next()
        .ok_or_else(|| LinalgError::InvalidArgument("gram_hadamard needs >= 2 modes".into()))?;
    out.copy_from(first)?;
    for g in iter {
        if g.nrows() != out.nrows() || g.ncols() != out.ncols() {
            return Err(LinalgError::DimMismatch {
                op: "gram_hadamard",
                lhs: (out.nrows(), out.ncols()),
                rhs: (g.nrows(), g.ncols()),
            });
        }
        vecops::hadamard_assign(out.as_mut_slice(), g.as_slice());
    }
    Ok(())
}

/// Sum of all entries of the Hadamard product of every Gram matrix:
/// `1^T (*_m A_m^T A_m) 1`.
///
/// This equals the squared Frobenius norm of the Kruskal model
/// `|| [[A_1, ..., A_N]] ||_F^2` and is used by the cheap relative-error
/// update (Section V-A of the paper).
pub fn model_norm_sq(grams: &[DMat]) -> Result<f64, LinalgError> {
    if grams.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "model_norm_sq needs at least one gram".into(),
        ));
    }
    let first = &grams[0];
    for g in &grams[1..] {
        if g.nrows() != first.nrows() || g.ncols() != first.ncols() {
            return Err(LinalgError::DimMismatch {
                op: "model_norm_sq",
                lhs: (first.nrows(), first.ncols()),
                rhs: (g.nrows(), g.ncols()),
            });
        }
    }
    // Entry-wise: multiply across grams in mode order, sum in entry
    // order. This groups the arithmetic exactly as the old
    // clone + hadamard_assign + sum formulation (per-entry products in
    // the same order, one running sum over entries), so results are
    // bit-identical — but nothing is allocated on this once-per-iteration
    // fit-check path.
    let mut total = 0.0;
    for e in 0..first.as_slice().len() {
        let mut prod = first.as_slice()[e];
        for g in &grams[1..] {
            prod *= g.as_slice()[e];
        }
        total += prod;
    }
    Ok(total)
}

/// Inner product `<A, B>` of two equally shaped matrices, i.e.
/// `sum_ij A(i,j) B(i,j)`.
///
/// With `A` a factor matrix and `B` the MTTKRP output for the same mode
/// this equals `<X, model>` (the SPLATT fit trick).
pub fn inner_product(a: &DMat, b: &DMat) -> Result<f64, LinalgError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(LinalgError::DimMismatch {
            op: "inner_product",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok(vecops::dot(a.as_slice(), b.as_slice()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn khatri_rao_small() {
        let b = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let c = DMat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let kr = khatri_rao(&b, &c).unwrap();
        assert_eq!(kr.nrows(), 4);
        // Row (j=0,k=0): [1*5, 2*6]
        assert_eq!(kr.row(0), &[5.0, 12.0]);
        // Row (j=1,k=0): [3*5, 4*6]
        assert_eq!(kr.row(2), &[15.0, 24.0]);
    }

    #[test]
    fn khatri_rao_dim_mismatch() {
        let b = DMat::zeros(2, 2);
        let c = DMat::zeros(2, 3);
        assert!(khatri_rao(&b, &c).is_err());
    }

    #[test]
    fn khatri_rao_into_matches_allocating_version() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let b = DMat::random(6, 3, -1.0, 1.0, &mut rng);
        let c = DMat::random(4, 3, -1.0, 1.0, &mut rng);
        let want = khatri_rao(&b, &c).unwrap();
        let mut out = DMat::zeros(24, 3);
        out.fill(77.0); // stale contents must be fully overwritten
        khatri_rao_into(&b, &c, &mut out).unwrap();
        assert_eq!(want.as_slice(), out.as_slice());
        // Wrong output shape is rejected, not silently resized.
        let mut bad = DMat::zeros(23, 3);
        assert!(khatri_rao_into(&b, &c, &mut bad).is_err());
    }

    #[test]
    fn gram_of_khatri_rao_is_hadamard_of_grams() {
        // The identity (C (*) B)^T (C (*) B) = (B^T B) .* (C^T C) is what
        // Algorithm 2 exploits to avoid forming the Khatri-Rao product.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let b = DMat::random(7, 4, -1.0, 1.0, &mut rng);
        let c = DMat::random(5, 4, -1.0, 1.0, &mut rng);
        let kr = khatri_rao(&c, &b).unwrap();
        let lhs = kr.gram();
        let rhs = hadamard(&b.gram(), &c.gram()).unwrap();
        assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn gram_hadamard_skips_mode() {
        let g0 = DMat::from_vec(1, 1, vec![2.0]).unwrap();
        let g1 = DMat::from_vec(1, 1, vec![3.0]).unwrap();
        let g2 = DMat::from_vec(1, 1, vec![5.0]).unwrap();
        let grams = vec![g0, g1, g2];
        assert_eq!(gram_hadamard(&grams, 0).unwrap().get(0, 0), 15.0);
        assert_eq!(gram_hadamard(&grams, 1).unwrap().get(0, 0), 10.0);
        assert_eq!(gram_hadamard(&grams, 2).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn model_norm_matches_direct_reconstruction() {
        // || [[A, B, C]] ||_F^2 computed from grams must equal the squared
        // norm of the fully reconstructed tensor.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (i, j, k, f) = (4, 3, 5, 2);
        let a = DMat::random(i, f, -1.0, 1.0, &mut rng);
        let b = DMat::random(j, f, -1.0, 1.0, &mut rng);
        let c = DMat::random(k, f, -1.0, 1.0, &mut rng);
        let grams = vec![a.gram(), b.gram(), c.gram()];
        let fast = model_norm_sq(&grams).unwrap();

        let mut direct = 0.0;
        for ii in 0..i {
            for jj in 0..j {
                for kk in 0..k {
                    let mut v = 0.0;
                    for t in 0..f {
                        v += a.get(ii, t) * b.get(jj, t) * c.get(kk, t);
                    }
                    direct += v * v;
                }
            }
        }
        assert!((fast - direct).abs() < 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn gram_hadamard_into_bit_identical_to_alloc_version() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let grams: Vec<DMat> = (0..4)
            .map(|_| DMat::random(6, 6, 0.0, 1.0, &mut rng).gram())
            .collect();
        for skip in 0..4 {
            let alloc = gram_hadamard(&grams, skip).unwrap();
            let mut out = DMat::zeros(6, 6);
            out.fill(99.0); // stale contents must be fully overwritten
            gram_hadamard_into(&grams, skip, &mut out).unwrap();
            assert_eq!(alloc.as_slice(), out.as_slice());
        }
        let mut bad = DMat::zeros(5, 5);
        assert!(gram_hadamard_into(&grams, 0, &mut bad).is_err());
    }

    #[test]
    fn model_norm_sq_matches_clone_based_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let grams: Vec<DMat> = (0..3)
            .map(|_| DMat::random(8, 5, -1.0, 1.0, &mut rng).gram())
            .collect();
        let fast = model_norm_sq(&grams).unwrap();
        let mut acc = grams[0].clone();
        for g in &grams[1..] {
            vecops::hadamard_assign(acc.as_mut_slice(), g.as_slice());
        }
        let reference: f64 = acc.as_slice().iter().sum();
        assert_eq!(fast.to_bits(), reference.to_bits());
    }

    #[test]
    fn inner_product_basic() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DMat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(inner_product(&a, &b).unwrap(), 70.0);
        assert!(inner_product(&a, &DMat::zeros(3, 2)).is_err());
    }

    #[test]
    fn hadamard_basic() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let h = hadamard(&a, &a).unwrap();
        assert_eq!(h.as_slice(), &[1.0, 4.0, 9.0, 16.0]);
    }
}
