//! Row-major dense matrices.
//!
//! [`DMat`] stores factor matrices (`I x F`, tall and skinny), MTTKRP
//! outputs, and the small `F x F` Gram matrices. All ADMM and MTTKRP
//! kernels operate on whole rows, so row-major layout gives unit-stride
//! access in every hot loop.

use crate::error::LinalgError;
use crate::vecops;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Create a matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// Returns an error when `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::InvalidArgument(format!(
                "buffer of length {} cannot back a {}x{} matrix",
                data.len(),
                nrows,
                ncols
            )));
        }
        Ok(DMat { nrows, ncols, data })
    }

    /// Create a matrix whose entries are drawn uniformly from `[lo, hi)`.
    ///
    /// Factor matrices in AO-ADMM are initialized with uniform random
    /// non-negative entries, so constrained runs start feasible.
    pub fn random<R: Rng + ?Sized>(
        nrows: usize,
        ncols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let dist = Uniform::new(lo, hi);
        let data = (0..nrows * ncols).map(|_| dist.sample(rng)).collect();
        DMat { nrows, ncols, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Flat row-major view of the whole matrix.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the whole matrix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Entry accessor (used in cold paths and tests; hot code uses rows).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Entry mutator (used in cold paths and tests; hot code uses rows).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Fill the whole matrix with a constant.
    pub fn fill(&mut self, v: f64) {
        vecops::fill(&mut self.data, v);
    }

    /// Copy the contents of `other` into `self`.
    ///
    /// Returns an error when shapes differ.
    pub fn copy_from(&mut self, other: &DMat) -> Result<(), LinalgError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(LinalgError::DimMismatch {
                op: "copy_from",
                lhs: (self.nrows, self.ncols),
                rhs: (other.nrows, other.ncols),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Append `extra` rows of zeros (mode growth: new entities join a
    /// streamed factorization with empty factor/dual state).
    pub fn append_zero_rows(&mut self, extra: usize) {
        self.data.resize((self.nrows + extra) * self.ncols, 0.0);
        self.nrows += extra;
    }

    /// Append the rows of `other` below the existing rows.
    ///
    /// Returns an error when the column counts differ.
    pub fn append_rows(&mut self, other: &DMat) -> Result<(), LinalgError> {
        if self.ncols != other.ncols {
            return Err(LinalgError::DimMismatch {
                op: "append_rows",
                lhs: (self.nrows, self.ncols),
                rhs: (other.nrows, other.ncols),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.nrows += other.nrows;
        Ok(())
    }

    /// Squared Frobenius norm.
    pub fn norm_fro_sq(&self) -> f64 {
        vecops::norm_sq(&self.data)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.norm_fro_sq().sqrt()
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Gram matrix `A^T A` (size `ncols x ncols`), the quantity the paper
    /// forms once per mode in Algorithm 2.
    ///
    /// Computed as a sum of rank-1 row outer products so the tall matrix
    /// is streamed once in row order, parallelized over row chunks (each
    /// chunk accumulates a private `F x F` upper triangle, reduced at the
    /// end). Only the upper triangle is accumulated, then mirrored.
    pub fn gram(&self) -> DMat {
        use rayon::prelude::*;
        let f = self.ncols;
        let mut g = DMat::zeros(f, f);
        if f == 0 || self.nrows == 0 {
            return g;
        }
        // Fixed-size chunks with the partials summed in chunk order: the
        // result is bit-identical across runs and thread counts (a
        // fold/reduce here would merge partials in work-stealing order,
        // breaking seeded determinism and checkpoint/resume bit-equality).
        let partials: Vec<Vec<f64>> = self
            .data
            .par_chunks(f * 512)
            .map(|chunk| {
                let mut acc = vec![0.0f64; f * f];
                for row in chunk.chunks_exact(f) {
                    for (a, &ra) in row.iter().enumerate() {
                        if ra == 0.0 {
                            continue;
                        }
                        let grow = &mut acc[a * f..(a + 1) * f];
                        for b in a..f {
                            grow[b] += ra * row[b];
                        }
                    }
                }
                acc
            })
            .collect();
        let mut upper = vec![0.0f64; f * f];
        for p in &partials {
            for (a, b) in upper.iter_mut().zip(p) {
                *a += b;
            }
        }
        g.data.copy_from_slice(&upper);
        // Mirror the upper triangle into the lower triangle.
        for a in 0..f {
            for b in (a + 1)..f {
                g.data[b * f + a] = g.data[a * f + b];
            }
        }
        g
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        debug_assert_eq!(self.nrows, self.ncols);
        (0..self.nrows).map(|i| self.get(i, i)).sum()
    }

    /// Dense matrix product `self * other` (used in tests and cold paths;
    /// the factorization itself never multiplies two big dense matrices).
    pub fn matmul(&self, other: &DMat) -> Result<DMat, LinalgError> {
        if self.ncols != other.nrows {
            return Err(LinalgError::DimMismatch {
                op: "matmul",
                lhs: (self.nrows, self.ncols),
                rhs: (other.nrows, other.ncols),
            });
        }
        let mut out = DMat::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.ncols..(i + 1) * other.ncols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                vecops::axpy(aik, other.row(k), orow);
            }
        }
        Ok(out)
    }

    /// Transpose (cold path / tests).
    pub fn transpose(&self) -> DMat {
        let mut out = DMat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.data[j * self.nrows + i] = self.data[i * self.ncols + j];
            }
        }
        out
    }

    /// Add `alpha` to every diagonal entry (forms `G + rho*I` in place).
    pub fn add_diag(&mut self, alpha: f64) {
        debug_assert_eq!(self.nrows, self.ncols);
        let n = self.nrows;
        for i in 0..n {
            self.data[i * n + i] += alpha;
        }
    }

    /// Number of entries with magnitude strictly greater than `tol`.
    pub fn count_nonzeros(&self, tol: f64) -> usize {
        vecops::count_nonzeros(&self.data, tol)
    }

    /// Fraction of entries with magnitude strictly greater than `tol`.
    ///
    /// This is the density measure of Table II (`nnz(C) / (K*F)`).
    pub fn density(&self, tol: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.count_nonzeros(tol) as f64 / self.data.len() as f64
    }

    /// Maximum absolute difference between two equally shaped matrices.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        debug_assert_eq!(self.nrows, other.nrows);
        debug_assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_shape() {
        let m = DMat::zeros(3, 2);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DMat::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn row_access() {
        let m = DMat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn gram_matches_transpose_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = DMat::random(17, 5, -1.0, 1.0, &mut rng);
        let g = a.gram();
        let gt = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&gt) < 1e-12);
    }

    #[test]
    fn gram_is_symmetric() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = DMat::random(9, 4, 0.0, 1.0, &mut rng);
        let g = a.gram();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = DMat::random(4, 4, -1.0, 1.0, &mut rng);
        let i = DMat::eye(4);
        let ai = a.matmul(&i).unwrap();
        assert!(a.max_abs_diff(&ai) < 1e-15);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn trace_and_add_diag() {
        let mut m = DMat::eye(3);
        assert_eq!(m.trace(), 3.0);
        m.add_diag(2.0);
        assert_eq!(m.trace(), 9.0);
    }

    #[test]
    fn norms_and_scale() {
        let mut m = DMat::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(m.norm_fro(), 5.0);
        m.scale(2.0);
        assert_eq!(m.norm_fro(), 10.0);
    }

    #[test]
    fn density_counts() {
        let m = DMat::from_vec(2, 2, vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.count_nonzeros(0.0), 2);
        assert_eq!(m.density(0.0), 0.5);
    }

    #[test]
    fn copy_from_rejects_shape_mismatch() {
        let mut a = DMat::zeros(2, 2);
        let b = DMat::zeros(3, 2);
        assert!(a.copy_from(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = DMat::random(6, 3, -1.0, 1.0, &mut rng);
        let att = a.transpose().transpose();
        assert!(a.max_abs_diff(&att) < 1e-15);
    }

    #[test]
    fn random_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = DMat::random(10, 10, 0.25, 0.75, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (0.25..0.75).contains(&x)));
    }

    #[test]
    fn append_zero_rows_extends_shape() {
        let mut m = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        m.append_zero_rows(3);
        assert_eq!((m.nrows(), m.ncols()), (5, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.row(2).iter().chain(m.row(4)).all(|&x| x == 0.0));
    }

    #[test]
    fn append_rows_stacks_and_validates() {
        let mut a = DMat::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DMat::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        a.append_rows(&b).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.row(2), &[5.0, 6.0]);
        assert!(a.append_rows(&DMat::zeros(1, 3)).is_err());
    }
}
