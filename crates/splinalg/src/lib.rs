//! Dense and sparse matrix kernels for constrained tensor factorization.
//!
//! This crate is the linear-algebra substrate of the AO-ADMM reproduction.
//! The paper relies on Intel MKL for the dense kernels inside ADMM
//! (Cholesky factorization, forward/backward substitution) and on
//! hand-written structures for the sparse factor matrices used by MTTKRP
//! (CSR and the hybrid dense+CSR layout of Section IV-C). All of those are
//! implemented here from scratch:
//!
//! * [`DMat`] — row-major dense matrix, the storage for factor matrices,
//!   MTTKRP outputs, and Gram matrices. Factor matrices are tall and skinny
//!   (`I x F` with `F` on the order of 10–200), so row-major layout keeps
//!   each row in a handful of cache lines.
//! * [`Cholesky`] — Cholesky factorization of the small `F x F` normal
//!   matrix `G + rho*I`, plus forward/backward substitution applied row by
//!   row (Algorithm 1, lines 4 and 6 of the paper).
//! * [`ops`] — Khatri–Rao and Hadamard products and the Gram-matrix
//!   helpers used to form `G` (Algorithm 2, lines 4/8/12).
//! * [`CsrMatrix`] — compressed sparse row storage for factor matrices
//!   that become sparse under l1 regularization (Section IV-C).
//! * [`HybridMat`] — the hybrid dense+CSR structure: mostly-dense columns
//!   are split out into a small dense panel and the long tail of sparse
//!   columns stays in CSR (Section IV-C).
//! * [`panel`] — panelized (register/cache-blocked) variants of the dense
//!   kernels with a bit-identical determinism contract, fed by a
//!   [`Workspace`] scratch arena so steady-state iterations never touch
//!   the allocator.
//! * [`bf16`] — bfloat16-packed factor copies ([`Bf16Mat`]) and the
//!   reduced-precision scan kernel behind the serving tier's
//!   approximate top-K (quantized scan, exact rescoring of survivors).
//! * [`simd`] — runtime-dispatched AVX-512/AVX2/scalar f64 kernels with a
//!   bit-exactness contract across paths, the inner loop of the ALTO
//!   linearized MTTKRP substrate.

#![warn(missing_docs)]

pub mod bf16;
pub mod cholesky;
pub mod csr;
pub mod dense;
pub mod error;
pub mod hybrid;
pub mod ops;
pub mod panel;
pub mod simd;
pub mod vecops;
pub mod workspace;

pub use bf16::Bf16Mat;
pub use cholesky::Cholesky;
pub use csr::CsrMatrix;
pub use dense::DMat;
pub use error::LinalgError;
pub use hybrid::HybridMat;
pub use simd::SimdLevel;
pub use workspace::{SlabArena, SlabId, Workspace};

/// Column/row index type used by sparse matrix structures.
///
/// `u32` halves index memory traffic relative to `usize`; all mode lengths
/// in this reproduction (and all FROSTT tensors in the paper) fit in 32 bits.
pub type Idx = u32;
