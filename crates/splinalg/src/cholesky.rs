//! Cholesky factorization and triangular solves.
//!
//! ADMM (Algorithm 1 in the paper) factors the `F x F` normal matrix
//! `G + rho*I` once per mode update (line 4) and then applies
//! forward/backward substitution to every row of the right-hand side
//! `K + rho*(H + U)` on every inner iteration (line 6). The paper uses
//! Intel MKL for both; this module is the from-scratch replacement.
//!
//! `F` is small (tens to a few hundred), so a straightforward cache-blocked
//! `O(F^3)` factorization is adequate; the per-row `O(F^2)` solve is the
//! hot path and is written to stream the `L` factor row by row.

use crate::dense::DMat;
use crate::error::LinalgError;

/// A lower-triangular Cholesky factor `L` with `A = L * L^T`.
///
/// ```
/// use splinalg::{Cholesky, DMat};
/// // A = [[4, 2], [2, 3]] is SPD; solve A x = [8, 7].
/// let a = DMat::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
/// let chol = Cholesky::factor(&a).unwrap();
/// let mut x = [8.0, 7.0];
/// chol.solve_row(&mut x);
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
///
/// The factor is stored densely (row-major) including the zero upper
/// triangle; for the small `F` used in low-rank factorization the wasted
/// space is negligible and unit-stride row access is worth it.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMat,
    /// `L^T` stored row-major so backward substitution streams rows with
    /// unit stride instead of striding down columns of `l`. For the
    /// small `F` here the duplicate costs `F^2` doubles and buys ~2x on
    /// the per-row solve, which ADMM executes once per row per inner
    /// iteration.
    lt: DMat,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive (within a small numerical slack).
    pub fn factor(a: &DMat) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky",
                lhs: (a.nrows(), a.ncols()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut l = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum = A[i][j] - sum_k L[i][k] * L[j][k]
                let mut sum = a.get(i, j);
                let (li, lj) = (l.row(i), l.row(j));
                for k in 0..j {
                    sum -= li[k] * lj[k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    let v = sum / l.get(j, j);
                    l.set(i, j, v);
                }
            }
        }
        let lt = l.transpose();
        Ok(Cholesky { l, lt })
    }

    /// Dimension `F` of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &DMat {
        &self.l
    }

    /// Solve `A x = b` in place for a single right-hand side.
    ///
    /// This is the per-row kernel of Algorithm 1 line 6: forward
    /// substitution with `L`, then backward substitution with `L^T`.
    #[inline]
    pub fn solve_row(&self, x: &mut [f64]) {
        let n = self.dim();
        debug_assert_eq!(x.len(), n);
        let l = self.l.as_slice();
        // Forward substitution: L y = b.
        for i in 0..n {
            let li = &l[i * n..i * n + i];
            let mut sum = x[i];
            for (k, &lik) in li.iter().enumerate() {
                sum -= lik * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        // Backward substitution: L^T x = y, streaming rows of the stored
        // transpose (unit stride).
        let lt = self.lt.as_slice();
        for i in (0..n).rev() {
            let row = &lt[i * n..(i + 1) * n];
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= row[k] * x[k];
            }
            x[i] = sum / row[i];
        }
    }

    /// Solve `A X^T = B^T` row by row for a whole matrix of right-hand
    /// sides, overwriting `b` with the solution.
    pub fn solve_mat(&self, b: &mut DMat) -> Result<(), LinalgError> {
        if b.ncols() != self.dim() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_mat",
                lhs: (self.dim(), self.dim()),
                rhs: (b.nrows(), b.ncols()),
            });
        }
        for i in 0..b.nrows() {
            self.solve_row(b.row_mut(i));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Build a random SPD matrix as `M^T M + n*I`.
    fn random_spd(n: usize, seed: u64) -> DMat {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = DMat::random(n, n, -1.0, 1.0, &mut rng);
        let mut g = m.gram();
        g.add_diag(n as f64);
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = random_spd(8, 42);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(a.max_abs_diff(&llt) < 1e-10);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_spd(6, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x_true = DMat::random(1, 6, -2.0, 2.0, &mut rng);
        // b = A x
        let b = a.matmul(&x_true.transpose()).unwrap().transpose();
        let ch = Cholesky::factor(&a).unwrap();
        let mut x = b.clone();
        ch.solve_row(x.row_mut(0));
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn solve_mat_matches_per_row() {
        let a = random_spd(5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let b = DMat::random(10, 5, -1.0, 1.0, &mut rng);
        let ch = Cholesky::factor(&a).unwrap();

        let mut x1 = b.clone();
        ch.solve_mat(&mut x1).unwrap();

        let mut x2 = b.clone();
        for i in 0..10 {
            ch.solve_row(x2.row_mut(i));
        }
        assert!(x1.max_abs_diff(&x2) < 1e-15);
    }

    #[test]
    fn identity_solve_is_noop() {
        let ch = Cholesky::factor(&DMat::eye(4)).unwrap();
        let mut x = vec![1.0, -2.0, 3.0, -4.0];
        let orig = x.clone();
        ch.solve_row(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMat::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_rhs_dim_mismatch() {
        let ch = Cholesky::factor(&DMat::eye(3)).unwrap();
        let mut b = DMat::zeros(2, 4);
        assert!(ch.solve_mat(&mut b).is_err());
    }

    #[test]
    fn solve_is_accurate_on_large_f() {
        // rank-200 is the largest configuration in Table II of the paper.
        let a = random_spd(200, 12);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let x_true = DMat::random(1, 200, -1.0, 1.0, &mut rng);
        let b = a.matmul(&x_true.transpose()).unwrap().transpose();
        let ch = Cholesky::factor(&a).unwrap();
        let mut x = b;
        ch.solve_row(x.row_mut(0));
        assert!(x.max_abs_diff(&x_true) < 1e-7);
    }
}
