//! Cholesky factorization and triangular solves.
//!
//! ADMM (Algorithm 1 in the paper) factors the `F x F` normal matrix
//! `G + rho*I` once per mode update (line 4) and then applies
//! forward/backward substitution to every row of the right-hand side
//! `K + rho*(H + U)` on every inner iteration (line 6). The paper uses
//! Intel MKL for both; this module is the from-scratch replacement.
//!
//! `F` is small (tens to a few hundred), so a straightforward cache-blocked
//! `O(F^3)` factorization is adequate; the per-row `O(F^2)` solve is the
//! hot path and is written to stream the `L` factor row by row.

use crate::dense::DMat;
use crate::error::LinalgError;
use crate::panel::PANEL_ROWS;
use crate::workspace::Workspace;

/// A lower-triangular Cholesky factor `L` with `A = L * L^T`.
///
/// ```
/// use splinalg::{Cholesky, DMat};
/// // A = [[4, 2], [2, 3]] is SPD; solve A x = [8, 7].
/// let a = DMat::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
/// let chol = Cholesky::factor(&a).unwrap();
/// let mut x = [8.0, 7.0];
/// chol.solve_row(&mut x);
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
///
/// The factor is stored densely (row-major) including the zero upper
/// triangle; for the small `F` used in low-rank factorization the wasted
/// space is negligible and unit-stride row access is worth it.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMat,
    /// `L^T` stored row-major so backward substitution streams rows with
    /// unit stride instead of striding down columns of `l`. For the
    /// small `F` here the duplicate costs `F^2` doubles and buys ~2x on
    /// the per-row solve, which ADMM executes once per row per inner
    /// iteration.
    lt: DMat,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive (within a small numerical slack).
    pub fn factor(a: &DMat) -> Result<Self, LinalgError> {
        Self::factor_shifted(a, 0.0)
    }

    /// Factor `A + shift*I` without materializing the shifted matrix.
    ///
    /// ADMM factors `G + rho*I` on every mode update and on every
    /// adaptive-rho rescale; reading the shift on the diagonal inside the
    /// factorization replaces the `clone + add_diag + factor` sequence
    /// and is bit-identical to it (the shifted diagonal entry is formed
    /// by the same single addition either way).
    pub fn factor_shifted(a: &DMat, shift: f64) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky",
                lhs: (a.nrows(), a.ncols()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut l = DMat::zeros(n, n);
        factor_core(a, shift, &mut l)?;
        let lt = l.transpose();
        Ok(Cholesky { l, lt })
    }

    /// Re-factor `A + shift*I` in place, reusing the existing `L`/`L^T`
    /// buffers when the dimension is unchanged.
    ///
    /// This is the steady-state path: the normal matrix keeps its shape
    /// (`F x F`) across every mode update and rho rescale, so after the
    /// first factorization no further allocation happens. Falls back to
    /// a fresh allocation when the dimension changed. On error the
    /// factor contents are unspecified; callers must not solve with a
    /// factor whose last (re)factorization failed.
    pub fn refactor_shifted(&mut self, a: &DMat, shift: f64) -> Result<(), LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky",
                lhs: (a.nrows(), a.ncols()),
                rhs: (a.nrows(), a.ncols()),
            });
        }
        if self.dim() != a.nrows() {
            *self = Self::factor_shifted(a, shift)?;
            return Ok(());
        }
        let n = a.nrows();
        // factor_core overwrites the whole lower triangle; the strict
        // upper triangle is still zero from the previous factorization.
        factor_core(a, shift, &mut self.l)?;
        let l = self.l.as_slice();
        let lt = self.lt.as_mut_slice();
        for i in 0..n {
            for j in 0..n {
                lt[i * n + j] = l[j * n + i];
            }
        }
        Ok(())
    }

    /// Dimension `F` of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &DMat {
        &self.l
    }

    /// Solve `A x = b` in place for a single right-hand side.
    ///
    /// This is the per-row kernel of Algorithm 1 line 6: forward
    /// substitution with `L`, then backward substitution with `L^T`.
    #[inline]
    pub fn solve_row(&self, x: &mut [f64]) {
        let n = self.dim();
        debug_assert_eq!(x.len(), n);
        let l = self.l.as_slice();
        // Forward substitution: L y = b.
        for i in 0..n {
            let li = &l[i * n..i * n + i];
            let mut sum = x[i];
            for (k, &lik) in li.iter().enumerate() {
                sum -= lik * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        // Backward substitution: L^T x = y, streaming rows of the stored
        // transpose (unit stride).
        let lt = self.lt.as_slice();
        for i in (0..n).rev() {
            let row = &lt[i * n..(i + 1) * n];
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= row[k] * x[k];
            }
            x[i] = sum / row[i];
        }
    }

    /// Solve `A X^T = B^T` row by row for a whole matrix of right-hand
    /// sides, overwriting `b` with the solution.
    pub fn solve_mat(&self, b: &mut DMat) -> Result<(), LinalgError> {
        if b.ncols() != self.dim() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_mat",
                lhs: (self.dim(), self.dim()),
                rhs: (b.nrows(), b.ncols()),
            });
        }
        for i in 0..b.nrows() {
            self.solve_row(b.row_mut(i));
        }
        Ok(())
    }

    /// Solve `A x = b` in place for a panel of `P` right-hand-side rows
    /// (`panel.len() == P * F`, row-major), streaming `L` once per panel
    /// instead of once per row.
    ///
    /// The panel is transposed into `scratch` (`F x P`, so each
    /// elimination step updates `P` contiguous lanes with unit stride),
    /// eliminated, and transposed back. Per right-hand side this
    /// performs exactly the operations of [`Cholesky::solve_row`] in
    /// exactly the same order — only interleaved across the panel — so
    /// the result is bit-identical to `P` separate `solve_row` calls.
    ///
    /// `scratch` must hold at least `panel.len()` doubles (take it from
    /// [`Workspace::panel`]).
    pub fn solve_panel(&self, panel: &mut [f64], scratch: &mut [f64]) {
        let n = self.dim();
        if n == 0 || panel.is_empty() {
            return;
        }
        debug_assert_eq!(panel.len() % n, 0);
        let p = panel.len() / n;
        if p == 1 {
            // A one-row panel is exactly the scalar kernel; skip the
            // transposes.
            self.solve_row(panel);
            return;
        }
        debug_assert!(scratch.len() >= panel.len());
        let t = &mut scratch[..panel.len()];
        for r in 0..p {
            for c in 0..n {
                t[c * p + r] = panel[r * n + c];
            }
        }
        let l = self.l.as_slice();
        // Forward substitution: L y = b, one lane per right-hand side.
        for i in 0..n {
            let (done, rest) = t.split_at_mut(i * p);
            let xi = &mut rest[..p];
            let li = &l[i * n..i * n + i];
            for (k, &lik) in li.iter().enumerate() {
                let xk = &done[k * p..(k + 1) * p];
                for (x, &y) in xi.iter_mut().zip(xk) {
                    *x -= lik * y;
                }
            }
            let d = l[i * n + i];
            for x in xi.iter_mut() {
                *x /= d;
            }
        }
        // Backward substitution: L^T x = y, streaming rows of the stored
        // transpose.
        let lt = self.lt.as_slice();
        for i in (0..n).rev() {
            let (rest, done) = t.split_at_mut((i + 1) * p);
            let xi = &mut rest[i * p..];
            let row = &lt[i * n..(i + 1) * n];
            for (k, &lik) in row.iter().enumerate().skip(i + 1) {
                let xk = &done[(k - i - 1) * p..(k - i) * p];
                for (x, &y) in xi.iter_mut().zip(xk) {
                    *x -= lik * y;
                }
            }
            let d = row[i];
            for x in xi.iter_mut() {
                *x /= d;
            }
        }
        for r in 0..p {
            for c in 0..n {
                panel[r * n + c] = t[c * p + r];
            }
        }
    }

    /// Solve for a whole matrix of right-hand sides in panels of
    /// [`PANEL_ROWS`], allocation-free given a warmed workspace.
    ///
    /// Bit-identical to [`Cholesky::solve_mat`].
    pub fn solve_mat_panel(&self, b: &mut DMat, ws: &mut Workspace) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.ncols() != n {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_mat_panel",
                lhs: (n, n),
                rhs: (b.nrows(), b.ncols()),
            });
        }
        if n == 0 {
            return Ok(());
        }
        let scratch = ws.panel(PANEL_ROWS * n);
        for panel in b.as_mut_slice().chunks_mut(PANEL_ROWS * n) {
            self.solve_panel(panel, scratch);
        }
        Ok(())
    }
}

/// Cholesky–Banachiewicz elimination of `a + shift*I` into the lower
/// triangle of `l` (which must be `n x n` with a zero strict upper
/// triangle). Shared by [`Cholesky::factor_shifted`] and
/// [`Cholesky::refactor_shifted`].
fn factor_core(a: &DMat, shift: f64, l: &mut DMat) -> Result<(), LinalgError> {
    let n = a.nrows();
    for i in 0..n {
        for j in 0..=i {
            // sum = A[i][j] - sum_k L[i][k] * L[j][k]
            let mut sum = a.get(i, j);
            if i == j {
                sum += shift;
            }
            let (li, lj) = (l.row(i), l.row(j));
            for k in 0..j {
                sum -= li[k] * lj[k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite {
                        pivot: i,
                        value: sum,
                    });
                }
                l.set(i, j, sum.sqrt());
            } else {
                let v = sum / l.get(j, j);
                l.set(i, j, v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Build a random SPD matrix as `M^T M + n*I`.
    fn random_spd(n: usize, seed: u64) -> DMat {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = DMat::random(n, n, -1.0, 1.0, &mut rng);
        let mut g = m.gram();
        g.add_diag(n as f64);
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = random_spd(8, 42);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(a.max_abs_diff(&llt) < 1e-10);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_spd(6, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x_true = DMat::random(1, 6, -2.0, 2.0, &mut rng);
        // b = A x
        let b = a.matmul(&x_true.transpose()).unwrap().transpose();
        let ch = Cholesky::factor(&a).unwrap();
        let mut x = b.clone();
        ch.solve_row(x.row_mut(0));
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn solve_mat_matches_per_row() {
        let a = random_spd(5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let b = DMat::random(10, 5, -1.0, 1.0, &mut rng);
        let ch = Cholesky::factor(&a).unwrap();

        let mut x1 = b.clone();
        ch.solve_mat(&mut x1).unwrap();

        let mut x2 = b.clone();
        for i in 0..10 {
            ch.solve_row(x2.row_mut(i));
        }
        assert!(x1.max_abs_diff(&x2) < 1e-15);
    }

    #[test]
    fn identity_solve_is_noop() {
        let ch = Cholesky::factor(&DMat::eye(4)).unwrap();
        let mut x = vec![1.0, -2.0, 3.0, -4.0];
        let orig = x.clone();
        ch.solve_row(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMat::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_rhs_dim_mismatch() {
        let ch = Cholesky::factor(&DMat::eye(3)).unwrap();
        let mut b = DMat::zeros(2, 4);
        assert!(ch.solve_mat(&mut b).is_err());
    }

    #[test]
    fn factor_shifted_bit_identical_to_clone_add_diag() {
        for &(n, seed, shift) in &[(5usize, 2u64, 0.7f64), (16, 8, 3.25), (1, 1, 0.5)] {
            let a = random_spd(n, seed);
            let mut shifted = a.clone();
            shifted.add_diag(shift);
            let legacy = Cholesky::factor(&shifted).unwrap();
            let fused = Cholesky::factor_shifted(&a, shift).unwrap();
            assert_eq!(
                legacy
                    .factor_l()
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                fused
                    .factor_l()
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn refactor_shifted_reuses_buffers_and_matches_fresh() {
        let a = random_spd(7, 21);
        let b = random_spd(7, 22);
        let mut ch = Cholesky::factor_shifted(&a, 1.0).unwrap();
        ch.refactor_shifted(&b, 2.5).unwrap();
        let fresh = Cholesky::factor_shifted(&b, 2.5).unwrap();
        assert_eq!(ch.factor_l().as_slice(), fresh.factor_l().as_slice());
        // The stored transpose must be rebuilt too (backward substitution
        // reads it).
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let x = DMat::random(1, 7, -1.0, 1.0, &mut rng);
        let mut x1 = x.clone();
        let mut x2 = x;
        ch.solve_row(x1.row_mut(0));
        fresh.solve_row(x2.row_mut(0));
        assert_eq!(x1.as_slice(), x2.as_slice());
        // Dimension change falls back to reallocation.
        let c = random_spd(4, 23);
        ch.refactor_shifted(&c, 0.5).unwrap();
        assert_eq!(ch.dim(), 4);
    }

    #[test]
    fn solve_panel_bit_identical_to_solve_row() {
        use crate::workspace::Workspace;
        let mut ws = Workspace::new();
        for &(n, rows) in &[(6usize, 1usize), (6, 5), (6, 32), (17, 33), (1, 4)] {
            let a = random_spd(n, (n * 100 + rows) as u64);
            let ch = Cholesky::factor(&a).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(rows as u64);
            let b = DMat::random(rows, n, -2.0, 2.0, &mut rng);

            let mut scalar = b.clone();
            for i in 0..rows {
                ch.solve_row(scalar.row_mut(i));
            }
            let mut panel = b.clone();
            let scratch = ws.panel(rows * n);
            ch.solve_panel(panel.as_mut_slice(), scratch);

            let sb: Vec<u64> = scalar.as_slice().iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = panel.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, pb, "n={n} rows={rows}");
        }
    }

    #[test]
    fn solve_mat_panel_bit_identical_to_solve_mat() {
        use crate::workspace::Workspace;
        let a = random_spd(9, 77);
        let ch = Cholesky::factor(&a).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        // More rows than one panel, not a multiple of PANEL_ROWS.
        let b = DMat::random(3 * crate::panel::PANEL_ROWS + 7, 9, -1.0, 1.0, &mut rng);
        let mut x1 = b.clone();
        ch.solve_mat(&mut x1).unwrap();
        let mut x2 = b;
        let mut ws = Workspace::new();
        ch.solve_mat_panel(&mut x2, &mut ws).unwrap();
        assert_eq!(x1.as_slice(), x2.as_slice());
    }

    #[test]
    fn solve_is_accurate_on_large_f() {
        // rank-200 is the largest configuration in Table II of the paper.
        let a = random_spd(200, 12);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let x_true = DMat::random(1, 200, -1.0, 1.0, &mut rng);
        let b = a.matmul(&x_true.transpose()).unwrap().transpose();
        let ch = Cholesky::factor(&a).unwrap();
        let mut x = b;
        ch.solve_row(x.row_mut(0));
        assert!(x.max_abs_diff(&x_true) < 1e-7);
    }
}
