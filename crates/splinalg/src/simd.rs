//! Runtime-dispatched f64 SIMD kernels for linearized-format MTTKRP.
//!
//! The ALTO substrate (`aoadmm::alto`) streams bit-interleaved nonzeros
//! and, per nonzero, forms a rank-length Hadamard product of factor rows
//! and folds it into an output row. Those rank-vector operations are the
//! innermost loop of the whole factorization, so they get explicit
//! AVX-512 / AVX2 / scalar variants here, dispatched at runtime the same
//! way [`crate::bf16`] dispatches its serving scan.
//!
//! **Bit-exactness contract.** Every kernel computes each output element
//! through the *same sequence of operations per element* in all three
//! paths: plain multiplies/adds are lane-independent, and every
//! multiply-accumulate is a *fused* multiply-add (single rounding) —
//! `f64::mul_add` on the scalar path, `vfmadd` on the vector paths. A
//! result therefore does not depend on which path ran, which is what
//! lets the ALTO conformance suite demand `max_abs_diff == 0.0` between
//! kernel paths and lets a heterogeneous fleet mix AVX-512 and AVX2
//! machines without result drift.
//!
//! Dispatch is by [`SimdLevel`], detected once (typically at substrate
//! build) and threaded through the hot loop; a level the running CPU
//! cannot execute silently degrades to the scalar path, which is
//! semantically invisible under the contract above. The `AOADMM_SIMD`
//! environment variable (`scalar` / `avx2` / `avx512`) caps detection,
//! so CI legs and benchmarks can pin a path.

/// Instruction-set tier a kernel call runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loop (`f64::mul_add` for fused accumulation).
    Scalar,
    /// 256-bit AVX2 + FMA (4 doubles per vector).
    Avx2,
    /// 512-bit AVX-512F (8 doubles per vector).
    Avx512,
}

impl SimdLevel {
    /// Detect the best level the running CPU supports, capped by the
    /// `AOADMM_SIMD` environment variable when set (`scalar`, `avx2`,
    /// `avx512`; unknown values are ignored).
    pub fn detect() -> Self {
        let best = Self::best_available();
        match std::env::var("AOADMM_SIMD").as_deref() {
            Ok("scalar") => SimdLevel::Scalar,
            Ok("avx2") => best.min(SimdLevel::Avx2),
            Ok("avx512") => best.min(SimdLevel::Avx512),
            _ => best,
        }
    }

    /// Best level the running CPU supports, ignoring the environment.
    pub fn best_available() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    }

    /// Short label for traces and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// True when the running CPU can execute this level's kernels.
    fn runnable(self) -> bool {
        self <= Self::best_available()
    }
}

/// Extract the bits of `lin` selected by `mask`, compacted toward bit 0
/// — the parallel-bit-extract (`pext`) operation the ALTO delinearizer
/// uses to recover one mode's coordinate from a bit-interleaved index.
/// Uses the BMI2 instruction when available; the software fallback is
/// bit-for-bit identical (the operation is integral).
#[inline]
pub fn extract_bits(lin: u64, mask: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("bmi2") {
            // SAFETY: bmi2 support was just verified.
            return unsafe { extract_bits_bmi2(lin, mask) };
        }
    }
    extract_bits_sw(lin, mask)
}

/// Software parallel-bit-extract: walk the set bits of `mask` from the
/// bottom, packing the selected bits of `lin` contiguously.
#[inline]
pub fn extract_bits_sw(lin: u64, mask: u64) -> u64 {
    let mut out = 0u64;
    let mut m = mask;
    let mut shift = 0u32;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if lin & bit != 0 {
            out |= 1u64 << shift;
        }
        shift += 1;
        m ^= bit;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn extract_bits_bmi2(lin: u64, mask: u64) -> u64 {
    std::arch::x86_64::_pext_u64(lin, mask)
}

/// `out = alpha * x` (plain multiply; lane-independent, so every path
/// rounds identically).
#[inline]
pub fn scale(level: SimdLevel, alpha: f64, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && level.runnable() {
            // SAFETY: the level was verified runnable on this CPU.
            unsafe {
                match level {
                    SimdLevel::Avx512 => scale_avx512(alpha, x, out),
                    _ => scale_avx2(alpha, x, out),
                }
            }
            return;
        }
    }
    let _ = level;
    scale_scalar(alpha, x, out);
}

/// `dst .*= src` (plain multiply).
#[inline]
pub fn mul_assign(level: SimdLevel, dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && level.runnable() {
            // SAFETY: the level was verified runnable on this CPU.
            unsafe {
                match level {
                    SimdLevel::Avx512 => mul_assign_avx512(dst, src),
                    _ => mul_assign_avx2(dst, src),
                }
            }
            return;
        }
    }
    let _ = level;
    mul_assign_scalar(dst, src);
}

/// `acc[i] = fma(a[i], b[i], acc[i])` — fused (single-rounding) on every
/// path.
#[inline]
pub fn fmadd_acc(level: SimdLevel, a: &[f64], b: &[f64], acc: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), acc.len());
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && level.runnable() {
            // SAFETY: the level was verified runnable on this CPU.
            unsafe {
                match level {
                    SimdLevel::Avx512 => fmadd_acc_avx512(a, b, acc),
                    _ => fmadd_acc_avx2(a, b, acc),
                }
            }
            return;
        }
    }
    let _ = level;
    fmadd_acc_scalar(a, b, acc);
}

/// `acc[i] = fma(alpha, x[i], acc[i])` — fused on every path (the
/// two-mode / matrix case, where the Hadamard product degenerates to a
/// scalar value).
#[inline]
pub fn axpy_fused(level: SimdLevel, alpha: f64, x: &[f64], acc: &mut [f64]) {
    debug_assert_eq!(x.len(), acc.len());
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && level.runnable() {
            // SAFETY: the level was verified runnable on this CPU.
            unsafe {
                match level {
                    SimdLevel::Avx512 => axpy_fused_avx512(alpha, x, acc),
                    _ => axpy_fused_avx2(alpha, x, acc),
                }
            }
            return;
        }
    }
    let _ = level;
    axpy_fused_scalar(alpha, x, acc);
}

/// `dst += src` (plain add) — the deterministic merge of privatized
/// block partials into the output.
#[inline]
pub fn add_assign(level: SimdLevel, dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && level.runnable() {
            // SAFETY: the level was verified runnable on this CPU.
            unsafe {
                match level {
                    SimdLevel::Avx512 => add_assign_avx512(dst, src),
                    _ => add_assign_avx2(dst, src),
                }
            }
            return;
        }
    }
    let _ = level;
    add_assign_scalar(dst, src);
}

// ---- scalar paths -----------------------------------------------------

fn scale_scalar(alpha: f64, x: &[f64], out: &mut [f64]) {
    for (o, xi) in out.iter_mut().zip(x) {
        *o = alpha * xi;
    }
}

fn mul_assign_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

fn fmadd_acc_scalar(a: &[f64], b: &[f64], acc: &mut [f64]) {
    for ((c, x), y) in acc.iter_mut().zip(a).zip(b) {
        *c = x.mul_add(*y, *c);
    }
}

fn axpy_fused_scalar(alpha: f64, x: &[f64], acc: &mut [f64]) {
    for (c, xi) in acc.iter_mut().zip(x) {
        *c = alpha.mul_add(*xi, *c);
    }
}

fn add_assign_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

// ---- AVX2 paths (4 doubles per vector) --------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scale_avx2(alpha: f64, x: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let va = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let vx = _mm256_loadu_pd(x.as_ptr().add(i));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(va, vx));
        i += 4;
    }
    scale_scalar(alpha, &x[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mul_assign_avx2(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 4 <= n {
        let vd = _mm256_loadu_pd(dst.as_ptr().add(i));
        let vs = _mm256_loadu_pd(src.as_ptr().add(i));
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_mul_pd(vd, vs));
        i += 4;
    }
    mul_assign_scalar(&mut dst[i..], &src[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fmadd_acc_avx2(a: &[f64], b: &[f64], acc: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_pd(a.as_ptr().add(i));
        let vb = _mm256_loadu_pd(b.as_ptr().add(i));
        let vc = _mm256_loadu_pd(acc.as_ptr().add(i));
        _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_fmadd_pd(va, vb, vc));
        i += 4;
    }
    fmadd_acc_scalar(&a[i..], &b[i..], &mut acc[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_fused_avx2(alpha: f64, x: &[f64], acc: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let va = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let vx = _mm256_loadu_pd(x.as_ptr().add(i));
        let vc = _mm256_loadu_pd(acc.as_ptr().add(i));
        _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_fmadd_pd(va, vx, vc));
        i += 4;
    }
    axpy_fused_scalar(alpha, &x[i..], &mut acc[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn add_assign_avx2(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 4 <= n {
        let vd = _mm256_loadu_pd(dst.as_ptr().add(i));
        let vs = _mm256_loadu_pd(src.as_ptr().add(i));
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(vd, vs));
        i += 4;
    }
    add_assign_scalar(&mut dst[i..], &src[i..]);
}

// ---- AVX-512 paths (8 doubles per vector) -----------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scale_avx512(alpha: f64, x: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let va = _mm512_set1_pd(alpha);
    let mut i = 0;
    while i + 8 <= n {
        let vx = _mm512_loadu_pd(x.as_ptr().add(i));
        _mm512_storeu_pd(out.as_mut_ptr().add(i), _mm512_mul_pd(va, vx));
        i += 8;
    }
    scale_scalar(alpha, &x[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mul_assign_avx512(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let vd = _mm512_loadu_pd(dst.as_ptr().add(i));
        let vs = _mm512_loadu_pd(src.as_ptr().add(i));
        _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_mul_pd(vd, vs));
        i += 8;
    }
    mul_assign_scalar(&mut dst[i..], &src[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fmadd_acc_avx512(a: &[f64], b: &[f64], acc: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let mut i = 0;
    while i + 8 <= n {
        let va = _mm512_loadu_pd(a.as_ptr().add(i));
        let vb = _mm512_loadu_pd(b.as_ptr().add(i));
        let vc = _mm512_loadu_pd(acc.as_ptr().add(i));
        _mm512_storeu_pd(acc.as_mut_ptr().add(i), _mm512_fmadd_pd(va, vb, vc));
        i += 8;
    }
    fmadd_acc_scalar(&a[i..], &b[i..], &mut acc[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_fused_avx512(alpha: f64, x: &[f64], acc: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let va = _mm512_set1_pd(alpha);
    let mut i = 0;
    while i + 8 <= n {
        let vx = _mm512_loadu_pd(x.as_ptr().add(i));
        let vc = _mm512_loadu_pd(acc.as_ptr().add(i));
        _mm512_storeu_pd(acc.as_mut_ptr().add(i), _mm512_fmadd_pd(va, vx, vc));
        i += 8;
    }
    axpy_fused_scalar(alpha, &x[i..], &mut acc[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn add_assign_avx512(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let vd = _mm512_loadu_pd(dst.as_ptr().add(i));
        let vs = _mm512_loadu_pd(src.as_ptr().add(i));
        _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_add_pd(vd, vs));
        i += 8;
    }
    add_assign_scalar(&mut dst[i..], &src[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Small deterministic pseudo-random data; no rand dependency here.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let c: Vec<f64> = (0..n).map(|_| next()).collect();
        (a, b, c)
    }

    fn levels() -> Vec<SimdLevel> {
        let mut l = vec![SimdLevel::Scalar];
        let best = SimdLevel::best_available();
        if best >= SimdLevel::Avx2 {
            l.push(SimdLevel::Avx2);
        }
        if best >= SimdLevel::Avx512 {
            l.push(SimdLevel::Avx512);
        }
        l
    }

    #[test]
    fn all_levels_bit_identical_across_lengths() {
        // Odd lengths exercise the tails; results must be *exactly* equal.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 11, 16, 33, 64] {
            let (a, b, c) = vecs(n, n as u64 + 1);
            for level in levels() {
                let mut out_s = vec![0.0; n];
                let mut out_l = vec![0.0; n];
                scale(SimdLevel::Scalar, 1.7, &a, &mut out_s);
                scale(level, 1.7, &a, &mut out_l);
                assert_eq!(out_s, out_l, "scale n={n} {level:?}");

                let mut d_s = a.clone();
                let mut d_l = a.clone();
                mul_assign(SimdLevel::Scalar, &mut d_s, &b);
                mul_assign(level, &mut d_l, &b);
                assert_eq!(d_s, d_l, "mul_assign n={n} {level:?}");

                let mut acc_s = c.clone();
                let mut acc_l = c.clone();
                fmadd_acc(SimdLevel::Scalar, &a, &b, &mut acc_s);
                fmadd_acc(level, &a, &b, &mut acc_l);
                assert_eq!(acc_s, acc_l, "fmadd_acc n={n} {level:?}");

                let mut acc_s = c.clone();
                let mut acc_l = c.clone();
                axpy_fused(SimdLevel::Scalar, -0.3, &a, &mut acc_s);
                axpy_fused(level, -0.3, &a, &mut acc_l);
                assert_eq!(acc_s, acc_l, "axpy_fused n={n} {level:?}");

                let mut acc_s = c.clone();
                let mut acc_l = c.clone();
                add_assign(SimdLevel::Scalar, &mut acc_s, &b);
                add_assign(level, &mut acc_l, &b);
                assert_eq!(acc_s, acc_l, "add_assign n={n} {level:?}");
            }
        }
    }

    #[test]
    fn fmadd_is_fused_not_mul_then_add() {
        // (2^27+1)^2 = 2^54 + 2^28 + 1: the +1 is below the rounded
        // product's ulp (4 at that magnitude), so a*b rounds to
        // 2^54 + 2^28 and unfused subtraction cancels to 0, while a
        // fused multiply-add keeps the exact product and yields 1 —
        // verifies the scalar path really goes through f64::mul_add.
        let x = (1u64 << 27) as f64 + 1.0;
        let c = -(((1u64 << 54) + (1u64 << 28)) as f64);
        let a = [x];
        let b = [x];
        let mut acc = [c];
        fmadd_acc(SimdLevel::Scalar, &a, &b, &mut acc);
        let fused = x.mul_add(x, c);
        let unfused = x * x + c;
        assert_eq!(acc[0], fused);
        assert_eq!(fused, 1.0);
        assert_eq!(unfused, 0.0);
        assert_ne!(fused, unfused, "test case does not discriminate");
    }

    #[test]
    fn extract_bits_matches_software_reference() {
        let cases = [
            (0u64, 0u64),
            (u64::MAX, u64::MAX),
            (0xdead_beef_cafe_f00d, 0x5555_5555_5555_5555),
            (0xdead_beef_cafe_f00d, 0xaaaa_aaaa_aaaa_aaaa),
            (0x0123_4567_89ab_cdef, 0xffff_0000_ffff_0000),
            (0x8000_0000_0000_0001, 0x8000_0000_0000_0001),
        ];
        for (lin, mask) in cases {
            assert_eq!(extract_bits(lin, mask), extract_bits_sw(lin, mask));
        }
        // Identity and annihilation.
        assert_eq!(extract_bits(0x1234, u64::MAX), 0x1234);
        assert_eq!(extract_bits(0x1234, 0), 0);
    }

    #[test]
    fn detect_returns_a_runnable_level() {
        let l = SimdLevel::detect();
        assert!(l <= SimdLevel::best_available());
        assert!(!l.name().is_empty());
    }
}
