//! bf16 quantized factor storage and scan kernels.
//!
//! The approximate top-K tier scans candidate rows in reduced precision
//! and rescores the survivors exactly (see `aoadmm-serve`). This module
//! provides the storage half of that bargain: factors packed to
//! bfloat16 (the top 16 bits of an IEEE f32, round-to-nearest-even) and
//! a batched dot-product kernel over the packed rows.
//!
//! bf16 keeps f32's 8-bit exponent, so packing never overflows or
//! denormalizes values a factor matrix can hold; it drops 16 mantissa
//! bits, bounding the relative error of a stored entry by `2^-9`
//! (~0.2%). A packed row is a quarter the bytes of its f64 original,
//! which is the whole point: the candidate scan is memory-bound, and
//! the scan phase of an approximate top-K only needs enough precision
//! to *rank* candidates, not to score them.
//!
//! The mixed-precision discipline mirrors the panel layer's contract in
//! spirit, not letter: [`scores_bf16_into`] accumulates in f32 with a
//! fixed ascending-column order (deterministic across runs and thread
//! counts), but it is *not* bit-comparable to the f64 kernels — callers
//! that need exact values rescore through [`crate::panel::scores_into`]
//! or a scalar f64 dot.

use crate::dense::DMat;
use crate::error::LinalgError;

/// Pack one f64 to bf16 (via f32, then round-to-nearest-even on the
/// dropped 16 mantissa bits). NaN maps to a quiet NaN pattern.
#[inline]
pub fn f64_to_bf16(v: f64) -> u16 {
    let bits = (v as f32).to_bits();
    if bits & 0x7fff_ffff > 0x7f80_0000 {
        // NaN: keep it a NaN after truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest, ties to even, on bit 16.
    let rounded = bits.wrapping_add(0x7fff + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Unpack one bf16 to f32 (exact: bf16 is a prefix of f32).
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// A **column-major** bf16 matrix: the quantized copy of a factor used
/// by the approximate top-K scan. Immutable after construction.
///
/// The scan sweeps columns over a contiguous window of rows, so storing
/// each column contiguously turns the kernel's inner loop into
/// independent streaming lanes the compiler can vectorize — unlike the
/// exact f64 path, whose per-row serial accumulator chain is pinned by
/// the bit-exactness contract.
#[derive(Debug, Clone)]
pub struct Bf16Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<u16>,
}

impl Bf16Mat {
    /// Quantize `a` into column-major bf16.
    pub fn from_dmat(a: &DMat) -> Self {
        let (nrows, ncols) = (a.nrows(), a.ncols());
        let src = a.as_slice();
        let mut data = vec![0u16; nrows * ncols];
        for c in 0..ncols {
            let col = &mut data[c * nrows..(c + 1) * nrows];
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = f64_to_bf16(src[r * ncols + c]);
            }
        }
        Bf16Mat { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// One packed column.
    #[inline]
    pub fn col(&self, c: usize) -> &[u16] {
        &self.data[c * self.nrows..(c + 1) * self.nrows]
    }

    /// One packed entry.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u16 {
        self.data[c * self.nrows + r]
    }

    /// Bytes of packed payload (diagnostics).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * 2
    }
}

/// Quantize a f64 weight vector to the f32 the scan kernel consumes.
///
/// `out` is cleared and refilled; with a caller-retained buffer the call
/// allocates nothing once the capacity has been reached.
pub fn quantize_weights(w: &[f64], out: &mut Vec<f32>) {
    out.clear();
    out.extend(w.iter().map(|&v| v as f32));
}

/// Batched quantized row scoring:
/// `out[i] = dot_f32(unpack(row row0 + i of a), w)` for `i in 0..nrows`.
///
/// The kernel sweeps columns in ascending order, accumulating every
/// row's partial sum in `out` — per-row results are the same ascending-
/// column f32 accumulation a row-major loop would produce (so results
/// are deterministic across runs and thread counts), but because the
/// lanes are independent and each column window is one contiguous `u16`
/// stream, the inner loop vectorizes. Each call is single-threaded;
/// callers partition rows. Returns an error when the widths disagree,
/// the row window is out of bounds, or `out` is too short.
pub fn scores_bf16_into(
    a: &Bf16Mat,
    row0: usize,
    nrows: usize,
    w: &[f32],
    out: &mut [f32],
) -> Result<(), LinalgError> {
    let f = a.ncols;
    if w.len() != f || row0 + nrows > a.nrows || out.len() != nrows {
        return Err(LinalgError::DimMismatch {
            op: "scores_bf16_into",
            lhs: (a.nrows, a.ncols),
            rhs: (w.len(), out.len()),
        });
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: shapes were validated above and AVX-512F is present.
            unsafe { scores_avx512(a, row0, nrows, w, out) };
            return Ok(());
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: shapes were validated above and AVX2+FMA are present.
            unsafe { scores_avx2(a, row0, nrows, w, out) };
            return Ok(());
        }
    }
    scores_scalar(a, row0, nrows, w, out);
    Ok(())
}

/// Portable column sweep: TILE accumulators live in registers across
/// the whole column loop, so each packed element costs one load + one
/// fused multiply-add — no read-modify-write of `out` per column.
/// Per-row accumulation is ascending-column. `f32::mul_add` rounds once
/// per step, exactly like the vector `fmadd` the SIMD paths use, which
/// is what keeps every path bit-identical (on hardware without FMA the
/// scalar fallback routes through libm's exact `fmaf` — slow, but the
/// bits still match).
fn scores_scalar(a: &Bf16Mat, row0: usize, nrows: usize, w: &[f32], out: &mut [f32]) {
    const TILE: usize = 16;
    let mut t = 0;
    while t + TILE <= nrows {
        let mut acc = [0.0f32; TILE];
        for (c, &wc) in w.iter().enumerate() {
            let col = &a.col(c)[row0 + t..row0 + t + TILE];
            for (a, &rc) in acc.iter_mut().zip(col) {
                *a = bf16_to_f32(rc).mul_add(wc, *a);
            }
        }
        out[t..t + TILE].copy_from_slice(&acc);
        t += TILE;
    }
    scores_tail(a, row0, t, nrows, w, out);
}

/// Scalar remainder rows `[t, nrows)`, same accumulation order.
fn scores_tail(a: &Bf16Mat, row0: usize, t: usize, nrows: usize, w: &[f32], out: &mut [f32]) {
    let tail = &mut out[t..nrows];
    tail.fill(0.0);
    for (c, &wc) in w.iter().enumerate() {
        let col = &a.col(c)[row0 + t..row0 + nrows];
        for (o, &rc) in tail.iter_mut().zip(col) {
            *o = bf16_to_f32(rc).mul_add(wc, *o);
        }
    }
}

/// AVX-512 column sweep over 32-row register tiles: one 512-bit load
/// yields 32 bf16 per column step, widened to two f32 vectors and
/// folded in with `fmadd` — the same single-rounding fused step as
/// [`scores_scalar`]'s `mul_add`, so the paths are bit-identical; this
/// one just runs 32 lanes per step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scores_avx512(a: &Bf16Mat, row0: usize, nrows: usize, w: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    const TILE: usize = 32;
    let mut t = 0;
    while t + TILE <= nrows {
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        for (c, &wc) in w.iter().enumerate() {
            let col = a.col(c).as_ptr().add(row0 + t);
            let wv = _mm512_set1_ps(wc);
            let raw = _mm512_loadu_si512(col as *const __m512i);
            let lo = _mm512_cvtepu16_epi32(_mm512_castsi512_si256(raw));
            let hi = _mm512_cvtepu16_epi32(_mm512_extracti64x4_epi64::<1>(raw));
            let lof = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(lo));
            let hif = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(hi));
            acc0 = _mm512_fmadd_ps(lof, wv, acc0);
            acc1 = _mm512_fmadd_ps(hif, wv, acc1);
        }
        _mm512_storeu_ps(out.as_mut_ptr().add(t), acc0);
        _mm512_storeu_ps(out.as_mut_ptr().add(t + 16), acc1);
        t += TILE;
    }
    scores_tail(a, row0, t, nrows, w, out);
}

/// AVX2 column sweep over 16-row register tiles. Unpacks 16 bf16 per
/// column step (`u16 -> u32 << 16`, bit-cast to f32) and folds them in
/// with `fmadd` — every lane computes the exact fused sequence
/// [`scores_scalar`] computes, so the two paths are bit-identical;
/// which one runs is a pure speed decision made at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scores_avx2(a: &Bf16Mat, row0: usize, nrows: usize, w: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    const TILE: usize = 16;
    let mut t = 0;
    while t + TILE <= nrows {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for (c, &wc) in w.iter().enumerate() {
            let col = a.col(c).as_ptr().add(row0 + t);
            let wv = _mm256_set1_ps(wc);
            let raw = _mm256_loadu_si256(col as *const __m256i);
            let lo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw));
            let hi = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(raw, 1));
            let lof = _mm256_castsi256_ps(_mm256_slli_epi32(lo, 16));
            let hif = _mm256_castsi256_ps(_mm256_slli_epi32(hi, 16));
            acc0 = _mm256_fmadd_ps(lof, wv, acc0);
            acc1 = _mm256_fmadd_ps(hif, wv, acc1);
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(t), acc0);
        _mm256_storeu_ps(out.as_mut_ptr().add(t + 8), acc1);
        t += TILE;
    }
    scores_tail(a, row0, t, nrows, w, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrip_error_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = DMat::random(64, 7, -10.0, 10.0, &mut rng);
        for &v in a.as_slice() {
            let back = bf16_to_f32(f64_to_bf16(v)) as f64;
            let err = (back - v).abs();
            assert!(err <= v.abs() * (1.0 / 256.0) + 1e-30, "v={v} back={back}");
        }
    }

    #[test]
    fn exact_values_survive_packing() {
        // Small powers of two and simple sums thereof are exact in bf16.
        for v in [0.0, 1.0, -1.0, 0.5, 2.0, -0.75, 96.0] {
            assert_eq!(bf16_to_f32(f64_to_bf16(v)) as f64, v);
        }
        // -0.0 keeps its sign bit.
        assert_eq!(f64_to_bf16(-0.0) & 0x8000, 0x8000);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-8 is exactly halfway between bf16 neighbors 1.0 and
        // 1 + 2^-7; ties-to-even picks 1.0 (even trailing bit).
        let half_ulp = 1.0 + (2.0f64).powi(-8);
        assert_eq!(bf16_to_f32(f64_to_bf16(half_ulp)), 1.0);
        // Just above the tie rounds up.
        let above = 1.0 + (2.0f64).powi(-8) * 1.001;
        assert_eq!(
            bf16_to_f32(f64_to_bf16(above)) as f64,
            1.0 + (2.0f64).powi(-7)
        );
    }

    #[test]
    fn nan_stays_nan() {
        assert!(bf16_to_f32(f64_to_bf16(f64::NAN)).is_nan());
    }

    #[test]
    fn scores_match_scalar_reference_across_quad_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for &(n, f) in &[(1usize, 3usize), (4, 5), (7, 8), (33, 2), (12, 16)] {
            let a = DMat::random(n, f, -1.0, 1.0, &mut rng);
            let q = Bf16Mat::from_dmat(&a);
            let wf: Vec<f64> = (0..f).map(|c| (c as f64 * 0.37) - 0.5).collect();
            let mut w = Vec::new();
            quantize_weights(&wf, &mut w);
            let mut out = vec![0.0f32; n];
            scores_bf16_into(&q, 0, n, &w, &mut out).unwrap();
            for i in 0..n {
                let mut s = 0.0f32;
                for c in 0..f {
                    s = bf16_to_f32(q.get(i, c)).mul_add(w[c], s);
                }
                assert_eq!(s.to_bits(), out[i].to_bits(), "n={n} f={f} i={i}");
            }
        }
    }

    #[test]
    fn scores_row_window_and_bad_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = DMat::random(10, 4, -1.0, 1.0, &mut rng);
        let q = Bf16Mat::from_dmat(&a);
        let w = vec![0.5f32; 4];
        let mut full = vec![0.0f32; 10];
        scores_bf16_into(&q, 0, 10, &w, &mut full).unwrap();
        let mut win = vec![0.0f32; 5];
        scores_bf16_into(&q, 3, 5, &w, &mut win).unwrap();
        assert_eq!(&full[3..8], &win[..]);

        let mut short = vec![0.0f32; 3];
        assert!(scores_bf16_into(&q, 0, 5, &w, &mut short).is_err());
        assert!(scores_bf16_into(&q, 8, 5, &w, &mut full[..5].as_mut()).is_err());
        assert!(scores_bf16_into(&q, 0, 5, &w[..3], &mut full[..5].as_mut()).is_err());
    }

    #[test]
    fn packed_bytes_and_dims() {
        let q = Bf16Mat::from_dmat(&DMat::zeros(6, 5));
        assert_eq!((q.nrows(), q.ncols()), (6, 5));
        assert_eq!(q.packed_bytes(), 60);
    }
}
