//! Reusable scratch memory for the dense hot-path kernels.
//!
//! Every steady-state AO-ADMM outer iteration runs the same dense
//! kernels on the same shapes: Gram accumulation partials, transposed
//! solve panels, Hadamard-combined normal matrices. Allocating those
//! buffers fresh on every call (the pre-panel implementation did) puts
//! the allocator on the hot path and defeats the cache residency the
//! blocked formulation is built around. A [`Workspace`] owns those
//! buffers instead: each accessor grows its buffer to the requested
//! length on first use (or after a shape change) and then hands out the
//! same memory on every subsequent call, so steady-state iterations
//! perform no heap allocation in the dense-kernel path.
//!
//! Buffers grow monotonically to the high-water mark of the shapes they
//! have served and are never shrunk; a workspace is cheap to keep alive
//! for the lifetime of a driver loop. Contents are unspecified between
//! calls — every kernel fully initializes the region it uses.

/// Grow-once scratch arena for the dense kernels in this crate.
///
/// Owned by the outer driver (one per factorization loop) and lent to
/// [`crate::panel::gram_into`] and the panel triangular solves. Not
/// `Sync`: parallel kernels that need per-task scratch take disjoint
/// slices of a workspace buffer, never the workspace itself.
#[derive(Debug, Default)]
pub struct Workspace {
    gram_partials: Vec<f64>,
    panel: Vec<f64>,
    batch: Vec<f64>,
}

impl Workspace {
    /// Create an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch for per-chunk Gram partials (`nchunks * F * F` doubles),
    /// contents unspecified.
    pub(crate) fn gram_partials(&mut self, len: usize) -> &mut [f64] {
        if self.gram_partials.len() < len {
            self.gram_partials.resize(len, 0.0);
        }
        &mut self.gram_partials[..len]
    }

    /// Scratch for a transposed solve panel (`P * F` doubles), contents
    /// unspecified.
    pub fn panel(&mut self, len: usize) -> &mut [f64] {
        if self.panel.len() < len {
            self.panel.resize(len, 0.0);
        }
        &mut self.panel[..len]
    }

    /// Scratch for batched scoring (`B * F` query accumulators or a
    /// score panel), contents unspecified. Independent of
    /// [`Workspace::panel`] so a scorer can hold both at once.
    pub fn batch(&mut self, len: usize) -> &mut [f64] {
        if self.batch.len() < len {
            self.batch.resize(len, 0.0);
        }
        &mut self.batch[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut ws = Workspace::new();
        let p = ws.panel(16).as_ptr();
        assert_eq!(ws.panel(16).len(), 16);
        // A smaller request must not shrink or move the buffer.
        assert_eq!(ws.panel(8).len(), 8);
        assert_eq!(ws.panel(16).as_ptr(), p);
        // Growing reallocates once, then stays put.
        let _ = ws.panel(64);
        let p2 = ws.panel(64).as_ptr();
        assert_eq!(ws.panel(64).as_ptr(), p2);
    }

    #[test]
    fn gram_partials_independent_of_panel() {
        let mut ws = Workspace::new();
        ws.gram_partials(9).fill(1.0);
        ws.panel(4).fill(2.0);
        assert!(ws.gram_partials(9).iter().all(|&x| x == 1.0));
    }
}
