//! Reusable scratch memory for the dense hot-path kernels.
//!
//! Every steady-state AO-ADMM outer iteration runs the same dense
//! kernels on the same shapes: Gram accumulation partials, transposed
//! solve panels, Hadamard-combined normal matrices. Allocating those
//! buffers fresh on every call (the pre-panel implementation did) puts
//! the allocator on the hot path and defeats the cache residency the
//! blocked formulation is built around. A [`Workspace`] owns those
//! buffers instead: each accessor grows its buffer to the requested
//! length on first use (or after a shape change) and then hands out the
//! same memory on every subsequent call, so steady-state iterations
//! perform no heap allocation in the dense-kernel path.
//!
//! Buffers grow monotonically to the high-water mark of the shapes they
//! have served and are never shrunk; a workspace is cheap to keep alive
//! for the lifetime of a driver loop. Contents are unspecified between
//! calls — every kernel fully initializes the region it uses.

/// Grow-once scratch arena for the dense kernels in this crate.
///
/// Owned by the outer driver (one per factorization loop) and lent to
/// [`crate::panel::gram_into`] and the panel triangular solves. Not
/// `Sync`: parallel kernels that need per-task scratch take disjoint
/// slices of a workspace buffer, never the workspace itself.
#[derive(Debug, Default)]
pub struct Workspace {
    gram_partials: Vec<f64>,
    panel: Vec<f64>,
    batch: Vec<f64>,
}

impl Workspace {
    /// Create an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch for per-chunk Gram partials (`nchunks * F * F` doubles),
    /// contents unspecified.
    pub(crate) fn gram_partials(&mut self, len: usize) -> &mut [f64] {
        if self.gram_partials.len() < len {
            self.gram_partials.resize(len, 0.0);
        }
        &mut self.gram_partials[..len]
    }

    /// Scratch for a transposed solve panel (`P * F` doubles), contents
    /// unspecified.
    pub fn panel(&mut self, len: usize) -> &mut [f64] {
        if self.panel.len() < len {
            self.panel.resize(len, 0.0);
        }
        &mut self.panel[..len]
    }

    /// Scratch for batched scoring (`B * F` query accumulators or a
    /// score panel), contents unspecified. Independent of
    /// [`Workspace::panel`] so a scorer can hold both at once.
    pub fn batch(&mut self, len: usize) -> &mut [f64] {
        if self.batch.len() < len {
            self.batch.resize(len, 0.0);
        }
        &mut self.batch[..len]
    }
}

/// Handle to one reserved segment of a [`SlabArena`].
///
/// Opaque index — only meaningful for the arena that issued it, and only
/// until the next [`SlabArena::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabId(usize);

/// Segmented scratch arena for memoized kernel intermediates.
///
/// Unlike [`Workspace`], whose buffers are anonymous scratch reused by
/// whichever kernel runs next, a `SlabArena` hands out *named* segments
/// ([`SlabId`]) whose contents persist across calls — the storage for
/// dimension-tree partial-MTTKRP slabs that are built in one mode update
/// and read back in later ones. All segments live in a single backing
/// `Vec` reserved up front at plan build, so steady-state iterations
/// never touch the allocator and the slabs stay contiguous in memory.
#[derive(Debug, Default)]
pub struct SlabArena {
    data: Vec<f64>,
    segs: Vec<std::ops::Range<usize>>,
}

impl SlabArena {
    /// Create an empty arena; segments are reserved with [`SlabArena::reserve`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all segments but keep the backing capacity, so a re-reserve
    /// at the same or smaller total size performs no allocation.
    pub fn clear(&mut self) {
        self.segs.clear();
        self.data.clear();
    }

    /// Reserve a new zero-initialized segment of `len` doubles and return
    /// its handle. Reservation may allocate; do it at plan build, not in
    /// the steady state.
    pub fn reserve(&mut self, len: usize) -> SlabId {
        let start = self.data.len();
        self.data.resize(start + len, 0.0);
        self.segs.push(start..start + len);
        SlabId(self.segs.len() - 1)
    }

    /// Read access to a segment.
    pub fn get(&self, id: SlabId) -> &[f64] {
        &self.data[self.segs[id.0].clone()]
    }

    /// Write access to a segment.
    pub fn get_mut(&mut self, id: SlabId) -> &mut [f64] {
        &mut self.data[self.segs[id.0].clone()]
    }

    /// Simultaneous mutable access to two *distinct* segments — the
    /// split borrow a slab rebuild needs when one slab is accumulated
    /// from (or alongside) another.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn get_pair_mut(&mut self, a: SlabId, b: SlabId) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a.0, b.0, "get_pair_mut needs two distinct segments");
        let (ar, br) = (self.segs[a.0].clone(), self.segs[b.0].clone());
        // Segments are reserved back to back, so one always ends at or
        // before the other's start (equality only via empty segments).
        if ar.end <= br.start {
            let (lo, hi) = self.data.split_at_mut(br.start);
            (&mut lo[ar], &mut hi[..br.len()])
        } else {
            let (lo, hi) = self.data.split_at_mut(ar.start);
            (&mut hi[..ar.len()], &mut lo[br])
        }
    }

    /// Number of reserved segments.
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// Total doubles across all reserved segments.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no segments are reserved.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resident bytes of the backing storage (capacity, not length).
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut ws = Workspace::new();
        let p = ws.panel(16).as_ptr();
        assert_eq!(ws.panel(16).len(), 16);
        // A smaller request must not shrink or move the buffer.
        assert_eq!(ws.panel(8).len(), 8);
        assert_eq!(ws.panel(16).as_ptr(), p);
        // Growing reallocates once, then stays put.
        let _ = ws.panel(64);
        let p2 = ws.panel(64).as_ptr();
        assert_eq!(ws.panel(64).as_ptr(), p2);
    }

    #[test]
    fn gram_partials_independent_of_panel() {
        let mut ws = Workspace::new();
        ws.gram_partials(9).fill(1.0);
        ws.panel(4).fill(2.0);
        assert!(ws.gram_partials(9).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn slab_arena_segments_are_disjoint_and_persistent() {
        let mut a = SlabArena::new();
        let s0 = a.reserve(4);
        let s1 = a.reserve(3);
        a.get_mut(s0).fill(1.0);
        a.get_mut(s1).fill(2.0);
        assert_eq!(a.get(s0), &[1.0; 4]);
        assert_eq!(a.get(s1), &[2.0; 3]);
        assert_eq!(a.num_segments(), 2);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn slab_arena_split_borrow_both_orders() {
        let mut a = SlabArena::new();
        let s0 = a.reserve(2);
        let s1 = a.reserve(2);
        a.get_mut(s0).fill(3.0);
        a.get_mut(s1).fill(5.0);
        {
            let (w, r) = a.get_pair_mut(s0, s1);
            assert_eq!(&*r, &[5.0, 5.0]);
            w[0] = r[0] + 1.0;
        }
        {
            let (w, r) = a.get_pair_mut(s1, s0);
            assert_eq!(r[0], 6.0);
            w[1] = 9.0;
        }
        assert_eq!(a.get(s0), &[6.0, 3.0]);
        assert_eq!(a.get(s1), &[5.0, 9.0]);
    }

    #[test]
    fn slab_arena_clear_keeps_capacity() {
        let mut a = SlabArena::new();
        let _ = a.reserve(64);
        let cap = a.memory_bytes();
        a.clear();
        assert!(a.is_empty());
        let _ = a.reserve(32);
        assert_eq!(
            a.memory_bytes(),
            cap,
            "clear + smaller reserve must not reallocate"
        );
    }

    #[test]
    #[should_panic(expected = "distinct segments")]
    fn slab_arena_rejects_aliased_split_borrow() {
        let mut a = SlabArena::new();
        let s = a.reserve(2);
        let _ = a.get_pair_mut(s, s);
    }

    #[test]
    fn slab_arena_split_borrow_with_empty_segment() {
        // Zero-length segments share a start offset with their
        // neighbour; the split must still resolve.
        let mut a = SlabArena::new();
        let empty = a.reserve(0);
        let full = a.reserve(3);
        let (e, f) = a.get_pair_mut(empty, full);
        assert!(e.is_empty());
        assert_eq!(f.len(), 3);
    }
}
