//! Hybrid dense + CSR factor matrices (Section IV-C of the paper).
//!
//! A CSR factor trades bandwidth for latency: three indirections (row
//! pointer, column index, value) are needed before useful work happens.
//! Real factor matrices have non-uniform column sparsity — a few
//! mostly-dense columns and a long tail of nearly empty ones. The hybrid
//! structure splits them: columns with more nonzeros than the average
//! column are stored as a small dense panel (one latency cost, then pure
//! streaming), the rest stay in CSR. During MTTKRP the CSR row is
//! prefetched while the dense panel is being processed, hiding its latency
//! behind the dense arithmetic exactly as the paper describes.

use crate::csr::CsrMatrix;
use crate::dense::DMat;
use crate::Idx;

/// Hybrid dense + CSR snapshot of a factor matrix.
#[derive(Debug, Clone)]
pub struct HybridMat {
    nrows: usize,
    ncols: usize,
    /// Original column indices of the dense panel, ordered densest first.
    dense_cols: Vec<Idx>,
    /// Dense panel: `nrows x dense_cols.len()`, column `f` of the panel is
    /// original column `dense_cols[f]`.
    dense: DMat,
    /// Sparse remainder in CSR with *original* column indices, so scatter
    /// needs no permutation fix-up.
    sparse: CsrMatrix,
}

impl HybridMat {
    /// Build a hybrid snapshot of `m`, keeping entries with `|x| > tol`.
    ///
    /// A column is "dense" when its nonzero count strictly exceeds the
    /// average column count (the paper's rule). Dense columns are sorted
    /// densest-first into the panel.
    pub fn from_dense(m: &DMat, tol: f64) -> Self {
        let nrows = m.nrows();
        let ncols = m.ncols();

        // Per-column nonzero counts in one pass over the dense matrix.
        let mut counts = vec![0usize; ncols];
        for i in 0..nrows {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v.abs() > tol {
                    counts[j] += 1;
                }
            }
        }
        let total: usize = counts.iter().sum();
        let avg = if ncols == 0 {
            0.0
        } else {
            total as f64 / ncols as f64
        };

        let mut dense_cols: Vec<Idx> = (0..ncols as Idx)
            .filter(|&j| counts[j as usize] as f64 > avg)
            .collect();
        dense_cols.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));

        let is_dense: Vec<bool> = {
            let mut v = vec![false; ncols];
            for &c in &dense_cols {
                v[c as usize] = true;
            }
            v
        };

        // Gather the dense panel.
        let mut dense = DMat::zeros(nrows, dense_cols.len());
        for i in 0..nrows {
            let src = m.row(i);
            let dst = dense.row_mut(i);
            for (f, &c) in dense_cols.iter().enumerate() {
                dst[f] = src[c as usize];
            }
        }

        // Gather the sparse remainder, masking out dense columns.
        let mut masked = m.clone();
        for i in 0..nrows {
            let row = masked.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                if is_dense[j] || v.abs() <= tol {
                    *v = 0.0;
                }
            }
        }
        let sparse = CsrMatrix::from_dense(&masked, 0.0);

        HybridMat {
            nrows,
            ncols,
            dense_cols,
            dense,
            sparse,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (of the original matrix).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of columns held in the dense panel.
    #[inline]
    pub fn num_dense_cols(&self) -> usize {
        self.dense_cols.len()
    }

    /// Nonzeros stored in the CSR remainder.
    #[inline]
    pub fn sparse_nnz(&self) -> usize {
        self.sparse.nnz()
    }

    /// Accumulate `out += alpha * row(i)` scattered to original columns.
    ///
    /// Issues a software prefetch for the CSR row, then processes the
    /// dense panel while that fetch is in flight (Section IV-C).
    #[inline]
    pub fn scatter_axpy(&self, i: usize, alpha: f64, out: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            let (cols, vals) = self.sparse.row(i);
            if !vals.is_empty() {
                // SAFETY: prefetch is a pure performance hint on valid
                // addresses; both pointers point into live slices.
                unsafe {
                    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    _mm_prefetch(cols.as_ptr() as *const i8, _MM_HINT_T0);
                    _mm_prefetch(vals.as_ptr() as *const i8, _MM_HINT_T0);
                }
            }
        }
        // Dense panel first: streams while the CSR row is being fetched.
        let drow = self.dense.row(i);
        for (f, &c) in self.dense_cols.iter().enumerate() {
            out[c as usize] += alpha * drow[f];
        }
        self.sparse.scatter_axpy(i, alpha, out);
    }

    /// Expand back to a dense matrix (tests / cold paths).
    pub fn to_dense(&self) -> DMat {
        let mut out = self.sparse.to_dense();
        for i in 0..self.nrows {
            let drow = self.dense.row(i);
            let orow = out.row_mut(i);
            for (f, &c) in self.dense_cols.iter().enumerate() {
                orow[c as usize] = drow[f];
            }
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.dense.as_slice())
            + self.dense_cols.len() * std::mem::size_of::<Idx>()
            + self.sparse.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Matrix with a few dense columns and a sparse tail, like an
    /// l1-regularized factor.
    fn skewed_matrix(rows: usize, cols: usize, seed: u64) -> DMat {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                // Columns 0..2 are ~90% dense, the rest ~5%.
                let keep = if j < 3 { 0.9 } else { 0.05 };
                if rng.gen::<f64>() < keep {
                    m.set(i, j, rng.gen_range(0.1..1.0));
                }
            }
        }
        m
    }

    #[test]
    fn roundtrip_dense() {
        let d = skewed_matrix(50, 10, 1);
        let h = HybridMat::from_dense(&d, 0.0);
        assert_eq!(h.to_dense().max_abs_diff(&d), 0.0);
    }

    #[test]
    fn dense_columns_are_the_heavy_ones() {
        let d = skewed_matrix(200, 12, 2);
        let h = HybridMat::from_dense(&d, 0.0);
        // The three heavy columns must land in the dense panel.
        assert!(h.num_dense_cols() >= 3);
        let mut panel: Vec<Idx> = h.dense_cols.clone();
        panel.sort_unstable();
        for c in 0..3 {
            assert!(panel.binary_search(&(c as Idx)).is_ok());
        }
    }

    #[test]
    fn scatter_axpy_matches_dense() {
        let d = skewed_matrix(30, 8, 3);
        let h = HybridMat::from_dense(&d, 0.0);
        for i in 0..30 {
            let mut a = vec![0.0; 8];
            let mut b = vec![0.0; 8];
            h.scatter_axpy(i, 1.5, &mut a);
            crate::vecops::axpy(1.5, d.row(i), &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn all_zero_matrix_has_empty_panel() {
        let d = DMat::zeros(10, 4);
        let h = HybridMat::from_dense(&d, 0.0);
        assert_eq!(h.num_dense_cols(), 0);
        assert_eq!(h.sparse_nnz(), 0);
    }

    #[test]
    fn uniform_matrix_everything_equal_counts() {
        // All columns have identical counts: none strictly exceeds the
        // average, so everything stays in CSR.
        let d = DMat::from_vec(2, 3, vec![1.0; 6]).unwrap();
        let h = HybridMat::from_dense(&d, 0.0);
        assert_eq!(h.num_dense_cols(), 0);
        assert_eq!(h.sparse_nnz(), 6);
        assert_eq!(h.to_dense().max_abs_diff(&d), 0.0);
    }

    #[test]
    fn nnz_partitioned_between_panel_and_csr() {
        let d = skewed_matrix(100, 10, 4);
        let h = HybridMat::from_dense(&d, 0.0);
        // Entries in dense columns that are zero occupy panel slots, so we
        // check reconstruction rather than exact counts; the CSR side must
        // hold only non-panel entries.
        let total = d.count_nonzeros(0.0);
        let panel_cols: std::collections::HashSet<Idx> = h.dense_cols.iter().copied().collect();
        let mut panel_nnz = 0;
        for i in 0..d.nrows() {
            for (j, &v) in d.row(i).iter().enumerate() {
                if v != 0.0 && panel_cols.contains(&(j as Idx)) {
                    panel_nnz += 1;
                }
            }
        }
        assert_eq!(h.sparse_nnz() + panel_nnz, total);
    }
}
