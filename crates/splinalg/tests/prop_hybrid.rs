//! Property tests: the hybrid (dense-panel + CSR) matrix agrees with
//! the plain dense and pure-CSR representations on randomized shapes
//! and densities, from empty through fully dense.
//!
//! All three representations store exact copies of the same values in
//! disjoint locations, so agreement here is *bit-exact*, not
//! approximate — any tolerance would hide a wrong-column scatter.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::{CsrMatrix, DMat, HybridMat};

/// Dense matrix with roughly `density` of entries nonzero, plus skewed
/// per-column densities so the hybrid's panel split actually triggers.
fn sparse_dmat(rows: usize, cols: usize, density: f64, seed: u64) -> DMat {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = DMat::zeros(rows, cols);
    // A couple of columns are made much denser than the rest: the panel
    // split keys off columns that are denser than average.
    let hot = rng.gen_range(0..cols.max(1));
    for i in 0..rows {
        for j in 0..cols {
            let p = if j == hot {
                (density * 4.0).min(1.0)
            } else {
                density
            };
            if rng.gen::<f64>() < p {
                m.set(i, j, rng.gen_range(0.1..2.0));
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hybrid_round_trips_and_scatters_like_dense_and_csr(
        rows in 1usize..40,
        cols in 1usize..10,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let m = sparse_dmat(rows, cols, density, seed);
        let hyb = HybridMat::from_dense(&m, 0.0);
        let csr = CsrMatrix::from_dense(&m, 0.0);

        // Lossless reconstruction from both compressed forms.
        prop_assert_eq!(hyb.to_dense(), m.clone(), "hybrid to_dense");
        prop_assert_eq!(csr.to_dense(), m.clone(), "csr to_dense");

        // Row scatter: the kernel-facing operation. One product per
        // column in every representation, so results must be identical
        // to the bit.
        let alpha = 1.0 + (seed % 7) as f64 * 0.37;
        for i in 0..rows {
            let mut via_hybrid = vec![0.0f64; cols];
            hyb.scatter_axpy(i, alpha, &mut via_hybrid);
            let mut via_csr = vec![0.0f64; cols];
            csr.scatter_axpy(i, alpha, &mut via_csr);
            let mut via_dense = vec![0.0f64; cols];
            for (j, &v) in m.row(i).iter().enumerate() {
                via_dense[j] += alpha * v;
            }
            for j in 0..cols {
                prop_assert_eq!(
                    via_hybrid[j].to_bits(),
                    via_dense[j].to_bits(),
                    "hybrid scatter row {} col {}", i, j
                );
                prop_assert_eq!(
                    via_csr[j].to_bits(),
                    via_dense[j].to_bits(),
                    "csr scatter row {} col {}", i, j
                );
            }
        }

        // Structural invariants of the split.
        let total = m.count_nonzeros(0.0);
        prop_assert!(hyb.num_dense_cols() <= cols);
        prop_assert_eq!(hyb.nrows(), rows);
        prop_assert_eq!(hyb.ncols(), cols);
        // The CSR spill holds exactly the nonzeros outside the panel
        // columns, so it can never exceed the true count...
        prop_assert!(hyb.sparse_nnz() <= total);
        // ...and panel storage plus spill covers every nonzero.
        prop_assert!(hyb.sparse_nnz() + rows * hyb.num_dense_cols() >= total);
        prop_assert_eq!(csr.nnz(), total);
    }

    #[test]
    fn fully_dense_and_fully_empty_extremes(
        rows in 1usize..20,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let dense = sparse_dmat(rows, cols, 1.0, seed);
        let hyb = HybridMat::from_dense(&dense, 0.0);
        prop_assert_eq!(hyb.to_dense(), dense);

        let empty = DMat::zeros(rows, cols);
        let hyb0 = HybridMat::from_dense(&empty, 0.0);
        prop_assert_eq!(hyb0.sparse_nnz(), 0);
        prop_assert_eq!(hyb0.to_dense(), empty);
    }
}
