//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::{ops, Cholesky, CsrMatrix, DMat, HybridMat};

/// Random matrix strategy: dims in [1, 12], seeded values.
fn mat_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = DMat> {
    (1..=max_rows, 1..=max_cols, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DMat::random(r, c, -2.0, 2.0, &mut rng)
    })
}

/// Random sparse-ish matrix: random entries zeroed with probability p.
fn sparse_mat_strategy() -> impl Strategy<Value = DMat> {
    (mat_strategy(20, 10), 0.0f64..1.0, any::<u64>()).prop_map(|(mut m, p, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        for v in m.as_mut_slice() {
            if rng.gen::<f64>() < p {
                *v = 0.0;
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_spd_systems(m in mat_strategy(12, 8), rhs_seed in any::<u64>()) {
        // A = M^T M + n I is SPD.
        let n = m.ncols();
        let mut a = m.gram();
        a.add_diag(n as f64 + 1.0);
        let chol = Cholesky::factor(&a).unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(rhs_seed);
        let x_true = DMat::random(1, n, -1.0, 1.0, &mut rng);
        let b = a.matmul(&x_true.transpose()).unwrap().transpose();
        let mut x = b;
        chol.solve_row(x.row_mut(0));
        prop_assert!(x.max_abs_diff(&x_true) < 1e-6);
    }

    #[test]
    fn gram_is_psd(m in mat_strategy(15, 8), probe_seed in any::<u64>()) {
        let g = m.gram();
        let n = g.nrows();
        let mut rng = ChaCha8Rng::seed_from_u64(probe_seed);
        let v = DMat::random(1, n, -1.0, 1.0, &mut rng);
        // v^T G v = ||M v||^2 >= 0.
        let gv = g.matmul(&v.transpose()).unwrap();
        let quad: f64 = (0..n).map(|i| v.get(0, i) * gv.get(i, 0)).sum();
        prop_assert!(quad >= -1e-9);
    }

    #[test]
    fn khatri_rao_gram_identity(b in mat_strategy(8, 5), c_seed in any::<u64>()) {
        let f = b.ncols();
        let mut rng = ChaCha8Rng::seed_from_u64(c_seed);
        let c = DMat::random(6, f, -1.0, 1.0, &mut rng);
        let mut kr = DMat::zeros(c.nrows() * b.nrows(), f);
        ops::khatri_rao_into(&c, &b, &mut kr).unwrap();
        let lhs = kr.gram();
        let rhs = ops::hadamard(&b.gram(), &c.gram()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn csr_roundtrips(m in sparse_mat_strategy()) {
        let csr = CsrMatrix::from_dense(&m, 0.0);
        prop_assert_eq!(csr.nnz(), m.count_nonzeros(0.0));
        prop_assert_eq!(csr.to_dense().max_abs_diff(&m), 0.0);
    }

    #[test]
    fn hybrid_roundtrips(m in sparse_mat_strategy()) {
        let h = HybridMat::from_dense(&m, 0.0);
        prop_assert_eq!(h.to_dense().max_abs_diff(&m), 0.0);
    }

    #[test]
    fn csr_and_hybrid_scatter_agree(m in sparse_mat_strategy(), row_pick in any::<u64>(), alpha in -3.0f64..3.0) {
        let row = (row_pick as usize) % m.nrows();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let h = HybridMat::from_dense(&m, 0.0);
        let mut a = vec![0.5; m.ncols()];
        let mut b = vec![0.5; m.ncols()];
        csr.scatter_axpy(row, alpha, &mut a);
        h.scatter_axpy(row, alpha, &mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn model_norm_nonnegative(a in mat_strategy(6, 4), seeds in any::<u64>()) {
        let f = a.ncols();
        let mut rng = ChaCha8Rng::seed_from_u64(seeds);
        let b = DMat::random(5, f, -1.0, 1.0, &mut rng);
        let c = DMat::random(4, f, -1.0, 1.0, &mut rng);
        let grams = vec![a.gram(), b.gram(), c.gram()];
        // It's a squared Frobenius norm of the reconstruction.
        prop_assert!(ops::model_norm_sq(&grams).unwrap() >= -1e-9);
    }

    #[test]
    fn transpose_involution(m in mat_strategy(10, 10)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in mat_strategy(8, 8)) {
        let i = DMat::eye(m.ncols());
        let mi = m.matmul(&i).unwrap();
        prop_assert!(mi.max_abs_diff(&m) < 1e-12);
    }
}
