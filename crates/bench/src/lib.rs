//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! evaluation section (see DESIGN.md for the index); this library holds
//! the pieces they share: a tiny CLI-flag parser, dataset loading,
//! thread-pool scoping, CSV output under `bench_results/`, and ASCII
//! rendering of bar charts and convergence curves so the harness output
//! is readable without plotting tools.

#![warn(missing_docs)]

use sptensor::gen::Analog;
use sptensor::CooTensor;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

/// Minimal `--key value` argument parser (no external CLI dependency).
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()` after the binary name.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit iterator of arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                flags.insert(key.to_string(), val);
            }
        }
        Args { flags }
    }

    /// Fetch a flag parsed into `T`, or the default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch a string flag.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

/// Generate an analog dataset, printing a one-line provenance note.
pub fn load_analog(analog: Analog, scale: f64, seed: u64) -> CooTensor {
    eprintln!(
        "[gen] {} analog at scale {scale} (seed {seed}) ...",
        analog.name()
    );
    let t = analog
        .generate(scale, seed)
        .expect("generator config is valid");
    eprintln!(
        "[gen] {}: nnz={} dims={:?}",
        analog.name(),
        t.nnz(),
        t.dims()
    );
    t
}

/// Run `f` inside a rayon pool with exactly `threads` threads.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(f)
}

/// Geometric thread counts to sweep: 1, 2, 4, ... up to the machine's
/// available parallelism (always including the max itself).
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut v = Vec::new();
    let mut t = 1;
    while t < max {
        v.push(t);
        t *= 2;
    }
    v.push(max);
    v.dedup();
    v
}

/// Open `bench_results/<name>.csv` for writing (creating the directory),
/// returning the writer and the path.
pub fn csv_writer(name: &str) -> (impl Write, PathBuf) {
    let dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    let path = dir.join(format!("{name}.csv"));
    let f = std::fs::File::create(&path).expect("create csv");
    (std::io::BufWriter::new(f), path)
}

/// Render a horizontal ASCII bar of `frac` in [0,1], `width` chars wide.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Render an ASCII convergence curve: y values downsampled onto a
/// `rows x cols` grid, lower values lower on the chart.
pub fn ascii_curve(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() {
        return String::new();
    }
    let (xmin, xmax) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (ymin, ymax) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y) in points {
        let c = (((x - xmin) / xspan) * (cols - 1) as f64).round() as usize;
        let r = (((ymax - y) / yspan) * (rows - 1) as f64).round() as usize;
        grid[r][c] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>10.4} +\n"));
    for row in grid {
        out.push_str("           |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{ymin:>10.4} +{}\n            {:<8.2}{}{:>8.2}\n",
        "-".repeat(cols),
        xmin,
        " ".repeat(cols.saturating_sub(16)),
        xmax
    ));
    out
}

/// Format a duration in seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Thread-scaling sweep shared by the Figure 4 (fused) and Figure 5
/// (blocked) harnesses: time a fixed number of outer iterations of a
/// rank-`--rank` non-negative CPD on every dataset analog under thread
/// pools of increasing size, reporting speedup over one thread.
pub fn speedup_sweep(admm_cfg: admm::AdmmConfig, csv_name: &str, label: &str) {
    use admm::constraints;
    use aoadmm::{Factorizer, SparsityConfig};

    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 3);
    let seed: u64 = args.get("seed", 1);
    let threads = thread_sweep();

    println!("Speedup of {label} rank-{rank} non-negative CPD");
    println!("threads swept: {threads:?}\n");

    let (mut csv, path) = csv_writer(csv_name);
    writeln!(csv, "dataset,threads,seconds,speedup").unwrap();

    for analog in Analog::ALL {
        let t = load_analog(analog, scale, seed);
        let mut base_time = None;
        print!("{:<10}", analog.name());
        for &nt in &threads {
            let cfg = admm_cfg;
            let elapsed = with_threads(nt, || {
                let res = Factorizer::new(rank)
                    .constrain_all(constraints::nonneg())
                    .admm(cfg)
                    .sparsity(SparsityConfig::disabled())
                    .max_outer(max_outer)
                    .tolerance(0.0)
                    .seed(seed)
                    .factorize(&t)
                    .expect("factorization");
                res.trace.total
            });
            let secs = elapsed.as_secs_f64();
            let base = *base_time.get_or_insert(secs);
            let speedup = base / secs;
            print!("  {nt}t: {speedup:>5.2}x");
            writeln!(csv, "{},{nt},{secs:.3},{speedup:.3}", analog.name()).unwrap();
        }
        println!();
    }
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::parse(
            ["--scale", "0.5", "--verbose", "--rank", "50"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.get::<f64>("scale", 1.0), 0.5);
        assert_eq!(a.get::<usize>("rank", 10), 50);
        assert!(a.has("verbose"));
        assert_eq!(a.get::<usize>("missing", 7), 7);
        assert_eq!(a.get_str("name", "x"), "x");
    }

    #[test]
    fn bar_renders_fractions() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
        // Out-of-range clamps.
        assert_eq!(bar(2.0, 3), "###");
    }

    #[test]
    fn thread_sweep_is_sorted_unique() {
        let v = thread_sweep();
        assert!(!v.is_empty());
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v[0], 1);
    }

    #[test]
    fn ascii_curve_nonempty() {
        let pts = vec![(0.0, 1.0), (1.0, 0.5), (2.0, 0.25)];
        let s = ascii_curve(&pts, 5, 20);
        assert!(s.contains('*'));
    }

    #[test]
    fn csv_writer_creates_file() {
        let (mut w, path) = csv_writer("unit_test_tmp");
        writeln!(w, "a,b").unwrap();
        drop(w);
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }
}
