//! Table I: summary of the evaluation datasets.
//!
//! Prints the paper's real FROSTT dimensions next to the synthetic
//! analogs actually generated at the requested scale, plus the per-mode
//! skew statistics that justify the analogs (power-law slices).
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin table1 -- [--scale 1.0] [--seed 1]`

use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use sptensor::stats::{format_count, TensorStats};
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    println!("Table I: Summary of datasets (paper vs. generated analogs at scale {scale})");
    println!(
        "{:<10} {:>10} {:>24}   {:>10} {:>24}   {:>6}",
        "Dataset", "paper NNZ", "paper I x J x K", "ours NNZ", "ours I x J x K", "skew"
    );

    let (mut csv, path) = csv_writer("table1");
    writeln!(
        csv,
        "dataset,paper_nnz,paper_i,paper_j,paper_k,nnz,i,j,k,density,max_skew"
    )
    .unwrap();

    for analog in Analog::ALL {
        let t = load_analog(analog, scale, seed);
        let stats = TensorStats::compute(&t);
        let pd = analog.paper_dims();
        let skew = stats.modes.iter().map(|m| m.skew).fold(0.0f64, f64::max);
        println!(
            "{:<10} {:>10} {:>24}   {:>10} {:>24}   {:>6.1}",
            analog.name(),
            format_count(analog.paper_nnz() as f64),
            format!(
                "{} x {} x {}",
                format_count(pd[0] as f64),
                format_count(pd[1] as f64),
                format_count(pd[2] as f64)
            ),
            format_count(stats.nnz as f64),
            format!(
                "{} x {} x {}",
                format_count(stats.dims[0] as f64),
                format_count(stats.dims[1] as f64),
                format_count(stats.dims[2] as f64)
            ),
            skew,
        );
        writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{:.6e},{:.2}",
            analog.name(),
            analog.paper_nnz(),
            pd[0],
            pd[1],
            pd[2],
            stats.nnz,
            stats.dims[0],
            stats.dims[1],
            stats.dims[2],
            stats.density,
            skew
        )
        .unwrap();
    }
    println!("\nwrote {}", path.display());
}
