//! ALTO vs. CSF-family MTTKRP speedup over a full AO sweep.
//!
//! The CSF paths traverse fiber hierarchies whose shape (and therefore
//! whose branch behavior and memory traffic) depends on the mode
//! ordering and the slice skew; ALTO stores one mode-agnostic
//! bit-interleaved nonzero stream, decodes coordinates with mask
//! extracts, and scatters through SIMD rank-vector FMAs, so its cost is
//! uniform across modes and insensitive to skew. This harness times a
//! complete AO sweep — MTTKRP for every mode — under the per-mode CSF
//! set, the dimension-tree plan, and ALTO, over uniform and
//! Zipf-skewed tensors, reports ALTO's speedup against the best CSF
//! path per config, and records which substrate the cost model
//! ([`aoadmm::choose_policy`]) would pick. Results land in
//! `bench_results/alto_speedup.csv`.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin alto_speedup -- \
//!         [--nnz 400000] [--rank 16] [--reps 5] [--seed 1]`

use aoadmm::mttkrp::mttkrp_dense_planned;
use aoadmm::mttkrp_plan::build_mode_plans;
use aoadmm::{choose_policy, AltoTensor, CsfPolicy, IterationPlan};
use aoadmm_bench::{bar, csv_writer, Args};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::gen::{planted, random_uniform, PlantedConfig};
use sptensor::CooTensor;
use std::io::Write;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `body`.
fn median_secs(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn policy_name(p: CsfPolicy) -> &'static str {
    match p {
        CsfPolicy::PerMode => "per-mode",
        CsfPolicy::One => "one-csf",
        CsfPolicy::DimTree => "dim-tree",
        CsfPolicy::Alto => "alto",
        CsfPolicy::Auto => "auto",
    }
}

/// A Zipf-skewed tensor: one heavy mode, the rest near uniform.
fn skewed(dims: &[usize], nnz: usize, exponent: f64, seed: u64) -> CooTensor {
    let mut zipf = vec![0.1; dims.len()];
    zipf[0] = exponent;
    planted(&PlantedConfig {
        dims: dims.to_vec(),
        nnz,
        rank: 4,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: zipf,
        seed,
    })
    .expect("tensor gen")
}

struct Row {
    shape: String,
    kind: &'static str,
    nnz: usize,
    rank: usize,
    per_mode: f64,
    dimtree: Option<f64>,
    alto: f64,
    auto_pick: CsfPolicy,
}

fn main() {
    let args = Args::from_env();
    let nnz: usize = args.get("nnz", 400_000);
    let rank: usize = args.get("rank", 16);
    let reps: usize = args.get("reps", 5);
    let seed: u64 = args.get("seed", 1);
    let mut results: Vec<Row> = Vec::new();

    let configs: Vec<(&'static str, CooTensor)> = vec![
        (
            "uniform",
            random_uniform(&[500, 400, 300], nnz, seed).expect("tensor gen"),
        ),
        // Skew with small side modes: the CSF's best case (heavy fiber
        // reuse) — the cost model must not be fooled into claiming a win.
        ("skewed", skewed(&[4000, 60, 40], nnz, 1.2, seed + 1)),
        // Skew with large side modes: hyper-sparse fibers, where the CSF
        // pays full tree overhead per nonzero and ALTO's flat stream wins.
        ("skewed", skewed(&[4000, 2500, 2000], nnz, 1.2, seed + 2)),
        (
            "skewed",
            skewed(&[3000, 1500, 800, 600], nnz, 1.3, seed + 3),
        ),
        (
            "skewed",
            skewed(&[2000, 1000, 600, 400, 300], nnz, 1.2, seed + 4),
        ),
    ];

    for (kind, t) in &configs {
        let dims = t.dims().to_vec();
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 10);
        let factors: Vec<DMat> = dims
            .iter()
            .map(|&d| DMat::random(d, rank, -1.0, 1.0, &mut rng))
            .collect();
        let mut outs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, rank)).collect();

        // --- Per-mode CSFs: one full-depth traversal per mode. ---
        let csfs = build_mode_plans(t).expect("per-mode plans");
        let per_mode = median_secs(reps, || {
            for (m, out) in outs.iter_mut().enumerate() {
                mttkrp_dense_planned(&csfs[m].0, &csfs[m].1, &factors, out).unwrap();
            }
        });

        // --- Dimension tree (3+ modes): memoized slabs + invalidation. ---
        let dimtree = (dims.len() >= 3).then(|| {
            let mut plan = IterationPlan::build(t).expect("dimension tree");
            for (m, out) in outs.iter_mut().enumerate() {
                plan.mttkrp_dense(m, &factors, out).unwrap();
                plan.note_factor_changed(m);
            }
            median_secs(reps, || {
                for (m, out) in outs.iter_mut().enumerate() {
                    plan.mttkrp_dense(m, &factors, out).unwrap();
                    plan.note_factor_changed(m);
                }
            })
        });

        // --- ALTO: linearized stream, SIMD scatter. ---
        let alto_t = AltoTensor::build(t).expect("alto build");
        for (m, out) in outs.iter_mut().enumerate() {
            alto_t.mttkrp_into(m, &factors, out).unwrap(); // size scratch
        }
        let alto = median_secs(reps, || {
            for (m, out) in outs.iter_mut().enumerate() {
                alto_t.mttkrp_into(m, &factors, out).unwrap();
            }
        });

        results.push(Row {
            shape: dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            kind,
            nnz: t.nnz(),
            rank,
            per_mode,
            dimtree,
            alto,
            auto_pick: choose_policy(t),
        });
    }

    // --- Report. ---
    println!("ALTO vs CSF-family MTTKRP, full AO sweep ({reps} reps, median)\n");
    println!(
        "{:<16} {:>8} {:>9} {:>5} {:>13} {:>13} {:>11} {:>8} {:>9}",
        "shape", "kind", "nnz", "F", "per-mode (s)", "dim-tree (s)", "alto (s)", "speedup", "auto"
    );
    let (mut csv, path) = csv_writer("alto_speedup");
    writeln!(
        csv,
        "shape,kind,nmodes,nnz,rank,per_mode_seconds,dimtree_seconds,alto_seconds,\
         best_csf_seconds,alto_speedup_vs_best_csf,auto_policy"
    )
    .unwrap();
    let max_speedup = results
        .iter()
        .map(|r| r.per_mode.min(r.dimtree.unwrap_or(f64::INFINITY)) / r.alto)
        .fold(1.0f64, f64::max);
    for r in &results {
        let best_csf = r.per_mode.min(r.dimtree.unwrap_or(f64::INFINITY));
        let speedup = best_csf / r.alto;
        println!(
            "{:<16} {:>8} {:>9} {:>5} {:>13.6} {:>13} {:>11.6} {:>7.2}x {:>9} {}",
            r.shape,
            r.kind,
            r.nnz,
            r.rank,
            r.per_mode,
            r.dimtree
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| "-".into()),
            r.alto,
            speedup,
            policy_name(r.auto_pick),
            bar(speedup / max_speedup, 20)
        );
        writeln!(
            csv,
            "{},{},{},{},{},{:.6},{},{:.6},{:.6},{:.3},{}",
            r.shape,
            r.kind,
            r.shape.matches('x').count() + 1,
            r.nnz,
            r.rank,
            r.per_mode,
            r.dimtree
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| "-".into()),
            r.alto,
            best_csf,
            speedup,
            policy_name(r.auto_pick),
        )
        .unwrap();
    }
    println!("\ncsv: {}", path.display());
}
