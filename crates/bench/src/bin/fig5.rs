//! Figure 5: parallel speedup of the *blocked* rank-50 non-negative CPD
//! as a function of thread count.
//!
//! Same protocol as Figure 4 but with the blockwise ADMM of Section IV-B
//! (50-row blocks, dynamically scheduled). The paper's trend: datasets
//! dominated by ADMM time (NELL) gain the most from blocking.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin fig5 -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 3] [--seed 1]`

use admm::AdmmConfig;
use aoadmm_bench::speedup_sweep;

fn main() {
    speedup_sweep(AdmmConfig::blocked(50), "fig5", "blocked (50-row blocks)");
}
