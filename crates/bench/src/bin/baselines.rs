//! Baseline comparison (extends the paper's related-work discussion,
//! Section III-A): AO-ADMM vs. projected gradient descent vs.
//! unconstrained ALS, same data, same outer budget.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin baselines -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 15] [--seed 1]`

use admm::constraints;
use aoadmm::als::{als_factorize, AlsConfig};
use aoadmm::pgd::{pgd_factorize, PgdConfig};
use aoadmm::Factorizer;
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 15);
    let seed: u64 = args.get("seed", 1);

    println!("Baselines: rank-{rank} factorization, {max_outer} outer iterations, non-negative\n");
    println!(
        "{:<10} {:>14} {:>10} {:>14} {:>10} {:>14} {:>10}",
        "dataset", "AO-ADMM err", "time(s)", "PGD err", "time(s)", "ALS err*", "time(s)"
    );
    println!("(* ALS is unconstrained: a fit bound, not a feasible competitor)\n");

    let (mut csv, path) = csv_writer("baselines");
    writeln!(csv, "dataset,method,final_error,seconds").unwrap();

    for analog in [Analog::Reddit, Analog::Patents] {
        let t = load_analog(analog, scale, seed);

        let fz = Factorizer::new(rank)
            .constrain_all(constraints::nonneg())
            .max_outer(max_outer)
            .tolerance(0.0)
            .seed(seed);
        let ao = fz.factorize(&t).expect("AO-ADMM");

        let pgd = pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                rank,
                max_outer,
                tol: 0.0,
                seed,
                ..Default::default()
            },
        )
        .expect("PGD");

        let als = als_factorize(
            &t,
            &AlsConfig {
                rank,
                max_outer,
                tol: 0.0,
                seed,
                ..Default::default()
            },
        )
        .expect("ALS");

        println!(
            "{:<10} {:>14.4} {:>10.2} {:>14.4} {:>10.2} {:>14.4} {:>10.2}",
            analog.name(),
            ao.trace.final_error,
            ao.trace.total.as_secs_f64(),
            pgd.trace.final_error,
            pgd.trace.total.as_secs_f64(),
            als.trace.final_error,
            als.trace.total.as_secs_f64(),
        );
        for (name, res) in [("aoadmm", &ao), ("pgd", &pgd), ("als", &als)] {
            writeln!(
                csv,
                "{},{name},{:.6},{:.3}",
                analog.name(),
                res.trace.final_error,
                res.trace.total.as_secs_f64()
            )
            .unwrap();
        }
    }
    println!("\nwrote {}", path.display());
}
