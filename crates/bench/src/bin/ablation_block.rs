//! Ablation A (paper future work, Section VI): block-size sweep.
//!
//! Times a fixed number of outer iterations of blocked AO-ADMM at block
//! sizes from 1 row to the full matrix, and prints the analytical
//! model's suggestion ([`aoadmm::block_model`]) next to the measured
//! optimum.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin ablation_block -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 5] [--seed 1]`

use admm::{constraints, AdmmConfig};
use aoadmm::block_model;
use aoadmm::{Factorizer, SparsityConfig};
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 5);
    let seed: u64 = args.get("seed", 1);

    let t = load_analog(Analog::Reddit, scale, seed);
    let longest = *t.dims().iter().max().unwrap();
    let sizes = [1usize, 10, 50, 250, 1000, longest];

    println!("Ablation: block size sweep on Reddit analog, rank {rank}, {max_outer} outer iters");
    println!(
        "analytical model suggests B = {} (default cache budget)\n",
        block_model::suggest_block_size_default(rank)
    );

    let (mut csv, path) = csv_writer("ablation_block");
    writeln!(csv, "block_size,seconds,final_error,working_set_bytes").unwrap();

    for &bs in &sizes {
        let res = Factorizer::new(rank)
            .constrain_all(constraints::nonneg())
            .admm(AdmmConfig::blocked(bs))
            .sparsity(SparsityConfig::disabled())
            .max_outer(max_outer)
            .tolerance(0.0)
            .seed(seed)
            .factorize(&t)
            .expect("factorization");
        let ws = block_model::block_working_set(bs, rank);
        println!(
            "  B={bs:<7} {:>8.2}s  err {:.4}  working set {:>10} B",
            res.trace.total.as_secs_f64(),
            res.trace.final_error,
            ws
        );
        writeln!(
            csv,
            "{bs},{:.3},{:.6},{ws}",
            res.trace.total.as_secs_f64(),
            res.trace.final_error
        )
        .unwrap();
    }
    println!("\nwrote {}", path.display());
}
