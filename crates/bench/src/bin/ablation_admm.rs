//! Ablation: ADMM algorithmic variants beyond the paper — fixed rho
//! (the paper), residual-balancing adaptive rho, and over-relaxation —
//! compared on time-to-error for a fixed outer budget.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin ablation_admm -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 10] [--seed 1]`

use admm::{constraints, AdaptiveRho, AdmmConfig};
use aoadmm::{Factorizer, SparsityConfig};
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 10);
    let seed: u64 = args.get("seed", 1);

    let variants: Vec<(&str, AdmmConfig)> = vec![
        ("fixed-rho (paper)", AdmmConfig::blocked(50)),
        ("adaptive-rho", {
            let mut c = AdmmConfig::blocked(50);
            c.adaptive_rho = Some(AdaptiveRho::default());
            c
        }),
        ("relaxed a=1.6", {
            let mut c = AdmmConfig::blocked(50);
            c.relaxation = 1.6;
            c
        }),
        ("adaptive + relaxed", {
            let mut c = AdmmConfig::blocked(50);
            c.adaptive_rho = Some(AdaptiveRho::default());
            c.relaxation = 1.6;
            c
        }),
    ];

    println!("ADMM variant ablation: rank-{rank} non-negative CPD, {max_outer} outer iters\n");
    let (mut csv, path) = csv_writer("ablation_admm");
    writeln!(
        csv,
        "dataset,variant,seconds,final_error,total_inner_row_iters"
    )
    .unwrap();

    for analog in [Analog::Reddit, Analog::Nell] {
        let t = load_analog(analog, scale, seed);
        println!("{}:", analog.name());
        for (name, cfg) in &variants {
            let res = Factorizer::new(rank)
                .constrain_all(constraints::nonneg())
                .admm(*cfg)
                .sparsity(SparsityConfig::disabled())
                .max_outer(max_outer)
                .tolerance(0.0)
                .seed(seed)
                .factorize(&t)
                .expect("factorization");
            let row_iters: u64 = res
                .trace
                .iterations
                .iter()
                .flat_map(|i| i.modes.iter())
                .map(|m| m.admm_row_iterations)
                .sum();
            println!(
                "  {name:<20} {:>8.2}s  err {:.4}  row-iters {row_iters}",
                res.trace.total.as_secs_f64(),
                res.trace.final_error
            );
            writeln!(
                csv,
                "{},{name},{:.3},{:.6},{row_iters}",
                analog.name(),
                res.trace.total.as_secs_f64(),
                res.trace.final_error
            )
            .unwrap();
        }
    }
    println!("\nwrote {}", path.display());
}
