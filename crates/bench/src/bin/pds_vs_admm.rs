//! Inner-solver comparison: the ADMM baseline against the primal-dual
//! splitting (PDS) backend on the constraint families both can express,
//! plus the composite TV leg only PDS can run.
//!
//! ADMM solves each mode subproblem with exact Cholesky solves per
//! block; PDS takes Gram-preconditioned first-order steps and never
//! factorizes. The interesting questions are (a) how much quality a
//! fixed outer budget buys under each backend and (b) what the
//! composite constraints cost, since ADMM has no price for them at all.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin pds_vs_admm -- \
//!         [--scale 0.25] [--rank 16] [--max-outer 15] [--seed 1]`

use admm::constraints;
use aoadmm::prelude::*;
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

/// One benchmark leg: a label, the configured factorizer, and whether
/// the ADMM backend can express it at all.
struct Scenario {
    label: &'static str,
    admm_capable: bool,
    configure: fn(Factorizer) -> Factorizer,
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let rank: usize = args.get("rank", 16);
    let max_outer: usize = args.get("max-outer", 15);
    let seed: u64 = args.get("seed", 1);

    let scenarios = [
        Scenario {
            label: "nonneg",
            admm_capable: true,
            configure: |f| f.constrain_all(constraints::nonneg()),
        },
        Scenario {
            label: "simplex",
            admm_capable: true,
            configure: |f| {
                f.constrain_all(constraints::nonneg())
                    .constrain_mode(1, constraints::simplex())
            },
        },
        Scenario {
            label: "nonneg+tv",
            admm_capable: false,
            configure: |f| {
                f.constrain_all(constraints::nonneg())
                    .constrain_mode_pds(2, pds_constraints::tv(0.05))
            },
        },
    ];

    println!("inner-solver comparison: rank-{rank} CPD, {max_outer} outer iters, scale {scale}\n");
    let (mut csv, path) = csv_writer("pds_vs_admm");
    writeln!(
        csv,
        "dataset,scenario,backend,seconds,final_error,inner_row_iters"
    )
    .unwrap();

    for analog in [Analog::Reddit, Analog::Nell] {
        let t = load_analog(analog, scale, seed);
        println!("{}:", analog.name());
        for sc in &scenarios {
            let backends: &[InnerSolverKind] = if sc.admm_capable {
                &[InnerSolverKind::Admm, InnerSolverKind::Pds]
            } else {
                &[InnerSolverKind::Pds]
            };
            for &kind in backends {
                let base = Factorizer::new(rank)
                    .inner_solver(kind)
                    .max_outer(max_outer)
                    .tolerance(0.0)
                    .seed(seed);
                let res = (sc.configure)(base).factorize(&t).expect("factorization");
                let row_iters: u64 = res
                    .trace
                    .iterations
                    .iter()
                    .flat_map(|i| i.modes.iter())
                    .map(|m| m.admm_row_iterations)
                    .sum();
                println!(
                    "  {:<10} {:<5} {:>8.2}s  err {:.4}  row-iters {row_iters}",
                    sc.label,
                    kind.name(),
                    res.trace.total.as_secs_f64(),
                    res.trace.final_error
                );
                writeln!(
                    csv,
                    "{},{},{},{:.3},{:.6},{row_iters}",
                    analog.name(),
                    sc.label,
                    kind.name(),
                    res.trace.total.as_secs_f64(),
                    res.trace.final_error
                )
                .unwrap();
            }
        }
    }
    println!("\nwrote {}", path.display());
}
