//! Dimension-tree vs. per-mode MTTKRP speedup over a full AO sweep.
//!
//! The per-mode path traverses a mode-rooted CSF top to bottom for every
//! mode, touching all `N` factors each time; the dimension-tree plan
//! memoizes partial Khatri-Rao slabs, so a steady-state sweep performs
//! roughly two full traversals plus slab-sized fixups instead of `N`.
//! This harness times the complete sweep — MTTKRP for every mode with
//! the invalidation traffic of an AO loop (the served mode's factor is
//! marked changed after each serve) — and writes the comparison to
//! `bench_results/dimtree_speedup.csv`. Both paths produce the same
//! values up to reduction order, so the ratio is pure traversal savings.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin dimtree_speedup -- \
//!         [--nnz 300000] [--rank 16] [--reps 5] [--seed 1]`

use aoadmm::mttkrp::mttkrp_dense_planned;
use aoadmm::mttkrp_plan::build_mode_plans;
use aoadmm::IterationPlan;
use aoadmm_bench::{bar, csv_writer, Args};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::gen::random_uniform;
use std::io::Write;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `body`.
fn median_secs(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Row {
    shape: String,
    nmodes: usize,
    nnz: usize,
    rank: usize,
    per_mode: f64,
    dimtree: f64,
}

fn main() {
    let args = Args::from_env();
    let nnz: usize = args.get("nnz", 300_000);
    let rank: usize = args.get("rank", 16);
    let reps: usize = args.get("reps", 5);
    let seed: u64 = args.get("seed", 1);
    let mut results: Vec<Row> = Vec::new();

    let shapes: Vec<Vec<usize>> = vec![
        vec![600, 500, 400],
        vec![220, 180, 150, 120],
        vec![90, 80, 70, 60, 50],
    ];

    for dims in &shapes {
        let t = random_uniform(dims, nnz, seed).expect("tensor gen");
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let factors: Vec<DMat> = dims
            .iter()
            .map(|&d| DMat::random(d, rank, -1.0, 1.0, &mut rng))
            .collect();
        let mut outs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, rank)).collect();

        // --- Per-mode CSFs: one full-depth traversal per mode. ---
        let csfs = build_mode_plans(&t).expect("per-mode plans");
        let per_mode = median_secs(reps, || {
            for (m, out) in outs.iter_mut().enumerate() {
                mttkrp_dense_planned(&csfs[m].0, &csfs[m].1, &factors, out).unwrap();
            }
        });

        // --- Dimension tree: memoized slabs across the sweep. ---
        let mut plan = IterationPlan::build(&t).expect("dimension tree");
        // Warm-up sweep sizes the arena and fills the cache, as the
        // driver's first outer iteration does.
        for (m, out) in outs.iter_mut().enumerate() {
            plan.mttkrp_dense(m, &factors, out).unwrap();
            plan.note_factor_changed(m);
        }
        let dimtree = median_secs(reps, || {
            for (m, out) in outs.iter_mut().enumerate() {
                plan.mttkrp_dense(m, &factors, out).unwrap();
                plan.note_factor_changed(m);
            }
        });

        results.push(Row {
            shape: dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            nmodes: dims.len(),
            nnz: t.nnz(),
            rank,
            per_mode,
            dimtree,
        });
    }

    // --- Report. ---
    println!("dimension-tree vs per-mode MTTKRP, full AO sweep ({reps} reps, median)\n");
    println!(
        "{:<18} {:>6} {:>9} {:>5} {:>13} {:>13} {:>8}",
        "shape", "modes", "nnz", "F", "per-mode (s)", "dim-tree (s)", "speedup"
    );
    let (mut csv, path) = csv_writer("dimtree_speedup");
    writeln!(
        csv,
        "shape,nmodes,nnz,rank,per_mode_seconds,dimtree_seconds,speedup"
    )
    .unwrap();
    let max_speedup = results
        .iter()
        .map(|r| r.per_mode / r.dimtree)
        .fold(1.0f64, f64::max);
    for r in &results {
        let speedup = r.per_mode / r.dimtree;
        println!(
            "{:<18} {:>6} {:>9} {:>5} {:>13.6} {:>13.6} {:>7.2}x {}",
            r.shape,
            r.nmodes,
            r.nnz,
            r.rank,
            r.per_mode,
            r.dimtree,
            speedup,
            bar(speedup / max_speedup, 24)
        );
        writeln!(
            csv,
            "{},{},{},{},{:.6},{:.6},{:.3}",
            r.shape, r.nmodes, r.nnz, r.rank, r.per_mode, r.dimtree, speedup
        )
        .unwrap();
    }
    println!("\ncsv: {}", path.display());
}
