//! Ablation B: density-threshold sweep for the sparse-MTTKRP switch.
//!
//! The paper empirically sets the "treat the factor as sparse" threshold
//! at 20% density. This sweep measures total time under l1
//! regularization as the threshold varies from never-sparse (0) to
//! always-sparse (1), for both CSR and hybrid structures.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin ablation_sparsity -- \
//!         [--scale 1.0] [--rank 50] [--lambda 0.1] [--max-outer 20] [--seed 1]`

use admm::constraints;
use aoadmm::{Factorizer, SparsityConfig, Structure, StructureChoice};
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let lambda: f64 = args.get("lambda", 0.1);
    let max_outer: usize = args.get("max-outer", 20);
    let seed: u64 = args.get("seed", 1);

    let t = load_analog(Analog::Reddit, scale, seed);
    let thresholds = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.01];

    println!(
        "Ablation: sparsity threshold sweep on Reddit analog, rank {rank}, l1 lambda={lambda}\n"
    );
    let (mut csv, path) = csv_writer("ablation_sparsity");
    writeln!(csv, "structure,threshold,seconds,final_error").unwrap();

    for structure in [Structure::Csr, Structure::Hybrid] {
        println!("structure {structure:?}:");
        for &th in &thresholds {
            let sp = SparsityConfig {
                enabled: true,
                choice: StructureChoice::Force(structure),
                density_threshold: th,
                zero_tol: 0.0,
            };
            let res = Factorizer::new(rank)
                .constrain_all(constraints::nonneg_lasso(lambda))
                .sparsity(sp)
                .max_outer(max_outer)
                .tolerance(1e-6)
                .seed(seed)
                .factorize(&t)
                .expect("factorization");
            println!(
                "  threshold {th:<5} {:>8.2}s  err {:.4}",
                res.trace.total.as_secs_f64(),
                res.trace.final_error
            );
            writeln!(
                csv,
                "{structure:?},{th},{:.3},{:.6}",
                res.trace.total.as_secs_f64(),
                res.trace.final_error
            )
            .unwrap();
        }
    }
    println!("\nwrote {}", path.display());
}
