//! Panel vs. scalar dense-kernel speedup summary.
//!
//! Times each panelized kernel (register-blocked Gram, panel triangular
//! solves, the zero-allocation ADMM update) against its legacy scalar
//! implementation on identical inputs and writes a machine-readable
//! summary to `bench_results/panel_speedup.csv`. The scalar paths are
//! retained precisely so this comparison stays honest (see
//! `admm::reference`); both sides compute bit-identical results, so the
//! ratio is pure kernel efficiency.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin panel_speedup -- \
//!         [--rows 100000] [--reps 5] [--seed 1]`

use admm::{admm_update_reference, admm_update_ws, constraints, AdmmConfig, AdmmWorkspace};
use aoadmm_bench::{bar, csv_writer, Args};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::{panel, Cholesky, DMat, Workspace};
use std::io::Write;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `body`.
fn median_secs(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Row {
    kernel: &'static str,
    rows: usize,
    rank: usize,
    scalar: f64,
    panel: f64,
}

fn main() {
    let args = Args::from_env();
    let rows: usize = args.get("rows", 100_000);
    let reps: usize = args.get("reps", 5);
    let seed: u64 = args.get("seed", 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut results: Vec<Row> = Vec::new();

    // --- Gram: A^T A over a tall factor. ---
    for f in [16usize, 50] {
        let a = DMat::random(rows, f, -1.0, 1.0, &mut rng);
        let scalar = median_secs(reps, || {
            let _ = a.gram();
        });
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(f, f);
        panel::gram_into(&a, &mut ws, &mut out).unwrap(); // warm
        let panel_t = median_secs(reps, || {
            panel::gram_into(&a, &mut ws, &mut out).unwrap();
        });
        results.push(Row {
            kernel: "gram",
            rows,
            rank: f,
            scalar,
            panel: panel_t,
        });
    }

    // --- Triangular solves: (G + rho I)^-1 applied to a tall RHS. ---
    let solve_rows = rows / 5;
    for f in [16usize, 50] {
        let w = DMat::random(2 * f, f, -1.0, 1.0, &mut rng);
        let mut g = w.gram();
        g.add_diag(f as f64);
        let chol = Cholesky::factor(&g).unwrap();
        let rhs = DMat::random(solve_rows, f, -1.0, 1.0, &mut rng);
        let mut x = rhs.clone();
        let scalar = median_secs(reps, || {
            x.copy_from(&rhs).unwrap();
            chol.solve_mat(&mut x).unwrap();
        });
        let mut ws = Workspace::new();
        let panel_t = median_secs(reps, || {
            x.copy_from(&rhs).unwrap();
            chol.solve_mat_panel(&mut x, &mut ws).unwrap();
        });
        results.push(Row {
            kernel: "solve",
            rows: solve_rows,
            rank: f,
            scalar,
            panel: panel_t,
        });
    }

    // --- Full ADMM update: legacy scalar reference vs. workspace path,
    // fixed inner work so both sides do identical arithmetic. ---
    let admm_rows = rows / 2;
    let f = 32;
    let w = DMat::random(3 * f, f, 0.1, 1.0, &mut rng);
    let gram = w.gram();
    let k = DMat::random(admm_rows, f, -0.5, 2.0, &mut rng);
    let nonneg = constraints::nonneg();
    for (name, cfg0) in [
        ("admm_blocked", AdmmConfig::blocked(50)),
        ("admm_fused", AdmmConfig::fused()),
    ] {
        let mut cfg = cfg0;
        cfg.max_inner = 10;
        cfg.tol = 0.0;
        let mut h = DMat::zeros(admm_rows, f);
        let mut u = DMat::zeros(admm_rows, f);
        let scalar = median_secs(reps, || {
            h.as_mut_slice().fill(0.0);
            u.as_mut_slice().fill(0.0);
            admm_update_reference(&gram, &k, &mut h, &mut u, &*nonneg, &cfg).unwrap();
        });
        let mut ws = AdmmWorkspace::new();
        admm_update_ws(&gram, &k, &mut h, &mut u, &*nonneg, &cfg, &mut ws).unwrap(); // warm
        let panel_t = median_secs(reps, || {
            h.as_mut_slice().fill(0.0);
            u.as_mut_slice().fill(0.0);
            admm_update_ws(&gram, &k, &mut h, &mut u, &*nonneg, &cfg, &mut ws).unwrap();
        });
        results.push(Row {
            kernel: name,
            rows: admm_rows,
            rank: f,
            scalar,
            panel: panel_t,
        });
    }

    // --- Report. ---
    println!("panel vs scalar dense kernels ({reps} reps, median)\n");
    println!(
        "{:<14} {:>8} {:>5} {:>12} {:>12} {:>8}",
        "kernel", "rows", "F", "scalar (s)", "panel (s)", "speedup"
    );
    let (mut csv, path) = csv_writer("panel_speedup");
    writeln!(csv, "kernel,rows,rank,scalar_seconds,panel_seconds,speedup").unwrap();
    let max_speedup = results
        .iter()
        .map(|r| r.scalar / r.panel)
        .fold(1.0f64, f64::max);
    for r in &results {
        let speedup = r.scalar / r.panel;
        println!(
            "{:<14} {:>8} {:>5} {:>12.6} {:>12.6} {:>7.2}x {}",
            r.kernel,
            r.rows,
            r.rank,
            r.scalar,
            r.panel,
            speedup,
            bar(speedup / max_speedup, 24)
        );
        writeln!(
            csv,
            "{},{},{},{:.6},{:.6},{:.3}",
            r.kernel, r.rows, r.rank, r.scalar, r.panel, speedup
        )
        .unwrap();
    }
    println!("\ncsv: {}", path.display());
}
