//! Closed-loop load generator for the serving engine.
//!
//! Stands up a [`aoadmm_serve::ServeEngine`] over a synthetic Kruskal
//! model and drives it with a fixed number of concurrent closed-loop
//! clients (each issues its next operation the moment the previous one
//! returns). Sweeps client counts over five scenarios, recording
//! throughput (queries/sec) and per-operation p50/p95/p99 latency to
//! `bench_results/serve_load.csv`:
//!
//! * `point_batched` — 256-query slabs through `predict_many_into`
//!   (panel-kernel scoring, one snapshot per slab),
//! * `point_perquery` — the same 256 queries through `predict_direct`
//!   one at a time (per-query scalar baseline),
//! * `point_coalesced` — single-query `predict` through the combining
//!   micro-batcher (cross-thread coalescing, one query per op),
//! * `topk_pruned` / `topk_brute` — norm-bound pruned vs brute-force
//!   exact top-K.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin serve_load -- \
//!         [--rows 100000] [--rank 16] [--ops 200] [--slab 256] [--k 10] \
//!         [--clients 1,2,4,8] [--skew 0.6] [--seed 1]`
//!
//! `--skew` applies power-law row magnitudes (row i scaled by
//! `(i+1)^-skew`), matching the popularity skew of the dataset analogs;
//! `--skew 0` benchmarks the uniform worst case for pruning.

use aoadmm::KruskalModel;
use aoadmm_bench::{csv_writer, Args};
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::Idx;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

fn coord_for(i: u64, dims: &[usize]) -> Vec<Idx> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            (i.wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(m as u64 * 0x85ebca6b)
                % d as u64) as Idx
        })
        .collect()
}

struct Cell {
    qps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// One scenario operation: (query slab, value buffer, top-K hit buffer).
type OpFn<'a> = dyn Fn(&[Vec<Idx>], &mut Vec<f64>, &mut Vec<(Idx, f64)>) + Sync + 'a;

/// One scenario cell: `clients` closed-loop threads, `ops` operations
/// each, `per_op` queries inside every operation. Latency percentiles
/// are per operation (microseconds); throughput counts queries.
fn run_cell(
    clients: usize,
    ops: usize,
    per_op: usize,
    slabs: &[Vec<Vec<Idx>>],
    f: &OpFn<'_>,
) -> Cell {
    let wall = Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(ops);
                    let mut values = Vec::new();
                    let mut hits = Vec::new();
                    for i in 0..ops {
                        let slab = &slabs[(c * ops + i) % slabs.len()];
                        let t = Instant::now();
                        f(slab, &mut values, &mut hits);
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = wall.elapsed().as_secs_f64();
    lats.sort_unstable();
    let pct = |p: f64| lats[(p * (lats.len() - 1) as f64).round() as usize] as f64 / 1e3;
    Cell {
        qps: (lats.len() * per_op) as f64 / wall,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
    }
}

fn main() {
    let args = Args::from_env();
    let rows: usize = args.get("rows", 100_000);
    let rank: usize = args.get("rank", 16);
    let ops: usize = args.get("ops", 200);
    let slab: usize = args.get("slab", 256);
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 1);
    let clients: Vec<usize> = args
        .get_str("clients", "1,2,4,8")
        .split(',')
        .map(|s| s.trim().parse().expect("client count"))
        .collect();

    let skew: f64 = args.get("skew", 0.6);
    let dims = vec![rows, rows / 10 + 1, 500];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let factors = dims
        .iter()
        .map(|&d| {
            let mut f = DMat::random(d, rank, -1.0, 1.0, &mut rng);
            // Power-law row magnitudes, matching the popularity skew of
            // the dataset analogs (few hot users/items, a long tail) —
            // the regime norm-bound pruning is built for.
            for i in 0..d {
                let scale = ((i + 1) as f64).powf(-skew);
                for v in f.row_mut(i) {
                    *v *= scale;
                }
            }
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(KruskalModel::new(factors));
    let engine = Arc::new(ServeEngine::new(registry));
    println!(
        "serving rank-{rank} model over dims {dims:?}; {ops} ops/client, {slab} queries/slab\n"
    );

    // Distinct pregenerated query slabs, cycled by every client, so
    // coordinate hashing stays out of the measured loop.
    let slabs: Vec<Vec<Vec<Idx>>> = (0..64u64)
        .map(|s| {
            (0..slab as u64)
                .map(|i| coord_for(s * slab as u64 + i, &dims))
                .collect()
        })
        .collect();

    let (mut csv, path) = csv_writer("serve_load");
    writeln!(
        csv,
        "scenario,clients,queries_per_op,qps,p50_us,p95_us,p99_us"
    )
    .unwrap();

    let e = &engine;
    let scenarios: Vec<(&str, usize, Box<OpFn<'_>>)> = vec![
        (
            "point_batched",
            slab,
            Box::new(move |s, values, _| {
                e.predict_many_into(s, values).expect("predict_many");
            }),
        ),
        (
            "point_perquery",
            slab,
            Box::new(move |s, _, _| {
                for c in s {
                    e.predict_direct(c).expect("predict");
                }
            }),
        ),
        (
            "point_coalesced",
            1,
            Box::new(move |s, _, _| {
                e.predict(&s[0]).expect("predict");
            }),
        ),
        (
            "topk_pruned",
            1,
            Box::new(move |s, _, hits| {
                let q = TopKQuery {
                    free_mode: 0,
                    anchor: s[0].clone(),
                    k,
                };
                e.topk_into_with(&q, true, hits).expect("topk");
            }),
        ),
        (
            "topk_brute",
            1,
            Box::new(move |s, _, hits| {
                let q = TopKQuery {
                    free_mode: 0,
                    anchor: s[0].clone(),
                    k,
                };
                e.topk_into_with(&q, false, hits).expect("topk");
            }),
        ),
    ];

    for (name, per_op, f) in &scenarios {
        println!("{name} ({per_op} queries/op):");
        for &c in &clients {
            // Warm the pools at this concurrency before measuring.
            run_cell(c, 8.max(ops / 10), *per_op, &slabs, f.as_ref());
            let cell = run_cell(c, ops, *per_op, &slabs, f.as_ref());
            println!(
                "  {c:>2} clients: qps {:>9.0}  p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us",
                cell.qps, cell.p50, cell.p95, cell.p99
            );
            writeln!(
                csv,
                "{name},{c},{per_op},{:.0},{:.2},{:.2},{:.2}",
                cell.qps, cell.p50, cell.p95, cell.p99
            )
            .unwrap();
        }
    }
    drop(csv);
    println!("\nwrote {}", path.display());
}
