//! Table II: effect of sparse factor-matrix structures (DENSE / CSR /
//! CSR-H) on total CPD time under l1 regularization, at several ranks.
//!
//! The paper runs Reddit and Amazon with `r(.) = 0.1 * ||.||_1` on all
//! factors at ranks 50/100/200, reporting total time-to-solution and the
//! density of the longest factor matrix.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin table2 -- \
//!         [--scale 1.0] [--ranks 50,100,200] [--lambda 0.1] \
//!         [--max-outer 30] [--seed 1]`

use admm::constraints;
use aoadmm::{Factorizer, SparsityConfig, Structure};
use aoadmm_bench::{csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let lambda: f64 = args.get("lambda", 0.1);
    let max_outer: usize = args.get("max-outer", 30);
    let seed: u64 = args.get("seed", 1);
    let ranks: Vec<usize> = args
        .get_str("ranks", "50,100,200")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    println!(
        "Table II: sparse factor structures, l1 lambda={lambda}, ranks {ranks:?}, max {max_outer} outer iters\n"
    );
    let (mut csv, path) = csv_writer("table2");
    writeln!(
        csv,
        "dataset,rank,structure,seconds,final_error,longest_factor_density"
    )
    .unwrap();

    // The paper evaluates the two datasets whose factors actually go
    // sparse under l1 (NELL and Patents are omitted there for converging
    // to dense or all-zero factors).
    for analog in [Analog::Reddit, Analog::Amazon] {
        let t = load_analog(analog, scale, seed);
        let longest_mode = (0..3).max_by_key(|&m| t.dims()[m]).unwrap();
        for &rank in &ranks {
            println!("{} rank {rank}:", analog.name());
            for (label, sp) in [
                ("DENSE", SparsityConfig::disabled()),
                ("CSR", SparsityConfig::force(Structure::Csr)),
                ("CSR-H", SparsityConfig::force(Structure::Hybrid)),
            ] {
                let res = Factorizer::new(rank)
                    .constrain_all(constraints::nonneg_lasso(lambda))
                    .sparsity(sp)
                    .max_outer(max_outer)
                    .tolerance(1e-6)
                    .seed(seed)
                    .factorize(&t)
                    .expect("factorization");
                let density = res.model.factor(longest_mode).density(0.0);
                println!(
                    "  {label:<6} {:>8.2}s  err {:.4}  longest-factor density {:>5.1}%",
                    res.trace.total.as_secs_f64(),
                    res.trace.final_error,
                    100.0 * density
                );
                writeln!(
                    csv,
                    "{},{rank},{label},{:.3},{:.6},{:.4}",
                    analog.name(),
                    res.trace.total.as_secs_f64(),
                    res.trace.final_error,
                    density
                )
                .unwrap();
            }
        }
    }
    println!("\nwrote {}", path.display());
}
