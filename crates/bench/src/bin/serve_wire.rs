//! Closed-loop **over-the-wire** load generator for the serve daemon.
//!
//! Where `serve_load` drives the in-process engine, this stands up a
//! real [`aoadmm_served::Daemon`] on loopback and drives it with
//! concurrent pipelined [`WireClient`]s — so the numbers include
//! framing, syscalls, admission, the SLO batcher and the worker pool.
//! Three scenarios, swept over client counts, land in
//! `bench_results/serve_wire.csv`:
//!
//! * `point_wire` — pipelined point predicts (windows through the
//!   daemon's deadline batcher),
//! * `topk_exact_wire` — the exact norm-bound pruned top-K tier,
//! * `topk_approx_wire` — the bf16-quantized approximate tier with
//!   exact f64 rescoring of survivors.
//!
//! The `recall_at_k` column is measured, not assumed: after timing, the
//! approximate tier's answers for a held-out anchor set are compared
//! against the exact oracle computed in-process (exact scenarios score
//! 1.0 by construction — the wire path is conformance-tested
//! bit-identical). The headline figure is the approx:exact throughput
//! ratio at the measured recall.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin serve_wire -- \
//!         [--rows 400000] [--rank 32] [--ops 12] [--window 16] [--k 10] \
//!         [--clients 1,2,4] [--skew 0.2] [--shards 2] [--workers 2] \
//!         [--oversample 4] [--guard 0.01] [--seed 1]`
//!
//! Defaults are the checked-in `bench_results/serve_wire.csv`
//! configuration: 400k rows keeps both factor copies (102 MB f64, 26 MB
//! bf16) out of cache so the scenario exercises the memory system the
//! way a production catalog does, and skew 0.2 decays norms slowly
//! enough that neither tier's norm-bound termination trivializes the
//! scan.

use aoadmm::KruskalModel;
use aoadmm_bench::{csv_writer, Args};
use aoadmm_serve::{ApproxPolicy, ModelRegistry, ServeEngine, TopKQuery};
use aoadmm_served::{Daemon, DaemonConfig, Tier, WireClient};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::Idx;
use std::io::Write;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn coord_for(i: u64, dims: &[usize]) -> Vec<Idx> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            (i.wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(m as u64 * 0x85ebca6b)
                % d as u64) as Idx
        })
        .collect()
}

struct Cell {
    qps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// One pipelined operation: a window of queries through one client.
type OpFn<'a> = dyn Fn(&mut WireClient, &[Vec<Idx>]) + Sync + 'a;

/// `clients` closed-loop connections, `ops` pipelined windows each.
/// Latency percentiles are per window (microseconds); throughput counts
/// queries. Warm-up windows run first and are excluded from the wall.
fn run_cell(
    addr: SocketAddr,
    clients: usize,
    ops: usize,
    slabs: &[Vec<Vec<Idx>>],
    f: &OpFn<'_>,
) -> Cell {
    let warm = (ops / 4).max(2);
    let per_op = slabs[0].len();
    let (mut lats, wall) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    let mut lats = Vec::with_capacity(ops);
                    for i in 0..warm {
                        f(&mut client, &slabs[(c * warm + i) % slabs.len()]);
                    }
                    let timed = Instant::now();
                    for i in 0..ops {
                        let slab = &slabs[(c * ops + i) % slabs.len()];
                        let t = Instant::now();
                        f(&mut client, slab);
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    (lats, timed.elapsed().as_secs_f64())
                })
            })
            .collect();
        let mut lats = Vec::with_capacity(clients * ops);
        let mut wall = 0.0f64;
        for h in handles {
            let (l, w) = h.join().expect("client");
            lats.extend(l);
            wall = wall.max(w);
        }
        (lats, wall)
    });
    lats.sort_unstable();
    let pct = |p: f64| lats[(p * (lats.len() - 1) as f64).round() as usize] as f64 / 1e3;
    Cell {
        qps: (lats.len() * per_op) as f64 / wall,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
    }
}

fn main() {
    let args = Args::from_env();
    let rows: usize = args.get("rows", 400_000);
    let rank: usize = args.get("rank", 32);
    let ops: usize = args.get("ops", 12);
    let window: usize = args.get("window", 16);
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 1);
    let skew: f64 = args.get("skew", 0.2);
    let shards: usize = args.get("shards", 2);
    let workers: usize = args.get("workers", 2);
    let policy = ApproxPolicy {
        oversample: args.get("oversample", 4),
        guard: args.get("guard", 0.01),
    };
    let clients: Vec<usize> = args
        .get_str("clients", "1,2,4")
        .split(',')
        .map(|s| s.trim().parse().expect("client count"))
        .collect();

    let dims = vec![rows, 97, 83];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let factors: Vec<DMat> = dims
        .iter()
        .map(|&d| {
            let mut f = DMat::random(d, rank, -1.0, 1.0, &mut rng);
            // Power-law row magnitudes (popularity skew), the regime the
            // norm-ordered scans — exact and approximate — are built for.
            for i in 0..d {
                let scale = ((i + 1) as f64).powf(-skew);
                for v in f.row_mut(i) {
                    *v *= scale;
                }
            }
            f
        })
        .collect();
    let model = KruskalModel::new(factors);

    let daemon = Daemon::bind(DaemonConfig {
        nshards: shards,
        workers,
        batch_deadline: Duration::from_micros(200),
        approx: policy,
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    daemon.registry().publish(model.clone()).expect("publish");
    let addr = daemon.local_addr();
    println!(
        "daemon on {addr}: rank-{rank} model over dims {dims:?}, {shards} shard(s), \
         {workers} workers; {ops} windows/client x {window} queries\n"
    );

    // Pregenerated query windows, cycled by every client.
    let slabs: Vec<Vec<Vec<Idx>>> = (0..64u64)
        .map(|s| {
            (0..window as u64)
                .map(|i| coord_for(s * window as u64 + i, &dims))
                .collect()
        })
        .collect();

    // Measured recall of the approximate tier against the in-process
    // exact oracle, over every distinct anchor in the workload.
    let recall = {
        let registry = std::sync::Arc::new(ModelRegistry::new());
        registry.publish(model);
        let oracle = ServeEngine::new(registry);
        let mut client = WireClient::connect(addr).expect("connect");
        let mut total = 0.0;
        let mut n = 0usize;
        for slab in &slabs {
            for anchor in slab {
                let (_, approx) = client.topk(Tier::Approx, 0, anchor, k).expect("topk");
                let exact = oracle
                    .topk(&TopKQuery {
                        free_mode: 0,
                        anchor: anchor.clone(),
                        k,
                    })
                    .expect("oracle")
                    .hits;
                let hit = approx
                    .iter()
                    .filter(|(id, _)| exact.iter().any(|(eid, _)| eid == id))
                    .count();
                total += hit as f64 / exact.len() as f64;
                n += 1;
            }
        }
        total / n as f64
    };
    println!(
        "approx tier recall@{k} over {} anchors: {recall:.4}\n",
        64 * window
    );

    let (mut csv, path) = csv_writer("serve_wire");
    writeln!(
        csv,
        "scenario,clients,queries_per_op,qps,p50_us,p95_us,p99_us,recall_at_k"
    )
    .unwrap();

    let scenarios: Vec<(&str, f64, Box<OpFn<'_>>)> = vec![
        (
            "point_wire",
            1.0,
            Box::new(|client: &mut WireClient, slab: &[Vec<Idx>]| {
                for r in client.predict_pipelined(slab).expect("pipeline") {
                    r.expect("predict");
                }
            }),
        ),
        (
            "topk_exact_wire",
            1.0,
            Box::new(move |client: &mut WireClient, slab: &[Vec<Idx>]| {
                for r in client
                    .topk_pipelined(Tier::Exact, 0, slab, k)
                    .expect("pipeline")
                {
                    r.expect("topk");
                }
            }),
        ),
        (
            "topk_approx_wire",
            recall,
            Box::new(move |client: &mut WireClient, slab: &[Vec<Idx>]| {
                for r in client
                    .topk_pipelined(Tier::Approx, 0, slab, k)
                    .expect("pipeline")
                {
                    r.expect("topk");
                }
            }),
        ),
    ];

    let mut best = std::collections::HashMap::new();
    for (name, recall_col, f) in &scenarios {
        println!("{name} ({window} queries/op):");
        for &c in &clients {
            let cell = run_cell(addr, c, ops, &slabs, f.as_ref());
            println!(
                "  {c:>2} clients: qps {:>9.0}  p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us",
                cell.qps, cell.p50, cell.p95, cell.p99
            );
            writeln!(
                csv,
                "{name},{c},{window},{:.0},{:.2},{:.2},{:.2},{recall_col:.4}",
                cell.qps, cell.p50, cell.p95, cell.p99
            )
            .unwrap();
            let e = best.entry(*name).or_insert(0.0f64);
            *e = e.max(cell.qps);
        }
    }
    drop(csv);

    let exact = best["topk_exact_wire"];
    let approx = best["topk_approx_wire"];
    println!(
        "\napprox:exact top-K throughput ratio {:.1}x at recall@{k} {recall:.4}",
        approx / exact
    );
    println!("wrote {}", path.display());

    let mut client = WireClient::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    daemon.wait();
}
