//! Recovery experiment (methodological extension): how well does
//! constrained AO-ADMM recover planted ground-truth components as noise
//! grows, measured by the factor match score (FMS)?
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin recovery -- \
//!         [--rank 4] [--dim 30] [--seed 1]`

use admm::constraints;
use aoadmm::model_ops::factor_match_score;
use aoadmm::{Factorizer, KruskalModel};
use aoadmm_bench::{csv_writer, Args};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::CooTensor;
use std::io::Write;

fn truth_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for i in 0..d {
                for c in 0..rank {
                    let home = (i * rank / d).min(rank - 1);
                    if home == c || rng.gen::<f64>() < 0.15 {
                        m.set(i, c, rng.gen_range(0.3..1.0));
                    }
                }
            }
            m
        })
        .collect()
}

fn full_tensor(truth: &KruskalModel, noise: f64, seed: u64) -> CooTensor {
    let dims: Vec<usize> = truth.factors().iter().map(|f| f.nrows()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.clone()).unwrap();
    let mut coord = vec![0u32; 3];
    for i in 0..dims[0] as u32 {
        for j in 0..dims[1] as u32 {
            for k in 0..dims[2] as u32 {
                coord[0] = i;
                coord[1] = j;
                coord[2] = k;
                let v =
                    truth.value_at(&coord) + noise * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0);
                if v.abs() > 1e-12 {
                    t.push(&coord, v).unwrap();
                }
            }
        }
    }
    t
}

fn main() {
    let args = Args::from_env();
    let rank: usize = args.get("rank", 4);
    let dim: usize = args.get("dim", 30);
    let seed: u64 = args.get("seed", 1);

    let dims = vec![dim, dim, dim];
    let truth = KruskalModel::new(truth_factors(&dims, rank, seed));

    println!("Recovery vs noise: rank-{rank} planted CPD on a {dim}^3 complete tensor\n");
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "noise", "FMS", "rel error", "outers"
    );
    let (mut csv, path) = csv_writer("recovery");
    writeln!(csv, "noise,fms,rel_error,outer_iterations").unwrap();

    for &noise in &[0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let tensor = full_tensor(&truth, noise, seed + 100);
        let res = Factorizer::new(rank)
            .constrain_all(constraints::nonneg())
            .max_outer(200)
            .tolerance(1e-9)
            .seed(seed)
            .factorize(&tensor)
            .expect("factorization");
        let fms = factor_match_score(&res.model, &truth).expect("same shape");
        println!(
            "{noise:>8.2} {fms:>10.4} {:>12.4} {:>8}",
            res.trace.final_error,
            res.trace.outer_iterations()
        );
        writeln!(
            csv,
            "{noise},{fms:.6},{:.6},{}",
            res.trace.final_error,
            res.trace.outer_iterations()
        )
        .unwrap();
    }
    println!("\nwrote {}", path.display());
}
