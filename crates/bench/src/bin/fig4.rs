//! Figure 4: parallel speedup of the *baseline* (fused-kernel) rank-50
//! non-negative CPD as a function of thread count.
//!
//! The paper sweeps 1-20 threads on a 2x10-core Xeon; this harness
//! sweeps 1..available_parallelism. On machines exposing a single core
//! the sweep still exercises the multi-threaded code paths (rayon pools
//! of each size) but cannot show real speedup — see EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin fig4 -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 3] [--seed 1]`

use admm::AdmmConfig;
use aoadmm_bench::speedup_sweep;

fn main() {
    speedup_sweep(AdmmConfig::fused(), "fig4", "baseline (fused)");
}
