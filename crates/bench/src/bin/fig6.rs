//! Figure 6: convergence of base vs. blocked AO-ADMM, as a function of
//! wall-clock time (left column) and of outer iteration (right column),
//! for a rank-50 non-negative factorization of each dataset.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin fig6 -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 30] [--seed 1]`

use admm::{constraints, AdmmConfig};
use aoadmm::{FactorizeResult, Factorizer, SparsityConfig};
use aoadmm_bench::{ascii_curve, csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn run(
    t: &sptensor::CooTensor,
    rank: usize,
    max_outer: usize,
    seed: u64,
    cfg: AdmmConfig,
) -> FactorizeResult {
    Factorizer::new(rank)
        .constrain_all(constraints::nonneg())
        .admm(cfg)
        .sparsity(SparsityConfig::disabled())
        .max_outer(max_outer)
        .tolerance(1e-6)
        .seed(seed)
        .factorize(t)
        .expect("factorization")
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 30);
    let seed: u64 = args.get("seed", 1);

    println!("Figure 6: convergence, base vs blocked (rank-{rank} non-negative CPD)\n");
    let (mut csv, path) = csv_writer("fig6");
    writeln!(csv, "dataset,variant,iter,seconds,rel_error").unwrap();

    for analog in Analog::ALL {
        let t = load_analog(analog, scale, seed);
        let base = run(&t, rank, max_outer, seed, AdmmConfig::fused());
        let blocked = run(&t, rank, max_outer, seed, AdmmConfig::blocked(50));

        for (name, res) in [("base", &base), ("blocked", &blocked)] {
            for it in &res.trace.iterations {
                writeln!(
                    csv,
                    "{},{name},{},{:.4},{:.6}",
                    analog.name(),
                    it.iter,
                    it.elapsed.as_secs_f64(),
                    it.rel_error
                )
                .unwrap();
            }
        }

        println!("=== {} ===", analog.name());
        println!(
            "  base:    {:>3} iters, {:>8.2}s, final err {:.4}",
            base.trace.outer_iterations(),
            base.trace.total.as_secs_f64(),
            base.trace.final_error
        );
        println!(
            "  blocked: {:>3} iters, {:>8.2}s, final err {:.4}",
            blocked.trace.outer_iterations(),
            blocked.trace.total.as_secs_f64(),
            blocked.trace.final_error
        );
        let speedup = base.trace.total.as_secs_f64() / blocked.trace.total.as_secs_f64();
        let err_delta =
            100.0 * (blocked.trace.final_error - base.trace.final_error) / base.trace.final_error;
        println!("  blocked vs base: {speedup:.2}x time, {err_delta:+.2}% error\n");

        println!("  error vs outer iteration (o=base, *=blocked):");
        let mut pts: Vec<(f64, f64)> = base
            .trace
            .error_vs_iteration()
            .into_iter()
            .map(|(i, e)| (i as f64, e))
            .collect();
        pts.extend(
            blocked
                .trace
                .error_vs_iteration()
                .into_iter()
                .map(|(i, e)| (i as f64, e)),
        );
        println!("{}", ascii_curve(&pts, 10, 60));
    }
    println!("wrote {}", path.display());
}
