//! Figure 3: fraction of factorization time in MTTKRP vs. ADMM vs.
//! other, for a rank-50 non-negative factorization of each dataset.
//!
//! The paper measures its *baseline* AO-ADMM (no blocking, no sparsity),
//! so this harness runs the fused strategy with sparsity disabled.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin fig3 -- \
//!         [--scale 1.0] [--rank 50] [--max-outer 10] [--seed 1]`

use admm::{constraints, AdmmConfig};
use aoadmm::{Factorizer, SparsityConfig};
use aoadmm_bench::{bar, csv_writer, load_analog, Args};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let rank: usize = args.get("rank", 50);
    let max_outer: usize = args.get("max-outer", 10);
    let seed: u64 = args.get("seed", 1);

    println!("Figure 3: fraction of time in MTTKRP / ADMM / OTHER");
    println!("(rank-{rank} non-negative CPD, baseline fused ADMM, {max_outer} outer iterations)\n");

    let (mut csv, path) = csv_writer("fig3");
    writeln!(csv, "dataset,mttkrp_frac,admm_frac,other_frac,total_s").unwrap();

    for analog in Analog::ALL {
        let t = load_analog(analog, scale, seed);
        let res = Factorizer::new(rank)
            .constrain_all(constraints::nonneg())
            .admm(AdmmConfig::fused())
            .sparsity(SparsityConfig::disabled())
            .max_outer(max_outer)
            .tolerance(0.0)
            .seed(seed)
            .factorize(&t)
            .expect("factorization");
        let (m, a, o) = res.trace.time_fractions();
        println!(
            "{:<10} total {:>8.2}s",
            analog.name(),
            res.trace.total.as_secs_f64()
        );
        println!("  MTTKRP {m:>5.2} |{}|", bar(m, 40));
        println!("  ADMM   {a:>5.2} |{}|", bar(a, 40));
        println!("  OTHER  {o:>5.2} |{}|", bar(o, 40));
        writeln!(
            csv,
            "{},{m:.4},{a:.4},{o:.4},{:.3}",
            analog.name(),
            res.trace.total.as_secs_f64()
        )
        .unwrap();
    }
    println!("\nwrote {}", path.display());
}
