//! Shard-scaling harness for the sharded execution engine: wall time,
//! measured wire bytes and per-shard load as the shard count and the
//! per-shard pool size grow, on a planted tensor large enough for the
//! partition to matter.
//!
//! The CSV checked in under `bench_results/shard_scaling.csv` is
//! produced by this binary; CI compiles it on every push and the full
//! run regenerates the numbers.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin shard_scaling -- \
//!         [--scale 0.25] [--rank 16] [--max-outer 4] [--seed 2] \
//!         [--threads 1]`

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use aoadmm_bench::{csv_writer, load_analog, Args};
use aoadmm_distsim::{shard_factorize, Phase, ShardConfig};
use sptensor::gen::Analog;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let rank: usize = args.get("rank", 16);
    let max_outer: usize = args.get("max-outer", 4);
    let seed: u64 = args.get("seed", 2);
    let threads: usize = args.get("threads", 1);

    let t = load_analog(Analog::Amazon, scale, seed);
    let mut fixed = AdmmConfig::blocked(50);
    fixed.tol = 0.0;
    fixed.max_inner = 8;
    let cfg = Factorizer::new(rank)
        .constrain_all(constraints::nonneg())
        .admm(fixed)
        .max_outer(max_outer)
        .tolerance(0.0)
        .seed(seed);

    println!(
        "Shard scaling, Amazon analog {:?} ({} nnz), rank {rank}, {max_outer} rounds, {threads} thread(s)/shard\n",
        t.dims(),
        t.nnz()
    );
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>13} {:>10} {:>10}",
        "shards", "time s", "rel err", "wire MB", "max nnz/shard", "balance", "est comm s"
    );
    let (mut csv, path) = csv_writer("shard_scaling");
    writeln!(
        csv,
        "shards,threads_per_shard,seconds,final_error,total_bytes,kreduce_bytes,factor_bytes,\
         gram_bytes,max_shard_nnz,nnz_balance,est_comm_seconds"
    )
    .unwrap();

    let ideal = |s: usize| t.nnz().div_ceil(s).max(1) as f64;
    let mut reference_err = None;
    for s in [1usize, 2, 3, 4, 6, 8] {
        let sc = ShardConfig::new(s).threads_per_shard(threads);
        let t0 = Instant::now();
        let res = shard_factorize(&t, &cfg, &sc).expect("sharded run");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            res.comm.diff_from_prediction(&res.predicted),
            None,
            "measured traffic deviates from the analytic model"
        );
        let balance = res.max_shard_nnz as f64 / ideal(s);
        println!(
            "{s:>7} {secs:>9.3} {:>10.5} {:>12.3} {:>13} {balance:>10.3} {:>10.5}",
            res.trace.final_error,
            res.comm.total_bytes() as f64 / 1e6,
            res.max_shard_nnz,
            res.est_comm_seconds
        );
        writeln!(
            csv,
            "{s},{threads},{secs:.4},{:.6},{},{},{},{},{},{balance:.4},{:.6}",
            res.trace.final_error,
            res.comm.total_bytes(),
            res.comm.phase_bytes(Phase::KReduce),
            res.comm.phase_bytes(Phase::FactorRows),
            res.comm.phase_bytes(Phase::GramReduce),
            res.max_shard_nnz,
            res.est_comm_seconds
        )
        .unwrap();
        let r = *reference_err.get_or_insert(res.trace.final_error);
        assert!(
            (res.trace.final_error - r).abs() < 1e-8,
            "shard count changed the answer: {r} vs {}",
            res.trace.final_error
        );
    }
    println!("\nwrote {}", path.display());
}
