//! Sharded-execution communication profile (paper Section IV-B's closing
//! remark): measured wire bytes and estimated overhead of the sharded
//! AO-ADMM engine as the shard count grows — demonstrating that blocked
//! ADMM itself contributes *zero* communication and the volume is
//! dominated by MTTKRP reduce-scatters and factor allgathers, with the
//! split-mode factor never travelling at all.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin distsim -- \
//!         [--scale 0.25] [--rank 25] [--max-outer 3] [--seed 1]`

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use aoadmm_bench::{csv_writer, load_analog, Args};
use aoadmm_distsim::{shard_factorize, Phase, ShardConfig};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let rank: usize = args.get("rank", 25);
    let max_outer: usize = args.get("max-outer", 3);
    let seed: u64 = args.get("seed", 1);

    let t = load_analog(Analog::Reddit, scale, seed);
    let mut fixed = AdmmConfig::blocked(50);
    fixed.tol = 0.0;
    fixed.max_inner = 10;
    let cfg = Factorizer::new(rank)
        .constrain_all(constraints::nonneg())
        .admm(fixed)
        .max_outer(max_outer)
        .tolerance(0.0)
        .seed(seed);

    println!("Sharded AO-ADMM engine, Reddit analog, rank {rank}, {max_outer} outer iters\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>10} {:>13} {:>10}",
        "shards", "KReduce MB", "factor MB", "gram MB", "est comm s", "max nnz/shard", "rel err"
    );
    let (mut csv, path) = csv_writer("distsim");
    writeln!(
        csv,
        "shards,kreduce_bytes,factor_bytes,gram_bytes,est_comm_seconds,max_shard_nnz,final_error"
    )
    .unwrap();

    let mut reference_err = None;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let res = shard_factorize(&t, &cfg, &ShardConfig::new(p)).expect("sharded run");
        assert_eq!(
            res.comm.diff_from_prediction(&res.predicted),
            None,
            "measured traffic deviates from the analytic model"
        );
        let kreduce = res.comm.phase_bytes(Phase::KReduce);
        let factor = res.comm.phase_bytes(Phase::FactorRows);
        let gram = res.comm.phase_bytes(Phase::GramReduce);
        let mb = |b: u64| b as f64 / 1e6;
        println!(
            "{p:>7} {:>12.2} {:>12.2} {:>12.3} {:>10.4} {:>13} {:>10.4}",
            mb(kreduce),
            mb(factor),
            mb(gram),
            res.est_comm_seconds,
            res.max_shard_nnz,
            res.trace.final_error
        );
        writeln!(
            csv,
            "{p},{kreduce},{factor},{gram},{:.6},{},{:.6}",
            res.est_comm_seconds, res.max_shard_nnz, res.trace.final_error
        )
        .unwrap();
        // Numerical invariance across shard counts.
        let r = *reference_err.get_or_insert(res.trace.final_error);
        assert!(
            (res.trace.final_error - r).abs() < 1e-8,
            "shard count changed the answer: {r} vs {}",
            res.trace.final_error
        );
    }
    println!("\n(final error is shard-count invariant; ADMM adds zero communicated bytes)");
    println!("wrote {}", path.display());
}
