//! Distributed-memory simulation (paper Section IV-B's closing remark):
//! communication volume and estimated overhead of coarse-grained 1D
//! distributed AO-ADMM as the node count grows — demonstrating that the
//! blocked ADMM itself contributes *zero* communication and the volume
//! is dominated by MTTKRP reductions and factor gathers.
//!
//! Usage: `cargo run --release -p aoadmm-bench --bin distsim -- \
//!         [--scale 0.25] [--rank 25] [--max-outer 3] [--seed 1]`

use admm::{constraints, AdmmConfig};
use aoadmm_bench::{csv_writer, load_analog, Args};
use aoadmm_distsim::{dist_factorize, CostModel, DistConfig};
use sptensor::gen::Analog;
use std::io::Write;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let rank: usize = args.get("rank", 25);
    let max_outer: usize = args.get("max-outer", 3);
    let seed: u64 = args.get("seed", 1);

    let t = load_analog(Analog::Reddit, scale, seed);
    let mut fixed = AdmmConfig::blocked(50);
    fixed.tol = 0.0;
    fixed.max_inner = 10;

    println!(
        "Simulated distributed AO-ADMM (coarse 1D), Reddit analog, rank {rank}, {max_outer} outer iters\n"
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "nodes", "MTTKRP MB", "factor MB", "gram MB", "est comm s", "max nnz/node", "rel err"
    );
    let (mut csv, path) = csv_writer("distsim");
    writeln!(
        csv,
        "nodes,mttkrp_bytes,factor_bytes,gram_bytes,est_comm_seconds,max_node_nnz,final_error"
    )
    .unwrap();

    let mut reference_err = None;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let cfg = DistConfig {
            nnodes: p,
            rank,
            max_outer,
            tol: 0.0,
            seed,
            admm: fixed,
            cost: CostModel::default(),
        };
        let res = dist_factorize(&t, constraints::nonneg(), &cfg).expect("distributed run");
        let mb = |b: u64| b as f64 / 1e6;
        println!(
            "{p:>6} {:>12.2} {:>12.2} {:>12.3} {:>10.4} {:>12} {:>10.4}",
            mb(res.comm.mttkrp_bytes),
            mb(res.comm.factor_bytes),
            mb(res.comm.gram_bytes),
            res.est_comm_seconds,
            res.max_node_nnz,
            res.final_error
        );
        writeln!(
            csv,
            "{p},{},{},{},{:.6},{},{:.6}",
            res.comm.mttkrp_bytes,
            res.comm.factor_bytes,
            res.comm.gram_bytes,
            res.est_comm_seconds,
            res.max_node_nnz,
            res.final_error
        )
        .unwrap();
        // Numerical invariance across node counts.
        let r = *reference_err.get_or_insert(res.final_error);
        assert!(
            (res.final_error - r).abs() < 1e-8,
            "node count changed the answer: {r} vs {}",
            res.final_error
        );
    }
    println!("\n(final error is node-count invariant; ADMM adds zero communicated bytes)");
    println!("wrote {}", path.display());
}
