//! Criterion microbenchmarks for the MTTKRP kernels: dense vs. CSR vs.
//! hybrid leaf factors, across factor densities and output modes, plus
//! precomputed execution plans vs. the legacy per-call scheduling.

use aoadmm::mttkrp::{mttkrp_dense, mttkrp_dense_planned, mttkrp_with_leaf};
use aoadmm::{MttkrpPlan, PlanOptions, PlanStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::{CsrMatrix, DMat, HybridMat};
use sptensor::gen::{planted, PlantedConfig};
use sptensor::Csf;

fn tensor() -> sptensor::CooTensor {
    planted(&PlantedConfig {
        dims: vec![2_000, 150, 3_000],
        nnz: 200_000,
        rank: 8,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: vec![1.1, 0.8, 1.1],
        seed: 5,
    })
    .unwrap()
}

fn factors(dims: &[usize], f: usize, leaf_mode: usize, leaf_density: f64, seed: u64) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            let mut fac = DMat::random(d, f, 0.1, 1.0, &mut rng);
            if m == leaf_mode {
                for v in fac.as_mut_slice() {
                    if rng.gen::<f64>() > leaf_density {
                        *v = 0.0;
                    }
                }
            }
            fac
        })
        .collect()
}

fn bench_mttkrp_structures(c: &mut Criterion) {
    let coo = tensor();
    let f = 32;
    let mode = 0;
    let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
    let leaf_mode = *csf.mode_order().last().unwrap();

    let mut group = c.benchmark_group("mttkrp_leaf_structure");
    group.sample_size(10);
    for density in [0.05, 0.2, 1.0] {
        let facs = factors(coo.dims(), f, leaf_mode, density, 7);
        let mut out = DMat::zeros(coo.dims()[mode], f);

        group.bench_with_input(BenchmarkId::new("dense", density), &density, |b, _| {
            b.iter(|| mttkrp_dense(&csf, &facs, &mut out).unwrap());
        });

        let csr = CsrMatrix::from_dense(&facs[leaf_mode], 0.0);
        group.bench_with_input(BenchmarkId::new("csr", density), &density, |b, _| {
            b.iter(|| mttkrp_with_leaf(&csf, &facs, &csr, &mut out).unwrap());
        });

        let hyb = HybridMat::from_dense(&facs[leaf_mode], 0.0);
        group.bench_with_input(BenchmarkId::new("hybrid", density), &density, |b, _| {
            b.iter(|| mttkrp_with_leaf(&csf, &facs, &hyb, &mut out).unwrap());
        });
    }
    group.finish();
}

fn bench_mttkrp_modes(c: &mut Criterion) {
    let coo = tensor();
    let f = 16;
    let mut group = c.benchmark_group("mttkrp_by_mode");
    group.sample_size(10);
    for mode in 0..3 {
        let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
        let facs = factors(coo.dims(), f, usize::MAX, 1.0, 9);
        let mut out = DMat::zeros(coo.dims()[mode], f);
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, _| {
            b.iter(|| mttkrp_dense(&csf, &facs, &mut out).unwrap());
        });
    }
    group.finish();
}

fn bench_mttkrp_one_csf(c: &mut Criterion) {
    // One shared CSF vs per-mode CSFs: the memory-saving configuration
    // pays for conflicting updates on non-root modes.
    let coo = tensor();
    let f = 16;
    let root = 1; // shortest mode of the generator config
    let one = Csf::from_coo_rooted(&coo, root).unwrap();
    let facs = factors(coo.dims(), f, usize::MAX, 1.0, 11);

    let mut group = c.benchmark_group("mttkrp_one_csf_vs_per_mode");
    group.sample_size(10);
    for target in 0..3 {
        let mut out = DMat::zeros(coo.dims()[target], f);
        group.bench_with_input(BenchmarkId::new("one_csf", target), &target, |b, _| {
            b.iter(|| {
                aoadmm::mttkrp_onecsf::mttkrp_one_csf(&one, &facs, target, &mut out).unwrap()
            });
        });
        let per_mode = Csf::from_coo_rooted(&coo, target).unwrap();
        group.bench_with_input(BenchmarkId::new("per_mode", target), &target, |b, _| {
            b.iter(|| mttkrp_dense(&per_mode, &facs, &mut out).unwrap());
        });
    }
    group.finish();
}

fn bench_mttkrp_plan_uniform(c: &mut Criterion) {
    // Many uniform root slices: the regime where nnz-balanced root chunks
    // win and the plan mainly saves the per-call schedule derivation.
    let coo = planted(&PlantedConfig {
        dims: vec![2_000, 150, 3_000],
        nnz: 200_000,
        rank: 8,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: vec![0.0, 0.0, 0.0],
        seed: 13,
    })
    .unwrap();
    let f = 32;
    let mode = 0;
    let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
    let facs = factors(coo.dims(), f, usize::MAX, 1.0, 15);
    let mut out = DMat::zeros(coo.dims()[mode], f);

    let mut group = c.benchmark_group("mttkrp_plan_uniform_many_roots");
    group.sample_size(10);
    group.bench_function("legacy_per_call", |b| {
        b.iter(|| mttkrp_dense(&csf, &facs, &mut out).unwrap());
    });
    let plan = MttkrpPlan::build(&csf);
    group.bench_function("planned", |b| {
        b.iter(|| mttkrp_dense_planned(&csf, &plan, &facs, &mut out).unwrap());
    });
    group.finish();
}

fn bench_mttkrp_plan_skewed(c: &mut Criterion) {
    // Few, Zipf-skewed root slices (Patents-like): root-level chunking
    // starves threads, so the fiber-privatized path is where the plan's
    // precomputed fiber map and lock-free reduction pay off.
    let coo = planted(&PlantedConfig {
        dims: vec![40, 500, 2_000],
        nnz: 200_000,
        rank: 8,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: vec![1.8, 0.6, 0.6],
        seed: 17,
    })
    .unwrap();
    let f = 32;
    let mode = 0;
    let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
    let facs = factors(coo.dims(), f, usize::MAX, 1.0, 19);
    let mut out = DMat::zeros(coo.dims()[mode], f);

    let mut group = c.benchmark_group("mttkrp_plan_skewed_few_roots");
    group.sample_size(10);
    group.bench_function("legacy_per_call", |b| {
        b.iter(|| mttkrp_dense(&csf, &facs, &mut out).unwrap());
    });
    for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: None,
                force_strategy: Some(strategy),
            },
        );
        group.bench_function(BenchmarkId::new("planned", strategy.name()), |b| {
            b.iter(|| mttkrp_dense_planned(&csf, &plan, &facs, &mut out).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mttkrp_structures,
    bench_mttkrp_modes,
    bench_mttkrp_one_csf,
    bench_mttkrp_plan_uniform,
    bench_mttkrp_plan_skewed
);
criterion_main!(benches);
