//! Criterion microbenchmarks for the dense kernels the paper takes from
//! MKL: Cholesky factorization, triangular solves, Gram matrices,
//! Khatri-Rao products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::{ops, panel, Cholesky, DMat, Workspace};

fn spd(f: usize, seed: u64) -> DMat {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = DMat::random(2 * f, f, -1.0, 1.0, &mut rng);
    let mut g = m.gram();
    g.add_diag(f as f64);
    g
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor");
    for f in [16usize, 50, 100, 200] {
        let a = spd(f, 1);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| Cholesky::factor(&a).unwrap());
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_solve_10k_rows");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for f in [16usize, 50, 100] {
        let chol = Cholesky::factor(&spd(f, 3)).unwrap();
        let rhs = DMat::random(10_000, f, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| {
                let mut x = rhs.clone();
                chol.solve_mat(&mut x).unwrap();
                x
            });
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_100k_rows");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for f in [16usize, 50] {
        let a = DMat::random(100_000, f, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| a.gram());
        });
    }
    group.finish();
}

fn bench_khatri_rao(c: &mut Criterion) {
    let mut group = c.benchmark_group("khatri_rao");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let bmat = DMat::random(300, 16, -1.0, 1.0, &mut rng);
    let cmat = DMat::random(400, 16, -1.0, 1.0, &mut rng);
    group.bench_function("300x400_f16", |b| {
        b.iter(|| ops::khatri_rao(&bmat, &cmat).unwrap());
    });
    // The workspace variant measured separately: same arithmetic, no
    // allocation per call.
    let mut out = DMat::zeros(300 * 400, 16);
    group.bench_function("300x400_f16_into", |b| {
        b.iter(|| ops::khatri_rao_into(&bmat, &cmat, &mut out).unwrap());
    });
    group.finish();
}

/// Panel (register-blocked) Gram kernel against the legacy scalar
/// kernel — same deterministic reduction, different inner loop.
fn bench_gram_panel_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_panel_vs_scalar");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for f in [16usize, 50] {
        let a = DMat::random(100_000, f, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("scalar", f), &f, |b, _| {
            b.iter(|| a.gram());
        });
        let mut ws = Workspace::new();
        let mut out = DMat::zeros(f, f);
        group.bench_with_input(BenchmarkId::new("panel", f), &f, |b, _| {
            b.iter(|| panel::gram_into(&a, &mut ws, &mut out).unwrap());
        });
    }
    group.finish();
}

/// Panel triangular solves against per-row solves. Both variants clone
/// the right-hand side each iteration, so the measured difference is
/// the solve kernel itself.
fn bench_solve_panel_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_panel_vs_scalar");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for f in [16usize, 50] {
        let chol = Cholesky::factor(&spd(f, 8)).unwrap();
        let rhs = DMat::random(10_000, f, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("scalar", f), &f, |b, _| {
            b.iter(|| {
                let mut x = rhs.clone();
                chol.solve_mat(&mut x).unwrap();
                x
            });
        });
        let mut ws = Workspace::new();
        group.bench_with_input(BenchmarkId::new("panel", f), &f, |b, _| {
            b.iter(|| {
                let mut x = rhs.clone();
                chol.solve_mat_panel(&mut x, &mut ws).unwrap();
                x
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_solve,
    bench_gram,
    bench_khatri_rao,
    bench_gram_panel_vs_scalar,
    bench_solve_panel_vs_scalar
);
criterion_main!(benches);
