//! Criterion microbenchmarks for the proximity operators (Algorithm 1
//! line 8), per 100k-row factor matrix.

use admm::prox::{BoxBound, Lasso, MaxRowNorm, NonNeg, NonNegLasso, Prox, Ridge, Simplex};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;

fn bench_prox(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let f = 32;
    let base = DMat::random(100_000, f, -1.0, 1.0, &mut rng);

    let ops: Vec<(&str, Box<dyn Prox>)> = vec![
        ("nonneg", Box::new(NonNeg)),
        ("lasso", Box::new(Lasso { lambda: 0.1 })),
        ("nonneg_lasso", Box::new(NonNegLasso { lambda: 0.1 })),
        ("ridge", Box::new(Ridge { lambda: 0.1 })),
        ("box", Box::new(BoxBound { lo: 0.0, hi: 1.0 })),
        ("simplex", Box::new(Simplex)),
        ("max_row_norm", Box::new(MaxRowNorm { bound: 1.0 })),
    ];

    let mut group = c.benchmark_group("prox_100k_rows_f32");
    group.sample_size(20);
    for (name, op) in ops {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut m = base.clone();
                for i in 0..m.nrows() {
                    op.apply_row(m.row_mut(i), 2.0);
                }
                m
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prox);
criterion_main!(benches);
