//! Criterion end-to-end benchmark: a small fixed-iteration factorization
//! under the fused baseline vs. the blocked strategy, with and without
//! sparse MTTKRP — the headline comparisons of the paper in miniature.

use admm::{constraints, AdmmConfig};
use aoadmm::{Factorizer, SparsityConfig, Structure};
use criterion::{criterion_group, criterion_main, Criterion};
use sptensor::gen::{planted, PlantedConfig};

fn tensor() -> sptensor::CooTensor {
    planted(&PlantedConfig {
        dims: vec![800, 100, 1_200],
        nnz: 60_000,
        rank: 8,
        noise: 0.1,
        factor_density: 0.3,
        zipf_exponents: vec![1.1, 0.8, 1.1],
        seed: 3,
    })
    .unwrap()
}

fn bench_end_to_end(c: &mut Criterion) {
    let t = tensor();
    let mut group = c.benchmark_group("factorize_5_outer_iters");
    group.sample_size(10);

    group.bench_function("fused_nonneg", |b| {
        b.iter(|| {
            Factorizer::new(16)
                .constrain_all(constraints::nonneg())
                .admm(AdmmConfig::fused())
                .sparsity(SparsityConfig::disabled())
                .max_outer(5)
                .tolerance(0.0)
                .factorize(&t)
                .unwrap()
        });
    });

    group.bench_function("blocked_nonneg", |b| {
        b.iter(|| {
            Factorizer::new(16)
                .constrain_all(constraints::nonneg())
                .admm(AdmmConfig::blocked(50))
                .sparsity(SparsityConfig::disabled())
                .max_outer(5)
                .tolerance(0.0)
                .factorize(&t)
                .unwrap()
        });
    });

    group.bench_function("blocked_l1_dense_mttkrp", |b| {
        b.iter(|| {
            Factorizer::new(16)
                .constrain_all(constraints::nonneg_lasso(0.2))
                .sparsity(SparsityConfig::disabled())
                .max_outer(5)
                .tolerance(0.0)
                .factorize(&t)
                .unwrap()
        });
    });

    group.bench_function("blocked_l1_csr_mttkrp", |b| {
        b.iter(|| {
            Factorizer::new(16)
                .constrain_all(constraints::nonneg_lasso(0.2))
                .sparsity(SparsityConfig::force(Structure::Csr))
                .max_outer(5)
                .tolerance(0.0)
                .factorize(&t)
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
