//! Criterion microbenchmarks for CSF compilation and sparse-factor
//! snapshot builds — the setup costs the dynamic-sparsity policy must
//! amortize (Section IV-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::{CsrMatrix, DMat, HybridMat};
use sptensor::gen;
use sptensor::Csf;

fn bench_csf_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csf_from_coo");
    group.sample_size(10);
    for nnz in [10_000usize, 100_000] {
        let coo = gen::random_uniform(&[2_000, 1_500, 2_500], nnz, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| Csf::from_coo_rooted(&coo, 0).unwrap());
        });
    }
    group.finish();
}

fn bench_snapshot_builds(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut factor = DMat::random(100_000, 32, 0.1, 1.0, &mut rng);
    for v in factor.as_mut_slice() {
        if rng.gen::<f64>() < 0.9 {
            *v = 0.0;
        }
    }
    let mut group = c.benchmark_group("factor_snapshot_build_100k_f32");
    group.sample_size(20);
    group.bench_function("csr", |b| {
        b.iter(|| CsrMatrix::from_dense(&factor, 0.0));
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| HybridMat::from_dense(&factor, 0.0));
    });
    group.finish();
}

criterion_group!(benches, bench_csf_build, bench_snapshot_builds);
criterion_main!(benches);
