//! Criterion microbenchmarks for the inner ADMM: fused baseline vs.
//! blocked at several block sizes.

use admm::{
    admm_update, admm_update_reference, admm_update_ws, constraints, AdmmConfig, AdmmWorkspace,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;

fn problem(rows: usize, f: usize, seed: u64) -> (DMat, DMat) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let w = DMat::random(3 * f, f, 0.1, 1.0, &mut rng);
    let gram = w.gram();
    let k = DMat::random(rows, f, -0.5, 2.0, &mut rng);
    (gram, k)
}

fn bench_strategies(c: &mut Criterion) {
    let rows = 50_000;
    let f = 32;
    let (gram, k) = problem(rows, f, 3);
    let nonneg = constraints::nonneg();

    let mut group = c.benchmark_group("admm_inner");
    group.sample_size(10);

    let configs = [
        ("fused", AdmmConfig::fused()),
        ("blocked_1", AdmmConfig::blocked(1)),
        ("blocked_50", AdmmConfig::blocked(50)),
        ("blocked_1000", AdmmConfig::blocked(1000)),
    ];
    for (name, mut cfg) in configs {
        cfg.max_inner = 10;
        cfg.tol = 0.0; // fixed work for a fair kernel comparison
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let mut h = DMat::zeros(rows, f);
                let mut u = DMat::zeros(rows, f);
                admm_update(&gram, &k, &mut h, &mut u, &*nonneg, &cfg).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let rows = 20_000;
    let mut group = c.benchmark_group("admm_rank_scaling");
    group.sample_size(10);
    for f in [16usize, 64] {
        let (gram, k) = problem(rows, f, 11);
        let nonneg = constraints::nonneg();
        let mut cfg = AdmmConfig::blocked(50);
        cfg.max_inner = 5;
        cfg.tol = 0.0;
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| {
                let mut h = DMat::zeros(rows, f);
                let mut u = DMat::zeros(rows, f);
                admm_update(&gram, &k, &mut h, &mut u, &*nonneg, &cfg).unwrap()
            });
        });
    }
    group.finish();
}

/// The panelized zero-allocation update against the legacy scalar
/// reference, for both strategies. State is reset in place each
/// iteration so the workspace variant's steady-state (no allocation,
/// panel solves, in-place refactorization) is what gets measured.
fn bench_panel_vs_scalar(c: &mut Criterion) {
    let rows = 50_000;
    let f = 32;
    let (gram, k) = problem(rows, f, 17);
    let nonneg = constraints::nonneg();

    let mut group = c.benchmark_group("admm_panel_vs_scalar");
    group.sample_size(10);

    for (strategy, cfg0) in [
        ("blocked_50", AdmmConfig::blocked(50)),
        ("fused", AdmmConfig::fused()),
    ] {
        let mut cfg = cfg0;
        cfg.max_inner = 10;
        cfg.tol = 0.0; // fixed work for a fair kernel comparison
        let mut h = DMat::zeros(rows, f);
        let mut u = DMat::zeros(rows, f);
        group.bench_with_input(BenchmarkId::new("scalar", strategy), strategy, |b, _| {
            b.iter(|| {
                h.as_mut_slice().fill(0.0);
                u.as_mut_slice().fill(0.0);
                admm_update_reference(&gram, &k, &mut h, &mut u, &*nonneg, &cfg).unwrap()
            });
        });
        let mut ws = AdmmWorkspace::new();
        group.bench_with_input(BenchmarkId::new("panel", strategy), strategy, |b, _| {
            b.iter(|| {
                h.as_mut_slice().fill(0.0);
                u.as_mut_slice().fill(0.0);
                admm_update_ws(&gram, &k, &mut h, &mut u, &*nonneg, &cfg, &mut ws).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_rank_scaling,
    bench_panel_vs_scalar
);
criterion_main!(benches);
