//! Criterion microbenchmarks for the serving read path: batched-panel
//! point scoring against the per-query scalar loop, and norm-bound
//! pruned top-K against the brute-force scan.

use aoadmm::KruskalModel;
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::Idx;
use std::sync::Arc;

/// Engine over random factors; `skew > 0` applies power-law row
/// magnitudes (row i scaled by `(i+1)^-skew`) like the popularity skew
/// of the dataset analogs — the regime norm-bound pruning targets.
fn engine(dims: &[usize], rank: usize, skew: f64, seed: u64) -> ServeEngine {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let factors = dims
        .iter()
        .map(|&d| {
            let mut f = DMat::random(d, rank, -1.0, 1.0, &mut rng);
            for i in 0..d {
                let scale = ((i + 1) as f64).powf(-skew);
                for v in f.row_mut(i) {
                    *v *= scale;
                }
            }
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(KruskalModel::new(factors));
    ServeEngine::new(registry)
}

fn coords(dims: &[usize], n: usize) -> Vec<Vec<Idx>> {
    (0..n as u64)
        .map(|i| {
            dims.iter()
                .enumerate()
                .map(|(m, &d)| {
                    (i.wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add(m as u64 * 0x85ebca6b)
                        % d as u64) as Idx
                })
                .collect()
        })
        .collect()
}

/// Point scoring of a 256-query slab: batched panel kernels
/// (`predict_many_into`, one snapshot + gathered-Hadamard chunks)
/// against the per-query scalar `value_at` walk (`predict_direct`).
fn bench_point(c: &mut Criterion) {
    let dims = [50_000usize, 10_000, 500];
    let mut group = c.benchmark_group("serve_point_256q");
    for rank in [8usize, 16, 32] {
        let e = engine(&dims, rank, 0.0, 7);
        let qs = coords(&dims, 256);
        let mut values = Vec::new();
        group.bench_with_input(BenchmarkId::new("batched", rank), &rank, |b, _| {
            b.iter(|| e.predict_many_into(&qs, &mut values).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("scalar", rank), &rank, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &qs {
                    acc += e.predict_direct(q).unwrap();
                }
                acc
            });
        });
    }
    group.finish();
}

/// Top-K over a large free mode: Cauchy-Schwarz pruned scan against the
/// brute-force panel scan (both exact; pruning skips the norm tail).
fn bench_topk(c: &mut Criterion) {
    let dims = [200_000usize, 1_000, 200];
    let mut group = c.benchmark_group("serve_topk_mode0");
    group.sample_size(20);
    for (rank, k) in [(16usize, 10usize), (16, 100), (32, 10)] {
        let e = engine(&dims, rank, 0.6, 11);
        let anchors = coords(&dims, 16);
        let label = format!("f{rank}_k{k}");
        let mut hits = Vec::new();
        group.bench_with_input(BenchmarkId::new("pruned", &label), &k, |b, &k| {
            b.iter(|| {
                for a in &anchors {
                    e.topk_into_with(
                        &TopKQuery {
                            free_mode: 0,
                            anchor: a.clone(),
                            k,
                        },
                        true,
                        &mut hits,
                    )
                    .unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("brute", &label), &k, |b, &k| {
            b.iter(|| {
                for a in &anchors {
                    e.topk_into_with(
                        &TopKQuery {
                            free_mode: 0,
                            anchor: a.clone(),
                            k,
                        },
                        false,
                        &mut hits,
                    )
                    .unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point, bench_topk);
criterion_main!(benches);
