//! Criterion benchmarks for the streaming subsystem: what incremental
//! maintenance buys per batch.
//!
//! Two questions, each answered by a direct pair of measurements:
//!
//! * `stream_mttkrp` — serving MTTKRP from the compiled base plus an
//!   uncompiled delta ([`DeltaView`]) versus merging first and running
//!   the compiled kernel on the result (which pays the CSF+plan rebuild
//!   every time the tensor changes).
//! * `stream_refit` — a bounded warm-started refit (persisted factors,
//!   duals and Gram caches, prepared tensor reused) versus cold
//!   refactorization of the merged tensor (random init, CSF rebuilt
//!   inside). Both run the same fixed number of outer iterations.

use aoadmm::{
    factorize, factorize_prepared, init_factors, CsfPolicy, Factorizer, KruskalModel,
    PreparedTensor, TensorSource,
};
use aoadmm_stream::{DeltaBuffer, DeltaView, StreamOp};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::{gen, Idx};

const DIMS: [usize; 3] = [300, 250, 200];
const BASE_NNZ: usize = 60_000;
const RANK: usize = 16;

/// A buffer holding the generated base plus `delta_nnz` random appends.
fn buffer_with_delta(delta_nnz: usize) -> DeltaBuffer {
    let base = gen::random_uniform(&DIMS, BASE_NNZ, 7).unwrap();
    let mut buf = DeltaBuffer::new(base).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let ops: Vec<StreamOp> = (0..delta_nnz)
        .map(|_| StreamOp::Add {
            coord: DIMS.iter().map(|&d| rng.gen_range(0..d) as Idx).collect(),
            val: rng.gen_range(0.1..1.0),
        })
        .collect();
    buf.ingest(&ops).unwrap();
    buf
}

fn bench_stream_mttkrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_mttkrp");
    group.sample_size(10);
    let cfg = Factorizer::new(RANK);
    let factors: Vec<DMat> = {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        DIMS.iter()
            .map(|&d| DMat::random(d, RANK, 0.0, 1.0, &mut rng))
            .collect()
    };

    for pct in [1usize, 5, 20] {
        let buf = buffer_with_delta(BASE_NNZ * pct / 100);
        let prepared = PreparedTensor::build(buf.base_coo(), CsfPolicy::PerMode).unwrap();

        group.bench_with_input(
            BenchmarkId::new("csf_plus_delta", format!("{pct}pct")),
            &pct,
            |b, _| {
                let view = DeltaView::new(&prepared, &buf);
                let mut out = DMat::zeros(DIMS[0], RANK);
                b.iter(|| view.mttkrp(0, &factors, &cfg, &mut out).unwrap());
            },
        );
        // The honest alternative per serving step: merge, recompile, run.
        group.bench_with_input(
            BenchmarkId::new("merge_then_compiled", format!("{pct}pct")),
            &pct,
            |b, _| {
                let mut out = DMat::zeros(DIMS[0], RANK);
                b.iter(|| {
                    let merged = buf.merged_coo();
                    let p = PreparedTensor::build(&merged, CsfPolicy::PerMode).unwrap();
                    p.mttkrp(0, &factors, &cfg, &mut out).unwrap()
                });
            },
        );
        // Steady-state floor: the already-compiled merged tensor.
        let merged = buf.merged_coo();
        let merged_prepared = PreparedTensor::build(&merged, CsfPolicy::PerMode).unwrap();
        group.bench_with_input(
            BenchmarkId::new("post_merge_compiled", format!("{pct}pct")),
            &pct,
            |b, _| {
                let mut out = DMat::zeros(DIMS[0], RANK);
                b.iter(|| merged_prepared.mttkrp(0, &factors, &cfg, &mut out).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_stream_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_refit");
    group.sample_size(10);

    let buf = buffer_with_delta(BASE_NNZ / 20);
    let prepared = PreparedTensor::build(buf.base_coo(), CsfPolicy::PerMode).unwrap();
    let merged = buf.merged_coo();

    // Fixed five outer iterations on both sides (negative tolerance
    // disables early stopping) so the comparison is setup + warm-start
    // quality, not stopping-rule luck.
    let cfg = Factorizer::new(RANK).seed(2).max_outer(5).tolerance(-1.0);

    // Warm-start state from a converged-ish fit of the base.
    let full = factorize_prepared(
        &prepared,
        &Factorizer::new(RANK).seed(2).max_outer(30),
        KruskalModel::new(init_factors(buf.dims(), RANK, 2, buf.base_coo().norm_sq())),
        None,
        None,
    )
    .unwrap();
    let factors = full.model.into_factors();
    let (duals, grams) = (full.duals, full.grams);

    group.bench_function("warm_refit_csf_delta", |b| {
        let view = DeltaView::new(&prepared, &buf);
        b.iter_batched(
            || {
                (
                    KruskalModel::new(factors.clone()),
                    duals.clone(),
                    grams.clone(),
                )
            },
            |(m, d, g)| factorize_prepared(&view, &cfg, m, Some(d), Some(g)).unwrap(),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("cold_refactorize_merged", |b| {
        b.iter(|| factorize(&merged, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_stream_mttkrp, bench_stream_refit);
criterion_main!(benches);
