//! Saving and loading Kruskal models.
//!
//! A simple self-describing text format so factors can be inspected with
//! standard tools and exchanged with other CP toolkits:
//!
//! ```text
//! # aoadmm kruskal model
//! nmodes 3
//! rank 8
//! mode 0 rows 310
//! <row 0: 8 whitespace-separated values>
//! ...
//! mode 1 rows 6
//! ...
//! ```

use crate::error::AoAdmmError;
use crate::kruskal::KruskalModel;
use splinalg::DMat;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

fn io_err(e: std::io::Error) -> AoAdmmError {
    AoAdmmError::Config(format!("model I/O error: {e}"))
}

fn parse_err(line: usize, msg: impl std::fmt::Display) -> AoAdmmError {
    AoAdmmError::Config(format!("model parse error at line {line}: {msg}"))
}

/// Write a model to any writer in the text format above.
pub fn write_model<W: Write>(model: &KruskalModel, writer: W) -> Result<(), AoAdmmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# aoadmm kruskal model").map_err(io_err)?;
    writeln!(w, "nmodes {}", model.nmodes()).map_err(io_err)?;
    writeln!(w, "rank {}", model.rank()).map_err(io_err)?;
    for m in 0..model.nmodes() {
        let fac = model.factor(m);
        writeln!(w, "mode {m} rows {}", fac.nrows()).map_err(io_err)?;
        for i in 0..fac.nrows() {
            let mut first = true;
            for &v in fac.row(i) {
                if !first {
                    write!(w, " ").map_err(io_err)?;
                }
                // 17 significant digits: lossless f64 round trip.
                write!(w, "{v:.17e}").map_err(io_err)?;
                first = false;
            }
            writeln!(w).map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)
}

/// Write a model to a file.
pub fn save_model<P: AsRef<Path>>(model: &KruskalModel, path: P) -> Result<(), AoAdmmError> {
    let f = std::fs::File::create(path).map_err(io_err)?;
    write_model(model, f)
}

/// Read a model from any reader.
pub fn read_model<R: Read>(reader: R) -> Result<KruskalModel, AoAdmmError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), AoAdmmError> {
        loop {
            match lines.next() {
                Some((n, Ok(l))) => {
                    let t = l.trim().to_string();
                    if t.is_empty() || t.starts_with('#') {
                        continue;
                    }
                    return Ok((n + 1, t));
                }
                Some((n, Err(e))) => return Err(parse_err(n + 1, e)),
                None => {
                    return Err(AoAdmmError::Config(format!(
                        "model file truncated; expected {expect}"
                    )))
                }
            }
        }
    };

    let (n, l) = next_line("nmodes header")?;
    let nmodes: usize = l
        .strip_prefix("nmodes ")
        .ok_or_else(|| parse_err(n, "expected `nmodes <N>`"))?
        .parse()
        .map_err(|e| parse_err(n, e))?;
    let (n, l) = next_line("rank header")?;
    let rank: usize = l
        .strip_prefix("rank ")
        .ok_or_else(|| parse_err(n, "expected `rank <F>`"))?
        .parse()
        .map_err(|e| parse_err(n, e))?;
    if nmodes < 1 || rank < 1 {
        return Err(AoAdmmError::Config(
            "model must have nmodes,rank >= 1".into(),
        ));
    }

    let mut factors = Vec::with_capacity(nmodes);
    for m in 0..nmodes {
        let (n, l) = next_line("mode header")?;
        let rest = l
            .strip_prefix(&format!("mode {m} rows "))
            .ok_or_else(|| parse_err(n, format!("expected `mode {m} rows <R>`, got {l:?}")))?;
        let rows: usize = rest.parse().map_err(|e| parse_err(n, e))?;
        if rows < 1 {
            // A zero-row factor parses but panics much later, on the
            // first query that indexes the mode — reject it here.
            return Err(parse_err(n, format!("mode {m} must have rows >= 1")));
        }
        if rows.checked_mul(rank).is_none() {
            return Err(parse_err(n, format!("mode {m} rows {rows} overflows")));
        }
        // Grown per parsed row rather than pre-sized from the header, so
        // a corrupt `rows` claim fails on the missing data lines instead
        // of aborting the process on a gigantic upfront allocation.
        let mut data = Vec::new();
        for _ in 0..rows {
            let (n, l) = next_line("factor row")?;
            let mut count = 0;
            for (c, tok) in l.split_whitespace().enumerate() {
                if c >= rank {
                    return Err(parse_err(n, "too many values in row"));
                }
                let v: f64 = tok.parse().map_err(|e| parse_err(n, e))?;
                if !v.is_finite() {
                    return Err(parse_err(n, format!("non-finite factor value {tok:?}")));
                }
                data.push(v);
                count += 1;
            }
            if count != rank {
                return Err(parse_err(n, format!("expected {rank} values, got {count}")));
            }
        }
        let fac = DMat::from_vec(rows, rank, data)
            .map_err(|e| AoAdmmError::Config(format!("mode {m} factor: {e}")))?;
        factors.push(fac);
    }
    Ok(KruskalModel::new(factors))
}

/// Read a model from a file, naming the path in every error.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<KruskalModel, AoAdmmError> {
    let path = path.as_ref();
    let with_path = |msg: std::fmt::Arguments| {
        AoAdmmError::Config(format!("model file {}: {msg}", path.display()))
    };
    let f = std::fs::File::open(path).map_err(|e| with_path(format_args!("{e}")))?;
    read_model(f).map_err(|e| match e {
        AoAdmmError::Config(msg) => with_path(format_args!("{msg}")),
        other => other,
    })
}

/// Read a model from a file and check its shape against the tensor it
/// will serve: every factor's row count must equal the corresponding
/// entry of `dims`. A mismatched model otherwise loads fine and panics
/// only when a query first indexes the short mode — long after the
/// loading code that caused it.
pub fn load_model_for_dims<P: AsRef<Path>>(
    path: P,
    dims: &[usize],
) -> Result<KruskalModel, AoAdmmError> {
    let path = path.as_ref();
    let model = load_model(path)?;
    model.check_dims(dims).map_err(|e| match e {
        AoAdmmError::Config(msg) => {
            AoAdmmError::Config(format!("model file {}: {msg}", path.display()))
        }
        other => other,
    })?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> KruskalModel {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        KruskalModel::new(vec![
            DMat::random(7, 3, -1.0, 1.0, &mut rng),
            DMat::random(5, 3, -1.0, 1.0, &mut rng),
            DMat::random(6, 3, -1.0, 1.0, &mut rng),
        ])
    }

    #[test]
    fn roundtrip_is_lossless() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let back = read_model(buf.as_slice()).unwrap();
        assert_eq!(back.nmodes(), 3);
        assert_eq!(back.rank(), 3);
        for mode in 0..3 {
            assert_eq!(back.factor(mode).max_abs_diff(m.factor(mode)), 0.0);
        }
    }

    #[test]
    fn file_roundtrip() {
        let m = model();
        let path = std::env::temp_dir().join("aoadmm_model_io_test.txt");
        save_model(&m, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.factor(0).max_abs_diff(m.factor(0)), 0.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_truncation() {
        let m = model();
        let mut buf = Vec::new();
        write_model(&m, &mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(read_model(&buf[..cut]).is_err());
    }

    #[test]
    fn rejects_garbage_headers() {
        assert!(read_model("nmodes x\n".as_bytes()).is_err());
        assert!(read_model("rank 2\n".as_bytes()).is_err());
        assert!(read_model("nmodes 1\nrank 0\n".as_bytes()).is_err());
        assert!(read_model("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_row_arity() {
        let src = "nmodes 1\nrank 2\nmode 0 rows 1\n1.0 2.0 3.0\n";
        assert!(read_model(src.as_bytes()).is_err());
        let src = "nmodes 1\nrank 2\nmode 0 rows 1\n1.0\n";
        assert!(read_model(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_row_mode() {
        // Regression: a `rows 0` factor used to load silently and panic
        // on the first query into that mode.
        let src = "nmodes 2\nrank 1\nmode 0 rows 0\nmode 1 rows 1\n1.0\n";
        let err = read_model(src.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("rows >= 1"), "{err}");
    }

    #[test]
    fn rejects_absurd_row_claim_without_allocating() {
        // Regression: a corrupt header claiming ~10^10 rows used to
        // abort the process on a hundreds-of-GB upfront allocation;
        // it must fail as an ordinary truncation error instead.
        let src = "nmodes 1\nrank 2\nmode 0 rows 9999999999\n1.0 2.0\n";
        let err = read_model(src.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
        let src = format!("nmodes 1\nrank 3\nmode 0 rows {}\n1.0\n", usize::MAX);
        let err = read_model(src.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("overflows"), "{err}");
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let src = format!("nmodes 1\nrank 1\nmode 0 rows 1\n{bad}\n");
            let err = read_model(src.as_bytes()).unwrap_err().to_string();
            assert!(err.contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn load_errors_name_the_path() {
        let missing = std::env::temp_dir().join("aoadmm_model_io_no_such_file.txt");
        let err = load_model(&missing).unwrap_err().to_string();
        assert!(err.contains("aoadmm_model_io_no_such_file"), "{err}");

        let path = std::env::temp_dir().join("aoadmm_model_io_bad.txt");
        std::fs::write(&path, "nmodes x\n").unwrap();
        let err = load_model(&path).unwrap_err().to_string();
        assert!(err.contains("aoadmm_model_io_bad"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_for_dims_rejects_shape_mismatch() {
        let m = model();
        let path = std::env::temp_dir().join("aoadmm_model_io_dims.txt");
        save_model(&m, &path).unwrap();
        assert!(load_model_for_dims(&path, &[7, 5, 6]).is_ok());
        let err = load_model_for_dims(&path, &[7, 9, 6])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("aoadmm_model_io_dims") && err.contains("mode 1"),
            "{err}"
        );
        let err = load_model_for_dims(&path, &[7, 5]).unwrap_err().to_string();
        assert!(err.contains("modes"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "# hi\n\nnmodes 1\n# mid\nrank 1\nmode 0 rows 2\n1.5\n# x\n-2.5\n";
        let m = read_model(src.as_bytes()).unwrap();
        assert_eq!(m.factor(0).get(0, 0), 1.5);
        assert_eq!(m.factor(0).get(1, 0), -2.5);
    }
}
