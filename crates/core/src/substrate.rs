//! Shared MTTKRP substrate selection for the dense-factor drivers.
//!
//! The ALS and PGD baselines both need an "engine" that serves dense
//! MTTKRP for every mode across many outer iterations. Historically each
//! driver hand-rolled the same two-way choice (dimension tree vs
//! per-mode CSFs); [`DenseEngine`] centralizes it and adds the ALTO
//! linearized substrate ([`crate::alto`]) plus [`CsfPolicy::Auto`]
//! cost-model resolution ([`crate::mttkrp_plan::choose_policy`]), so
//! every driver — AO-ADMM via [`crate::driver::PreparedTensor`], ALS and
//! PGD via this module — selects substrates through the same policy.
//!
//! [`CsfPolicy::One`] is a constrained-driver concept (its non-root
//! modes run conflicting-update MTTKRP against a *sparse-aware* leaf);
//! the dense drivers fall back to per-mode CSFs for it, mirroring the
//! higher-order fallbacks documented on [`CsfPolicy`].

use crate::alto::AltoTensor;
use crate::config::CsfPolicy;
use crate::dimtree::IterationPlan;
use crate::error::AoAdmmError;
use crate::mttkrp::mttkrp_dense_planned;
use crate::mttkrp_plan::{build_mode_plans, choose_policy, MttkrpPlan, PlanStrategy};
use splinalg::DMat;
use sptensor::{CooTensor, Csf};

/// MTTKRP engine for drivers whose factors stay dense (ALS, PGD):
/// per-mode CSFs, a dimension-tree iteration plan, or the ALTO
/// linearized substrate, chosen by [`CsfPolicy`].
// One engine exists per run; boxing the large variants would only add a
// pointer chase (same reasoning as the driver's CsfSet).
#[allow(clippy::large_enum_variant)]
pub enum DenseEngine {
    /// One CSF + execution plan per mode.
    PerMode(Vec<(Csf, MttkrpPlan)>),
    /// Dimension-tree plan with cross-mode memoized slabs.
    Tree(IterationPlan),
    /// ALTO linearized tensor with SIMD accumulation.
    Alto(AltoTensor),
}

impl DenseEngine {
    /// Compile `tensor` under `policy`, resolving [`CsfPolicy::Auto`]
    /// through the cost model and applying the documented fallbacks
    /// (tree needs ≥ 3 modes, ALTO needs an encodable shape, `One` is
    /// not a dense-driver substrate).
    pub fn build(tensor: &CooTensor, policy: CsfPolicy) -> Result<Self, AoAdmmError> {
        let policy = match policy {
            CsfPolicy::Auto => choose_policy(tensor),
            p => p,
        };
        match policy {
            CsfPolicy::DimTree if tensor.nmodes() >= 3 => {
                Ok(DenseEngine::Tree(IterationPlan::build(tensor)?))
            }
            CsfPolicy::Alto if AltoTensor::encodable(tensor.dims()) => {
                Ok(DenseEngine::Alto(AltoTensor::build(tensor)?))
            }
            _ => Ok(DenseEngine::PerMode(build_mode_plans(tensor)?)),
        }
    }

    /// Dense MTTKRP for `mode`; returns the strategy label that ran plus
    /// the (tree-path) slab hit/miss counters for the trace.
    pub fn mttkrp_dense(
        &mut self,
        mode: usize,
        factors: &[DMat],
        out: &mut DMat,
    ) -> Result<(PlanStrategy, u32, u32), AoAdmmError> {
        match self {
            DenseEngine::PerMode(csfs) => {
                let (csf, plan) = &csfs[mode];
                mttkrp_dense_planned(csf, plan, factors, out)?;
                Ok((plan.strategy(), 0, 0))
            }
            DenseEngine::Tree(plan) => {
                let t = plan.mttkrp_dense(mode, factors, out)?;
                Ok((PlanStrategy::DimTree, t.hits, t.misses))
            }
            DenseEngine::Alto(alto) => {
                alto.mttkrp_into(mode, factors, out)?;
                Ok((PlanStrategy::Alto, 0, 0))
            }
        }
    }

    /// The driver rewrote `factors[mode]`; memoizing substrates drop
    /// intermediates that read the old values (no-op elsewhere).
    pub fn note_factor_changed(&mut self, mode: usize) {
        if let DenseEngine::Tree(plan) = self {
            plan.note_factor_changed(mode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::gen::{planted, PlantedConfig};

    #[test]
    fn engine_applies_documented_fallbacks() {
        let t = planted(&PlantedConfig::small()).unwrap();
        assert!(matches!(
            DenseEngine::build(&t, CsfPolicy::PerMode).unwrap(),
            DenseEngine::PerMode(_)
        ));
        assert!(matches!(
            DenseEngine::build(&t, CsfPolicy::One).unwrap(),
            DenseEngine::PerMode(_)
        ));
        assert!(matches!(
            DenseEngine::build(&t, CsfPolicy::DimTree).unwrap(),
            DenseEngine::Tree(_)
        ));
        assert!(matches!(
            DenseEngine::build(&t, CsfPolicy::Alto).unwrap(),
            DenseEngine::Alto(_)
        ));
        // Auto resolves to *some* substrate and builds.
        assert!(DenseEngine::build(&t, CsfPolicy::Auto).is_ok());

        let matrix = sptensor::gen::random_uniform(&[30, 20], 100, 3).unwrap();
        assert!(matches!(
            DenseEngine::build(&matrix, CsfPolicy::DimTree).unwrap(),
            DenseEngine::PerMode(_)
        ));
    }

    #[test]
    fn engines_agree_on_dense_mttkrp() {
        use rand::SeedableRng;
        let t = planted(&PlantedConfig::small()).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let factors: Vec<DMat> = t
            .dims()
            .iter()
            .map(|&d| DMat::random(d, 5, -1.0, 1.0, &mut rng))
            .collect();
        let mut engines = [
            DenseEngine::build(&t, CsfPolicy::PerMode).unwrap(),
            DenseEngine::build(&t, CsfPolicy::DimTree).unwrap(),
            DenseEngine::build(&t, CsfPolicy::Alto).unwrap(),
        ];
        for mode in 0..t.nmodes() {
            let mut outs: Vec<DMat> = Vec::new();
            for e in &mut engines {
                let mut out = DMat::zeros(t.dims()[mode], 5);
                e.mttkrp_dense(mode, &factors, &mut out).unwrap();
                outs.push(out);
            }
            for o in &outs[1..] {
                assert!(
                    outs[0].max_abs_diff(o) < 1e-9,
                    "engines disagree on mode {mode}"
                );
            }
        }
    }
}
