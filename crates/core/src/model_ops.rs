//! Operations on Kruskal models: column normalization, component
//! arrangement, and the factor match score (FMS).
//!
//! These are the standard post-processing utilities of CP toolkits
//! (Tensor Toolbox's `normalize`/`arrange`/`score`): factorizations are
//! only defined up to per-component scaling and permutation, so
//! comparing two models — e.g. a recovered factorization against planted
//! ground truth — requires normalizing columns, matching components, and
//! scoring their congruence.

use crate::kruskal::KruskalModel;
use splinalg::DMat;

/// A Kruskal model with explicit per-component weights:
/// `X ~ sum_f lambda[f] * a_f (o) b_f (o) c_f` with unit-norm columns.
#[derive(Debug, Clone)]
pub struct NormalizedModel {
    /// Unit-column factors.
    pub model: KruskalModel,
    /// Component weights, the product of the absorbed column norms.
    pub lambda: Vec<f64>,
}

impl NormalizedModel {
    /// Fold the weights back into the first factor, recovering a plain
    /// Kruskal model that reconstructs identically.
    pub fn into_denormalized(self) -> KruskalModel {
        let mut factors = self.model.into_factors();
        let f = self.lambda.len();
        for i in 0..factors[0].nrows() {
            let row = factors[0].row_mut(i);
            for (x, &l) in row.iter_mut().zip(&self.lambda[..f]) {
                *x *= l;
            }
        }
        KruskalModel::new(factors)
    }
}

/// Normalize every factor column to unit Euclidean norm, absorbing the
/// norms into per-component weights `lambda` (all-zero columns get
/// weight 0 and are left as zero columns).
///
/// ```
/// use aoadmm::{model_ops, KruskalModel};
/// use splinalg::DMat;
/// let m = KruskalModel::new(vec![
///     DMat::from_vec(2, 1, vec![3.0, 4.0]).unwrap(),
///     DMat::from_vec(1, 1, vec![2.0]).unwrap(),
/// ]);
/// let n = model_ops::normalize_columns(&m);
/// assert!((n.lambda[0] - 10.0).abs() < 1e-12); // 5 * 2
/// ```
pub fn normalize_columns(model: &KruskalModel) -> NormalizedModel {
    let rank = model.rank();
    let mut lambda = vec![1.0; rank];
    let mut factors: Vec<DMat> = model.factors().to_vec();
    for fac in &mut factors {
        // Column norms of a row-major tall matrix: accumulate per column.
        let mut norms = vec![0.0f64; rank];
        for i in 0..fac.nrows() {
            for (c, &v) in fac.row(i).iter().enumerate() {
                norms[c] += v * v;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        for i in 0..fac.nrows() {
            let row = fac.row_mut(i);
            for c in 0..rank {
                if norms[c] > 0.0 {
                    row[c] /= norms[c];
                }
            }
        }
        for (l, &n) in lambda.iter_mut().zip(&norms) {
            *l *= n;
        }
    }
    NormalizedModel {
        model: KruskalModel::new(factors),
        lambda,
    }
}

/// Permute components so the weights are non-increasing (the canonical
/// presentation order).
pub fn arrange(normalized: &NormalizedModel) -> NormalizedModel {
    let rank = normalized.lambda.len();
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.sort_by(|&a, &b| {
        normalized.lambda[b]
            .partial_cmp(&normalized.lambda[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let lambda: Vec<f64> = perm.iter().map(|&p| normalized.lambda[p]).collect();
    let factors: Vec<DMat> = normalized
        .model
        .factors()
        .iter()
        .map(|fac| {
            let mut out = DMat::zeros(fac.nrows(), rank);
            for i in 0..fac.nrows() {
                let src = fac.row(i);
                let dst = out.row_mut(i);
                for (c, &p) in perm.iter().enumerate() {
                    dst[c] = src[p];
                }
            }
            out
        })
        .collect();
    NormalizedModel {
        model: KruskalModel::new(factors),
        lambda,
    }
}

/// Cosine congruence of column `ca` of `a` and column `cb` of `b`.
fn column_congruence(a: &DMat, ca: usize, b: &DMat, cb: usize) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..a.nrows() {
        let x = a.row(i)[ca];
        let y = b.row(i)[cb];
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Factor match score between two models over the same tensor shape.
///
/// For each pair of components `(p, q)` the congruence is the product of
/// per-mode column cosines; components are matched greedily
/// (highest congruence first, each used once) and the FMS is the mean
/// congruence of the matched pairs over `min(rank_a, rank_b)` pairs.
/// 1.0 means identical up to scaling/permutation; values near 0 mean no
/// recovery.
///
/// Returns an error message if the shapes are incompatible.
pub fn factor_match_score(a: &KruskalModel, b: &KruskalModel) -> Result<f64, String> {
    if a.nmodes() != b.nmodes() {
        return Err(format!(
            "mode counts differ: {} vs {}",
            a.nmodes(),
            b.nmodes()
        ));
    }
    for m in 0..a.nmodes() {
        if a.factor(m).nrows() != b.factor(m).nrows() {
            return Err(format!(
                "mode {m} lengths differ: {} vs {}",
                a.factor(m).nrows(),
                b.factor(m).nrows()
            ));
        }
    }
    let ra = a.rank();
    let rb = b.rank();
    let pairs = ra.min(rb);
    if pairs == 0 {
        return Err("zero-rank model".into());
    }

    // Congruence matrix (ra x rb): product over modes of column cosines.
    let mut cong = vec![1.0f64; ra * rb];
    for m in 0..a.nmodes() {
        for p in 0..ra {
            for q in 0..rb {
                cong[p * rb + q] *= column_congruence(a.factor(m), p, b.factor(m), q).abs();
            }
        }
    }

    // Greedy matching.
    let mut used_a = vec![false; ra];
    let mut used_b = vec![false; rb];
    let mut total = 0.0;
    for _ in 0..pairs {
        let mut best = (0usize, 0usize, -1.0f64);
        for p in 0..ra {
            if used_a[p] {
                continue;
            }
            for q in 0..rb {
                if used_b[q] {
                    continue;
                }
                let c = cong[p * rb + q];
                if c > best.2 {
                    best = (p, q, c);
                }
            }
        }
        used_a[best.0] = true;
        used_b[best.1] = true;
        total += best.2;
    }
    Ok(total / pairs as f64)
}

/// Relative difference of the reconstruction of two models at a set of
/// probe coordinates (cheap sanity check that two models agree).
pub fn max_value_diff(a: &KruskalModel, b: &KruskalModel, probes: &[Vec<sptensor::Idx>]) -> f64 {
    probes
        .iter()
        .map(|c| (a.value_at(c) - b.value_at(c)).abs())
        .fold(0.0, f64::max)
}

/// Column norms of one factor (diagnostics).
pub fn column_norms(fac: &DMat) -> Vec<f64> {
    let rank = fac.ncols();
    let mut norms = vec![0.0f64; rank];
    for i in 0..fac.nrows() {
        for (c, &v) in fac.row(i).iter().enumerate() {
            norms[c] += v * v;
        }
    }
    for n in &mut norms {
        *n = n.sqrt();
    }
    norms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sptensor::Idx;

    fn random_model(dims: &[usize], f: usize, seed: u64) -> KruskalModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KruskalModel::new(
            dims.iter()
                .map(|&d| DMat::random(d, f, 0.1, 1.0, &mut rng))
                .collect(),
        )
    }

    fn probes(dims: &[usize]) -> Vec<Vec<Idx>> {
        let mut out = Vec::new();
        for k in 0..10 {
            out.push(
                dims.iter()
                    .map(|&d| ((k * 7) % d) as Idx)
                    .collect::<Vec<_>>(),
            );
        }
        out
    }

    #[test]
    fn normalize_makes_unit_columns() {
        let m = random_model(&[8, 6, 7], 3, 1);
        let n = normalize_columns(&m);
        for fac in n.model.factors() {
            let norms = column_norms(fac);
            for c in norms {
                assert!((c - 1.0).abs() < 1e-12, "column norm {c}");
            }
        }
        assert!(n.lambda.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn normalize_roundtrips_reconstruction() {
        let m = random_model(&[5, 4, 6], 3, 2);
        let back = normalize_columns(&m).into_denormalized();
        let p = probes(&[5, 4, 6]);
        assert!(max_value_diff(&m, &back, &p) < 1e-10);
    }

    #[test]
    fn arrange_sorts_weights() {
        let m = random_model(&[5, 5], 4, 3);
        let arranged = arrange(&normalize_columns(&m));
        for w in arranged.lambda.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Reconstruction unchanged by permutation.
        let p = probes(&[5, 5]);
        assert!(max_value_diff(&m, &arranged.into_denormalized(), &p) < 1e-10);
    }

    #[test]
    fn fms_of_identical_models_is_one() {
        let m = random_model(&[6, 7, 8], 4, 4);
        let s = factor_match_score(&m, &m).unwrap();
        assert!((s - 1.0).abs() < 1e-10, "fms {s}");
    }

    #[test]
    fn fms_invariant_to_permutation_and_scaling() {
        let m = random_model(&[6, 7], 3, 5);
        // Permute columns (0,1,2) -> (2,0,1) and scale a factor.
        let mut permuted: Vec<DMat> = m.factors().to_vec();
        for fac in &mut permuted {
            let copy = fac.clone();
            for i in 0..fac.nrows() {
                let dst = fac.row_mut(i);
                let src = copy.row(i);
                dst[0] = src[2];
                dst[1] = src[0];
                dst[2] = src[1];
            }
        }
        permuted[0].scale(5.0);
        let s = factor_match_score(&m, &KruskalModel::new(permuted)).unwrap();
        assert!((s - 1.0).abs() < 1e-10, "fms {s}");
    }

    #[test]
    fn fms_of_unrelated_models_is_low() {
        let a = random_model(&[40, 40, 40], 3, 6);
        let b = random_model(&[40, 40, 40], 3, 7);
        let s = factor_match_score(&a, &b).unwrap();
        // Random positive columns are somewhat aligned, but far from 1.
        assert!(s < 0.995, "fms {s}");
    }

    #[test]
    fn fms_shape_validation() {
        let a = random_model(&[4, 4], 2, 8);
        let b = random_model(&[4, 5], 2, 9);
        assert!(factor_match_score(&a, &b).is_err());
        let c = random_model(&[4, 4, 4], 2, 10);
        assert!(factor_match_score(&a, &c).is_err());
    }

    #[test]
    fn zero_column_normalizes_to_zero_weight() {
        let mut f0 = DMat::zeros(3, 2);
        for i in 0..3 {
            f0.set(i, 0, 1.0);
        }
        let f1 = DMat::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let m = KruskalModel::new(vec![f0, f1]);
        let n = normalize_columns(&m);
        assert_eq!(n.lambda[1], 0.0);
        assert!(n.lambda[0] > 0.0);
    }
}
